// Content-addressed result cache (DESIGN.md §13).
//
// A directory of immutable entries keyed by SHA-256 content hashes. The
// regression planner keys every (config-content, test, seed, view,
// build-provenance) pair job by the hash of its canonical JobSpec
// (src/regress/job_spec.h) and stores the pair's deterministic result
// payload plus a manifest of artifact files (triage/flight/VCD excerpts),
// so an unchanged job replays from disk instead of re-simulating.
//
// Layout:
//   <dir>/index.json                     entry list + logical LRU clock
//   <dir>/objects/<k[0:2]>/<key>/payload.json
//   <dir>/objects/<k[0:2]>/<key>/manifest.json
//   <dir>/objects/<k[0:2]>/<key>/files/<name>
//   <dir>/quarantine/<key>.<n>/          corrupted entries, moved aside
//
// Durability rules:
//   * entries are written to a tmp directory and rename()d into place, so
//     a concurrent reader never sees a partial entry and concurrent
//     writers of the same key collapse to one winner;
//   * the index is advisory: it is rewritten atomically (tmp + rename) and
//     reconciled against the objects/ tree on open, so a crashed or racing
//     writer can at worst lose LRU ordering, never entries;
//   * a corrupted entry (unreadable payload, manifest naming a missing
//     file) is quarantined on first touch — a warning and a miss, never a
//     crash or a poisoned result.
//
// Eviction is LRU by a logical tick persisted in the index (no wall clock:
// campaign runs must stay reproducible), triggered on store() when the
// total entry size exceeds max_bytes. Hit/miss/store/evict/quarantine
// counts land in local CacheStats and, when metrics collection is on, in
// the obs::Registry as cache.* counters.
//
// Thread safety: all public methods are serialized by an internal mutex;
// cross-process sharing of one cache directory is supported through the
// rename-based protocol above.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace crve::cache {

struct CacheOptions {
  std::string dir;
  // Total payload+manifest+artifact bytes to keep; 0 = unbounded.
  std::uint64_t max_bytes = 0;
  // Provenance stamped on stored entries and surfaced in the index, so
  // tooling (crve_lint CRVE060) can flag a cache whose entries were
  // produced by a different build flavour than the one probing it.
  std::string git_hash;
  bool sanitize = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t quarantined = 0;

  // {"hits": ..., "misses": ..., ...} — one flat object, no trailing
  // newline, suitable for embedding or for a --cache-stats file.
  std::string json(std::uint64_t entries, std::uint64_t bytes) const;
};

class Cache {
 public:
  explicit Cache(CacheOptions opts);

  // True for a well-formed key (64 lowercase hex chars).
  static bool valid_key(const std::string& key);

  // Entry presence without touching LRU order or the counters.
  bool contains(const std::string& key);

  // Payload text on hit (bumps the LRU tick); nullopt on miss. A corrupted
  // entry is quarantined and reported as a miss.
  std::optional<std::string> fetch(const std::string& key);

  // Copies every manifest-listed artifact of `key` into `dst_dir`
  // (created if needed) and returns the materialized names. Only files the
  // manifest lists are produced — a cache hit must not resurrect stale
  // artifacts beyond what the original job wrote. Empty on miss.
  std::vector<std::string> materialize(const std::string& key,
                                       const std::string& dst_dir);

  // Stores payload + artifacts under `key`, atomically. `files` maps the
  // manifest name of each artifact to its current on-disk path. Storing an
  // existing key is a no-op (first writer wins — entries are content
  // addressed, so both writers hold the same bytes).
  void store(const std::string& key, const std::string& payload,
             const std::vector<std::pair<std::string, std::string>>& files);

  // Moves a decodable-but-wrong entry (schema drift, stale version) into
  // quarantine so it stops matching probes.
  void invalidate(const std::string& key);

  const CacheStats& stats() const { return stats_; }
  std::uint64_t entry_count();
  std::uint64_t total_bytes();

 private:
  struct Entry {
    std::string key;
    std::uint64_t bytes = 0;
    std::uint64_t tick = 0;
    std::string git_hash;
    bool sanitize = false;
  };

  std::string entry_dir(const std::string& key) const;
  Entry* find_entry(const std::string& key);
  // Adopts an on-disk entry the index does not know about (cross-process
  // writer, lost index race); nullptr when absent on disk too.
  Entry* adopt_entry(const std::string& key);
  bool entry_intact(const std::string& key);
  void quarantine_locked(const std::string& key);
  void evict_to_budget_locked(const std::string& keep_key);
  void load_index_locked();
  void write_index_locked();
  static std::uint64_t dir_bytes(const std::string& dir);

  CacheOptions opts_;
  CacheStats stats_;
  std::vector<Entry> entries_;  // sorted by key
  std::uint64_t next_tick_ = 1;
  std::uint64_t tmp_seq_ = 0;
  std::mutex mu_;
};

}  // namespace crve::cache
