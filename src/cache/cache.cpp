#include "cache/cache.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace crve::cache {

namespace fs = std::filesystem;

namespace {

void count(const char* name) {
  if (obs::metrics_enabled()) obs::counter(name).inc();
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is.good() && !is.eof()) return std::nullopt;
  return buf.str();
}

bool write_file(const fs::path& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  os << content;
  os.flush();
  return os.good();
}

}  // namespace

std::string CacheStats::json(std::uint64_t entries, std::uint64_t bytes) const {
  std::ostringstream os;
  os << "{\"hits\": " << hits << ", \"misses\": " << misses
     << ", \"stores\": " << stores << ", \"evictions\": " << evictions
     << ", \"quarantined\": " << quarantined << ", \"entries\": " << entries
     << ", \"bytes\": " << bytes << "}";
  return os.str();
}

Cache::Cache(CacheOptions opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) {
    throw std::runtime_error("cache: empty cache directory");
  }
  fs::create_directories(fs::path(opts_.dir) / "objects");
  fs::create_directories(fs::path(opts_.dir) / "tmp");
  fs::create_directories(fs::path(opts_.dir) / "quarantine");
  std::lock_guard<std::mutex> lock(mu_);
  load_index_locked();
}

bool Cache::valid_key(const std::string& key) {
  if (key.size() != 64) return false;
  for (const char c : key) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

std::string Cache::entry_dir(const std::string& key) const {
  return (fs::path(opts_.dir) / "objects" / key.substr(0, 2) / key).string();
}

Cache::Entry* Cache::find_entry(const std::string& key) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &*it;
}

Cache::Entry* Cache::adopt_entry(const std::string& key) {
  if (!valid_key(key)) return nullptr;
  const fs::path dir = entry_dir(key);
  std::error_code ec;
  if (!fs::exists(dir / "payload.json", ec) ||
      !fs::exists(dir / "manifest.json", ec)) {
    return nullptr;
  }
  Entry e;
  e.key = key;
  e.bytes = dir_bytes(dir.string());
  e.tick = 0;  // unknown provenance: oldest in LRU order
  e.git_hash = opts_.git_hash;
  e.sanitize = opts_.sanitize;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& en, const std::string& k) { return en.key < k; });
  return &*entries_.insert(it, std::move(e));
}

bool Cache::contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (find_entry(key)) return true;
  return adopt_entry(key) != nullptr;
}

std::optional<std::string> Cache::fetch(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find_entry(key);
  if (!e) e = adopt_entry(key);
  if (!e) {
    ++stats_.misses;
    count("cache.misses");
    return std::nullopt;
  }
  const fs::path dir = entry_dir(key);
  const auto payload = read_file(dir / "payload.json");
  bool intact = payload.has_value();
  if (intact) {
    // A truncated or half-written document must read as a miss, never
    // reach the decoder: validate the JSON shell here.
    try {
      (void)json::parse(*payload);
    } catch (const std::exception&) {
      intact = false;
    }
  }
  if (intact) intact = entry_intact(key);
  if (!intact) {
    quarantine_locked(key);
    ++stats_.misses;
    count("cache.misses");
    return std::nullopt;
  }
  e = find_entry(key);
  e->tick = next_tick_++;
  ++stats_.hits;
  count("cache.hits");
  write_index_locked();
  return payload;
}

// Manifest well-formedness: parseable, and every listed artifact present.
bool Cache::entry_intact(const std::string& key) {
  const fs::path dir = entry_dir(key);
  const auto manifest = read_file(dir / "manifest.json");
  if (!manifest) return false;
  try {
    const json::Value doc = json::parse(*manifest);
    const json::Value* files = doc.find("files");
    if (!files || !files->is_array()) return false;
    for (const json::Value& f : files->items) {
      const std::string name = f.string_or("name", "");
      if (name.empty() || name.find('/') != std::string::npos ||
          name.find("..") != std::string::npos) {
        return false;
      }
      std::error_code ec;
      if (!fs::exists(dir / "files" / name, ec)) return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::vector<std::string> Cache::materialize(const std::string& key,
                                            const std::string& dst_dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!find_entry(key) && !adopt_entry(key)) return {};
  const fs::path dir = entry_dir(key);
  const auto manifest = read_file(dir / "manifest.json");
  if (!manifest || !entry_intact(key)) {
    quarantine_locked(key);
    return {};
  }
  std::vector<std::string> names;
  try {
    const json::Value doc = json::parse(*manifest);
    const json::Value* files = doc.find("files");
    if (files && files->is_array()) {
      if (!files->items.empty()) fs::create_directories(dst_dir);
      for (const json::Value& f : files->items) {
        const std::string name = f.string_or("name", "");
        fs::copy_file(dir / "files" / name, fs::path(dst_dir) / name,
                      fs::copy_options::overwrite_existing);
        names.push_back(name);
      }
    }
  } catch (const std::exception& e) {
    log_warn() << "cache: materialize " << key.substr(0, 12)
               << " failed: " << e.what();
    quarantine_locked(key);
    return {};
  }
  return names;
}

void Cache::store(
    const std::string& key, const std::string& payload,
    const std::vector<std::pair<std::string, std::string>>& files) {
  if (!valid_key(key)) {
    throw std::runtime_error("cache: malformed key '" + key + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (find_entry(key) || adopt_entry(key)) return;  // first writer won

  const fs::path tmp = fs::path(opts_.dir) / "tmp" /
                       (key + "." + std::to_string(::getpid()) + "." +
                        std::to_string(tmp_seq_++));
  const fs::path dst = entry_dir(key);
  try {
    fs::create_directories(tmp / "files");
    if (!write_file(tmp / "payload.json", payload)) {
      throw std::runtime_error("cache: cannot write payload under " +
                               opts_.dir);
    }
    std::ostringstream man;
    man << "{\"version\": 1, \"files\": [";
    for (std::size_t i = 0; i < files.size(); ++i) {
      fs::copy_file(files[i].second, tmp / "files" / files[i].first,
                    fs::copy_options::overwrite_existing);
      man << (i == 0 ? "" : ", ") << "{\"name\": \""
          << json::escape(files[i].first) << "\", \"bytes\": "
          << fs::file_size(tmp / "files" / files[i].first) << "}";
    }
    man << "]}\n";
    if (!write_file(tmp / "manifest.json", man.str())) {
      throw std::runtime_error("cache: cannot write manifest under " +
                               opts_.dir);
    }
    fs::create_directories(dst.parent_path());
    fs::rename(tmp, dst);
  } catch (const std::exception&) {
    // Lost the publish race (another writer renamed first) or a real I/O
    // failure; either way the tmp staging dir must not leak.
    std::error_code ec;
    fs::remove_all(tmp, ec);
    if (fs::exists(fs::path(dst) / "payload.json", ec)) {
      adopt_entry(key);
      return;
    }
    throw;
  }

  Entry e;
  e.key = key;
  e.bytes = dir_bytes(dst.string());
  e.tick = next_tick_++;
  e.git_hash = opts_.git_hash;
  e.sanitize = opts_.sanitize;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& en, const std::string& k) { return en.key < k; });
  entries_.insert(it, std::move(e));
  ++stats_.stores;
  count("cache.stores");
  evict_to_budget_locked(key);
  write_index_locked();
}

void Cache::invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!find_entry(key) && !adopt_entry(key)) return;
  quarantine_locked(key);
}

std::uint64_t Cache::entry_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t Cache::total_bytes() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.bytes;
  return total;
}

void Cache::quarantine_locked(const std::string& key) {
  const fs::path dir = entry_dir(key);
  const fs::path qdir = fs::path(opts_.dir) / "quarantine";
  std::error_code ec;
  for (int n = 0; n < 1000; ++n) {
    const fs::path slot = qdir / (key + "." + std::to_string(n));
    if (fs::exists(slot, ec)) continue;
    fs::rename(dir, slot, ec);
    break;
  }
  if (fs::exists(dir, ec)) fs::remove_all(dir, ec);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) entries_.erase(it);
  ++stats_.quarantined;
  count("cache.quarantined");
  log_warn() << "cache: quarantined corrupted entry " << key.substr(0, 12)
             << "... in " << opts_.dir;
  write_index_locked();
}

void Cache::evict_to_budget_locked(const std::string& keep_key) {
  if (opts_.max_bytes == 0) return;
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.bytes;
  while (total > opts_.max_bytes) {
    // Lowest tick = least recently used; never evict the entry that just
    // triggered the sweep (a cache that evicts its own store is useless).
    const Entry* victim = nullptr;
    for (const Entry& e : entries_) {
      if (e.key == keep_key) continue;
      if (!victim || e.tick < victim->tick) victim = &e;
    }
    if (!victim) return;
    total -= victim->bytes;
    std::error_code ec;
    fs::remove_all(entry_dir(victim->key), ec);
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), victim->key,
        [](const Entry& e, const std::string& k) { return e.key < k; });
    entries_.erase(it);
    ++stats_.evictions;
    count("cache.evictions");
  }
}

void Cache::load_index_locked() {
  entries_.clear();
  const auto text = read_file(fs::path(opts_.dir) / "index.json");
  if (text) {
    try {
      const json::Value doc = json::parse(*text);
      next_tick_ = static_cast<std::uint64_t>(doc.number_or("next_tick", 1.0));
      const json::Value* list = doc.find("entries");
      if (list && list->is_array()) {
        for (const json::Value& v : list->items) {
          Entry e;
          e.key = v.string_or("key", "");
          e.bytes = static_cast<std::uint64_t>(v.number_or("bytes", 0.0));
          e.tick = static_cast<std::uint64_t>(v.number_or("tick", 0.0));
          e.git_hash = v.string_or("git_hash", "");
          e.sanitize = v.bool_or("sanitize", false);
          std::error_code ec;
          if (valid_key(e.key) &&
              fs::exists(fs::path(entry_dir(e.key)) / "payload.json", ec)) {
            entries_.push_back(std::move(e));
          }
        }
      }
    } catch (const std::exception& e) {
      // A torn index is recoverable: fall through to the directory scan.
      log_warn() << "cache: unreadable index in " << opts_.dir
                 << " (rebuilding): " << e.what();
      entries_.clear();
      next_tick_ = 1;
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });

  // Reconcile: adopt entries a racing or crashed writer published without
  // landing an index update. They enter at tick 0 (oldest), which only
  // costs them LRU priority.
  std::error_code ec;
  for (const auto& shard :
       fs::directory_iterator(fs::path(opts_.dir) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& entry : fs::directory_iterator(shard.path(), ec)) {
      const std::string key = entry.path().filename().string();
      if (!find_entry(key)) adopt_entry(key);
    }
  }
  for (const Entry& e : entries_) {
    next_tick_ = std::max(next_tick_, e.tick + 1);
  }
}

void Cache::write_index_locked() {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"next_tick\": " << next_tick_
     << ",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"key\": \"" << e.key
       << "\", \"bytes\": " << e.bytes << ", \"tick\": " << e.tick
       << ", \"git_hash\": \"" << json::escape(e.git_hash)
       << "\", \"sanitize\": " << (e.sanitize ? "true" : "false") << "}";
  }
  os << (entries_.empty() ? "]" : "\n  ]") << "\n}\n";
  const fs::path tmp = fs::path(opts_.dir) / "tmp" /
                       ("index." + std::to_string(::getpid()) + "." +
                        std::to_string(tmp_seq_++));
  if (!write_file(tmp, os.str())) return;  // advisory: losable, rebuildable
  std::error_code ec;
  fs::rename(tmp, fs::path(opts_.dir) / "index.json", ec);
  if (ec) fs::remove(tmp, ec);
}

std::uint64_t Cache::dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& p : fs::recursive_directory_iterator(dir, ec)) {
    if (p.is_regular_file(ec)) total += p.file_size(ec);
  }
  return total;
}

}  // namespace crve::cache
