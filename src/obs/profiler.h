// Kernel hotspot profiler (DESIGN.md §15).
//
// Attributes simulator work to the *named processes* of a sim::Context:
// per-process evaluation/skip counts and exclusive wall time, per-rank
// occupancy of the compiled schedule, and per-signal fan-out churn (how
// many commits a signal made and how many reader dirty-marks those commits
// fanned out to). The kernel collects into plain counters guarded by one
// branch per evaluation site (sim/context.cpp); this header owns the data
// model, the order-independent merge and the JSON rendering.
//
// Determinism contract mirrors the metrics registry's kStable/kTiming
// split: evaluation counts, skip counts, ranks and signal churn are pure
// functions of the work performed, so the merged "stable" section is
// byte-identical for any --jobs value; wall-clock nanoseconds live in a
// separate "timing" section that profile_json can omit entirely
// (with_timing=false). merge() sums by name and re-sorts, so the campaign
// aggregate is independent of job completion order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crve::obs {

// One named comb/clocked process of a Context.
struct ProcProfile {
  std::string name;
  bool clocked = false;
  // Compiled-schedule rank of a static comb process; -1 for clocked
  // processes, dynamic-tail processes and everything under the interpreter.
  int rank = -1;
  std::uint64_t evals = 0;    // stable
  std::uint64_t skips = 0;    // stable (compiled kernel only)
  std::uint64_t wall_ns = 0;  // timing: exclusive time inside the process fn
};

// Occupancy of one compiled-schedule rank: of the rank's static processes,
// how many evaluated vs were skipped across all profiled cycles.
struct RankProfile {
  int rank = 0;
  std::uint64_t processes = 0;  // static processes assigned to this rank
  std::uint64_t evals = 0;
  std::uint64_t skips = 0;
};

// Fan-out churn of one signal: every committed value change marks the
// signal's static readers dirty, so reader_marks = commits x fan-out is
// the scheduling work this signal alone induces.
struct SignalProfile {
  std::string name;
  std::uint64_t commits = 0;
  std::uint64_t reader_marks = 0;
};

struct ProfileData {
  std::uint64_t runs = 0;  // merged run (testbench) count
  std::uint64_t cycles = 0;
  std::vector<ProcProfile> procs;      // sorted by name
  std::vector<RankProfile> ranks;      // sorted by rank
  std::vector<SignalProfile> signals;  // sorted by name, commits > 0 only

  bool empty() const { return runs == 0; }
  std::uint64_t total_wall_ns() const;

  // Accumulates `other` into this profile: counters summed by process
  // name / rank id / signal name, vectors re-sorted. Summation is
  // commutative and associative, so any merge order yields the same data
  // (the property the byte-identical stable section rests on).
  void merge(const ProfileData& other);
};

// Skip effectiveness of one process row: skips / (evals + skips).
double skip_rate(const ProcProfile& p);

// Top-n processes by exclusive wall time, ties broken by name so the order
// is total. Rows with zero wall time are dropped.
std::vector<ProcProfile> top_hotspots(const ProfileData& pd, std::size_t n);

// Pretty JSON, inner lines prefixed with `indent` for embedding:
//   {"stable": {runs, cycles, processes: [...], ranks: [...],
//               signals: [...]},
//    "timing": {total_wall_ns, hotspots: [...]}}
// with_timing=false omits the "timing" member and every wall_ns field, so
// the output is byte-identical across worker counts.
std::string profile_json(const ProfileData& pd, bool with_timing = true,
                         const std::string& indent = "");

}  // namespace crve::obs
