// Transaction-lifecycle tracer (DESIGN.md §16).
//
// Stitches the events one transaction produces on its way through the
// node — issue (BFM generated the request), grant (first request cell won
// arbitration at the initiator port), request-complete (request eop),
// target service (request arrival / response departure at the target
// port), response return — into one span per transaction, keyed by
// (port, src, tid, sequence number). The verification layer feeds a
// TxnTracer from MonitorListener taps plus one BFM-side issue hook; this
// header owns the span model, the per-port latency attribution, the
// order-independent merge, the dual-view delta join and the JSON / Chrome
// trace-event rendering. obs stays dependency-free: events arrive as plain
// integers and pre-decoded mnemonic strings, never as stbus types.
//
// Determinism contract mirrors the metrics registry and the profiler:
// every derived quantity is a pure function of the simulated traffic
// (cycle counts, never wall clock), merge() sums per-port stats by name
// and re-ranks the bounded top-K tables under a total order, so the
// campaign-level aggregate is byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace crve::obs {

// Sentinel for a lifecycle event that was never observed.
inline constexpr std::uint64_t kTxnNoCycle = ~std::uint64_t{0};

// One transaction's reconstructed lifecycle. `seq` counts issues per
// (port, src, tid) key, so Type2 streams (every transaction shares tid 0)
// still get unique keys; `label` is empty inside one run and carries
// "<test>:s<seed>:<view>" once spans from different jobs meet in a
// campaign-level table (the tie-breaker that keeps top-K ranking total).
struct TxnSpan {
  std::string port;       // initiator port, e.g. "init0"
  std::uint32_t src = 0;
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;
  std::string opc;        // opcode mnemonic at issue ("LD4", "ST8", ...)
  std::uint64_t add = 0;  // request address
  std::string label;

  // Lifecycle cycles (kTxnNoCycle until the event is observed).
  std::uint64_t issue = kTxnNoCycle;      // BFM generated the request
  std::uint64_t grant = kTxnNoCycle;      // first request cell granted
  std::uint64_t req_end = kTxnNoCycle;    // request eop granted
  std::uint64_t rsp_start = kTxnNoCycle;  // first response cell back
  std::uint64_t rsp_end = kTxnNoCycle;    // response eop (complete)
  // Target-side enrichment, best-effort (absent for decode errors).
  std::string target;                      // target port, e.g. "targ1"
  std::uint64_t target_req = kTxnNoCycle;  // request eop at the target
  std::uint64_t target_rsp = kTxnNoCycle;  // first response cell there
  bool ok = true;  // false: any non-OK response cell

  bool complete() const { return rsp_end != kTxnNoCycle; }
  // Per-hop latencies, 0 when either endpoint is missing.
  std::uint64_t queue_wait() const;  // issue -> grant (arbitration wait)
  std::uint64_t request() const;     // grant -> req_end (request transfer)
  std::uint64_t service() const;     // req_end -> rsp_start (target turn)
  std::uint64_t response() const;    // rsp_start -> rsp_end (return)
  std::uint64_t total() const;       // issue -> rsp_end
};

// Lifecycle stage of a span at a given cycle — the vocabulary triage uses
// to say what a transaction was doing when the views diverged.
// "queued" (issued, waiting for arbitration), "request" (cells on the
// request channel), "service" (inside the target), "response" (cells on
// the response channel), "done", or "pre-issue".
const char* txn_stage_at(const TxnSpan& s, std::uint64_t cycle);

// True when the span is in flight (issued, not yet complete) at `cycle`.
bool txn_in_flight_at(const TxnSpan& s, std::uint64_t cycle);

// Per-port stable aggregate. Histograms are log2-bucketed cycle counts in
// the registry's kHistBuckets layout.
struct TxnPortStats {
  std::string port;
  std::uint64_t spans = 0;             // completed transactions
  std::uint64_t incomplete = 0;        // still open at end of run
  std::uint64_t orphan_responses = 0;  // responses with no open span
  std::uint64_t max_in_flight = 0;
  HistogramValue queue_wait;
  HistogramValue request;
  HistogramValue service;
  HistogramValue response;
  HistogramValue total;
  // Max in-flight per kTxnWindowCycles window: (window index, max) pairs,
  // sorted, populated windows only, first kTxnMaxWindows of them with the
  // exact total kept (per-run detail; merge() drops the series, window
  // indices from different runs are not commensurable).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
  std::uint64_t window_count = 0;
};

inline constexpr std::uint64_t kTxnWindowCycles = 1024;
inline constexpr std::size_t kTxnMaxWindows = 256;
// Bound on every top-K table (slowest spans, worst deltas).
inline constexpr std::size_t kTxnTopK = 16;

struct TxnTraceData {
  std::uint64_t runs = 0;                // merged run count
  std::vector<TxnPortStats> ports;       // sorted by port
  std::vector<TxnSpan> slowest;          // top-K by total(), ties by key
  // Full span list of one run, (port, src, tid, seq) order — the payload
  // the dual-view delta join and the Chrome trace consume. Per-run detail:
  // merge() drops it so campaign aggregates stay bounded.
  std::vector<TxnSpan> spans;

  bool empty() const { return runs == 0; }
  std::uint64_t total_orphans() const;
  std::uint64_t total_spans() const;

  // Accumulates `other`: port stats summed by name (max for gauges),
  // top-K re-ranked and truncated. Selection under a total order makes the
  // result independent of merge order — the byte-identical-for-any-jobs
  // property. Window series and full span lists do not survive the merge.
  void merge(const TxnTraceData& other);
};

// One joined pair in the dual-view delta table.
struct TxnDelta {
  std::string port;
  std::uint32_t src = 0;
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;
  std::string opc;
  std::string label;            // "<test>:s<seed>" at campaign level
  std::uint64_t total_a = 0;    // view A (RTL) end-to-end latency
  std::uint64_t total_b = 0;    // view B (BCA)
  std::int64_t delta() const {
    return static_cast<std::int64_t>(total_b) -
           static_cast<std::int64_t>(total_a);
  }
  std::uint64_t abs_delta() const {
    const std::int64_t d = delta();
    return static_cast<std::uint64_t>(d < 0 ? -d : d);
  }
};

// Dual-view latency differential: spans joined by (port, src, tid, seq).
struct TxnDeltaStats {
  std::uint64_t matched = 0;
  std::uint64_t only_a = 0;  // completed on A, unmatched on B
  std::uint64_t only_b = 0;
  std::uint64_t negative = 0;  // B faster than A
  std::uint64_t zero = 0;
  std::uint64_t positive = 0;  // B slower than A
  HistogramValue abs_delta;    // |delta| in cycles, log2 buckets
  std::vector<TxnDelta> worst;  // top-K by |delta|, ties by key

  bool empty() const { return matched + only_a + only_b == 0; }
  void merge(const TxnDeltaStats& other);
};

// Joins the completed spans of two runs of the same (test, seed) — view A
// is conventionally RTL, view B BCA. `label` tags the worst-delta rows.
TxnDeltaStats txn_delta(const TxnTraceData& a, const TxnTraceData& b,
                        const std::string& label = "");

// Per-view transaction recorder. Single-threaded (one per testbench, like
// the monitors that feed it); all matching is deterministic FIFO order per
// (port, src, tid) key, which the STBus ordering rules make exact: a Type3
// tid is unique while outstanding, Type2 responses are strictly ordered.
class TxnTracer {
 public:
  // BFM-side hook: the request was generated (before arbitration).
  void on_issue(const std::string& port, std::uint32_t src, std::uint32_t tid,
                std::uint64_t cycle, const std::string& opc,
                std::uint64_t add);
  // Initiator-port monitor taps (packet completion callbacks).
  void on_request(const std::string& port, std::uint32_t src,
                  std::uint32_t tid, std::uint64_t start, std::uint64_t end);
  void on_response(const std::string& port, std::uint32_t src,
                   std::uint32_t tid, std::uint64_t start, std::uint64_t end,
                   bool ok);
  // Target-port monitor taps. `add` disambiguates pipelined same-key
  // requests; decode errors never reach a target, so their spans simply
  // keep no target events.
  void on_target_request(const std::string& target, std::uint32_t src,
                         std::uint32_t tid, std::uint64_t add,
                         std::uint64_t end);
  void on_target_response(const std::string& target, std::uint32_t src,
                          std::uint32_t tid, std::uint64_t start);

  std::uint64_t orphan_responses() const { return orphans_; }

  // Seals the run: aggregates every span (open ones count as incomplete)
  // into the stable data model. The tracer is spent afterwards.
  TxnTraceData finish();

 private:
  struct Key {
    std::string port;
    std::uint32_t src;
    std::uint32_t tid;
    bool operator<(const Key& o) const {
      if (port != o.port) return port < o.port;
      if (src != o.src) return src < o.src;
      return tid < o.tid;
    }
  };
  struct PortLive {
    std::uint64_t in_flight = 0;
    std::uint64_t max_in_flight = 0;
    std::map<std::uint64_t, std::uint64_t> window_max;
  };
  TxnSpan* oldest_open(const Key& k, bool need_req_done);
  void bump_in_flight(const std::string& port, std::uint64_t cycle,
                      std::int64_t delta);

  std::map<Key, std::deque<TxnSpan>> open_;  // oldest first per key
  std::map<Key, std::uint64_t> next_seq_;
  std::map<std::string, PortLive> live_;
  std::vector<TxnSpan> done_;  // completion order
  std::uint64_t orphans_ = 0;
};

// Pretty JSON of the stable sections, inner lines prefixed with `indent`:
//   {"runs": N, "ports": [...], "slowest": [...], "spans": [...]}
// Histograms use the registry's sparse [[lo, count], ...] form. The full
// span list is included only when with_spans is set (per-job artifacts);
// campaign summaries leave it out.
std::string txn_json(const TxnTraceData& td, bool with_spans = false,
                     const std::string& indent = "");

// Delta-join JSON ({"matched": ..., "abs_delta": {...}, "worst": [...]}).
std::string txn_delta_json(const TxnDeltaStats& d,
                           const std::string& indent = "");

// Chrome trace-event document for one run: one track (tid) per initiator
// port, a "X" complete event per transaction spanning issue -> complete,
// plus one child event per lifecycle hop. The timebase is simulation
// cycles mapped onto microseconds, not wall clock, so the document is
// deterministic; it deliberately does not share a timebase with the PR 3
// phase-span trace (wall-clock ns) — load them separately.
std::string txn_chrome_trace(const TxnTraceData& td);

}  // namespace crve::obs
