// Campaign metrics registry.
//
// A process-wide registry of named counters, max-gauges and fixed-bucket
// log2 histograms, updated from any thread through cheap handles. Updates
// land in per-thread sharded cells (no cross-thread contention on the hot
// path); reads merge the shards with order-independent operations (sum for
// counters/histograms, max for gauges), so the merged values are identical
// for any worker count as long as the *work* performed is identical — the
// property the parallel regression engine already guarantees.
//
// Cost model:
//   * collection disabled (the default): every update is one relaxed
//     atomic load and a branch — near-zero, safe to leave in hot paths;
//   * collection enabled: one thread-local lookup and a plain add into the
//     calling thread's private cell.
//
// Metrics are classified at registration:
//   * kStable — a pure function of the work done (cycles simulated, bytes
//     written, cells extracted). Independent of RunPlan::jobs; included in
//     the deterministic JSON view that reports embed.
//   * kTiming — wall-clock derived (queue waits, busy times). Varies run
//     to run and with the worker count; only in the full JSON view.
//
// Merging is only race-free when the instrumented threads are quiescent
// (e.g. after ThreadPool::wait() / join), which is when every caller in
// this codebase reads: campaign end, test assertions, --metrics-out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crve::obs {

// Process-wide collection switch (off by default).
bool metrics_enabled();
void set_metrics_enabled(bool on);

enum class MetricClass {
  kStable,  // deterministic: pure function of the work performed
  kTiming,  // wall-clock derived: excluded from the deterministic view
};

class Counter;
class Gauge;
class Histogram;

// Find-or-create by name (thread-safe). The class is fixed by the first
// registration; handles stay valid for the process lifetime (reset() zeroes
// values but never removes descriptors).
Counter counter(const std::string& name,
                MetricClass cls = MetricClass::kStable);
Gauge gauge(const std::string& name, MetricClass cls = MetricClass::kStable);
Histogram histogram(const std::string& name,
                    MetricClass cls = MetricClass::kStable);

// log2 bucketing: bucket 0 holds value 0, bucket k>=1 holds values in
// [2^(k-1), 2^k). 65 buckets cover the full uint64 range.
inline constexpr int kHistBuckets = 65;

// Cheap copyable handles; obtain via counter()/gauge()/histogram() below.
// All operations are no-ops while collection is disabled.
class Counter {
 public:
  void add(std::uint64_t n) const;
  void inc() const { add(1); }

 private:
  friend Counter counter(const std::string& name, MetricClass cls);
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
};

// Gauge with running-max merge semantics (max is order-independent, so the
// merged value stays jobs-invariant for kStable gauges).
class Gauge {
 public:
  void observe_max(std::uint64_t v) const;

 private:
  friend Gauge gauge(const std::string& name, MetricClass cls);
  explicit Gauge(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
};

class Histogram {
 public:
  void observe(std::uint64_t v) const;

 private:
  friend Histogram histogram(const std::string& name, MetricClass cls);
  explicit Histogram(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
};

struct HistogramValue {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kHistBuckets] = {};
};

class Registry {
 public:
  struct Snapshot {
    // Each vector sorted by metric name.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::uint64_t>> gauges;
    std::vector<std::pair<std::string, HistogramValue>> histograms;
  };

  // Merged view across every thread that ever updated a metric (live
  // per-thread cells plus cells folded in at thread exit). Quiescent-read
  // only — see the file comment.
  Snapshot snapshot(bool include_timing = true) const;

  // Pretty JSON ({"counters": {...}, "gauges": {...}, "histograms": {...}}).
  // Lines after the first are prefixed with `indent`, so the object can be
  // embedded in an enclosing document. include_timing=false restricts the
  // output to kStable metrics — byte-identical for any worker count.
  std::string json(bool include_timing = true,
                   const std::string& indent = "") const;

  // Zeroes every metric value (live and retired cells). Descriptors and
  // outstanding handles stay valid. Quiescent-call only.
  void reset();

 private:
  friend Registry& registry();
  Registry() = default;
};

// The process-wide registry.
Registry& registry();

// Monotonic nanosecond clock shared by metrics and trace instrumentation.
std::uint64_t now_ns();

}  // namespace crve::obs
