// Phase-span tracing.
//
// Scoped CRVE_SPAN guards record complete ("ph":"X") Chrome trace events
// into per-thread buffers; trace_end() drains every buffer and writes one
// JSON document loadable in Perfetto or chrome://tracing. Spans are meant
// for campaign-grained phases (a regression job, its build/sim/compare
// sub-phases), not per-cycle events, so the per-span mutex never contends
// in practice.
//
// Cost model: while no session is active (the default) a SpanGuard is one
// relaxed atomic load at construction and a branch at destruction. While a
// session is active each closed span takes two clock reads plus one locked
// append into the calling thread's own buffer.
//
// Sessions are generation-stamped: a span opened in one session that
// closes after trace_end() is dropped, never misfiled into a later
// session.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace crve::obs {

bool tracing_enabled();

// Starts a new session: clears previously drained spans, records the time
// origin, enables capture.
void trace_begin();

// Disables capture, drains every thread's span buffer and writes the
// session as {"traceEvents": [...]} to `os` / `path` (throws on a file
// that cannot be opened). Safe to call without an active session (writes
// an empty event list).
void trace_end(std::ostream& os);
void trace_end_file(const std::string& path);

// Scoped span covering its enclosing block. `name` should be a short
// static phase label ("job", "sim", "align") — Perfetto aggregates by
// name; per-instance identity goes into the detail argument.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  SpanGuard(const char* name, std::string detail);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  // Attach/replace the detail string after construction. Callers with an
  // expensive-to-build detail should gate on tracing_enabled() first.
  void set_detail(std::string detail);

 private:
  const char* name_;
  std::string detail_;
  std::uint64_t t0_ns_ = 0;
  std::uint32_t gen_ = 0;
  bool active_ = false;
};

#define CRVE_SPAN_CAT2(a, b) a##b
#define CRVE_SPAN_CAT(a, b) CRVE_SPAN_CAT2(a, b)
// CRVE_SPAN("phase") or CRVE_SPAN("phase", detail_string).
#define CRVE_SPAN(...) \
  ::crve::obs::SpanGuard CRVE_SPAN_CAT(crve_span_, __LINE__){__VA_ARGS__}

}  // namespace crve::obs
