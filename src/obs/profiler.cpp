#include "obs/profiler.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <sstream>

namespace crve::obs {

namespace {

// Process and signal names are code-controlled identifiers; escape
// defensively anyway (obs stays below common/ in the link order, so this
// mirrors metrics.cpp's local helper instead of using common/json.h).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Shortest round-trip decimal form (locale-independent), matching the
// formatting rule every JSON artifact in the tree follows.
std::string number(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::uint64_t ProfileData::total_wall_ns() const {
  std::uint64_t total = 0;
  for (const auto& p : procs) total += p.wall_ns;
  return total;
}

void ProfileData::merge(const ProfileData& other) {
  runs += other.runs;
  cycles += other.cycles;

  std::map<std::string, ProcProfile> by_name;
  for (auto& p : procs) by_name.emplace(p.name, std::move(p));
  for (const auto& p : other.procs) {
    auto [it, inserted] = by_name.emplace(p.name, p);
    if (!inserted) {
      ProcProfile& dst = it->second;
      dst.evals += p.evals;
      dst.skips += p.skips;
      dst.wall_ns += p.wall_ns;
      // Rank is a property of the process's position in its config's
      // schedule; across configs the same name may land on different
      // ranks, where the smallest is kept to stay order-independent.
      dst.rank = std::min(dst.rank, p.rank);
    }
  }
  procs.clear();
  for (auto& [name, p] : by_name) procs.push_back(std::move(p));

  std::map<int, RankProfile> by_rank;
  for (const auto& r : ranks) by_rank.emplace(r.rank, r);
  for (const auto& r : other.ranks) {
    auto [it, inserted] = by_rank.emplace(r.rank, r);
    if (!inserted) {
      it->second.processes += r.processes;
      it->second.evals += r.evals;
      it->second.skips += r.skips;
    }
  }
  ranks.clear();
  for (auto& [rank, r] : by_rank) ranks.push_back(r);

  std::map<std::string, SignalProfile> by_sig;
  for (auto& s : signals) by_sig.emplace(s.name, std::move(s));
  for (const auto& s : other.signals) {
    auto [it, inserted] = by_sig.emplace(s.name, s);
    if (!inserted) {
      it->second.commits += s.commits;
      it->second.reader_marks += s.reader_marks;
    }
  }
  signals.clear();
  for (auto& [name, s] : by_sig) signals.push_back(std::move(s));
}

double skip_rate(const ProcProfile& p) {
  const std::uint64_t scheduled = p.evals + p.skips;
  return scheduled == 0 ? 0.0
                        : static_cast<double>(p.skips) /
                              static_cast<double>(scheduled);
}

std::vector<ProcProfile> top_hotspots(const ProfileData& pd, std::size_t n) {
  std::vector<ProcProfile> rows;
  for (const auto& p : pd.procs) {
    if (p.wall_ns > 0) rows.push_back(p);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProcProfile& a, const ProcProfile& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              return a.name < b.name;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

namespace {

const char* kind_str(const ProcProfile& p) {
  return p.clocked ? "clocked" : "comb";
}

void write_proc_row(std::ostream& os, const ProcProfile& p,
                    bool with_timing) {
  os << "{\"name\": \"" << escape(p.name) << "\", \"kind\": \""
     << kind_str(p) << "\", \"rank\": " << p.rank
     << ", \"evals\": " << p.evals << ", \"skips\": " << p.skips
     << ", \"skip_rate\": " << number(skip_rate(p));
  if (with_timing) os << ", \"wall_ns\": " << p.wall_ns;
  os << "}";
}

}  // namespace

std::string profile_json(const ProfileData& pd, bool with_timing,
                         const std::string& indent) {
  std::ostringstream os;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  os << "{\n" << in1 << "\"stable\": {\n";
  os << in2 << "\"runs\": " << pd.runs << ",\n";
  os << in2 << "\"cycles\": " << pd.cycles << ",\n";
  os << in2 << "\"processes\": [";
  for (std::size_t i = 0; i < pd.procs.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in3;
    write_proc_row(os, pd.procs[i], /*with_timing=*/false);
  }
  os << (pd.procs.empty() ? "" : "\n" + in2) << "],\n";
  os << in2 << "\"ranks\": [";
  for (std::size_t i = 0; i < pd.ranks.size(); ++i) {
    const RankProfile& r = pd.ranks[i];
    const std::uint64_t scheduled = r.evals + r.skips;
    const double occupancy =
        scheduled == 0 ? 0.0
                       : static_cast<double>(r.evals) /
                             static_cast<double>(scheduled);
    os << (i == 0 ? "\n" : ",\n") << in3 << "{\"rank\": " << r.rank
       << ", \"processes\": " << r.processes << ", \"evals\": " << r.evals
       << ", \"skips\": " << r.skips
       << ", \"occupancy\": " << number(occupancy) << "}";
  }
  os << (pd.ranks.empty() ? "" : "\n" + in2) << "],\n";
  os << in2 << "\"signals\": [";
  for (std::size_t i = 0; i < pd.signals.size(); ++i) {
    const SignalProfile& s = pd.signals[i];
    os << (i == 0 ? "\n" : ",\n") << in3 << "{\"name\": \""
       << escape(s.name) << "\", \"commits\": " << s.commits
       << ", \"reader_marks\": " << s.reader_marks << "}";
  }
  os << (pd.signals.empty() ? "" : "\n" + in2) << "]\n";
  os << in1 << "}";
  if (with_timing) {
    const std::uint64_t total = pd.total_wall_ns();
    os << ",\n" << in1 << "\"timing\": {\n";
    os << in2 << "\"total_wall_ns\": " << total << ",\n";
    os << in2 << "\"hotspots\": [";
    const auto hot = top_hotspots(pd, 20);
    for (std::size_t i = 0; i < hot.size(); ++i) {
      const ProcProfile& p = hot[i];
      const double share =
          total == 0 ? 0.0
                     : static_cast<double>(p.wall_ns) /
                           static_cast<double>(total);
      os << (i == 0 ? "\n" : ",\n") << in3 << "{\"name\": \""
         << escape(p.name) << "\", \"kind\": \"" << kind_str(p)
         << "\", \"wall_ns\": " << p.wall_ns
         << ", \"share\": " << number(share)
         << ", \"evals\": " << p.evals << "}";
    }
    os << (hot.empty() ? "" : "\n" + in2) << "]\n";
    os << in1 << "}";
  }
  os << "\n" << indent << "}";
  return os.str();
}

}  // namespace crve::obs
