#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"  // now_ns()

namespace crve::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint32_t> g_generation{0};

struct Event {
  std::string name;
  std::string detail;
  std::uint64_t ts_ns = 0;   // absolute (now_ns clock)
  std::uint64_t dur_ns = 0;
  int tid = 0;
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

// Session state. Leaked for the same destruction-order reason as the
// metrics registry: thread_local buffers unregister themselves at thread
// exit, which can outlive function-local statics.
struct TraceState {
  std::mutex mu;
  std::vector<ThreadBuf*> live;
  std::vector<Event> drained;  // events of exited threads + past sessions
  std::uint64_t t0_ns = 0;
  int next_tid = 0;
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

struct TlsBuf {
  ThreadBuf buf;
  TlsBuf() {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buf.tid = s.next_tid++;
    s.live.push_back(&buf);
  }
  ~TlsBuf() {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::lock_guard<std::mutex> block(buf.mu);
    s.drained.insert(s.drained.end(),
                     std::make_move_iterator(buf.events.begin()),
                     std::make_move_iterator(buf.events.end()));
    buf.events.clear();
    s.live.erase(std::find(s.live.begin(), s.live.end(), &buf));
  }
};

ThreadBuf& tls_buf() {
  thread_local TlsBuf t;
  return t.buf;
}

// Writes one JSON string with minimal escaping (span names and details are
// code-controlled, but config/test names may carry anything).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Microseconds with sub-ns-resolution fraction, the unit Chrome expects.
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

}  // namespace

bool tracing_enabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

void trace_begin() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.drained.clear();
  for (ThreadBuf* b : s.live) {
    std::lock_guard<std::mutex> block(b->mu);
    b->events.clear();
  }
  s.t0_ns = now_ns();
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_tracing.store(true, std::memory_order_relaxed);
}

void trace_end(std::ostream& os) {
  g_tracing.store(false, std::memory_order_relaxed);
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Event> events = std::move(s.drained);
  s.drained.clear();
  for (ThreadBuf* b : s.live) {
    std::lock_guard<std::mutex> block(b->mu);
    events.insert(events.end(), std::make_move_iterator(b->events.begin()),
                  std::make_move_iterator(b->events.end()));
    b->events.clear();
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
  });

  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"name\": ";
    write_escaped(os, e.name);
    os << ", \"cat\": \"crve\", \"ph\": \"X\", \"ts\": ";
    write_us(os, e.ts_ns - s.t0_ns);
    os << ", \"dur\": ";
    write_us(os, e.dur_ns);
    os << ", \"pid\": 0, \"tid\": " << e.tid;
    if (!e.detail.empty()) {
      os << ", \"args\": {\"detail\": ";
      write_escaped(os, e.detail);
      os << "}";
    }
    os << "}";
  }
  os << (events.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

void trace_end_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs::trace_end_file: cannot open " + path);
  trace_end(os);
}

SpanGuard::SpanGuard(const char* name) : name_(name) {
  if (!tracing_enabled()) return;
  active_ = true;
  gen_ = g_generation.load(std::memory_order_relaxed);
  t0_ns_ = now_ns();
}

SpanGuard::SpanGuard(const char* name, std::string detail) : SpanGuard(name) {
  if (active_) detail_ = std::move(detail);
}

void SpanGuard::set_detail(std::string detail) {
  if (active_) detail_ = std::move(detail);
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  // Drop spans that outlived their session (trace_end ran mid-span).
  if (!tracing_enabled() ||
      gen_ != g_generation.load(std::memory_order_relaxed)) {
    return;
  }
  const std::uint64_t t1 = now_ns();
  ThreadBuf& buf = tls_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(
      {name_, std::move(detail_), t0_ns_, t1 - t0_ns_, buf.tid});
}

}  // namespace crve::obs
