#include "obs/txn_trace.h"

#include <algorithm>
#include <sstream>

namespace crve::obs {

namespace {

// Same bucketing as the metrics registry: bucket 0 holds value 0, bucket
// k>=1 holds [2^(k-1), 2^k).
int bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  int b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;
}

void hist_observe(HistogramValue& h, std::uint64_t v) {
  ++h.count;
  h.sum += v;
  ++h.buckets[bucket_of(v)];
}

void hist_merge(HistogramValue& into, const HistogramValue& from) {
  into.count += from.count;
  into.sum += from.sum;
  for (int b = 0; b < kHistBuckets; ++b) into.buckets[b] += from.buckets[b];
}

// Total order on spans for the slowest table: latency first, then the full
// key so ties rank identically no matter which job produced them.
bool slower(const TxnSpan& a, const TxnSpan& b) {
  if (a.total() != b.total()) return a.total() > b.total();
  if (a.label != b.label) return a.label < b.label;
  if (a.port != b.port) return a.port < b.port;
  if (a.src != b.src) return a.src < b.src;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.seq < b.seq;
}

bool worse_delta(const TxnDelta& a, const TxnDelta& b) {
  if (a.abs_delta() != b.abs_delta()) return a.abs_delta() > b.abs_delta();
  if (a.label != b.label) return a.label < b.label;
  if (a.port != b.port) return a.port < b.port;
  if (a.src != b.src) return a.src < b.src;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.seq < b.seq;
}

// Key order for the per-run span list and the delta join.
bool key_less(const TxnSpan& a, const TxnSpan& b) {
  if (a.port != b.port) return a.port < b.port;
  if (a.src != b.src) return a.src < b.src;
  if (a.tid != b.tid) return a.tid < b.tid;
  return a.seq < b.seq;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void render_hist(std::ostream& os, const HistogramValue& h) {
  os << "{\"count\": " << h.count << ", \"sum\": " << h.sum
     << ", \"buckets\": [";
  bool first = true;
  for (int b = 0; b < kHistBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    os << (first ? "" : ", ") << "[" << lo << ", " << h.buckets[b] << "]";
    first = false;
  }
  os << "]}";
}

void render_cycle(std::ostream& os, const char* key, std::uint64_t c) {
  os << ", \"" << key << "\": ";
  if (c == kTxnNoCycle) {
    os << "null";
  } else {
    os << c;
  }
}

void render_span(std::ostream& os, const TxnSpan& s) {
  os << "{\"port\": \"" << json_escape(s.port) << "\", \"src\": " << s.src
     << ", \"tid\": " << s.tid << ", \"seq\": " << s.seq << ", \"opc\": \""
     << json_escape(s.opc) << "\"";
  if (!s.label.empty()) os << ", \"label\": \"" << json_escape(s.label) << "\"";
  render_cycle(os, "issue", s.issue);
  render_cycle(os, "grant", s.grant);
  render_cycle(os, "req_end", s.req_end);
  render_cycle(os, "rsp_start", s.rsp_start);
  render_cycle(os, "rsp_end", s.rsp_end);
  if (!s.target.empty()) {
    os << ", \"target\": \"" << json_escape(s.target) << "\"";
    render_cycle(os, "target_req", s.target_req);
    render_cycle(os, "target_rsp", s.target_rsp);
  }
  if (s.complete()) {
    os << ", \"total\": " << s.total() << ", \"queue_wait\": "
       << s.queue_wait() << ", \"request\": " << s.request()
       << ", \"service\": " << s.service() << ", \"response\": "
       << s.response();
  }
  os << ", \"ok\": " << (s.ok ? "true" : "false") << "}";
}

}  // namespace

std::uint64_t TxnSpan::queue_wait() const {
  return issue == kTxnNoCycle || grant == kTxnNoCycle ? 0 : grant - issue;
}
std::uint64_t TxnSpan::request() const {
  return grant == kTxnNoCycle || req_end == kTxnNoCycle ? 0 : req_end - grant;
}
std::uint64_t TxnSpan::service() const {
  return req_end == kTxnNoCycle || rsp_start == kTxnNoCycle
             ? 0
             : rsp_start - req_end;
}
std::uint64_t TxnSpan::response() const {
  return rsp_start == kTxnNoCycle || rsp_end == kTxnNoCycle
             ? 0
             : rsp_end - rsp_start;
}
std::uint64_t TxnSpan::total() const {
  return issue == kTxnNoCycle || rsp_end == kTxnNoCycle ? 0 : rsp_end - issue;
}

const char* txn_stage_at(const TxnSpan& s, std::uint64_t cycle) {
  if (s.issue == kTxnNoCycle || cycle < s.issue) return "pre-issue";
  if (s.grant == kTxnNoCycle || cycle < s.grant) return "queued";
  if (s.req_end == kTxnNoCycle || cycle <= s.req_end) return "request";
  if (s.rsp_start == kTxnNoCycle || cycle < s.rsp_start) return "service";
  if (s.rsp_end == kTxnNoCycle || cycle <= s.rsp_end) return "response";
  return "done";
}

bool txn_in_flight_at(const TxnSpan& s, std::uint64_t cycle) {
  if (s.issue == kTxnNoCycle || cycle < s.issue) return false;
  return s.rsp_end == kTxnNoCycle || cycle <= s.rsp_end;
}

std::uint64_t TxnTraceData::total_orphans() const {
  std::uint64_t n = 0;
  for (const auto& p : ports) n += p.orphan_responses;
  return n;
}

std::uint64_t TxnTraceData::total_spans() const {
  std::uint64_t n = 0;
  for (const auto& p : ports) n += p.spans;
  return n;
}

void TxnTraceData::merge(const TxnTraceData& other) {
  runs += other.runs;
  for (const auto& op : other.ports) {
    auto it = std::find_if(ports.begin(), ports.end(), [&](const auto& p) {
      return p.port == op.port;
    });
    if (it == ports.end()) {
      ports.push_back(op);
      it = ports.end() - 1;
    } else {
      it->spans += op.spans;
      it->incomplete += op.incomplete;
      it->orphan_responses += op.orphan_responses;
      it->max_in_flight = std::max(it->max_in_flight, op.max_in_flight);
      hist_merge(it->queue_wait, op.queue_wait);
      hist_merge(it->request, op.request);
      hist_merge(it->service, op.service);
      hist_merge(it->response, op.response);
      hist_merge(it->total, op.total);
    }
  }
  // Window indices of different runs are not commensurable; every port of
  // a merged aggregate drops the series (not just the ones `other` touched,
  // or the result would depend on merge order).
  for (auto& p : ports) {
    p.windows.clear();
    p.window_count = 0;
  }
  std::sort(ports.begin(), ports.end(),
            [](const auto& a, const auto& b) { return a.port < b.port; });
  slowest.insert(slowest.end(), other.slowest.begin(), other.slowest.end());
  std::sort(slowest.begin(), slowest.end(), slower);
  if (slowest.size() > kTxnTopK) slowest.resize(kTxnTopK);
  spans.clear();  // per-run payload; a merged aggregate stays bounded
}

void TxnDeltaStats::merge(const TxnDeltaStats& other) {
  matched += other.matched;
  only_a += other.only_a;
  only_b += other.only_b;
  negative += other.negative;
  zero += other.zero;
  positive += other.positive;
  hist_merge(abs_delta, other.abs_delta);
  worst.insert(worst.end(), other.worst.begin(), other.worst.end());
  std::sort(worst.begin(), worst.end(), worse_delta);
  if (worst.size() > kTxnTopK) worst.resize(kTxnTopK);
}

TxnDeltaStats txn_delta(const TxnTraceData& a, const TxnTraceData& b,
                        const std::string& label) {
  TxnDeltaStats d;
  // Both span lists are (port, src, tid, seq)-sorted, so the join is one
  // linear merge. Incomplete spans never match (their total is undefined).
  std::size_t i = 0;
  std::size_t j = 0;
  auto skip_incomplete = [](const std::vector<TxnSpan>& v, std::size_t& k) {
    while (k < v.size() && !v[k].complete()) ++k;
  };
  std::vector<TxnDelta> all;
  while (true) {
    skip_incomplete(a.spans, i);
    skip_incomplete(b.spans, j);
    if (i >= a.spans.size() && j >= b.spans.size()) break;
    if (j >= b.spans.size() ||
        (i < a.spans.size() && key_less(a.spans[i], b.spans[j]))) {
      ++d.only_a;
      ++i;
      continue;
    }
    if (i >= a.spans.size() || key_less(b.spans[j], a.spans[i])) {
      ++d.only_b;
      ++j;
      continue;
    }
    const TxnSpan& sa = a.spans[i];
    const TxnSpan& sb = b.spans[j];
    TxnDelta td;
    td.port = sa.port;
    td.src = sa.src;
    td.tid = sa.tid;
    td.seq = sa.seq;
    td.opc = sa.opc;
    td.label = label;
    td.total_a = sa.total();
    td.total_b = sb.total();
    ++d.matched;
    if (td.delta() < 0) {
      ++d.negative;
    } else if (td.delta() == 0) {
      ++d.zero;
    } else {
      ++d.positive;
    }
    hist_observe(d.abs_delta, td.abs_delta());
    all.push_back(std::move(td));
    ++i;
    ++j;
  }
  std::sort(all.begin(), all.end(), worse_delta);
  if (all.size() > kTxnTopK) all.resize(kTxnTopK);
  d.worst = std::move(all);
  return d;
}

TxnSpan* TxnTracer::oldest_open(const Key& k, bool need_req_done) {
  const auto it = open_.find(k);
  if (it == open_.end()) return nullptr;
  for (TxnSpan& s : it->second) {
    if (need_req_done) {
      if (s.req_end != kTxnNoCycle) return &s;
    } else if (s.grant == kTxnNoCycle) {
      return &s;
    }
  }
  return nullptr;
}

void TxnTracer::bump_in_flight(const std::string& port, std::uint64_t cycle,
                               std::int64_t delta) {
  PortLive& pl = live_[port];
  pl.in_flight = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(pl.in_flight) + delta);
  pl.max_in_flight = std::max(pl.max_in_flight, pl.in_flight);
  const std::uint64_t w = cycle / kTxnWindowCycles;
  std::uint64_t& wm = pl.window_max[w];
  wm = std::max(wm, pl.in_flight);
}

void TxnTracer::on_issue(const std::string& port, std::uint32_t src,
                         std::uint32_t tid, std::uint64_t cycle,
                         const std::string& opc, std::uint64_t add) {
  const Key k{port, src, tid};
  TxnSpan s;
  s.port = port;
  s.src = src;
  s.tid = tid;
  s.seq = next_seq_[k]++;
  s.opc = opc;
  s.add = add;
  s.issue = cycle;
  open_[k].push_back(std::move(s));
  bump_in_flight(port, cycle, +1);
}

void TxnTracer::on_request(const std::string& port, std::uint32_t src,
                           std::uint32_t tid, std::uint64_t start,
                           std::uint64_t end) {
  TxnSpan* s = oldest_open({port, src, tid}, /*need_req_done=*/false);
  if (s == nullptr) return;  // no BFM hook installed for this port
  s->grant = start;
  s->req_end = end;
}

void TxnTracer::on_response(const std::string& port, std::uint32_t src,
                            std::uint32_t tid, std::uint64_t start,
                            std::uint64_t end, bool ok) {
  const Key k{port, src, tid};
  TxnSpan* s = oldest_open(k, /*need_req_done=*/true);
  if (s == nullptr) {
    // A response with no outstanding request: a DUT defect (or a tap on a
    // port without the issue hook). Counted loudly, never dropped silently.
    ++orphans_;
    if (metrics_enabled()) counter("txn.orphan_response").inc();
    return;
  }
  s->rsp_start = start;
  s->rsp_end = end;
  s->ok = s->ok && ok;
  bump_in_flight(port, end, -1);
  auto& q = open_[k];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (&*it == s) {
      done_.push_back(std::move(*it));
      q.erase(it);
      break;
    }
  }
}

void TxnTracer::on_target_request(const std::string& target, std::uint32_t src,
                                  std::uint32_t tid, std::uint64_t add,
                                  std::uint64_t end) {
  // Initiator-port keys carry the port name, but src alone identifies the
  // initiator, so scan the (few) open queues for that (src, tid). The
  // oldest span without a target request whose address matches is the one
  // arriving; address disambiguates pipelined same-key streams.
  for (auto& [key, q] : open_) {
    if (key.src != src || key.tid != tid) continue;
    for (TxnSpan& s : q) {
      if (s.target_req == kTxnNoCycle && s.add == add) {
        s.target = target;
        s.target_req = end;
        return;
      }
    }
  }
}

void TxnTracer::on_target_response(const std::string& target,
                                   std::uint32_t src, std::uint32_t tid,
                                   std::uint64_t start) {
  for (auto& [key, q] : open_) {
    if (key.src != src || key.tid != tid) continue;
    for (TxnSpan& s : q) {
      if (s.target == target && s.target_req != kTxnNoCycle &&
          s.target_rsp == kTxnNoCycle) {
        s.target_rsp = start;
        return;
      }
    }
  }
}

TxnTraceData TxnTracer::finish() {
  TxnTraceData td;
  td.runs = 1;
  std::map<std::string, TxnPortStats> ports;
  for (TxnSpan& s : done_) {
    TxnPortStats& ps = ports[s.port];
    ++ps.spans;
    hist_observe(ps.queue_wait, s.queue_wait());
    hist_observe(ps.request, s.request());
    hist_observe(ps.service, s.service());
    hist_observe(ps.response, s.response());
    hist_observe(ps.total, s.total());
    td.spans.push_back(std::move(s));
  }
  for (auto& [key, q] : open_) {
    for (TxnSpan& s : q) {
      ++ports[s.port].incomplete;
      td.spans.push_back(std::move(s));
    }
  }
  for (auto& [port, pl] : live_) {
    TxnPortStats& ps = ports[port];
    ps.max_in_flight = pl.max_in_flight;
    ps.window_count = pl.window_max.size();
    for (const auto& [w, m] : pl.window_max) {
      if (ps.windows.size() >= kTxnMaxWindows) break;
      ps.windows.push_back({w, m});
    }
  }
  // Orphans land on no particular port queue; attribute them to a
  // dedicated pseudo-port so the count survives the per-port merge.
  if (orphans_ > 0) ports["(unmatched)"].orphan_responses = orphans_;
  for (auto& [name, ps] : ports) {
    ps.port = name;
    td.ports.push_back(std::move(ps));
  }
  std::sort(td.spans.begin(), td.spans.end(), key_less);
  std::vector<TxnSpan> ranked;
  for (const TxnSpan& s : td.spans) {
    if (s.complete()) ranked.push_back(s);
  }
  std::sort(ranked.begin(), ranked.end(), slower);
  if (ranked.size() > kTxnTopK) ranked.resize(kTxnTopK);
  td.slowest = std::move(ranked);
  open_.clear();
  done_.clear();
  live_.clear();
  return td;
}

std::string txn_json(const TxnTraceData& td, bool with_spans,
                     const std::string& indent) {
  std::ostringstream os;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  os << "{\n";
  os << in1 << "\"runs\": " << td.runs << ",\n";
  os << in1 << "\"spans\": " << td.total_spans() << ",\n";
  os << in1 << "\"orphan_responses\": " << td.total_orphans() << ",\n";
  os << in1 << "\"ports\": [";
  for (std::size_t i = 0; i < td.ports.size(); ++i) {
    const TxnPortStats& p = td.ports[i];
    os << (i == 0 ? "\n" : ",\n") << in2 << "{\"port\": \""
       << json_escape(p.port) << "\", \"spans\": " << p.spans
       << ", \"incomplete\": " << p.incomplete << ", \"orphan_responses\": "
       << p.orphan_responses << ", \"max_in_flight\": " << p.max_in_flight
       << ",\n";
    os << in2 << " \"queue_wait\": ";
    render_hist(os, p.queue_wait);
    os << ",\n" << in2 << " \"request\": ";
    render_hist(os, p.request);
    os << ",\n" << in2 << " \"service\": ";
    render_hist(os, p.service);
    os << ",\n" << in2 << " \"response\": ";
    render_hist(os, p.response);
    os << ",\n" << in2 << " \"total\": ";
    render_hist(os, p.total);
    if (!p.windows.empty()) {
      os << ",\n" << in2 << " \"window_cycles\": " << kTxnWindowCycles
         << ", \"window_count\": " << p.window_count
         << ", \"in_flight_windows\": [";
      for (std::size_t w = 0; w < p.windows.size(); ++w) {
        os << (w == 0 ? "" : ", ") << "[" << p.windows[w].first << ", "
           << p.windows[w].second << "]";
      }
      os << "]";
    }
    os << "}";
  }
  os << (td.ports.empty() ? "]" : "\n" + in1 + "]") << ",\n";
  os << in1 << "\"slowest\": [";
  for (std::size_t i = 0; i < td.slowest.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in2;
    render_span(os, td.slowest[i]);
  }
  os << (td.slowest.empty() ? "]" : "\n" + in1 + "]");
  if (with_spans) {
    os << ",\n" << in1 << "\"span_list\": [";
    for (std::size_t i = 0; i < td.spans.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << in2;
      render_span(os, td.spans[i]);
    }
    os << (td.spans.empty() ? "]" : "\n" + in1 + "]");
  }
  os << "\n" << indent << "}";
  return os.str();
}

std::string txn_delta_json(const TxnDeltaStats& d, const std::string& indent) {
  std::ostringstream os;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  os << "{\n";
  os << in1 << "\"matched\": " << d.matched << ",\n";
  os << in1 << "\"only_a\": " << d.only_a << ",\n";
  os << in1 << "\"only_b\": " << d.only_b << ",\n";
  os << in1 << "\"negative\": " << d.negative << ",\n";
  os << in1 << "\"zero\": " << d.zero << ",\n";
  os << in1 << "\"positive\": " << d.positive << ",\n";
  os << in1 << "\"abs_delta\": ";
  render_hist(os, d.abs_delta);
  os << ",\n" << in1 << "\"worst\": [";
  for (std::size_t i = 0; i < d.worst.size(); ++i) {
    const TxnDelta& w = d.worst[i];
    os << (i == 0 ? "\n" : ",\n") << in2 << "{\"port\": \""
       << json_escape(w.port) << "\", \"src\": " << w.src << ", \"tid\": "
       << w.tid << ", \"seq\": " << w.seq << ", \"opc\": \""
       << json_escape(w.opc) << "\"";
    if (!w.label.empty()) {
      os << ", \"label\": \"" << json_escape(w.label) << "\"";
    }
    os << ", \"total_a\": " << w.total_a << ", \"total_b\": " << w.total_b
       << ", \"delta\": " << w.delta() << "}";
  }
  os << (d.worst.empty() ? "]" : "\n" + in1 + "]");
  os << "\n" << indent << "}";
  return os.str();
}

std::string txn_chrome_trace(const TxnTraceData& td) {
  std::ostringstream os;
  // Track ids: sorted initiator-port order, stable across runs.
  std::vector<std::string> tracks;
  for (const TxnSpan& s : td.spans) {
    if (std::find(tracks.begin(), tracks.end(), s.port) == tracks.end()) {
      tracks.push_back(s.port);
    }
  }
  std::sort(tracks.begin(), tracks.end());
  auto track_of = [&](const std::string& port) {
    return static_cast<int>(std::find(tracks.begin(), tracks.end(), port) -
                            tracks.begin());
  };
  os << "{\"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    os << (first ? "\n" : ",\n") << "  " << ev;
    first = false;
  };
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    emit("{\"ph\": \"M\", \"pid\": 0, \"tid\": " + std::to_string(i) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         json_escape(tracks[i]) + "\"}}");
  }
  auto x_event = [&](const std::string& name, int tid, std::uint64_t ts,
                     std::uint64_t dur, const std::string& args) {
    emit("{\"ph\": \"X\", \"pid\": 0, \"tid\": " + std::to_string(tid) +
         ", \"name\": \"" + json_escape(name) + "\", \"cat\": \"txn\", " +
         "\"ts\": " + std::to_string(ts) + ", \"dur\": " +
         std::to_string(dur == 0 ? 1 : dur) + args + "}");
  };
  for (const TxnSpan& s : td.spans) {
    if (!s.complete()) continue;
    const int tid = track_of(s.port);
    const std::string name = s.opc + " src" + std::to_string(s.src) + " tid" +
                             std::to_string(s.tid) + " #" +
                             std::to_string(s.seq);
    std::string args = ", \"args\": {\"queue_wait\": " +
                       std::to_string(s.queue_wait()) + ", \"request\": " +
                       std::to_string(s.request()) + ", \"service\": " +
                       std::to_string(s.service()) + ", \"response\": " +
                       std::to_string(s.response());
    if (!s.target.empty()) {
      args += ", \"target\": \"" + json_escape(s.target) + "\"";
    }
    args += ", \"ok\": " + std::string(s.ok ? "true" : "false") + "}";
    x_event(name, tid, s.issue, s.total(), args);
    // Hop sub-events nest under the transaction on the same track.
    if (s.grant != kTxnNoCycle && s.grant > s.issue) {
      x_event("queue", tid, s.issue, s.queue_wait(), "");
    }
    if (s.grant != kTxnNoCycle && s.req_end != kTxnNoCycle) {
      x_event("request", tid, s.grant, s.request(), "");
    }
    if (s.req_end != kTxnNoCycle && s.rsp_start != kTxnNoCycle &&
        s.rsp_start > s.req_end) {
      x_event("service", tid, s.req_end, s.service(), "");
    }
    if (s.rsp_start != kTxnNoCycle) {
      x_event("response", tid, s.rsp_start, s.response(), "");
    }
  }
  os << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

}  // namespace crve::obs
