#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <mutex>
#include <sstream>

namespace crve::obs {

namespace {

std::atomic<bool> g_enabled{false};

struct Descriptor {
  std::string name;
  MetricClass cls;
};

struct HistCell {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kHistBuckets] = {};
};

// One thread's private shard. Vectors are grown lazily to the touched slot,
// so a thread that never observes a metric stores nothing for it.
struct CellBlock {
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> gauges;
  std::vector<HistCell> hists;
};

// Registry internals. Leaked on purpose: thread_local cells fold themselves
// in at thread exit, which may happen after function-local statics are
// destroyed — a leaked singleton sidesteps the destruction-order race.
struct State {
  std::mutex mu;
  std::vector<Descriptor> counter_desc;
  std::vector<Descriptor> gauge_desc;
  std::vector<Descriptor> hist_desc;
  std::vector<CellBlock*> live;  // one per thread currently alive
  CellBlock retired;             // folded cells of exited threads
};

State& state() {
  static State* s = new State;
  return *s;
}

void fold_into(CellBlock& into, const CellBlock& from) {
  if (into.counters.size() < from.counters.size()) {
    into.counters.resize(from.counters.size(), 0);
  }
  for (std::size_t i = 0; i < from.counters.size(); ++i) {
    into.counters[i] += from.counters[i];
  }
  if (into.gauges.size() < from.gauges.size()) {
    into.gauges.resize(from.gauges.size(), 0);
  }
  for (std::size_t i = 0; i < from.gauges.size(); ++i) {
    into.gauges[i] = std::max(into.gauges[i], from.gauges[i]);
  }
  if (into.hists.size() < from.hists.size()) {
    into.hists.resize(from.hists.size());
  }
  for (std::size_t i = 0; i < from.hists.size(); ++i) {
    into.hists[i].count += from.hists[i].count;
    into.hists[i].sum += from.hists[i].sum;
    for (int b = 0; b < kHistBuckets; ++b) {
      into.hists[i].buckets[b] += from.hists[i].buckets[b];
    }
  }
}

struct TlsCells {
  CellBlock block;
  TlsCells() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.live.push_back(&block);
  }
  ~TlsCells() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    fold_into(s.retired, block);
    s.live.erase(std::find(s.live.begin(), s.live.end(), &block));
  }
};

CellBlock& tls_block() {
  thread_local TlsCells cells;
  return cells.block;
}

std::uint32_t find_or_create(std::vector<Descriptor>& descs,
                             const std::string& name, MetricClass cls) {
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (descs[i].name == name) return static_cast<std::uint32_t>(i);
  }
  descs.push_back({name, cls});
  return static_cast<std::uint32_t>(descs.size() - 1);
}

int bucket_of(std::uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

// Metric names are code-controlled identifiers; escape defensively anyway.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

bool metrics_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Counter::add(std::uint64_t n) const {
  if (!metrics_enabled()) return;
  CellBlock& b = tls_block();
  if (b.counters.size() <= slot_) b.counters.resize(slot_ + 1, 0);
  b.counters[slot_] += n;
}

void Gauge::observe_max(std::uint64_t v) const {
  if (!metrics_enabled()) return;
  CellBlock& b = tls_block();
  if (b.gauges.size() <= slot_) b.gauges.resize(slot_ + 1, 0);
  b.gauges[slot_] = std::max(b.gauges[slot_], v);
}

void Histogram::observe(std::uint64_t v) const {
  if (!metrics_enabled()) return;
  CellBlock& b = tls_block();
  if (b.hists.size() <= slot_) b.hists.resize(slot_ + 1);
  HistCell& h = b.hists[slot_];
  ++h.count;
  h.sum += v;
  ++h.buckets[bucket_of(v)];
}

Counter counter(const std::string& name, MetricClass cls) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return Counter(find_or_create(s.counter_desc, name, cls));
}

Gauge gauge(const std::string& name, MetricClass cls) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return Gauge(find_or_create(s.gauge_desc, name, cls));
}

Histogram histogram(const std::string& name, MetricClass cls) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return Histogram(find_or_create(s.hist_desc, name, cls));
}

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

Registry::Snapshot Registry::snapshot(bool include_timing) const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  CellBlock merged = s.retired;
  for (const CellBlock* b : s.live) fold_into(merged, *b);

  Snapshot snap;
  for (std::size_t i = 0; i < s.counter_desc.size(); ++i) {
    if (!include_timing && s.counter_desc[i].cls != MetricClass::kStable) {
      continue;
    }
    snap.counters.emplace_back(
        s.counter_desc[i].name,
        i < merged.counters.size() ? merged.counters[i] : 0);
  }
  for (std::size_t i = 0; i < s.gauge_desc.size(); ++i) {
    if (!include_timing && s.gauge_desc[i].cls != MetricClass::kStable) {
      continue;
    }
    snap.gauges.emplace_back(s.gauge_desc[i].name,
                             i < merged.gauges.size() ? merged.gauges[i] : 0);
  }
  for (std::size_t i = 0; i < s.hist_desc.size(); ++i) {
    if (!include_timing && s.hist_desc[i].cls != MetricClass::kStable) {
      continue;
    }
    HistogramValue v;
    if (i < merged.hists.size()) {
      v.count = merged.hists[i].count;
      v.sum = merged.hists[i].sum;
      std::copy(std::begin(merged.hists[i].buckets),
                std::end(merged.hists[i].buckets), std::begin(v.buckets));
    }
    snap.histograms.emplace_back(s.hist_desc[i].name, v);
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::string Registry::json(bool include_timing,
                           const std::string& indent) const {
  const Snapshot snap = snapshot(include_timing);
  std::ostringstream os;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  os << "{\n";
  os << in1 << "\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in2 << "\"" << escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "}" : "\n" + in1 + "}") << ",\n";
  os << in1 << "\"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in2 << "\"" << escape(snap.gauges[i].first)
       << "\": " << snap.gauges[i].second;
  }
  os << (snap.gauges.empty() ? "}" : "\n" + in1 + "}") << ",\n";
  os << in1 << "\"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramValue& h = snap.histograms[i].second;
    os << (i == 0 ? "\n" : ",\n") << in2 << "\""
       << escape(snap.histograms[i].first) << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"buckets\": [";
    // Sparse bucket list: [lower bound of bucket, count] pairs.
    bool first = true;
    for (int b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      const std::uint64_t lo = b == 0 ? 0 : std::uint64_t{1} << (b - 1);
      os << (first ? "" : ", ") << "[" << lo << ", " << h.buckets[b] << "]";
      first = false;
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "}" : "\n" + in1 + "}") << "\n";
  os << indent << "}";
  return os.str();
}

void Registry::reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto zero = [](CellBlock& b) {
    std::fill(b.counters.begin(), b.counters.end(), 0);
    std::fill(b.gauges.begin(), b.gauges.end(), 0);
    for (auto& h : b.hists) h = HistCell{};
  };
  zero(s.retired);
  for (CellBlock* b : s.live) zero(*b);
}

}  // namespace crve::obs
