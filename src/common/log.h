// Minimal severity-filtered logger shared by the kernel, the verification
// environment and the regression tool.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace crve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide log threshold; messages below it are dropped.
LogLevel& log_threshold();

namespace detail {
// Writes one complete line to the sink (std::cerr) under the sink mutex, so
// lines from concurrent regression workers never interleave mid-line.
void emit(const std::string& line);

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    os_ << "[" << tag << "] ";
  }
  ~LogLine() {
    if (level_ >= log_threshold()) {
      os_ << "\n";
      emit(os_.str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return {LogLevel::kDebug, "debug"}; }
inline detail::LogLine log_info() { return {LogLevel::kInfo, "info "}; }
inline detail::LogLine log_warn() { return {LogLevel::kWarn, "warn "}; }
inline detail::LogLine log_error() { return {LogLevel::kError, "error"}; }

}  // namespace crve
