// Minimal severity-filtered logger shared by the kernel, the verification
// environment and the regression tool.
//
// Three layers, all optional and all process-wide:
//   * console threshold (`log_threshold()`): lines below it never reach the
//     console sink;
//   * injectable sink (`set_log_sink`): where console-visible lines go —
//     std::cerr by default, a capture callback in tests;
//   * flight recorder (`set_flight_recorder`): a ring buffer that keeps the
//     last N lines at or above its own capture level, even below the
//     console threshold, so a failing regression job can dump the context
//     that led up to it.
//
// A LogLine checks the effective capture threshold at construction and
// skips ALL formatting work when nobody would see the line — streaming into
// a disabled line costs one branch per operator<<, not an ostringstream.
#pragma once

#include <functional>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace crve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide console threshold; messages below it are not printed (but
// may still be captured by an installed flight recorder).
LogLevel& log_threshold();

// Console sink: receives one complete line (trailing '\n' included) under
// the sink mutex, so concurrent regression workers never interleave
// mid-line. Default (nullptr) writes to std::cerr.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

// Installs a sink, returning the previous one (nullptr = default cerr).
LogSink set_log_sink(LogSink sink);

// Fixed-capacity ring of the most recent log lines (oldest dropped first).
// Thread-safe; push comes from the logger's emit path once installed.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 64);

  std::size_t capacity() const { return capacity_; }
  void push(std::string line);
  // Recorded lines, oldest first.
  std::vector<std::string> snapshot() const;
  // snapshot() joined into one block (lines keep their trailing '\n').
  std::string dump() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::string> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;   // ring write position
  std::size_t count_ = 0;  // lines currently stored (<= capacity_)
};

// Installs `fr` as the process-wide flight recorder capturing lines at or
// above `capture` (nullptr uninstalls). Returns the previous recorder. The
// recorder must outlive its installation.
FlightRecorder* set_flight_recorder(FlightRecorder* fr,
                                    LogLevel capture = LogLevel::kDebug);
// Currently installed recorder (nullptr when none).
FlightRecorder* flight_recorder();

namespace detail {

// Lowest level anyone would observe: min(console threshold, recorder
// capture level). LogLine formats only at or above this.
LogLevel capture_threshold();

// Routes one complete line: to the flight recorder if one is installed and
// captures `level`, and to the console sink if `level` passes the console
// threshold. Serialised under the sink mutex.
void emit(LogLevel level, const std::string& line);

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    if (level_ >= capture_threshold()) {
      os_.emplace();
      *os_ << "[" << tag << "] ";
    }
  }
  ~LogLine() {
    if (os_) {
      *os_ << "\n";
      emit(level_, os_->str());
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (os_) *os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  // Engaged only when the line is observable — a dropped line never pays
  // for the ostringstream, let alone the formatting.
  std::optional<std::ostringstream> os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return {LogLevel::kDebug, "debug"}; }
inline detail::LogLine log_info() { return {LogLevel::kInfo, "info "}; }
inline detail::LogLine log_warn() { return {LogLevel::kWarn, "warn "}; }
inline detail::LogLine log_error() { return {LogLevel::kError, "error"}; }

}  // namespace crve
