// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
//
// The regression flow runs the same test with the same seed on the RTL and
// BCA views and expects bit-identical stimulus, so the generator must be
// fully deterministic and independent of the standard library's
// implementation-defined distributions.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace crve {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full 64-bit range
    return lo + next_u64() % span;
  }

  int index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: empty range");
    return static_cast<int>(range(0, n - 1));
  }

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    if (den == 0) throw std::invalid_argument("Rng::chance: den == 0");
    return range(1, den) <= num;
  }

  // Picks an index with probability proportional to weights[i].
  int weighted(std::span<const std::uint32_t> weights) {
    std::uint64_t total = 0;
    for (auto w : weights) total += w;
    if (total == 0) throw std::invalid_argument("Rng::weighted: zero total");
    std::uint64_t r = range(0, total - 1);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (r < weights[i]) return static_cast<int>(i);
      r -= weights[i];
    }
    return static_cast<int>(weights.size() - 1);
  }

  // Derives an independent stream (e.g. one per BFM) from this generator.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace crve
