// SHA-256 (FIPS 180-4), self-contained.
//
// The content-addressed campaign cache (src/cache/, DESIGN.md §13) keys
// every job by the SHA-256 of its canonical JobSpec serialization, so the
// digest must be stable across platforms, compilers and builds — a
// cryptographic hash gives that plus collision resistance far beyond what
// a cache directory shared between machines needs. Pure portable C++ (no
// intrinsics): the inputs are short canonical JSON strings, so throughput
// is irrelevant next to the simulation time a hit saves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace crve {

class Sha256 {
 public:
  Sha256();

  // Streaming interface: update() any number of times, then digest_hex().
  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  // Finalizes and returns the 64-char lowercase hex digest. The object is
  // single-shot: further update() calls after digest_hex() are invalid.
  std::string digest_hex();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

// One-shot convenience: hex digest of a byte string.
std::string sha256_hex(const std::string& data);

}  // namespace crve
