#include "common/log.h"

namespace crve {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

}  // namespace crve
