#include "common/log.h"

#include <algorithm>
#include <utility>

namespace crve {

namespace {

// Sink/recorder globals, guarded by the sink mutex for installation and
// emission. Reads of the recorder pointer on the LogLine fast path are
// deliberately unsynchronised, matching the existing log_threshold()
// convention: install sinks/recorders before spawning workers.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;  // nullptr = default std::cerr
  return sink;
}

FlightRecorder*& recorder_slot() {
  static FlightRecorder* fr = nullptr;
  return fr;
}

LogLevel& recorder_level() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

}  // namespace

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  LogSink prev = std::move(sink_slot());
  sink_slot() = std::move(sink);
  return prev;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.resize(capacity_);
}

void FlightRecorder::push(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = std::move(line);
  next_ = (next_ + 1) % capacity_;
  count_ = std::min(count_ + 1, capacity_);
}

std::vector<std::string> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(count_);
  // Oldest line sits at next_ once the ring has wrapped.
  const std::size_t start = count_ == capacity_ ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::dump() const {
  std::string out;
  for (const auto& line : snapshot()) out += line;
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

FlightRecorder* set_flight_recorder(FlightRecorder* fr, LogLevel capture) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  FlightRecorder* prev = recorder_slot();
  recorder_slot() = fr;
  recorder_level() = fr ? capture : LogLevel::kOff;
  return prev;
}

FlightRecorder* flight_recorder() { return recorder_slot(); }

namespace detail {

LogLevel capture_threshold() {
  return std::min(log_threshold(), recorder_level());
}

void emit(LogLevel level, const std::string& line) {
  // One guarded write per line: concurrent testbenches (parallel regression
  // workers) must not interleave their messages mid-line.
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (FlightRecorder* fr = recorder_slot();
      fr != nullptr && level >= recorder_level()) {
    fr->push(line);
  }
  if (level >= log_threshold()) {
    if (sink_slot()) {
      sink_slot()(level, line);
    } else {
      // The logger IS the sanctioned sink; this is the one raw-stream write
      // the mutex above serialises. crve-lint: allow(CRVE052)
      std::cerr << line;
    }
  }
}

}  // namespace detail

}  // namespace crve
