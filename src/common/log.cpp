#include "common/log.h"

#include <mutex>

namespace crve {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace detail {

void emit(const std::string& line) {
  // One guarded write per line: concurrent testbenches (parallel regression
  // workers) must not interleave their messages mid-line.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << line;
}

}  // namespace detail

}  // namespace crve
