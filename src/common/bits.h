// Fixed-capacity, runtime-width bit vector used for bus data values.
//
// STBus data ports range from 8 to 256 bits, so Bits stores up to 256 bits
// inline (four 64-bit words) with the active width chosen at run time.
// Values are plain, regular value types: copyable, comparable, hashable.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace crve {

class Bits {
 public:
  static constexpr int kMaxWidth = 256;
  static constexpr int kWords = kMaxWidth / 64;

  // Zero-width value; valid only as a placeholder.
  constexpr Bits() = default;

  // Zero value of the given width in bits (1..256).
  explicit Bits(int width);

  // Width-bit value with the low 64 bits set to `value` (truncated to width).
  Bits(int width, std::uint64_t value);

  static Bits all_ones(int width);

  // Builds a value from little-endian bytes; `width` must cover the span.
  static Bits from_bytes(std::span<const std::uint8_t> bytes, int width);

  // Parses a binary string ("1010...", MSB first). Width = string length.
  static Bits from_bin_string(const std::string& s);

  int width() const { return width_; }
  int num_bytes() const { return (width_ + 7) / 8; }
  bool is_zero() const;

  bool bit(int i) const;
  void set_bit(int i, bool v);

  std::uint64_t word(int i) const { return w_[static_cast<std::size_t>(i)]; }
  // Low 64 bits (or fewer when width < 64).
  std::uint64_t to_u64() const { return w_[0]; }

  std::uint8_t byte(int i) const;
  void set_byte(int i, std::uint8_t v);

  // `n`-bit slice starting at bit `lo`.
  Bits slice(int lo, int n) const;
  void set_slice(int lo, const Bits& v);

  // Copies `n` bytes starting at byte `lo` into a new (8*n)-bit value.
  Bits byte_slice(int lo, int n) const;
  void set_byte_slice(int lo, const Bits& v);

  friend bool operator==(const Bits& a, const Bits& b) {
    return a.width_ == b.width_ && a.w_ == b.w_;
  }
  friend bool operator!=(const Bits& a, const Bits& b) { return !(a == b); }

  // MSB-first binary string, exactly `width()` characters.
  std::string to_bin_string() const;
  // Appends the same `width()` characters to `out` without allocating a
  // temporary (trace hot path).
  void append_bin(std::string& out) const;
  // Hex string, no prefix, (width+3)/4 digits.
  std::string to_hex_string() const;

  std::size_t hash() const;

 private:
  void mask_top();

  int width_ = 0;
  std::array<std::uint64_t, kWords> w_{};
};

}  // namespace crve
