#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

namespace crve {

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n_threads) {
  const unsigned n = resolve_jobs(n_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() <= 1 || n == 1) {
    // Serial fast path: identical observable behaviour, no queueing.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct ForState {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t live = 0;
    std::exception_ptr err;
  };
  auto state = std::make_shared<ForState>();

  const std::size_t n_tasks = std::min<std::size_t>(size(), n);
  state->live = n_tasks;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    submit([state, n, &fn] {
      for (;;) {
        const std::size_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->err) state->err = std::current_exception();
          state->next.store(n, std::memory_order_relaxed);  // abandon rest
          break;
        }
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->live;
      }
      state->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->live == 0; });
  if (state->err) std::rethrow_exception(state->err);
}

}  // namespace crve
