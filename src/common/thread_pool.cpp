#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace crve {

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned n_threads) {
  const unsigned n = resolve_jobs(n_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  Task t{std::move(task), 0};
  if (obs::metrics_enabled()) t.enqueued_ns = obs::now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(t));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(unsigned worker_index) {
  // Per-worker timing metrics (kTiming: wall-clock derived, worker-count
  // dependent — never part of the deterministic metrics view). Handles are
  // resolved once per worker; updates are dropped while collection is off.
  const std::string w = "pool.worker" + std::to_string(worker_index);
  const obs::Counter busy_ns =
      obs::counter(w + ".busy_ns", obs::MetricClass::kTiming);
  const obs::Counter tasks =
      obs::counter(w + ".tasks", obs::MetricClass::kTiming);
  const obs::Histogram queue_wait =
      obs::histogram("pool.queue_wait_ns", obs::MetricClass::kTiming);

  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueued_ns != 0 && obs::metrics_enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      queue_wait.observe(t0 - task.enqueued_ns);
      task.fn();
      busy_ns.add(obs::now_ns() - t0);
      tasks.inc();
    } else {
      task.fn();
    }
    // Metric writes above happen before this release of in_flight_, so a
    // caller returning from wait() reads fully settled per-thread cells.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() <= 1 || n == 1) {
    // Serial fast path: identical observable behaviour, no queueing.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct ForState {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t live = 0;
    std::exception_ptr err;
  };
  auto state = std::make_shared<ForState>();

  const std::size_t n_tasks = std::min<std::size_t>(size(), n);
  state->live = n_tasks;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    submit([state, n, &fn] {
      for (;;) {
        const std::size_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->err) state->err = std::current_exception();
          state->next.store(n, std::memory_order_relaxed);  // abandon rest
          break;
        }
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->live;
      }
      state->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->live == 0; });
  if (state->err) std::rethrow_exception(state->err);
}

}  // namespace crve
