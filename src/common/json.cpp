#include "common/json.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace crve::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"0x%llx\"",
                static_cast<unsigned long long>(v));
  return buf;
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v && v->kind == Kind::kNumber ? v->num : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v && v->kind == Kind::kString ? v->str : std::move(fallback);
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v && v->kind == Kind::kBool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.str = string();
        return v;
      }
      case 't': {
        if (!consume_word("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_word("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return Value{};
      }
      default:
        return number_value();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      switch (s_[pos_++]) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our writers only emit \u00xx control escapes; encode the code
          // point as UTF-8 for completeness.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value number_value() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    Value v;
    v.kind = Value::Kind::kNumber;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_,
                                     v.num);
    if (res.ec != std::errc{} || res.ptr != s_.data() + pos_) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace crve::json
