// Deterministic default-fill pattern for modelled memories.
//
// Untouched bytes read as a hash of (address, pattern seed) so that load
// data is reproducible without pre-initialising memory. The target BFM and
// the TLM reference model must agree bit-for-bit, so the function lives
// here rather than in either of them.
#pragma once

#include <cstdint>

namespace crve {

inline std::uint8_t default_mem_byte(std::uint32_t addr,
                                     std::uint64_t pattern) {
  std::uint64_t h = addr * 0x9e3779b97f4a7c15ull + pattern;
  h ^= h >> 29;
  return static_cast<std::uint8_t>(h);
}

}  // namespace crve
