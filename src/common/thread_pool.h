// Small fixed-size thread pool for sharding independent regression jobs.
//
// The regression flow runs the same (test, seed) matrix on both views; every
// job owns its testbench, RNG stream and artifact files, so jobs are
// embarrassingly parallel. The pool hands indices out dynamically (work
// sharing via an atomic cursor), which keeps long jobs from gating short
// ones, and the caller writes each result into a pre-sized slot so the
// reduction order — and therefore every report — is independent of the
// worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crve {

// Resolves a `--jobs` style request: 0 = one per hardware thread, minimum 1.
unsigned resolve_jobs(unsigned requested);

class ThreadPool {
 public:
  // Spawns `n_threads` workers (0 = one per hardware thread).
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues one task. Exceptions escaping a submitted task terminate (catch
  // inside the task, or use parallel_for which forwards the first one).
  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait();

  // Runs fn(0) .. fn(n-1) across the workers and blocks until all are done.
  // Indices are claimed dynamically. Rethrows the first exception any
  // invocation raised (remaining indices are abandoned once one throws).
  // Returns as soon as the last fn body finishes; a worker may still be
  // publishing its own pool.* timing metrics at that point. Call wait()
  // before merging the obs registry (obs::Registry::snapshot/json).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  // A queued task plus its enqueue timestamp (0 when metrics are off), so
  // workers can report queue-wait time without a clock read per submit in
  // the uninstrumented case.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueued_ns = 0;
  };

  void worker_loop(unsigned worker_index);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace crve
