// Build provenance, baked in at configure time.
//
// Every JSON artifact the tree writes (regression report, metrics dump,
// triage report, drift diff) embeds this stamp as its "build" section, so a
// stored baseline can be traced to the exact source revision, compiler and
// build flavour that produced it before its numbers are trusted for a
// comparison. Values are captured by CMake when the build directory is
// configured (src/common/build_info.cpp.in): the git hash goes stale if you
// commit without re-configuring, which is as precise as a header-only stamp
// can be without a per-build regeneration step.
#pragma once

#include <string>

namespace crve {

struct BuildInfo {
  const char* git_hash;    // short hash, or "unknown" outside a checkout
  const char* compiler;    // e.g. "GNU 13.2.0"
  const char* build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  bool sanitize;           // any CRVE_SANITIZE flavour (address or thread)
};

const BuildInfo& build_info();

// The stamp as a pretty JSON object; lines after the first are prefixed
// with `indent` so it nests at any depth inside an enclosing document.
std::string build_info_json(const std::string& indent = "");

}  // namespace crve
