// Minimal JSON support shared by every artifact writer and the drift gate.
//
// Two halves:
//   * rendering helpers (escape / number / hex) — the deterministic
//     formatting rules every JSON artifact in the tree follows: strings are
//     escaped, doubles use the shortest round-trip form (std::to_chars,
//     locale-independent), and 64-bit values are quoted hex literals (JSON
//     numbers lose precision past 2^53);
//   * a small recursive-descent parser — enough of RFC 8259 to read the
//     reports this tree writes (objects, arrays, strings with the escapes
//     we emit, numbers, booleans, null). Used by the baseline drift gate
//     (`crve_regress --baseline`) and by tests that validate artifact
//     well-formedness without an external JSON dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace crve::json {

// Escapes a string for inclusion inside JSON quotes.
std::string escape(const std::string& s);

// Shortest round-trip decimal form of a finite double (locale-independent).
std::string number(double v);

// 64-bit value as a quoted hex literal, e.g. "0x1f".
std::string hex(std::uint64_t v);

// One parsed JSON value. Object members keep insertion order (reports are
// rendered with a fixed member order, and diffs walk them in that order).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> items;                              // kArray
  std::vector<std::pair<std::string, Value>> members;    // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Member lookup (objects only); nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // Convenience accessors with defaults — tolerant lookups for fields that
  // may be absent in older-schema baselines.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
};

// Parses one JSON document (trailing whitespace allowed, nothing else after
// the value). Throws std::runtime_error with an offset on malformed input.
Value parse(const std::string& text);

}  // namespace crve::json
