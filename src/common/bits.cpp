#include "common/bits.h"

#include <stdexcept>

namespace crve {

namespace {
void check_width(int width) {
  if (width < 1 || width > Bits::kMaxWidth) {
    throw std::invalid_argument("Bits width out of range [1,256]: " +
                                std::to_string(width));
  }
}
}  // namespace

Bits::Bits(int width) : width_(width) { check_width(width); }

Bits::Bits(int width, std::uint64_t value) : width_(width) {
  check_width(width);
  w_[0] = value;
  mask_top();
}

Bits Bits::all_ones(int width) {
  Bits b(width);
  for (auto& w : b.w_) w = ~std::uint64_t{0};
  b.mask_top();
  return b;
}

Bits Bits::from_bytes(std::span<const std::uint8_t> bytes, int width) {
  check_width(width);
  if (static_cast<int>(bytes.size()) * 8 > ((width + 7) / 8) * 8) {
    throw std::invalid_argument("Bits::from_bytes: span wider than width");
  }
  Bits b(width);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    b.set_byte(static_cast<int>(i), bytes[i]);
  }
  return b;
}

Bits Bits::from_bin_string(const std::string& s) {
  check_width(static_cast<int>(s.size()));
  Bits b(static_cast<int>(s.size()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[s.size() - 1 - i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("Bits::from_bin_string: bad char");
    }
    b.set_bit(static_cast<int>(i), c == '1');
  }
  return b;
}

bool Bits::is_zero() const {
  for (auto w : w_) {
    if (w != 0) return false;
  }
  return true;
}

bool Bits::bit(int i) const {
  if (i < 0 || i >= width_) throw std::out_of_range("Bits::bit");
  return (w_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1u;
}

void Bits::set_bit(int i, bool v) {
  if (i < 0 || i >= width_) throw std::out_of_range("Bits::set_bit");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  auto& w = w_[static_cast<std::size_t>(i / 64)];
  w = v ? (w | mask) : (w & ~mask);
}

std::uint8_t Bits::byte(int i) const {
  if (i < 0 || i >= num_bytes()) throw std::out_of_range("Bits::byte");
  return static_cast<std::uint8_t>(w_[static_cast<std::size_t>(i / 8)] >>
                                   ((i % 8) * 8));
}

void Bits::set_byte(int i, std::uint8_t v) {
  if (i < 0 || i >= num_bytes()) throw std::out_of_range("Bits::set_byte");
  auto& w = w_[static_cast<std::size_t>(i / 8)];
  const int sh = (i % 8) * 8;
  w = (w & ~(std::uint64_t{0xff} << sh)) | (std::uint64_t{v} << sh);
  mask_top();
}

Bits Bits::slice(int lo, int n) const {
  if (lo < 0 || n < 1 || lo + n > width_) throw std::out_of_range("Bits::slice");
  Bits r(n);
  for (int i = 0; i < n; ++i) r.set_bit(i, bit(lo + i));
  return r;
}

void Bits::set_slice(int lo, const Bits& v) {
  if (lo < 0 || lo + v.width() > width_) {
    throw std::out_of_range("Bits::set_slice");
  }
  for (int i = 0; i < v.width(); ++i) set_bit(lo + i, v.bit(i));
}

Bits Bits::byte_slice(int lo, int n) const {
  if (lo < 0 || n < 1 || (lo + n) > num_bytes()) {
    throw std::out_of_range("Bits::byte_slice");
  }
  Bits r(n * 8);
  for (int i = 0; i < n; ++i) r.set_byte(i, byte(lo + i));
  return r;
}

void Bits::set_byte_slice(int lo, const Bits& v) {
  const int n = v.num_bytes();
  if (lo < 0 || lo + n > num_bytes()) {
    throw std::out_of_range("Bits::set_byte_slice");
  }
  for (int i = 0; i < n; ++i) set_byte(lo + i, v.byte(i));
}

std::string Bits::to_bin_string() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(width_));
  append_bin(s);
  return s;
}

void Bits::append_bin(std::string& out) const {
  const std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    if (bit(i)) out[base + static_cast<std::size_t>(width_ - 1 - i)] = '1';
  }
}

std::string Bits::to_hex_string() const {
  static const char* kHex = "0123456789abcdef";
  const int digits = (width_ + 3) / 4;
  std::string s(static_cast<std::size_t>(digits), '0');
  for (int d = 0; d < digits; ++d) {
    int nib = 0;
    for (int b = 0; b < 4; ++b) {
      const int i = d * 4 + b;
      if (i < width_ && bit(i)) nib |= 1 << b;
    }
    s[static_cast<std::size_t>(digits - 1 - d)] = kHex[nib];
  }
  return s;
}

std::size_t Bits::hash() const {
  std::size_t h = static_cast<std::size_t>(width_) * 0x9e3779b97f4a7c15ull;
  for (auto w : w_) h = (h ^ w) * 0x100000001b3ull;
  return h;
}

void Bits::mask_top() {
  const int rem = width_ % 64;
  const int top = width_ / 64;
  if (rem != 0) {
    w_[static_cast<std::size_t>(top)] &= (std::uint64_t{1} << rem) - 1;
    for (int i = top + 1; i < kWords; ++i) w_[static_cast<std::size_t>(i)] = 0;
  } else {
    for (int i = top; i < kWords; ++i) w_[static_cast<std::size_t>(i)] = 0;
  }
}

}  // namespace crve
