// Packet bridge between two STBus ports of possibly different data widths
// and protocol types — the common machinery behind the size converter and
// the type converter IPs.
//
// The bridge is a target on its upstream port and an initiator on its
// downstream port. It works store-and-forward at transaction granularity,
// fully serialized (one transaction end-to-end at a time):
//
//   ACCEPT      absorb the upstream request packet, assembling the logical
//               Request (gnt held high);
//   REPLAY_REQ  re-emit the request as downstream cells built for the
//               downstream width/protocol;
//   WAIT_RSP    absorb the downstream response packet (r_gnt held high),
//               collecting data/status (any ERROR cell poisons the whole
//               transaction);
//   REPLAY_RSP  re-emit the response upstream in the upstream shape.
//
// Serialization trades throughput for a fully deterministic cycle contract,
// which is what the alignment comparison needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::rtl {

class Bridge {
 public:
  Bridge(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
         stbus::ProtocolType up_type, stbus::PortPins& downstream,
         stbus::ProtocolType dn_type);
  virtual ~Bridge() = default;

  struct Stats {
    std::uint64_t transactions = 0;
    std::uint64_t errors = 0;  // transactions answered with ERROR
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class State { kAccept, kReplayReq, kWaitRsp, kReplayRsp };

  void comb();
  void edge();
  void edge_fsm();

  std::string name_;
  stbus::PortPins& up_;
  stbus::PortPins& dn_;
  stbus::ProtocolType up_type_;
  stbus::ProtocolType dn_type_;

  State state_ = State::kAccept;
  // Bumped when edge() changes drive-visible state (FSM state or replay
  // position); re-dirties the combinational process under the compiled
  // schedule.
  sim::StateTag tag_;
  std::vector<stbus::RequestCell> up_req_cells_;   // absorbed upstream packet
  std::vector<stbus::RequestCell> dn_req_cells_;   // rebuilt downstream packet
  std::vector<stbus::ResponseCell> dn_rsp_cells_;  // absorbed downstream rsp
  std::vector<stbus::ResponseCell> up_rsp_cells_;  // rebuilt upstream rsp
  std::size_t replay_idx_ = 0;
  int rsp_cells_expected_ = 0;

  Stats stats_;
};

}  // namespace crve::rtl
