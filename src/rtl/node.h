// RTL view of the STBus node.
//
// Signal-level, synthesizable-style model: all architectural state lives in
// registers updated by one clocked process; outputs are driven by a
// combinational process from registered state and input pins. The cycle
// behaviour (DESIGN.md §4) is the contract the independently written BCA
// view must match:
//
//   * request cell granted at an initiator port in cycle N appears on its
//     target port in cycle N+1 (one pipeline register per target port);
//   * grant is combinational: arbiter winner among requesters whose target
//     register is empty or draining, constrained by the architecture
//     (shared bus: one grant per cycle; full crossbar: one per target;
//     partial crossbar: one per target group) and by packet/chunk ownership
//     (a granted cell with lck=1 keeps the resource allocated);
//   * responses mirror the request path with a register per initiator port,
//     per-initiator round-robin over sources (targets + internal error
//     generator), allocation held until r_eop;
//   * requests that decode to no address range are absorbed and answered by
//     the node itself with ERROR cells;
//   * the optional Type1 programming port updates the per-initiator
//     priorities used by the programmable arbitration policy (1 wait state:
//     request sampled in cycle N is acknowledged in cycle N+1).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "rtl/arbiter.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::rtl {

class Node {
 public:
  // Port bundles are owned by the testbench; the node keeps references.
  Node(sim::Context& ctx, stbus::NodeConfig cfg,
       std::vector<stbus::PortPins*> initiator_ports,
       std::vector<stbus::PortPins*> target_ports,
       stbus::PortPins* prog_port = nullptr);

  const stbus::NodeConfig& config() const { return cfg_; }

  struct Stats {
    std::uint64_t request_cells = 0;
    std::uint64_t response_cells = 0;
    std::uint64_t decode_errors = 0;  // error packets absorbed
    std::vector<std::uint64_t> grants;  // per initiator
  };
  const Stats& stats() const { return stats_; }

  // Current programmable priority of an initiator (for tests).
  int priority(int initiator) const {
    return arbs_.front()->priority(initiator);
  }

 private:
  struct TReg {
    bool valid = false;
    stbus::RequestCell cell;
  };
  struct IReg {
    bool valid = false;
    stbus::ResponseCell cell;
  };
  struct ErrDesc {
    stbus::Opcode opc{};
    std::uint8_t tid = 0;
    int cells_left = 0;
  };

  static constexpr int kNoSource = -1;

  struct ReqDecision {
    std::vector<int> winner;                 // per resource, -1 = none
    std::vector<std::uint32_t> requesting;   // per resource
    std::uint32_t gnt_mask = 0;              // includes error-sink grants
    std::uint32_t error_mask = 0;            // decode-error requesters
  };
  struct RspDecision {
    // Per initiator: winning source (0..T-1 = target, T = error generator,
    // -1 = none this cycle).
    std::vector<int> source;
  };

  // Decode an initiator's current request target: -1 = idle, -2 = decode
  // error, else the target index.
  int request_target(int initiator) const;
  bool treg_can_accept(int target) const;
  bool ireg_can_accept(int initiator) const;
  // True when this edge is provably a no-op (ports idle, registers empty,
  // arbiters quiescent): the edge body can be skipped entirely. Memoized
  // against the kernel's global change stamp — an idle node stays idle for
  // free while nothing anywhere commits a change.
  bool idle_cycle() const;

  ReqDecision decide_requests() const;
  RspDecision decide_responses() const;

  // Combinational blocks, one kernel process each — the RTL view keeps
  // RTL-like evaluation granularity (arbitration block, per-port grant and
  // mux blocks), which is what makes it slower to simulate than the
  // transaction-level BCA view.
  void comb_arbitration();
  void comb_initiator_gnt(int i);
  void comb_initiator_rsp(int i);
  void comb_target_req(int t);
  void comb_target_rgnt(int t);
  void comb_prog();
  void edge();
  void prog_edge();

  stbus::NodeConfig cfg_;
  sim::Context* ctx_ = nullptr;
  std::vector<stbus::PortPins*> iports_;
  std::vector<stbus::PortPins*> tports_;
  stbus::PortPins* prog_ = nullptr;

  mutable bool was_idle_ = false;
  mutable std::uint64_t idle_stamp_ = 0;

  std::vector<std::unique_ptr<Arbiter>> arbs_;  // one per resource
  std::vector<int> req_owner_;                  // per resource, -1 = free
  std::vector<TReg> treg_;                      // per target
  std::vector<IReg> ireg_;                      // per initiator
  std::vector<int> rsp_owner_;                  // per initiator, -1 = free
  std::vector<int> rsp_rr_;                     // per-initiator source pointer
  int rsp_shared_rr_ = 0;                       // shared-bus response pointer
  std::vector<std::deque<ErrDesc>> errq_;       // per initiator

  std::uint64_t edge_count_ = 0;  // feeds arbiter bandwidth windows

  // Version of the edge-owned internal state the combinational blocks read
  // (pipeline registers, owners, error queues, programming FSM). Bumped on
  // every non-idle edge so the compiled schedule re-dirties those blocks.
  sim::StateTag tag_;

  // Decision "wires" between the arbitration block and the port blocks.
  ReqDecision req_wires_;
  RspDecision rsp_wires_;

  // Programming-port state machine.
  bool prog_gnt_ = false;
  bool prog_is_load_ = false;
  bool prog_err_ = false;
  std::uint32_t prog_rdata_ = 0;

  Stats stats_;
};

}  // namespace crve::rtl
