#include "rtl/register_decoder.h"

#include <stdexcept>
#include <utility>

#include "stbus/packet.h"

namespace crve::rtl {

using stbus::Opcode;
using stbus::RspOpcode;

RegisterDecoder::RegisterDecoder(sim::Context& ctx, std::string name,
                                 stbus::PortPins& port,
                                 stbus::ProtocolType type,
                                 std::uint32_t base_address, int n_regs)
    : name_(std::move(name)),
      ctx_(&ctx),
      port_(port),
      type_(type),
      base_(base_address),
      regs_(static_cast<std::size_t>(n_regs), 0) {
  if (n_regs < 1) throw std::invalid_argument("RegisterDecoder: n_regs");
  // Design-lint declaration: the request payload is sampled only while a
  // request fires; all pin writes happen in comb().
  sim::ClockedOpts edge_decl;
  edge_decl.reads = port_.request_signals();
  edge_decl.reads.push_back(&port_.gnt);
  edge_decl.reads.push_back(&port_.r_req);
  edge_decl.reads.push_back(&port_.r_gnt);
  ctx.add_clocked(name_ + ".edge", [this] { edge(); }, std::move(edge_decl));
  // comb() reads no signals, only the edge-owned response queue: the
  // StateTag is its whole sensitivity list under the compiled schedule. The
  // response payload is driven only while the queue holds cells — declared
  // for the design linter.
  sim::CombOpts opts;
  opts.state = &tag_;
  opts.writes = port_.response_signals();
  ctx.add_comb(name_ + ".comb", [this] { comb(); }, std::move(opts));
}

std::uint32_t RegisterDecoder::reg(int index) const {
  return regs_.at(static_cast<std::size_t>(index));
}

void RegisterDecoder::set_reg(int index, std::uint32_t value) {
  regs_.at(static_cast<std::size_t>(index)) = value;
}

void RegisterDecoder::comb() {
  port_.gnt.write(true);  // always ready to absorb request cells
  if (!rsp_queue_.empty()) {
    port_.drive_response(rsp_queue_.front());
  } else {
    port_.idle_response();
  }
}

void RegisterDecoder::edge() {
  // One stamp compare while nothing anywhere commits a change: the pins
  // read below are frozen and the queues are only mutated here, so an edge
  // that proved itself a no-op stays a no-op.
  const std::uint64_t stamp = ctx_->change_stamp();
  if (was_idle_ && stamp == idle_stamp_) return;
  was_idle_ = false;
  idle_stamp_ = stamp;
  const bool rsp_fire =
      !rsp_queue_.empty() && port_.r_req.read() && port_.r_gnt.read();
  const bool req_fire = port_.req.read() && port_.gnt.read();
  if (!rsp_fire && !req_fire) {
    was_idle_ = true;
    return;
  }
  if (rsp_fire) {
    rsp_queue_.pop_front();
    tag_.bump();
  }
  if (!req_fire) return;
  req_cells_.push_back(port_.sample_request());
  if (!req_cells_.back().eop) return;

  const auto& head = req_cells_.front();
  const Opcode opc = head.opc;
  const std::uint32_t off = head.add - base_;
  const bool in_range =
      head.add >= base_ &&
      off / 4 < static_cast<std::uint32_t>(regs_.size()) && off % 4 == 0;
  const bool legal = stbus::size_bytes(opc) == 4 && in_range;

  std::vector<std::uint8_t> rdata;
  RspOpcode status = legal ? RspOpcode::kOk : RspOpcode::kError;
  if (legal) {
    auto& r = regs_[off / 4];
    const std::uint32_t old = r;
    if (stbus::is_store(opc) || stbus::is_atomic(opc)) {
      const auto w =
          stbus::extract_request_data(opc, head.add, req_cells_,
                                      port_.bus_bytes);
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(w[static_cast<std::size_t>(i)])
             << (8 * i);
      }
      if (opc == Opcode::kRmw4) {
        r |= v;  // atomic OR
      } else {
        r = v;   // plain store and SWAP both write the new value
      }
    }
    if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
      const std::uint32_t v = stbus::is_atomic(opc) ? old : r;
      for (int i = 0; i < 4; ++i) {
        rdata.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
  } else if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
    rdata.assign(static_cast<std::size_t>(stbus::size_bytes(opc)), 0);
  }
  auto cells = stbus::build_response(opc, head.add, rdata, status,
                                     port_.bus_bytes, type_, head.src,
                                     head.tid);
  rsp_queue_.insert(rsp_queue_.end(), cells.begin(), cells.end());
  tag_.bump();
  req_cells_.clear();
}

}  // namespace crve::rtl
