// STBus type converter: joins two ports speaking different protocol types
// (e.g. the t2/t3 converters between the nodes of paper Fig. 1). The data
// width may also differ; the packet shapes are rebuilt per side.
#pragma once

#include "rtl/bridge.h"

namespace crve::rtl {

class TypeConverter : public Bridge {
 public:
  TypeConverter(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
                stbus::ProtocolType up_type, stbus::PortPins& downstream,
                stbus::ProtocolType dn_type);
};

}  // namespace crve::rtl
