#include "rtl/arbiter.h"

#include <stdexcept>

namespace crve::rtl {

using stbus::ArbPolicy;

Arbiter::Arbiter(const stbus::NodeConfig& cfg, int resource)
    : policy_(cfg.arb),
      n_(cfg.n_initiators),
      resource_(resource),
      prio_(cfg.priorities),
      last_grant_(static_cast<std::size_t>(cfg.n_initiators)),
      wait_(static_cast<std::size_t>(cfg.n_initiators), 0),
      deadline_(cfg.latency_deadline),
      tokens_(cfg.bandwidth_quota),
      quota_(cfg.bandwidth_quota),
      window_(cfg.bandwidth_window) {
  // Seed LRU recency so that, before any grant, lower indices win.
  for (int i = 0; i < n_; ++i) {
    last_grant_[static_cast<std::size_t>(i)] = i - n_;
  }
}

int Arbiter::pick(std::uint32_t eligible) const {
  if (eligible == 0) return -1;
  switch (policy_) {
    case ArbPolicy::kFixedPriority:
    case ArbPolicy::kProgrammable:
      return pick_priority(eligible);
    case ArbPolicy::kRoundRobin:
      return pick_round_robin(eligible);
    case ArbPolicy::kLru:
      return pick_lru(eligible);
    case ArbPolicy::kLatencyBased:
      return pick_latency(eligible);
    case ArbPolicy::kBandwidthLimited:
      return pick_bandwidth(eligible);
  }
  return -1;
}

int Arbiter::pick_priority(std::uint32_t eligible) const {
  int best = -1;
  for (int i = 0; i < n_; ++i) {
    if (!((eligible >> i) & 1u)) continue;
    if (best < 0 || prio_[static_cast<std::size_t>(i)] >
                        prio_[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

int Arbiter::pick_round_robin(std::uint32_t eligible) const {
  for (int k = 0; k < n_; ++k) {
    const int i = (rr_ptr_ + k) % n_;
    if ((eligible >> i) & 1u) return i;
  }
  return -1;
}

int Arbiter::pick_lru(std::uint32_t eligible) const {
  int best = -1;
  for (int i = 0; i < n_; ++i) {
    if (!((eligible >> i) & 1u)) continue;
    if (best < 0 || last_grant_[static_cast<std::size_t>(i)] <
                        last_grant_[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

int Arbiter::pick_latency(std::uint32_t eligible) const {
  int best = -1;
  long best_urgency = 0;
  for (int i = 0; i < n_; ++i) {
    if (!((eligible >> i) & 1u)) continue;
    const long urgency = static_cast<long>(wait_[static_cast<std::size_t>(i)]) -
                         deadline_[static_cast<std::size_t>(i)];
    if (best < 0 || urgency > best_urgency) {
      best = i;
      best_urgency = urgency;
    }
  }
  return best;
}

int Arbiter::pick_bandwidth(std::uint32_t eligible) const {
  // Token-holding requesters first; otherwise stay work-conserving and
  // fall back to everyone. Scan order shared with round-robin.
  std::uint32_t with_tokens = 0;
  for (int i = 0; i < n_; ++i) {
    const bool unlimited = quota_[static_cast<std::size_t>(i)] == 0;
    if (((eligible >> i) & 1u) &&
        (unlimited || tokens_[static_cast<std::size_t>(i)] > 0)) {
      with_tokens |= 1u << i;
    }
  }
  const std::uint32_t pool = with_tokens != 0 ? with_tokens : eligible;
  for (int k = 0; k < n_; ++k) {
    const int i = (rr_ptr_ + k) % n_;
    if ((pool >> i) & 1u) return i;
  }
  return -1;
}

void Arbiter::on_edge(std::uint64_t next_cycle, int granted,
                      std::uint32_t requesting) {
  // Latency wait counters: grow while requesting ungranted, clear otherwise.
  for (int i = 0; i < n_; ++i) {
    auto& w = wait_[static_cast<std::size_t>(i)];
    if (((requesting >> i) & 1u) && i != granted) {
      ++w;
    } else {
      w = 0;
    }
  }
  if (granted >= 0) {
    last_grant_[static_cast<std::size_t>(granted)] =
        static_cast<std::int64_t>(next_cycle);
    rr_ptr_ = (granted + 1) % n_;
    auto& t = tokens_[static_cast<std::size_t>(granted)];
    if (quota_[static_cast<std::size_t>(granted)] > 0 && t > 0) --t;
  }
  // Bandwidth window refill at window boundaries.
  if (window_ > 0 && next_cycle % static_cast<std::uint64_t>(window_) == 0) {
    tokens_ = quota_;
  }
}

void Arbiter::set_priority(int initiator, int prio) {
  if (initiator < 0 || initiator >= n_) {
    throw std::out_of_range("Arbiter::set_priority");
  }
  prio_[static_cast<std::size_t>(initiator)] = prio;
}

}  // namespace crve::rtl
