#include "rtl/bridge.h"

#include <stdexcept>
#include <utility>

#include "stbus/packet.h"

namespace crve::rtl {

using stbus::ProtocolType;
using stbus::Request;
using stbus::RequestCell;
using stbus::ResponseCell;
using stbus::RspOpcode;

Bridge::Bridge(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
               ProtocolType up_type, stbus::PortPins& downstream,
               ProtocolType dn_type)
    : name_(std::move(name)),
      up_(upstream),
      dn_(downstream),
      up_type_(up_type),
      dn_type_(dn_type) {
  // Design-lint declaration: the FSM samples each payload slice only in the
  // matching phase; all pin writes happen in comb().
  sim::ClockedOpts edge_decl;
  edge_decl.reads = up_.request_signals();
  edge_decl.reads.push_back(&up_.gnt);
  edge_decl.reads.push_back(&up_.r_req);
  edge_decl.reads.push_back(&up_.r_gnt);
  for (const auto* s : dn_.response_signals()) edge_decl.reads.push_back(s);
  edge_decl.reads.push_back(&dn_.req);
  edge_decl.reads.push_back(&dn_.gnt);
  edge_decl.reads.push_back(&dn_.r_gnt);
  ctx.add_clocked(name_ + ".edge", [this] { edge(); }, std::move(edge_decl));
  // comb() reads no signals, only edge-owned members: the StateTag is its
  // whole sensitivity list under the compiled schedule. The replay payloads
  // are driven only in their FSM phase — declared for the design linter.
  sim::CombOpts opts;
  opts.state = &tag_;
  opts.writes = dn_.request_signals();
  for (const auto* s : up_.response_signals()) opts.writes.push_back(s);
  ctx.add_comb(name_ + ".comb", [this] { comb(); }, std::move(opts));
}

void Bridge::comb() {
  // Upstream request side.
  up_.gnt.write(state_ == State::kAccept);
  // Downstream request side.
  if (state_ == State::kReplayReq) {
    dn_.drive_request(dn_req_cells_[replay_idx_]);
  } else {
    dn_.idle_request();
  }
  // Downstream response side.
  dn_.r_gnt.write(state_ == State::kWaitRsp);
  // Upstream response side.
  if (state_ == State::kReplayRsp) {
    up_.drive_response(up_rsp_cells_[replay_idx_]);
  } else {
    up_.idle_response();
  }
}

void Bridge::edge() {
  const State before_state = state_;
  const std::size_t before_idx = replay_idx_;
  edge_fsm();
  if (state_ != before_state || replay_idx_ != before_idx) tag_.bump();
}

void Bridge::edge_fsm() {
  switch (state_) {
    case State::kAccept: {
      if (!(up_.req.read() && up_.gnt.read())) break;
      up_req_cells_.push_back(up_.sample_request());
      const RequestCell& cell = up_req_cells_.back();
      if (!cell.eop) break;

      // Full request packet absorbed; rebuild for the downstream port.
      const RequestCell& head = up_req_cells_.front();
      Request req;
      req.opc = head.opc;
      req.add = head.add;
      req.src = head.src;
      req.tid = head.tid;
      req.lck = cell.lck;  // chunk continuation flag lives on the last cell
      if (stbus::is_store(req.opc) || stbus::is_atomic(req.opc)) {
        req.wdata = stbus::extract_request_data(req.opc, req.add,
                                                up_req_cells_, up_.bus_bytes);
      }
      dn_req_cells_ = stbus::build_request(req, dn_.bus_bytes, dn_type_);
      // Preserve the chunk flag on the rebuilt final cell.
      dn_req_cells_.back().lck = req.lck;
      rsp_cells_expected_ =
          stbus::response_cells(req.opc, dn_.bus_bytes, dn_type_);
      replay_idx_ = 0;
      state_ = State::kReplayReq;
      break;
    }
    case State::kReplayReq: {
      if (!(dn_.req.read() && dn_.gnt.read())) break;
      if (++replay_idx_ == dn_req_cells_.size()) {
        dn_rsp_cells_.clear();
        state_ = State::kWaitRsp;
      }
      break;
    }
    case State::kWaitRsp: {
      if (!(dn_.r_req.read() && dn_.r_gnt.read())) break;
      dn_rsp_cells_.push_back(dn_.sample_response());
      if (static_cast<int>(dn_rsp_cells_.size()) < rsp_cells_expected_) break;

      // Rebuild the upstream response.
      const RequestCell& head = up_req_cells_.front();
      RspOpcode status = RspOpcode::kOk;
      for (const auto& c : dn_rsp_cells_) {
        if (c.opc != RspOpcode::kOk) status = RspOpcode::kError;
      }
      std::vector<std::uint8_t> rdata;
      if (stbus::is_load(head.opc) || stbus::is_atomic(head.opc)) {
        rdata = stbus::extract_response_data(head.opc, head.add,
                                             dn_rsp_cells_, dn_.bus_bytes);
      }
      up_rsp_cells_ =
          stbus::build_response(head.opc, head.add, rdata, status,
                                up_.bus_bytes, up_type_, head.src, head.tid);
      replay_idx_ = 0;
      ++stats_.transactions;
      if (status != RspOpcode::kOk) ++stats_.errors;
      state_ = State::kReplayRsp;
      break;
    }
    case State::kReplayRsp: {
      if (!(up_.r_req.read() && up_.r_gnt.read())) break;
      if (++replay_idx_ == up_rsp_cells_.size()) {
        up_req_cells_.clear();
        state_ = State::kAccept;
      }
      break;
    }
  }
}

}  // namespace crve::rtl
