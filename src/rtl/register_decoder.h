// STBus register decoder: a simple register-file target IP.
//
// Decodes word accesses into an array of 32-bit registers, the fourth of
// the paper's basic interconnect components. It is also handy as a
// deterministic reference slave in unit tests. Only 4-byte operations are
// legal; anything else (or an out-of-range word index) gets an ERROR
// response. Fixed 1-cycle acceptance, response offered the cycle after the
// request packet completes.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::rtl {

class RegisterDecoder {
 public:
  RegisterDecoder(sim::Context& ctx, std::string name, stbus::PortPins& port,
                  stbus::ProtocolType type, std::uint32_t base_address,
                  int n_regs);

  std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);

 private:
  void comb();
  void edge();

  std::string name_;
  sim::Context* ctx_ = nullptr;
  stbus::PortPins& port_;
  stbus::ProtocolType type_;
  std::uint32_t base_;
  std::vector<std::uint32_t> regs_;

  std::vector<stbus::RequestCell> req_cells_;
  std::deque<stbus::ResponseCell> rsp_queue_;
  // Idle-edge memo against the kernel's global change stamp: a decoder with
  // nothing queued and no handshake firing stays idle for free while nothing
  // anywhere commits a change.
  mutable bool was_idle_ = false;
  mutable std::uint64_t idle_stamp_ = 0;
  // Bumped on every rsp_queue_ mutation; re-dirties the combinational
  // process under the compiled schedule.
  sim::StateTag tag_;
};

}  // namespace crve::rtl
