#include "rtl/node.h"

#include <stdexcept>
#include <utility>

namespace crve::rtl {

using stbus::Opcode;
using stbus::PortPins;
using stbus::RequestCell;
using stbus::ResponseCell;
using stbus::RspOpcode;

Node::Node(sim::Context& ctx, stbus::NodeConfig cfg,
           std::vector<PortPins*> initiator_ports,
           std::vector<PortPins*> target_ports, PortPins* prog_port)
    : cfg_(std::move(cfg)),
      ctx_(&ctx),
      iports_(std::move(initiator_ports)),
      tports_(std::move(target_ports)),
      prog_(prog_port) {
  cfg_.validate_and_normalize();
  if (static_cast<int>(iports_.size()) != cfg_.n_initiators ||
      static_cast<int>(tports_.size()) != cfg_.n_targets) {
    throw std::invalid_argument("rtl::Node: port count mismatch");
  }
  if (cfg_.programming_port && prog_ == nullptr) {
    throw std::invalid_argument("rtl::Node: programming port pins missing");
  }
  const int nres = cfg_.num_resources();
  arbs_.reserve(static_cast<std::size_t>(nres));
  for (int r = 0; r < nres; ++r) {
    arbs_.push_back(std::make_unique<Arbiter>(cfg_, r));
  }
  req_owner_.assign(static_cast<std::size_t>(nres), -1);
  treg_.resize(static_cast<std::size_t>(cfg_.n_targets));
  ireg_.resize(static_cast<std::size_t>(cfg_.n_initiators));
  rsp_owner_.assign(static_cast<std::size_t>(cfg_.n_initiators), -1);
  rsp_rr_.assign(static_cast<std::size_t>(cfg_.n_initiators), 0);
  errq_.resize(static_cast<std::size_t>(cfg_.n_initiators));
  stats_.grants.assign(static_cast<std::size_t>(cfg_.n_initiators), 0);

  // Design-lint declaration for the edge process: payloads are sampled only
  // for the winning/completing port, so recording sees a fraction of these.
  // All outputs go through the combinational blocks — the edge writes none.
  sim::ClockedOpts edge_decl;
  for (const PortPins* p : iports_) {
    for (const auto* s : p->request_signals()) edge_decl.reads.push_back(s);
    edge_decl.reads.push_back(&p->r_gnt);
  }
  for (const PortPins* p : tports_) {
    for (const auto* s : p->response_signals()) edge_decl.reads.push_back(s);
    edge_decl.reads.push_back(&p->gnt);
  }
  if (prog_ != nullptr) {
    edge_decl.reads.push_back(&prog_->req);
    edge_decl.reads.push_back(&prog_->opc);
    edge_decl.reads.push_back(&prog_->add);
    edge_decl.reads.push_back(&prog_->data);
  }
  ctx.add_clocked(cfg_.name + ".edge", [this] { edge(); },
                  std::move(edge_decl));
  // One combinational process per synthesizable block, arbitration first so
  // the per-port blocks read settled decision wires within the same delta.
  //
  // Compiled-schedule contracts: the arbitration block declares the full
  // pin superset its decision functions may read (discovery only sees the
  // all-idle branches); the per-port blocks that consume the decision
  // "wires" (plain members, not signals) order themselves after it; blocks
  // reading edge-owned registers depend on the node's StateTag.
  sim::CombOpts arb_opts;
  arb_opts.state = &tag_;
  for (const PortPins* p : iports_) {
    arb_opts.reads.push_back(&p->req);
    arb_opts.reads.push_back(&p->add);
    arb_opts.reads.push_back(&p->r_gnt);
  }
  for (const PortPins* p : tports_) {
    arb_opts.reads.push_back(&p->gnt);
    arb_opts.reads.push_back(&p->r_req);
    arb_opts.reads.push_back(&p->r_src);
  }
  ctx.add_comb(cfg_.name + ".arb", [this] { comb_arbitration(); },
               std::move(arb_opts));
  sim::CombOpts after_arb;
  after_arb.after.push_back(cfg_.name + ".arb");
  sim::CombOpts tagged;
  tagged.state = &tag_;
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    ctx.add_comb(cfg_.name + ".ignt" + std::to_string(i),
                 [this, i] { comb_initiator_gnt(i); }, after_arb);
    // Response payload is driven only while a cell is registered; declare
    // the conditional writes for the design-lint view.
    sim::CombOpts irsp_opts = tagged;
    irsp_opts.writes =
        iports_[static_cast<std::size_t>(i)]->response_signals();
    ctx.add_comb(cfg_.name + ".irsp" + std::to_string(i),
                 [this, i] { comb_initiator_rsp(i); }, std::move(irsp_opts));
  }
  for (int t = 0; t < cfg_.n_targets; ++t) {
    sim::CombOpts treq_opts = tagged;
    treq_opts.writes =
        tports_[static_cast<std::size_t>(t)]->request_signals();
    ctx.add_comb(cfg_.name + ".treq" + std::to_string(t),
                 [this, t] { comb_target_req(t); }, std::move(treq_opts));
    sim::CombOpts rgnt_opts = after_arb;
    rgnt_opts.reads.push_back(&tports_[static_cast<std::size_t>(t)]->r_req);
    rgnt_opts.reads.push_back(&tports_[static_cast<std::size_t>(t)]->r_src);
    ctx.add_comb(cfg_.name + ".trgnt" + std::to_string(t),
                 [this, t] { comb_target_rgnt(t); }, std::move(rgnt_opts));
  }
  if (prog_ != nullptr) {
    ctx.add_comb(cfg_.name + ".prog", [this] { comb_prog(); }, tagged);
  }
}

bool Node::idle_cycle() const {
  // While no signal anywhere commits a change, an idle node's inputs are
  // unchanged and an idle edge mutates nothing the check reads, so the
  // answer cannot flip: one stamp compare replaces the full scan.
  const std::uint64_t stamp = ctx_->change_stamp();
  if (was_idle_ && stamp == idle_stamp_) return true;
  was_idle_ = false;
  idle_stamp_ = stamp;
  for (const PortPins* p : iports_) {
    if (p->req.read()) return false;
  }
  for (const PortPins* p : tports_) {
    if (p->r_req.read()) return false;
  }
  for (const auto& r : treg_) {
    if (r.valid) return false;
  }
  for (const auto& r : ireg_) {
    if (r.valid) return false;
  }
  for (const auto& q : errq_) {
    if (!q.empty()) return false;
  }
  if (prog_ != nullptr && (prog_gnt_ || prog_->req.read())) return false;
  for (const auto& a : arbs_) {
    if (!a->quiescent()) return false;
  }
  was_idle_ = true;
  return true;
}

int Node::request_target(int initiator) const {
  const PortPins& p = *iports_[static_cast<std::size_t>(initiator)];
  if (!p.req.read()) return -1;
  const int t = cfg_.route(static_cast<std::uint32_t>(p.add.read()));
  return t < 0 ? -2 : t;
}

bool Node::treg_can_accept(int target) const {
  const auto& r = treg_[static_cast<std::size_t>(target)];
  // Empty, or the target is consuming the held cell this cycle.
  return !r.valid || tports_[static_cast<std::size_t>(target)]->gnt.read();
}

bool Node::ireg_can_accept(int initiator) const {
  const auto& r = ireg_[static_cast<std::size_t>(initiator)];
  return !r.valid || iports_[static_cast<std::size_t>(initiator)]->r_gnt.read();
}

Node::ReqDecision Node::decide_requests() const {
  const int nres = cfg_.num_resources();
  ReqDecision d;
  d.winner.assign(static_cast<std::size_t>(nres), -1);
  d.requesting.assign(static_cast<std::size_t>(nres), 0);

  std::vector<std::uint32_t> eligible(static_cast<std::size_t>(nres), 0);
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    const int t = request_target(i);
    if (t == -1) continue;
    if (t == -2) {
      // Decode error: the node absorbs the packet unconditionally.
      d.gnt_mask |= 1u << i;
      d.error_mask |= 1u << i;
      continue;
    }
    const int r = cfg_.resource_of_target(t);
    d.requesting[static_cast<std::size_t>(r)] |= 1u << i;
    if (treg_can_accept(t)) eligible[static_cast<std::size_t>(r)] |= 1u << i;
  }

  for (int r = 0; r < nres; ++r) {
    const int owner = req_owner_[static_cast<std::size_t>(r)];
    int w;
    if (owner >= 0) {
      // Allocation held: only the owner may continue its packet/chunk.
      w = ((eligible[static_cast<std::size_t>(r)] >> owner) & 1u) ? owner : -1;
    } else {
      w = arbs_[static_cast<std::size_t>(r)]->pick(
          eligible[static_cast<std::size_t>(r)]);
    }
    d.winner[static_cast<std::size_t>(r)] = w;
    if (w >= 0) d.gnt_mask |= 1u << w;
  }
  return d;
}

Node::RspDecision Node::decide_responses() const {
  const int T = cfg_.n_targets;
  RspDecision d;
  d.source.assign(static_cast<std::size_t>(cfg_.n_initiators), kNoSource);

  // Which target currently offers a response cell to which initiator.
  std::vector<int> dest(static_cast<std::size_t>(T), -1);
  for (int t = 0; t < T; ++t) {
    const PortPins& p = *tports_[static_cast<std::size_t>(t)];
    if (!p.r_req.read()) continue;
    const int i = static_cast<int>(p.r_src.read());
    if (i >= 0 && i < cfg_.n_initiators) dest[static_cast<std::size_t>(t)] = i;
  }

  for (int i = 0; i < cfg_.n_initiators; ++i) {
    if (!ireg_can_accept(i)) continue;
    auto offers = [&](int s) {
      if (s < T) return dest[static_cast<std::size_t>(s)] == i;
      return !errq_[static_cast<std::size_t>(i)].empty();
    };
    const int owner = rsp_owner_[static_cast<std::size_t>(i)];
    if (owner >= 0) {
      // Mid-packet: only the owning source may continue.
      if (offers(owner)) d.source[static_cast<std::size_t>(i)] = owner;
      continue;
    }
    const int start = rsp_rr_[static_cast<std::size_t>(i)];
    for (int k = 0; k <= T; ++k) {
      const int s = (start + k) % (T + 1);
      if (offers(s)) {
        d.source[static_cast<std::size_t>(i)] = s;
        break;
      }
    }
  }

  // Shared bus: the response datapath carries one cell per cycle node-wide.
  if (cfg_.arch == stbus::Architecture::kSharedBus) {
    int chosen = -1;
    for (int k = 0; k < cfg_.n_initiators; ++k) {
      const int i = (rsp_shared_rr_ + k) % cfg_.n_initiators;
      if (d.source[static_cast<std::size_t>(i)] != kNoSource) {
        chosen = i;
        break;
      }
    }
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      if (i != chosen) d.source[static_cast<std::size_t>(i)] = kNoSource;
    }
  }
  return d;
}

void Node::comb_arbitration() {
  req_wires_ = decide_requests();
  rsp_wires_ = decide_responses();
}

void Node::comb_initiator_gnt(int i) {
  iports_[static_cast<std::size_t>(i)]->gnt.write(
      (req_wires_.gnt_mask >> i) & 1u);
}

void Node::comb_initiator_rsp(int i) {
  PortPins& p = *iports_[static_cast<std::size_t>(i)];
  const auto& r = ireg_[static_cast<std::size_t>(i)];
  if (r.valid) {
    p.drive_response(r.cell);
  } else {
    p.idle_response();
  }
}

void Node::comb_target_req(int t) {
  PortPins& p = *tports_[static_cast<std::size_t>(t)];
  const auto& r = treg_[static_cast<std::size_t>(t)];
  if (r.valid) {
    p.drive_request(r.cell);
  } else {
    p.idle_request();
  }
}

void Node::comb_target_rgnt(int t) {
  const PortPins& p = *tports_[static_cast<std::size_t>(t)];
  bool g = false;
  if (p.r_req.read()) {
    const int i = static_cast<int>(p.r_src.read());
    if (i >= 0 && i < cfg_.n_initiators) {
      g = rsp_wires_.source[static_cast<std::size_t>(i)] == t;
    }
  }
  tports_[static_cast<std::size_t>(t)]->r_gnt.write(g);
}

void Node::comb_prog() {
  prog_->gnt.write(prog_gnt_);
  prog_->r_req.write(prog_gnt_);
  prog_->r_eop.write(prog_gnt_);
  prog_->r_opc.write(static_cast<std::uint64_t>(
      prog_err_ ? RspOpcode::kError : RspOpcode::kOk));
  prog_->r_data.write(
      crve::Bits(prog_->bus_bytes * 8, prog_is_load_ ? prog_rdata_ : 0));
}

void Node::edge() {
  if (idle_cycle()) {
    // Provably a no-op beyond the cycle counter (arbiters quiescent, no
    // cells in flight): skip the decision recompute entirely.
    ++edge_count_;
    return;
  }
  tag_.bump();
  // Decisions recomputed from the settled values of the ending cycle;
  // identical to what comb() last produced.
  const ReqDecision rd = decide_requests();
  const RspDecision sd = decide_responses();
  const int T = cfg_.n_targets;
  const int nres = cfg_.num_resources();

  // --- response path: drain, then fill ----------------------------------
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    auto& r = ireg_[static_cast<std::size_t>(i)];
    if (r.valid && iports_[static_cast<std::size_t>(i)]->r_gnt.read()) {
      r.valid = false;
    }
  }
  bool any_rsp = false;
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    const int s = sd.source[static_cast<std::size_t>(i)];
    if (s == kNoSource) continue;
    any_rsp = true;
    ResponseCell cell;
    if (s < T) {
      cell = tports_[static_cast<std::size_t>(s)]->sample_response();
    } else {
      auto& q = errq_[static_cast<std::size_t>(i)];
      ErrDesc& e = q.front();
      cell.opc = RspOpcode::kError;
      cell.data = crve::Bits(cfg_.bus_bytes * 8);
      cell.src = static_cast<std::uint8_t>(i);
      cell.tid = e.tid;
      cell.eop = e.cells_left == 1;
      if (--e.cells_left == 0) q.pop_front();
    }
    ireg_[static_cast<std::size_t>(i)] = {true, cell};
    rsp_owner_[static_cast<std::size_t>(i)] = cell.eop ? -1 : s;
    if (rsp_owner_[static_cast<std::size_t>(i)] == -1) {
      rsp_rr_[static_cast<std::size_t>(i)] = (s + 1) % (T + 1);
    }
    ++stats_.response_cells;
  }
  if (cfg_.arch == stbus::Architecture::kSharedBus && any_rsp) {
    // Advance past the initiator served this cycle.
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      if (sd.source[static_cast<std::size_t>(i)] != kNoSource) {
        rsp_shared_rr_ = (i + 1) % cfg_.n_initiators;
        break;
      }
    }
  }

  // --- request path: drain, then fill ------------------------------------
  for (int t = 0; t < T; ++t) {
    auto& r = treg_[static_cast<std::size_t>(t)];
    if (r.valid && tports_[static_cast<std::size_t>(t)]->gnt.read()) {
      r.valid = false;
    }
  }
  const std::uint64_t next_cycle =
      /* cycle counter only feeds arbiter windows */ ++edge_count_;
  for (int r = 0; r < nres; ++r) {
    const int w = rd.winner[static_cast<std::size_t>(r)];
    if (w >= 0) {
      RequestCell cell = iports_[static_cast<std::size_t>(w)]->sample_request();
      cell.src = static_cast<std::uint8_t>(w);
      const int t = cfg_.route(cell.add);
      treg_[static_cast<std::size_t>(t)] = {true, cell};
      req_owner_[static_cast<std::size_t>(r)] = cell.lck ? w : -1;
      ++stats_.request_cells;
      ++stats_.grants[static_cast<std::size_t>(w)];
    }
    arbs_[static_cast<std::size_t>(r)]->on_edge(
        next_cycle, w, rd.requesting[static_cast<std::size_t>(r)]);
  }

  // --- decode-error sinks -------------------------------------------------
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    if (!((rd.error_mask >> i) & 1u)) continue;
    const RequestCell cell =
        iports_[static_cast<std::size_t>(i)]->sample_request();
    if (cell.eop) {
      errq_[static_cast<std::size_t>(i)].push_back(
          {cell.opc, cell.tid,
           stbus::response_cells(cell.opc, cfg_.bus_bytes, cfg_.type)});
      ++stats_.decode_errors;
    }
  }

  if (prog_ != nullptr) prog_edge();
}

void Node::prog_edge() {
  if (prog_gnt_) {
    // Acknowledge cycle just completed; ignore held req this cycle.
    prog_gnt_ = false;
    return;
  }
  if (!prog_->req.read()) return;
  const auto opc = static_cast<Opcode>(prog_->opc.read());
  const auto addr = static_cast<std::uint32_t>(prog_->add.read());
  const int index = static_cast<int>(addr / 4);
  prog_is_load_ = stbus::is_load(opc);
  prog_err_ = index < 0 || index >= cfg_.n_initiators;
  prog_rdata_ = 0;
  if (!prog_err_) {
    if (prog_is_load_) {
      prog_rdata_ = static_cast<std::uint32_t>(
          arbs_.front()->priority(index));
    } else {
      const auto v = static_cast<int>(prog_->data.read().to_u64() &
                                      0xffffffffull);
      for (auto& a : arbs_) a->set_priority(index, v);
    }
  }
  prog_gnt_ = true;
}

}  // namespace crve::rtl
