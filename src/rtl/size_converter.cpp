#include "rtl/size_converter.h"

#include <stdexcept>

namespace crve::rtl {

SizeConverter::SizeConverter(sim::Context& ctx, std::string name,
                             stbus::PortPins& upstream,
                             stbus::PortPins& downstream,
                             stbus::ProtocolType type)
    : Bridge(ctx, std::move(name), upstream, type, downstream, type) {
  if (upstream.bus_bytes == downstream.bus_bytes) {
    throw std::invalid_argument("SizeConverter: ports have equal width");
  }
}

}  // namespace crve::rtl
