// STBus size converter: joins two ports of different data widths under the
// same protocol type (e.g. the 64/32 converter of paper Fig. 1).
#pragma once

#include "rtl/bridge.h"

namespace crve::rtl {

class SizeConverter : public Bridge {
 public:
  SizeConverter(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
                stbus::PortPins& downstream, stbus::ProtocolType type);
};

}  // namespace crve::rtl
