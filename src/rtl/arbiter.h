// Arbitration policy engine for the RTL-view node.
//
// Implements the six STBus node policies. The exact decision rules are part
// of the node's timing specification (DESIGN.md §4) and the BCA view
// re-implements them independently; any divergence shows up as a lowered
// STBA alignment rate, which is precisely the paper's methodology.
//
// Decision inputs are bitmasks of *eligible* initiators (requesting, routed
// to this arbiter's resource, downstream able to accept). All tie-breaks go
// to the lower initiator index.
#pragma once

#include <cstdint>
#include <vector>

#include "stbus/config.h"

namespace crve::rtl {

class Arbiter {
 public:
  // `resource` identifies which node resource this arbiter serves (for
  // diagnostics only; policy state is per-arbiter).
  Arbiter(const stbus::NodeConfig& cfg, int resource);

  // Picks a winner among eligible initiators; -1 when mask is empty.
  // Pure: does not mutate state (kernel comb processes may call it
  // repeatedly while settling).
  int pick(std::uint32_t eligible) const;

  // State updates, applied once per clock edge by the node:
  // `granted` is the winner actually granted this cycle (-1 if none),
  // `requesting` the mask of initiators that held req during the cycle.
  void on_edge(std::uint64_t next_cycle, int granted,
               std::uint32_t requesting);

  // True when on_edge(next_cycle, -1, 0) is provably a no-op: no latency
  // wait counters pending and bandwidth tokens already at their quota.
  // Lets the node skip whole idle cycles without touching arbiter state.
  bool quiescent() const {
    for (const int w : wait_) {
      if (w != 0) return false;
    }
    return window_ <= 0 || tokens_ == quota_;
  }

  // Programmable-priority register file (also readable for kFixedPriority).
  void set_priority(int initiator, int prio);
  int priority(int initiator) const {
    return prio_[static_cast<std::size_t>(initiator)];
  }

  int resource() const { return resource_; }

 private:
  int pick_priority(std::uint32_t eligible) const;
  int pick_round_robin(std::uint32_t eligible) const;
  int pick_lru(std::uint32_t eligible) const;
  int pick_latency(std::uint32_t eligible) const;
  int pick_bandwidth(std::uint32_t eligible) const;

  stbus::ArbPolicy policy_;
  int n_;
  int resource_;

  std::vector<int> prio_;          // fixed / programmable priorities
  int rr_ptr_ = 0;                 // round-robin & bandwidth scan pointer
  std::vector<std::int64_t> last_grant_;  // LRU recency
  std::vector<int> wait_;          // latency-based wait counters
  std::vector<int> deadline_;
  std::vector<int> tokens_;        // bandwidth tokens
  std::vector<int> quota_;
  int window_;
};

}  // namespace crve::rtl
