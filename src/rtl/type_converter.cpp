#include "rtl/type_converter.h"

#include <stdexcept>

namespace crve::rtl {

TypeConverter::TypeConverter(sim::Context& ctx, std::string name,
                             stbus::PortPins& upstream,
                             stbus::ProtocolType up_type,
                             stbus::PortPins& downstream,
                             stbus::ProtocolType dn_type)
    : Bridge(ctx, std::move(name), upstream, up_type, downstream, dn_type) {
  if (up_type == dn_type) {
    throw std::invalid_argument("TypeConverter: ports have equal type");
  }
}

}  // namespace crve::rtl
