#include "regress/config_file.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crve::regress {

using stbus::ArbPolicy;
using stbus::Architecture;
using stbus::NodeConfig;
using stbus::ProtocolType;

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Whole-value integer; rejects trailing junk ("4x") so a typo can't
// silently truncate. The message names the key and the offending value.
int parse_int(const std::string& v, const std::string& key) {
  std::size_t pos = 0;
  int out = 0;
  try {
    out = std::stoi(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != v.size()) {
    throw std::invalid_argument(key + ": bad integer '" + v + "'");
  }
  return out;
}

std::vector<int> parse_int_list(const std::string& v, const std::string& key) {
  std::vector<int> out;
  std::istringstream is(v);
  std::string item;
  while (std::getline(is, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    out.push_back(parse_int(item, key));
  }
  return out;
}

Architecture parse_arch(const std::string& v) {
  if (v == "shared") return Architecture::kSharedBus;
  if (v == "full") return Architecture::kFullCrossbar;
  if (v == "partial") return Architecture::kPartialCrossbar;
  throw std::invalid_argument("arch: unknown value '" + v +
                              "' (accepted: shared, full, partial)");
}

ArbPolicy parse_arb(const std::string& v) {
  if (v == "fixed") return ArbPolicy::kFixedPriority;
  if (v == "rr") return ArbPolicy::kRoundRobin;
  if (v == "lru") return ArbPolicy::kLru;
  if (v == "latency") return ArbPolicy::kLatencyBased;
  if (v == "bandwidth") return ArbPolicy::kBandwidthLimited;
  if (v == "prog") return ArbPolicy::kProgrammable;
  throw std::invalid_argument(
      "arb: unknown value '" + v +
      "' (accepted: fixed, rr, lru, latency, bandwidth, prog)");
}

}  // namespace

NodeConfig parse_config(std::istream& is, const std::string& origin) {
  NodeConfig cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Both comment styles, whole-line or trailing (see config_file.h).
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto slashes = line.find("//");
    if (slashes != std::string::npos) line.erase(slashes);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(origin + ":" + std::to_string(lineno) +
                                  ": expected key=value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    try {
      if (key == "name") {
        cfg.name = val;
      } else if (key == "n_initiators") {
        cfg.n_initiators = parse_int(val, key);
      } else if (key == "n_targets") {
        cfg.n_targets = parse_int(val, key);
      } else if (key == "bus_bytes") {
        cfg.bus_bytes = parse_int(val, key);
      } else if (key == "type") {
        if (val != "2" && val != "3") {
          throw std::invalid_argument("type: bad value '" + val +
                                      "' (accepted: 2, 3)");
        }
        cfg.type = val == "2" ? ProtocolType::kType2 : ProtocolType::kType3;
      } else if (key == "arch") {
        cfg.arch = parse_arch(val);
      } else if (key == "arb") {
        cfg.arb = parse_arb(val);
      } else if (key == "programming_port") {
        cfg.programming_port = parse_int(val, key) != 0;
      } else if (key == "priorities") {
        cfg.priorities = parse_int_list(val, key);
      } else if (key == "latency_deadline") {
        cfg.latency_deadline = parse_int_list(val, key);
      } else if (key == "bandwidth_quota") {
        cfg.bandwidth_quota = parse_int_list(val, key);
      } else if (key == "bandwidth_window") {
        cfg.bandwidth_window = parse_int(val, key);
      } else if (key == "xbar_group") {
        cfg.xbar_group = parse_int_list(val, key);
      } else {
        throw std::invalid_argument("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(origin + ":" + std::to_string(lineno) +
                                  ": " + e.what());
    }
  }
  cfg.validate_and_normalize();
  return cfg;
}

NodeConfig parse_config_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("config: cannot open " + path);
  return parse_config(is, path);
}

std::string format_config(const stbus::NodeConfig& cfg) {
  std::ostringstream os;
  os << "name = " << cfg.name << "\n";
  os << "n_initiators = " << cfg.n_initiators << "\n";
  os << "n_targets = " << cfg.n_targets << "\n";
  os << "bus_bytes = " << cfg.bus_bytes << "\n";
  os << "type = " << (cfg.type == ProtocolType::kType2 ? 2 : 3) << "\n";
  os << "arch = "
     << (cfg.arch == Architecture::kSharedBus
             ? "shared"
             : cfg.arch == Architecture::kFullCrossbar ? "full" : "partial")
     << "\n";
  const char* arb = "fixed";
  switch (cfg.arb) {
    case ArbPolicy::kFixedPriority:
      arb = "fixed";
      break;
    case ArbPolicy::kRoundRobin:
      arb = "rr";
      break;
    case ArbPolicy::kLru:
      arb = "lru";
      break;
    case ArbPolicy::kLatencyBased:
      arb = "latency";
      break;
    case ArbPolicy::kBandwidthLimited:
      arb = "bandwidth";
      break;
    case ArbPolicy::kProgrammable:
      arb = "prog";
      break;
  }
  os << "arb = " << arb << "\n";
  os << "programming_port = " << (cfg.programming_port ? 1 : 0) << "\n";
  auto list = [&os](const char* key, const std::vector<int>& v) {
    if (v.empty()) return;
    os << key << " = ";
    for (std::size_t i = 0; i < v.size(); ++i) {
      os << (i ? "," : "") << v[i];
    }
    os << "\n";
  };
  list("priorities", cfg.priorities);
  list("latency_deadline", cfg.latency_deadline);
  list("bandwidth_quota", cfg.bandwidth_quota);
  os << "bandwidth_window = " << cfg.bandwidth_window << "\n";
  list("xbar_group", cfg.xbar_group);
  return os.str();
}

std::vector<stbus::NodeConfig> configs_from_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".cfg") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<stbus::NodeConfig> out;
  out.reserve(files.size());
  for (const auto& f : files) out.push_back(parse_config_file(f));
  return out;
}

}  // namespace crve::regress
