// Node configuration files for the regression tool.
//
// The paper's regression tool "can load text files defining HDL parameters
// of each configuration; it's sufficient to indicate the directory to which
// the tool has to point". This module parses/serializes that key=value
// format:
//
//   name            = node_a
//   n_initiators    = 3
//   n_targets       = 2
//   bus_bytes       = 4        # data width in bytes (8..256 bits)
//   type            = 2        # 2 or 3
//   arch            = full     # shared | full | partial
//   arb             = lru      # fixed | rr | lru | latency | bandwidth | prog
//   programming_port= 0
//   # optional per-initiator lists, comma separated
//   priorities      = 0,1,2
//   latency_deadline= 4,10,16
//   bandwidth_quota = 8,0,0
//   bandwidth_window= 64
//   xbar_group      = 0,0,1    # per target (partial crossbar)
//
// Comments: everything from a '#' or a "//" to the end of the line is
// stripped, whether the comment is the whole line or trails a key=value
// pair; blank lines are ignored. Parse errors name the offending key and,
// for enum-like fields (arch, arb, type), the accepted values.
//
// `crve_lint` checks the same grammar plus the semantic rules the parser
// cannot express file-locally (DESIGN.md §12); `crve_regress` runs it over
// the config directory before planning unless --no-lint is given.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "stbus/config.h"

namespace crve::regress {

// Parses one configuration; throws std::invalid_argument with a line-tagged
// message on malformed input.
stbus::NodeConfig parse_config(std::istream& is, const std::string& origin);
stbus::NodeConfig parse_config_file(const std::string& path);

// Serializes a configuration in the same format (round-trippable).
std::string format_config(const stbus::NodeConfig& cfg);

// Loads every "*.cfg" file in a directory, sorted by filename.
std::vector<stbus::NodeConfig> configs_from_dir(const std::string& dir);

}  // namespace crve::regress
