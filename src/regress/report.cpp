#include "regress/report.h"

#include <sstream>

#include "common/build_info.h"
#include "regress/runner.h"

namespace crve::regress {

namespace {

const char* bool_str(bool b) { return b ? "true" : "false"; }

// Stable lowercase view identifiers for machine consumption.
const char* view_str(verif::ModelKind m) {
  switch (m) {
    case verif::ModelKind::kRtl:
      return "rtl";
    case verif::ModelKind::kBca:
      return "bca";
    case verif::ModelKind::kBcaWrapped:
      return "bca_wrapped";
  }
  return "unknown";
}

// Embeds a pre-rendered multi-line JSON value (no trailing newline, inner
// lines at column 0) so it nests at depth `in` inside the enclosing object.
void write_embedded_json(std::ostream& os, const std::string& json,
                         const std::string& in) {
  for (char c : json) {
    os << c;
    if (c == '\n') os << in;
  }
}

// Per-port alignment detail for one pair, mirroring the crve_stba --json
// port entries so the drift gate reads both documents with one walker.
void write_ports(std::ostream& os, const stba::AlignmentReport& rep,
                 const std::string& in) {
  os << ", \"ports\": [";
  for (std::size_t i = 0; i < rep.ports.size(); ++i) {
    const stba::PortAlignment& p = rep.ports[i];
    os << (i == 0 ? "\n" : ",\n") << in << "{\"port\": \""
       << json_escape(p.port) << "\", \"rate\": " << json_number(p.rate())
       << ", \"aligned_cycles\": " << p.aligned_cycles
       << ", \"total_cycles\": " << p.total_cycles
       << ", \"diverged\": " << (p.diverged() ? "true" : "false");
    if (p.diverged()) {
      os << ", \"first_divergence\": " << p.first_divergence
         << ", \"diverged_signals\": [";
      for (std::size_t s = 0; s < p.diverged_signals.size(); ++s) {
        os << (s == 0 ? "" : ", ") << "\"" << json_escape(p.diverged_signals[s])
           << "\"";
      }
      os << "]";
    }
    if (!p.note.empty()) {
      os << ", \"note\": \"" << json_escape(p.note) << "\"";
    }
    os << ", \"cells_a\": " << p.cells_a << ", \"cells_b\": " << p.cells_b
       << ", \"cells_matching\": " << p.cells_matching << "}";
  }
  os << (rep.ports.empty() ? "]" : "\n" + in.substr(2) + "]");
}

// Writes one RegressionResult as a JSON object at the given indent depth.
// with_build prefixes the build-provenance stamp — set for top-level
// documents only, so the stamp appears once per artifact.
void write_result(std::ostream& os, const RegressionResult& r,
                  bool with_timing, const std::string& in,
                  bool with_build = false) {
  const std::string in1 = in + "  ";
  const std::string in2 = in1 + "  ";
  os << "{\n";
  if (with_build) {
    os << in1 << "\"build\": ";
    write_embedded_json(os, build_info_json(), in1);
    os << ",\n";
  }
  os << in1 << "\"config\": \"" << json_escape(r.config_name) << "\",\n";
  os << in1 << "\"rtl_passed\": " << bool_str(r.rtl_passed) << ",\n";
  os << in1 << "\"bca_passed\": " << bool_str(r.bca_passed) << ",\n";
  os << in1 << "\"coverage_match\": " << bool_str(r.coverage_match) << ",\n";
  os << in1 << "\"mean_coverage_rtl\": " << json_number(r.mean_coverage_rtl)
     << ",\n";
  os << in1 << "\"min_alignment\": " << json_number(r.min_alignment) << ",\n";
  os << in1 << "\"alignment_threshold\": "
     << json_number(r.alignment_threshold) << ",\n";
  os << in1 << "\"signed_off\": " << bool_str(r.signed_off) << ",\n";
  // Cache provenance: present exactly when pairs were replayed, carrying
  // the build stamp the replayed entries originated from. The baseline
  // differ treats a presence change here as a note, never as drift.
  if (r.cached_pairs > 0) {
    os << in1 << "\"cache\": {\n";
    os << in2 << "\"cached_pairs\": " << r.cached_pairs << ",\n";
    os << in2 << "\"build\": ";
    write_embedded_json(os, r.cache_build_json, in2);
    os << "\n" << in1 << "},\n";
  }
  if (with_timing) {
    os << in1 << "\"wall_ms\": " << json_number(r.wall_ms) << ",\n";
  }
  os << in1 << "\"runs\": [";
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const TestOutcome& o = r.outcomes[i];
    os << (i == 0 ? "\n" : ",\n") << in2 << "{\"test\": \""
       << json_escape(o.test) << "\", \"seed\": " << o.seed
       << ", \"view\": \"" << view_str(o.model) << "\""
       << ", \"passed\": " << bool_str(o.result.passed())
       << ", \"completed\": " << bool_str(o.result.completed)
       << ", \"cycles\": " << o.result.cycles
       << ", \"checker_violations\": " << o.result.checker_violations
       << ", \"scoreboard_errors\": " << o.result.scoreboard_errors
       << ", \"reference_mismatches\": " << o.result.reference_mismatches
       << ", \"coverage_percent\": " << json_number(o.result.coverage_percent)
       << ", \"coverage_digest\": " << json_hex(o.result.coverage_digest);
    if (o.result.toggle_percent >= 0.0) {
      os << ", \"toggle_percent\": " << json_number(o.result.toggle_percent);
    }
    // Evaluation counts are a kernel cost metric, not a semantic result:
    // they ride with the timing fields so the timing-free report is
    // byte-identical across --sim-kernel choices.
    if (with_timing) {
      os << ", \"evaluations\": " << o.result.evaluations
         << ", \"wall_ms\": " << json_number(o.wall_ms);
    }
    if (o.cached) os << ", \"cached\": true";
    os << "}";
  }
  os << (r.outcomes.empty() ? "]" : "\n" + in1 + "]") << ",\n";
  os << in1 << "\"alignments\": [";
  for (std::size_t i = 0; i < r.alignments.size(); ++i) {
    const AlignmentOutcome& a = r.alignments[i];
    os << (i == 0 ? "\n" : ",\n") << in2 << "{\"test\": \""
       << json_escape(a.test) << "\", \"seed\": " << a.seed
       << ", \"min_rate\": " << json_number(a.report.min_rate())
       << ", \"mean_rate\": " << json_number(a.report.mean_rate())
       << ", \"signed_off\": "
       << bool_str(a.report.signed_off(r.alignment_threshold));
    if (with_timing) os << ", \"wall_ms\": " << json_number(a.wall_ms);
    if (a.cached) os << ", \"cached\": true";
    write_ports(os, a.report, in2 + "  ");
    os << "}";
  }
  os << (r.alignments.empty() ? "]" : "\n" + in1 + "]");
  // Optional deterministic metrics section (stable metrics only; present
  // exactly when the campaign ran with metrics collection enabled, so
  // uninstrumented reports stay byte-identical to previous versions).
  if (!r.metrics_json.empty()) {
    os << ",\n" << in1 << "\"metrics\": ";
    write_embedded_json(os, r.metrics_json, in1);
  }
  // Optional transaction-latency section (RunPlan::txn_trace_out): the
  // stable merged span aggregate plus the dual-view delta join. Present
  // exactly when the campaign traced transactions, so untraced reports
  // stay byte-identical to previous versions.
  if (!r.txn.empty()) {
    os << ",\n" << in1 << "\"txn_latency\": {\n";
    os << in2 << "\"txn\": " << obs::txn_json(r.txn, false, in2) << ",\n";
    os << in2 << "\"delta\": " << obs::txn_delta_json(r.txn_delta, in2)
       << "\n";
    os << in1 << "}";
  }
  os << "\n" << in << "}";
}

}  // namespace

std::string RegressionResult::json(bool with_timing) const {
  std::ostringstream os;
  write_result(os, *this, with_timing, "", /*with_build=*/true);
  os << "\n";
  return os.str();
}

std::string MatrixResult::json(bool with_timing) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"build\": ";
  write_embedded_json(os, build_info_json(), "  ");
  os << ",\n";
  os << "  \"all_signed_off\": " << bool_str(all_signed_off) << ",\n";
  if (with_timing) {
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"wall_ms\": " << json_number(wall_ms) << ",\n";
  }
  os << "  \"configs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_result(os, results[i], with_timing, "    ");
  }
  os << (results.empty() ? "]" : "\n  ]");
  if (!metrics_json.empty()) {
    os << ",\n  \"metrics\": ";
    write_embedded_json(os, metrics_json, "  ");
  }
  if (!txn.empty()) {
    os << ",\n  \"txn_latency\": {\n";
    os << "    \"txn\": " << obs::txn_json(txn, false, "    ") << ",\n";
    os << "    \"delta\": " << obs::txn_delta_json(txn_delta, "    ") << "\n";
    os << "  }";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace crve::regress
