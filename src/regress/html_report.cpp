#include "regress/html_report.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/build_info.h"
#include "common/json.h"
#include "obs/profiler.h"
#include "regress/report.h"

namespace crve::regress {

namespace {

// Sequential blue ramp (steps 100..700), light->dark. Misalignment maps
// onto it so healthy cells recede toward the surface and hot cells darken.
constexpr const char* kRamp[13] = {
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b"};

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Rate as a percentage with deterministic shortest round-trip formatting.
std::string pct(double rate) { return json::number(100.0 * rate) + "%"; }

// Ramp level for a misalignment fraction. sqrt stretches the interesting
// low end (a 1% misalignment already reads as level 2 of 12).
int ramp_level(double misalignment) {
  if (misalignment <= 0.0) return 0;
  const int level =
      static_cast<int>(std::ceil(std::sqrt(misalignment) * 12.0));
  return std::min(std::max(level, 1), 12);
}

const char* bool_icon(bool ok) { return ok ? "&#10003;" : "&#10007;"; }

// Status chip: icon + label, never color alone.
void chip(std::string& out, bool ok, const std::string& label) {
  out += "<span class=\"chip ";
  out += ok ? "good" : "critical";
  out += "\">";
  out += bool_icon(ok);
  out += " ";
  out += html_escape(label);
  out += "</span>";
}

// Horizontal percentage bar (coverage), 120x12 inline SVG. The value label
// is rendered by the caller in ink, not inside the SVG.
void pct_bar(std::string& out, double percent) {
  const double clamped = std::min(std::max(percent, 0.0), 100.0);
  const int w = static_cast<int>(std::lround(clamped * 1.2));
  out += "<svg class=\"bar\" viewBox=\"0 0 120 12\" width=\"120\" "
         "height=\"12\" role=\"img\" aria-label=\"" +
         json::number(percent) + "%\">";
  out += "<rect x=\"0\" y=\"0\" width=\"120\" height=\"12\" rx=\"2\" "
         "class=\"bar-track\"/>";
  if (w > 0) {
    out += "<rect x=\"0\" y=\"0\" width=\"" + std::to_string(w) +
           "\" height=\"12\" rx=\"2\" class=\"bar-fill\"/>";
  }
  out += "</svg>";
}

// log2 histogram as a thin-bar inline SVG: one bar per bucket over the
// populated range, 2px gaps, selective labels (first/last bucket bound).
void histogram_svg(std::string& out, const obs::HistogramValue& h) {
  int lo = obs::kHistBuckets, hi = -1;
  for (int k = 0; k < obs::kHistBuckets; ++k) {
    if (h.buckets[k] != 0) {
      lo = std::min(lo, k);
      hi = std::max(hi, k);
    }
  }
  if (hi < 0) {
    out += "<span class=\"muted\">empty</span>";
    return;
  }
  std::uint64_t max_count = 0;
  for (int k = lo; k <= hi; ++k) {
    max_count = std::max(max_count, h.buckets[k]);
  }
  const int n = hi - lo + 1;
  const int width = n * 10;
  out += "<svg class=\"hist\" viewBox=\"0 0 " + std::to_string(width) +
         " 64\" width=\"" + std::to_string(width) +
         "\" height=\"64\" role=\"img\">";
  out += "<line x1=\"0\" y1=\"48.5\" x2=\"" + std::to_string(width) +
         "\" y2=\"48.5\" class=\"hist-axis\"/>";
  for (int k = lo; k <= hi; ++k) {
    const std::uint64_t c = h.buckets[k];
    if (c == 0) continue;
    // Integer bar height in [1, 48], proportional to the tallest bucket.
    const int bh = static_cast<int>(
        std::max<std::uint64_t>(1, (c * 48 + max_count / 2) / max_count));
    const int x = (k - lo) * 10;
    out += "<rect x=\"" + std::to_string(x) + "\" y=\"" +
           std::to_string(48 - bh) + "\" width=\"8\" height=\"" +
           std::to_string(bh) + "\" rx=\"1\" class=\"hist-bar\"><title>[" +
           (k == 0 ? std::string("0, 1") : "2^" + std::to_string(k - 1) +
                                               ", 2^" + std::to_string(k)) +
           "): " + std::to_string(c) + "</title></rect>";
  }
  // Bound labels for the first and last populated bucket only.
  out += "<text x=\"0\" y=\"60\" class=\"hist-label\">" +
         (lo == 0 ? std::string("0") : "2^" + std::to_string(lo - 1)) +
         "</text>";
  if (n > 1) {
    out += "<text x=\"" + std::to_string(width) +
           "\" y=\"60\" text-anchor=\"end\" class=\"hist-label\">2^" +
           std::to_string(hi) + "</text>";
  }
  out += "</svg>";
}

const char* kStyle = R"css(
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series-1: #2a78d6;
  --good: #0ca30c; --critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series-1: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 8px; }
h3 { font-size: 13px; margin: 16px 0 6px; color: var(--ink-2);
     text-transform: uppercase; letter-spacing: .04em; }
header { margin-bottom: 20px; }
.build { color: var(--muted); margin: 2px 0 0; font-size: 12px; }
.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin-bottom: 16px;
}
.verdict { display: inline-block; font-weight: 600; margin: 6px 0 0;
           padding: 2px 10px; border-radius: 6px;
           border: 1px solid var(--border); }
.verdict.good { color: var(--good); }
.verdict.critical { color: var(--critical); }
.chip { display: inline-block; margin-right: 10px; font-size: 13px; }
.chip.good { color: var(--good); }
.chip.critical { color: var(--critical); }
table { border-collapse: collapse; }
th, td {
  text-align: left; padding: 3px 10px; font-size: 13px;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--muted); font-weight: 500; }
td.num, th.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
.pass { color: var(--good); }
.fail { color: var(--critical); font-weight: 600; }
a { color: var(--series-1); }
td.hm {
  text-align: center; min-width: 64px;
  font-variant-numeric: tabular-nums; font-size: 12px;
  border: 2px solid var(--surface);
}
td.hm.deep { color: #fcfcfb; }
td.hm.breach { font-weight: 700; }
td.hm.breach a { color: inherit; }
.bar-track { fill: var(--grid); }
.bar-fill { fill: var(--series-1); }
.hist-bar { fill: var(--series-1); }
.hist-axis { stroke: var(--axis); stroke-width: 1; }
.hist-label { fill: var(--muted); font-size: 9px; }
.muted { color: var(--muted); }
.tl-row { fill: var(--series-1); }
.tl-row.fail { fill: var(--critical); }
.tl-row.cached { fill: var(--axis); }
.tl-label { fill: var(--ink-2); font-size: 10px; }
.tl-axis { stroke: var(--axis); stroke-width: 1; }
footer { color: var(--muted); font-size: 12px; margin-top: 20px; }
)css";

void render_config(std::string& out, const RegressionResult& r,
                   const HtmlOptions& opts) {
  const std::string cfg_dir = html_escape(r.config_name) + "/";
  out += "<section class=\"card\">\n";
  out += "<h2>" + html_escape(r.config_name) + "</h2>\n";
  out += "<p>";
  chip(out, r.rtl_passed, "RTL");
  chip(out, r.bca_passed, "BCA");
  chip(out, r.coverage_match, "coverage match");
  chip(out, r.min_alignment >= r.alignment_threshold,
       "alignment " + pct(r.min_alignment) + " min");
  chip(out, r.signed_off, r.signed_off ? "signed off" : "not signed off");
  out += "</p>\n";

  // Pass/fail matrix per (test, seed): one row per pair, both views.
  out += "<h3>Runs</h3>\n<table>\n<tr><th>test</th><th class=\"num\">seed"
         "</th><th>RTL</th><th>BCA</th><th>coverage (RTL)</th>"
         "<th class=\"num\"></th></tr>\n";
  for (std::size_t p = 0; 2 * p + 1 < r.outcomes.size(); ++p) {
    const TestOutcome& rtl = r.outcomes[2 * p];
    const TestOutcome& bca = r.outcomes[2 * p + 1];
    out += "<tr><td>" + html_escape(rtl.test) + "</td><td class=\"num\">" +
           std::to_string(rtl.seed) + "</td>";
    for (const TestOutcome* o : {&rtl, &bca}) {
      const bool ok = o->result.passed();
      out += std::string("<td class=\"") + (ok ? "pass" : "fail") + "\">";
      out += bool_icon(ok);
      out += ok ? " pass" : " FAIL";
      if (!ok && opts.flight_links) {
        const char* view = o->model == verif::ModelKind::kRtl ? "rtl" : "bca";
        out += " <a href=\"" + cfg_dir +
               "flight_" + html_escape(sanitize_artifact_name(o->test)) +
               "_s" + std::to_string(o->seed) + "_" + view +
               ".log\">flight</a>";
      }
      out += "</td>";
    }
    out += "<td>";
    pct_bar(out, rtl.result.coverage_percent);
    out += "</td><td class=\"num\">" +
           json::number(rtl.result.coverage_percent) + "%</td></tr>\n";
  }
  out += "</table>\n";

  if (r.alignments.empty()) {
    out += "</section>\n";
    return;
  }

  // Port alignment heatmap: rows per (test, seed) pair, one column per
  // port (union across pairs in first-seen order). Cell shade encodes
  // misalignment; sub-threshold cells also carry the breach mark and the
  // triage link, so color never stands alone.
  std::vector<std::string> port_names;
  for (const AlignmentOutcome& a : r.alignments) {
    for (const auto& pa : a.report.ports) {
      if (std::find(port_names.begin(), port_names.end(), pa.port) ==
          port_names.end()) {
        port_names.push_back(pa.port);
      }
    }
  }
  out += "<h3>Port alignment</h3>\n<table>\n<tr><th>test</th>"
         "<th class=\"num\">seed</th>";
  for (const auto& name : port_names) {
    out += "<th>" + html_escape(name) + "</th>";
  }
  out += "</tr>\n";
  for (const AlignmentOutcome& a : r.alignments) {
    out += "<tr><td>" + html_escape(a.test) + "</td><td class=\"num\">" +
           std::to_string(a.seed) + "</td>";
    for (const auto& name : port_names) {
      const stba::PortAlignment* pa = nullptr;
      for (const auto& cand : a.report.ports) {
        if (cand.port == name) {
          pa = &cand;
          break;
        }
      }
      if (!pa) {
        out += "<td class=\"hm muted\">&mdash;</td>";
        continue;
      }
      const double rate = pa->rate();
      const bool breach = rate < r.alignment_threshold;
      const int level = ramp_level(1.0 - rate);
      out += "<td class=\"hm";
      if (level >= 8) out += " deep";
      if (breach) out += " breach";
      out += "\" style=\"background:" + std::string(kRamp[level]) + "\"";
      std::string title = html_escape(name) + ": " + pct(rate);
      if (pa->diverged()) {
        title += ", first divergence @" + std::to_string(pa->first_divergence);
      }
      if (!pa->note.empty()) title += " [" + html_escape(pa->note) + "]";
      out += " title=\"" + title + "\">";
      if (breach && opts.triage_links) {
        out += "<a href=\"" + cfg_dir +
               "triage_" + html_escape(sanitize_artifact_name(a.test)) +
               "_s" + std::to_string(a.seed) + ".json\">" + bool_icon(false) +
               " " + pct(rate) + "</a>";
      } else if (breach) {
        out += bool_icon(false);
        out += " " + pct(rate);
      } else {
        out += pct(rate);
      }
      out += "</td>";
    }
    out += "</tr>\n";
  }
  out += "</table>\n</section>\n";
}

// Kernel hotspot panel (DESIGN.md §15): rendered only when the campaign
// ran with --profile-out, so an unprofiled dashboard stays byte-identical
// to previous releases.
void render_hotspots(std::string& out, const obs::ProfileData& pd) {
  out += "<section class=\"card\">\n<h2>Kernel hotspots</h2>\n";
  out += "<p class=\"muted\">" + std::to_string(pd.runs) + " profiled runs, " +
         std::to_string(pd.cycles) + " cycles, " +
         json::number(static_cast<double>(pd.total_wall_ns()) / 1e6) +
         " ms in processes</p>\n";

  const auto hot = obs::top_hotspots(pd, 15);
  if (!hot.empty()) {
    const double total = static_cast<double>(pd.total_wall_ns());
    out += "<h3>Top processes by exclusive time</h3>\n<table>\n"
           "<tr><th>process</th><th>kind</th><th class=\"num\">rank</th>"
           "<th class=\"num\">evals</th><th class=\"num\">wall ms</th>"
           "<th>share</th><th class=\"num\"></th></tr>\n";
    for (const auto& p : hot) {
      const double share =
          total > 0.0 ? static_cast<double>(p.wall_ns) / total : 0.0;
      out += "<tr><td>" + html_escape(p.name) + "</td><td>" +
             (p.clocked ? "clocked" : "comb") + "</td><td class=\"num\">" +
             (p.rank < 0 ? std::string("&mdash;") : std::to_string(p.rank)) +
             "</td><td class=\"num\">" + std::to_string(p.evals) +
             "</td><td class=\"num\">" +
             json::number(static_cast<double>(p.wall_ns) / 1e6) + "</td><td>";
      pct_bar(out, 100.0 * share);
      out += "</td><td class=\"num\">" + pct(share) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  if (!pd.ranks.empty()) {
    out += "<h3>Rank occupancy</h3>\n<table>\n"
           "<tr><th class=\"num\">rank</th><th class=\"num\">processes</th>"
           "<th class=\"num\">evals</th><th class=\"num\">skips</th>"
           "<th>occupancy</th><th class=\"num\"></th></tr>\n";
    for (const auto& r : pd.ranks) {
      const std::uint64_t scheduled = r.evals + r.skips;
      const double occ = scheduled == 0
                             ? 0.0
                             : static_cast<double>(r.evals) /
                                   static_cast<double>(scheduled);
      out += "<tr><td class=\"num\">" + std::to_string(r.rank) +
             "</td><td class=\"num\">" + std::to_string(r.processes) +
             "</td><td class=\"num\">" + std::to_string(r.evals) +
             "</td><td class=\"num\">" + std::to_string(r.skips) + "</td><td>";
      pct_bar(out, 100.0 * occ);
      out += "</td><td class=\"num\">" + pct(occ) + "</td></tr>\n";
    }
    out += "</table>\n";
  }

  // Skip effectiveness: the most-scheduled comb processes and how often the
  // change-driven kernel proved them idle.
  std::vector<obs::ProcProfile> sched;
  for (const auto& p : pd.procs) {
    if (!p.clocked && p.evals + p.skips > 0) sched.push_back(p);
  }
  std::sort(sched.begin(), sched.end(),
            [](const obs::ProcProfile& a, const obs::ProcProfile& b) {
              const std::uint64_t sa = a.evals + a.skips;
              const std::uint64_t sb = b.evals + b.skips;
              if (sa != sb) return sa > sb;
              return a.name < b.name;
            });
  if (sched.size() > 15) sched.resize(15);
  if (!sched.empty()) {
    out += "<h3>Skip effectiveness (most-scheduled comb processes)</h3>\n"
           "<table>\n<tr><th>process</th><th class=\"num\">scheduled</th>"
           "<th class=\"num\">skipped</th><th>skip rate</th>"
           "<th class=\"num\"></th></tr>\n";
    for (const auto& p : sched) {
      const double rate = obs::skip_rate(p);
      out += "<tr><td>" + html_escape(p.name) + "</td><td class=\"num\">" +
             std::to_string(p.evals + p.skips) + "</td><td class=\"num\">" +
             std::to_string(p.skips) + "</td><td>";
      pct_bar(out, 100.0 * rate);
      out += "</td><td class=\"num\">" + pct(rate) + "</td></tr>\n";
    }
    out += "</table>\n";
  }
  out += "</section>\n";
}

// Design health panel (DESIGN.md §17): the elaboration-time shape of each
// (config, view) pair from the crve_regress design-lint preflight. Rendered
// only when the campaign ran with the gate enabled, so a dashboard from a
// --no-design-lint run stays byte-identical to previous releases.
void render_design_health(std::string& out,
                          const std::vector<DesignHealth>& rows) {
  out += "<section class=\"card\">\n<h2>Design health</h2>\n";
  out += "<p class=\"muted\">elaboration-time structure per view "
         "(crve_lint --design; CRVE100&ndash;CRVE110)</p>\n";
  out += "<table>\n<tr><th>config</th><th>view</th>"
         "<th class=\"num\">signals</th><th class=\"num\">comb</th>"
         "<th class=\"num\">clocked</th><th class=\"num\">ranks</th>"
         "<th class=\"num\">max fanout</th><th>widest signal</th>"
         "<th class=\"num\">E</th><th class=\"num\">W</th>"
         "<th class=\"num\">N</th></tr>\n";
  for (const DesignHealth& h : rows) {
    out += "<tr><td>" + html_escape(h.config) + "</td><td>" +
           html_escape(h.view) + "</td><td class=\"num\">" +
           std::to_string(h.signals) + "</td><td class=\"num\">" +
           std::to_string(h.comb_processes) + "</td><td class=\"num\">" +
           std::to_string(h.clocked_processes) + "</td><td class=\"num\">" +
           std::to_string(h.ranks) + "</td><td class=\"num\">" +
           std::to_string(h.max_fanout) + "</td><td>" +
           html_escape(h.max_fanout_signal) + "</td><td class=\"num\">" +
           std::to_string(h.errors) + "</td><td class=\"num\">" +
           std::to_string(h.warnings) + "</td><td class=\"num\">" +
           std::to_string(h.notes) + "</td></tr>\n";
  }
  out += "</table>\n</section>\n";
}

// Upper bound of the smallest log2 bucket holding quantile q of the
// histogram's mass, as a printable cycle count ("<= bound"). Exact enough
// for a dashboard: the JSON artifacts carry the full buckets.
std::string hist_quantile_bound(const obs::HistogramValue& h, double q) {
  if (h.count == 0) return "&mdash;";
  const std::uint64_t want = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.count)));
  std::uint64_t cum = 0;
  for (int b = 0; b < obs::kHistBuckets; ++b) {
    cum += h.buckets[b];
    if (cum >= want) {
      if (b == 0) return "0";
      if (b >= 64) return "2^64";
      return std::to_string(std::uint64_t{1} << b);
    }
  }
  return "2^64";
}

// Splits a campaign-level span label "<config>:<test>:s<seed>:<view>" back
// into its parts; returns false for per-run (unlabelled) spans.
bool split_span_label(const std::string& label, std::string& config,
                      std::string& test, std::string& seed) {
  const std::size_t c1 = label.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c3 = label.rfind(':');
  const std::size_t c2 = label.rfind(':', c3 - 1);
  if (c2 == std::string::npos || c2 <= c1 || c3 <= c2) return false;
  config = label.substr(0, c1);
  test = label.substr(c1 + 1, c2 - c1 - 1);
  if (c2 + 2 > c3 || label[c2 + 1] != 's') return false;
  seed = label.substr(c2 + 2, c3 - c2 - 2);
  return true;
}

// Transaction latency panel (DESIGN.md §16): rendered only when the
// campaign ran with --txn-trace-out, so an untraced dashboard stays
// byte-identical to previous releases.
void render_txn(std::string& out, const obs::TxnTraceData& td,
                const obs::TxnDeltaStats& delta, const HtmlOptions& opts) {
  out += "<section class=\"card\">\n<h2>Transaction latency</h2>\n";
  out += "<p>";
  out += "<span class=\"chip\">" + std::to_string(td.total_spans()) +
         " transactions across " + std::to_string(td.runs) + " runs</span>";
  const std::uint64_t orphans = td.total_orphans();
  if (orphans > 0) {
    chip(out, false, std::to_string(orphans) + " orphan responses");
  }
  std::uint64_t incomplete = 0;
  for (const auto& p : td.ports) incomplete += p.incomplete;
  if (incomplete > 0) {
    chip(out, false, std::to_string(incomplete) + " incomplete spans");
  }
  out += "</p>\n";

  // Per-port end-to-end percentiles (log2 bucket upper bounds) plus the
  // per-hop means. The per-hop histograms live in the JSON artifacts.
  out += "<h3>Per-port latency (cycles)</h3>\n<table>\n"
         "<tr><th>port</th><th class=\"num\">spans</th>"
         "<th class=\"num\">p50 &le;</th><th class=\"num\">p90 &le;</th>"
         "<th class=\"num\">p99 &le;</th><th class=\"num\">mean queue</th>"
         "<th class=\"num\">mean service</th>"
         "<th class=\"num\">max in flight</th><th>total</th></tr>\n";
  auto mean = [](const obs::HistogramValue& h) {
    return h.count == 0
               ? std::string("&mdash;")
               : json::number(static_cast<double>(h.sum) /
                              static_cast<double>(h.count));
  };
  for (const auto& p : td.ports) {
    if (p.spans == 0 && p.orphan_responses > 0) continue;  // pseudo-port
    out += "<tr><td>" + html_escape(p.port) + "</td><td class=\"num\">" +
           std::to_string(p.spans) + "</td><td class=\"num\">" +
           hist_quantile_bound(p.total, 0.50) + "</td><td class=\"num\">" +
           hist_quantile_bound(p.total, 0.90) + "</td><td class=\"num\">" +
           hist_quantile_bound(p.total, 0.99) + "</td><td class=\"num\">" +
           mean(p.queue_wait) + "</td><td class=\"num\">" + mean(p.service) +
           "</td><td class=\"num\">" + std::to_string(p.max_in_flight) +
           "</td><td>";
    histogram_svg(out, p.total);
    out += "</td></tr>\n";
  }
  out += "</table>\n";

  // Dual-view latency differential: |BCA - RTL| per joined transaction.
  if (!delta.empty()) {
    out += "<h3>Dual-view latency delta (RTL vs BCA)</h3>\n";
    out += "<p class=\"muted\">" + std::to_string(delta.matched) +
           " joined transactions: " + std::to_string(delta.zero) +
           " identical, " + std::to_string(delta.positive) +
           " slower on BCA, " + std::to_string(delta.negative) +
           " faster on BCA";
    if (delta.only_a + delta.only_b > 0) {
      out += " (" + std::to_string(delta.only_a) + " RTL-only, " +
             std::to_string(delta.only_b) + " BCA-only)";
    }
    out += "</p>\n<p>|delta| distribution: ";
    histogram_svg(out, delta.abs_delta);
    out += "</p>\n";
    if (!delta.worst.empty()) {
      out += "<h3>Worst deltas</h3>\n<table>\n<tr><th>pair</th><th>port</th>"
             "<th>opc</th><th class=\"num\">src/tid/#</th>"
             "<th class=\"num\">RTL</th><th class=\"num\">BCA</th>"
             "<th class=\"num\">delta</th></tr>\n";
      for (const auto& w : delta.worst) {
        std::string cfg, test, seed;
        out += "<tr><td>";
        if (opts.triage_links && split_span_label(w.label, cfg, test, seed)) {
          out += "<a href=\"" + html_escape(cfg) + "/triage_" +
                 html_escape(sanitize_artifact_name(test)) + "_s" +
                 html_escape(seed) + ".json\">" + html_escape(w.label) +
                 "</a>";
        } else {
          out += html_escape(w.label);
        }
        out += "</td><td>" + html_escape(w.port) + "</td><td>" +
               html_escape(w.opc) + "</td><td class=\"num\">" +
               std::to_string(w.src) + "/" + std::to_string(w.tid) + "/" +
               std::to_string(w.seq) + "</td><td class=\"num\">" +
               std::to_string(w.total_a) + "</td><td class=\"num\">" +
               std::to_string(w.total_b) + "</td><td class=\"num\">" +
               std::to_string(w.delta()) + "</td></tr>\n";
      }
      out += "</table>\n";
    }
  }

  // Slowest transactions with their lifecycle timelines.
  if (!td.slowest.empty()) {
    out += "<h3>Slowest transactions</h3>\n<table>\n<tr><th>run</th>"
           "<th>port</th><th>opc</th><th class=\"num\">src/tid/#</th>"
           "<th class=\"num\">queue</th><th class=\"num\">request</th>"
           "<th class=\"num\">service</th><th class=\"num\">response</th>"
           "<th class=\"num\">total</th></tr>\n";
    for (const auto& s : td.slowest) {
      out += "<tr><td>" + html_escape(s.label) + "</td><td>" +
             html_escape(s.port) + "</td><td>" + html_escape(s.opc) +
             "</td><td class=\"num\">" + std::to_string(s.src) + "/" +
             std::to_string(s.tid) + "/" + std::to_string(s.seq) +
             "</td><td class=\"num\">" + std::to_string(s.queue_wait()) +
             "</td><td class=\"num\">" + std::to_string(s.request()) +
             "</td><td class=\"num\">" + std::to_string(s.service()) +
             "</td><td class=\"num\">" + std::to_string(s.response()) +
             "</td><td class=\"num\">" + std::to_string(s.total()) +
             "</td></tr>\n";
    }
    out += "</table>\n";
  }
  out += "</section>\n";
}

// Campaign timeline from the progress stream: one bar per finished job,
// completion order top to bottom, x = campaign-relative wall clock.
void render_timeline(std::string& out, const std::vector<JobRecord>& recs) {
  if (recs.empty()) return;
  double t_end = 0.0;
  for (const auto& r : recs) t_end = std::max(t_end, r.end_ms);
  if (t_end <= 0.0) t_end = 1.0;
  const int label_w = 260;
  const int plot_w = 640;
  const int row_h = 14;
  const int height = static_cast<int>(recs.size()) * row_h + 18;
  out += "<section class=\"card\">\n<h2>Campaign timeline</h2>\n";
  out += "<p class=\"muted\">" + std::to_string(recs.size()) +
         " jobs over " + json::number(t_end) +
         " ms (cached replays shown as ticks at their finish time)</p>\n";
  out += "<svg viewBox=\"0 0 " + std::to_string(label_w + plot_w + 10) +
         " " + std::to_string(height) + "\" width=\"" +
         std::to_string(label_w + plot_w + 10) + "\" height=\"" +
         std::to_string(height) + "\" role=\"img\">";
  int y = 0;
  for (const auto& r : recs) {
    const std::string label = r.config + ":" + r.test + ":s" +
                              std::to_string(r.seed) + ":" + r.view;
    const double x0 = r.start_ms / t_end * plot_w;
    const double x1 = r.end_ms / t_end * plot_w;
    const double w = std::max(x1 - x0, 1.0);
    std::string cls = "tl-row";
    if (r.verdict != "pass") cls += " fail";
    if (r.cached) cls += " cached";
    out += "<text x=\"" + std::to_string(label_w - 6) + "\" y=\"" +
           std::to_string(y * row_h + 11) +
           "\" text-anchor=\"end\" class=\"tl-label\">" + html_escape(label) +
           "</text>";
    out += "<rect x=\"" +
           json::number(label_w + x0) + "\" y=\"" +
           std::to_string(y * row_h + 2) + "\" width=\"" + json::number(w) +
           "\" height=\"" + std::to_string(row_h - 4) +
           "\" rx=\"2\" class=\"" + cls + "\"><title>" + html_escape(label) +
           ": " + html_escape(r.verdict) + ", " +
           json::number(r.end_ms - r.start_ms) + " ms</title></rect>";
    ++y;
  }
  out += "<line x1=\"" + std::to_string(label_w) + "\" y1=\"" +
         std::to_string(y * row_h + 2) + "\" x2=\"" +
         std::to_string(label_w + plot_w) + "\" y2=\"" +
         std::to_string(y * row_h + 2) + "\" class=\"tl-axis\"/>";
  out += "<text x=\"" + std::to_string(label_w) + "\" y=\"" +
         std::to_string(y * row_h + 14) + "\" class=\"tl-label\">0</text>";
  out += "<text x=\"" + std::to_string(label_w + plot_w) + "\" y=\"" +
         std::to_string(y * row_h + 14) +
         "\" text-anchor=\"end\" class=\"tl-label\">" + json::number(t_end) +
         " ms</text>";
  out += "</svg>\n</section>\n";
}

}  // namespace

std::string html_report(const MatrixResult& mres,
                        const obs::Registry::Snapshot* stable_metrics,
                        const HtmlOptions& opts) {
  const BuildInfo& b = build_info();
  std::string out;
  out.reserve(16 * 1024);
  out += "<!doctype html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n"
         "<meta name=\"viewport\" "
         "content=\"width=device-width, initial-scale=1\">\n"
         "<title>CRVE campaign dashboard</title>\n<style>";
  out += kStyle;
  out += "</style>\n</head>\n<body>\n<header>\n";
  out += "<h1>CRVE campaign dashboard</h1>\n";
  out += std::string("<p class=\"verdict ") +
         (mres.all_signed_off ? "good" : "critical") + "\">" +
         bool_icon(mres.all_signed_off) +
         (mres.all_signed_off ? " ALL SIGNED OFF" : " NOT SIGNED OFF") +
         "</p>\n";
  out += "<p class=\"build\">build " + html_escape(b.git_hash) + " &middot; " +
         html_escape(b.compiler) + " &middot; " + html_escape(b.build_type) +
         (b.sanitize ? " &middot; sanitized" : "") + "</p>\n";
  out += "</header>\n";

  for (const RegressionResult& r : mres.results) {
    render_config(out, r, opts);
  }

  if (!mres.design_health.empty()) {
    render_design_health(out, mres.design_health);
  }
  if (!mres.profile.empty()) render_hotspots(out, mres.profile);
  if (!mres.txn.empty()) render_txn(out, mres.txn, mres.txn_delta, opts);
  if (opts.timeline) render_timeline(out, *opts.timeline);

  if (stable_metrics) {
    const obs::Registry::Snapshot& snap = *stable_metrics;
    out += "<section class=\"card\">\n<h2>Campaign metrics</h2>\n";
    if (!snap.counters.empty() || !snap.gauges.empty()) {
      out += "<h3>Counters &amp; gauges</h3>\n<table>\n"
             "<tr><th>metric</th><th class=\"num\">value</th></tr>\n";
      for (const auto& [name, v] : snap.counters) {
        out += "<tr><td>" + html_escape(name) + "</td><td class=\"num\">" +
               std::to_string(v) + "</td></tr>\n";
      }
      for (const auto& [name, v] : snap.gauges) {
        out += "<tr><td>" + html_escape(name) +
               " <span class=\"muted\">(max)</span></td><td class=\"num\">" +
               std::to_string(v) + "</td></tr>\n";
      }
      out += "</table>\n";
    }
    if (!snap.histograms.empty()) {
      out += "<h3>Histograms (log2 buckets)</h3>\n<table>\n"
             "<tr><th>metric</th><th>distribution</th>"
             "<th class=\"num\">count</th><th class=\"num\">sum</th></tr>\n";
      for (const auto& [name, h] : snap.histograms) {
        out += "<tr><td>" + html_escape(name) + "</td><td>";
        histogram_svg(out, h);
        out += "</td><td class=\"num\">" + std::to_string(h.count) +
               "</td><td class=\"num\">" + std::to_string(h.sum) +
               "</td></tr>\n";
      }
      out += "</table>\n";
    }
    out += "</section>\n";
  }

  out += "<footer>crve_regress campaign dashboard &middot; schema in "
         "DESIGN.md &sect;11</footer>\n</body>\n</html>\n";
  return out;
}

}  // namespace crve::regress
