// crve_regress — the regression tool as a command-line batch runner.
//
// The paper's tool has a GUI for submitting HDL parameters and "runs
// regression tests in batch mode, through generic scripts that are design
// independent... it's sufficient to indicate the directory to which the
// tool has to point". This binary is that batch mode:
//
//   crve_regress --configs DIR [options]
//   crve_regress --sample-configs DIR        # write example .cfg files
//
// Options:
//   --configs DIR      run every *.cfg in DIR (sorted)
//   --out DIR          write VCDs, per-run reports, alignment reports
//   --seeds a,b,c      seeds to run every test with        (default: 1)
//   --tests t02,t05    subset of the CATG suite by prefix  (default: all 12)
//   --tx N             transactions per initiator per test (default: 60)
//   --threshold P      alignment sign-off threshold        (default: 0.99)
//   --fault NAME       inject a named BCA fault (see bca/faults.h)
//   --no-alignment     skip VCD dump + STBA comparison
//   --jobs N           worker threads for the (config,test,seed,view)
//                      matrix (default: 0 = one per hardware thread)
//   --json FILE        also write the batch JSON report to FILE
//   --no-triage        skip triage artifacts for below-threshold pairs
//   --triage-window N  excerpt half-width in cycles around the first
//                      divergence (default: 50)
//   --no-lint          skip the pre-flight crve_lint pass over the config
//                      directory and the campaign plan (DESIGN.md §12)
//
// Baseline drift gating (DESIGN.md §11):
//   --baseline FILE    compare this batch's report against a stored
//                      report.json; print the ranked drift summary and fail
//                      the gate on regressions beyond the thresholds
//   --diff FILE        write the drift findings as JSON (requires --baseline)
//   --gate-rate-drop X    max tolerated per-port alignment-rate drop as a
//                         fraction (default: 0.001 = 0.1pp)
//   --gate-coverage-drop X  max tolerated coverage drop in percentage
//                           points (default: 0 = any drop fails)
//
// Observability (DESIGN.md §10):
//   --metrics-out FILE enable metrics collection; write the full registry
//                      (timing metrics included) as JSON after the batch
//   --trace-out FILE   record phase spans; write a Chrome trace-event file
//                      loadable in Perfetto / chrome://tracing
//   --flight-recorder N
//                      keep the last N log lines (info and up) in a ring;
//                      a failing job dumps them next to its artifacts
//
// Exit status: 0 when every configuration signs off (and, with --baseline,
// no drift regression exceeds its threshold); 1 on campaign failure;
// 2 on usage errors or error-severity lint findings; 3 when the campaign
// passed but the drift gate failed.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "common/json.h"
#include "common/log.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regress/baseline.h"
#include "regress/config_file.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace {

using namespace crve;

int usage() {
  std::fprintf(stderr,
               "usage: crve_regress --configs DIR [--out DIR] [--seeds a,b]\n"
               "                    [--tests t02,t05] [--tx N] [--threshold P]\n"
               "                    [--fault NAME] [--no-alignment]\n"
               "                    [--jobs N] [--json FILE]\n"
               "                    [--no-triage] [--triage-window N]\n"
               "                    [--no-lint]\n"
               "                    [--baseline FILE] [--diff FILE]\n"
               "                    [--gate-rate-drop X] "
               "[--gate-coverage-drop X]\n"
               "                    [--metrics-out FILE] [--trace-out FILE]\n"
               "                    [--flight-recorder N]\n"
               "       crve_regress --sample-configs DIR\n");
  return 2;
}

bool set_fault(bca::Faults& f, const std::string& name) {
  if (name == "lru_stale_on_chunk") {
    f.lru_stale_on_chunk = true;
  } else if (name == "grant_during_lock") {
    f.grant_during_lock = true;
  } else if (name == "byte_enable_dropped") {
    f.byte_enable_dropped = true;
  } else if (name == "response_src_swap") {
    f.response_src_swap = true;
  } else if (name == "size_conv_endianness") {
    f.size_conv_endianness = true;
  } else if (name == "opcode_corrupt_on_busy") {
    f.opcode_corrupt_on_busy = true;
  } else if (name == "eop_one_cell_early") {
    f.eop_one_cell_early = true;
  } else if (name == "priority_register_ignored") {
    f.priority_register_ignored = true;
  } else {
    return false;
  }
  return true;
}

void write_sample_configs(const std::string& dir) {
  std::filesystem::create_directories(dir);
  auto write = [&dir](const char* name, stbus::NodeConfig cfg) {
    std::ofstream os(dir + "/" + name);
    os << regress::format_config(cfg);
  };
  stbus::NodeConfig a;
  a.name = "node_t2_xbar_lru";
  a.n_initiators = 3;
  a.n_targets = 2;
  a.arb = stbus::ArbPolicy::kLru;
  write("a_node_t2_xbar_lru.cfg", a);

  stbus::NodeConfig b;
  b.name = "node_t3_shared_latency";
  b.n_initiators = 4;
  b.n_targets = 2;
  b.type = stbus::ProtocolType::kType3;
  b.arch = stbus::Architecture::kSharedBus;
  b.arb = stbus::ArbPolicy::kLatencyBased;
  b.latency_deadline = {4, 8, 16, 32};
  write("b_node_t3_shared_latency.cfg", b);

  stbus::NodeConfig c;
  c.name = "node_t2_wide_prog";
  c.n_initiators = 2;
  c.n_targets = 2;
  c.bus_bytes = 16;
  c.arb = stbus::ArbPolicy::kProgrammable;
  c.programming_port = true;
  write("c_node_t2_wide_prog.cfg", c);
  std::printf("wrote 3 sample configurations to %s\n", dir.c_str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_dir, out_dir, sample_dir, json_path;
  std::string metrics_path, trace_path;
  std::string baseline_path, diff_path;
  regress::DriftThresholds gates;
  std::size_t flight_lines = 0;  // 0 = no flight recorder
  std::vector<std::uint64_t> seeds = {1};
  std::vector<std::string> test_filter;
  int tx = 60;
  double threshold = 0.99;
  bca::Faults faults;
  bool alignment = true;
  bool triage = true;
  bool lint = true;
  std::uint64_t triage_window = 50;
  unsigned jobs = 0;  // 0 = one worker per hardware thread

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--configs") {
      const char* v = next();
      if (!v) return usage();
      config_dir = v;
    } else if (arg == "--sample-configs") {
      const char* v = next();
      if (!v) return usage();
      sample_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_dir = v;
    } else if (arg == "--seeds") {
      const char* v = next();
      if (!v) return usage();
      seeds.clear();
      for (const auto& s : split_csv(v)) seeds.push_back(std::stoull(s));
    } else if (arg == "--tests") {
      const char* v = next();
      if (!v) return usage();
      test_filter = split_csv(v);
    } else if (arg == "--tx") {
      const char* v = next();
      if (!v) return usage();
      tx = std::stoi(v);
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return usage();
      threshold = std::stod(v);
    } else if (arg == "--fault") {
      const char* v = next();
      if (!v || !set_fault(faults, v)) {
        std::fprintf(stderr, "unknown fault '%s'\n", v ? v : "");
        return 2;
      }
    } else if (arg == "--no-alignment") {
      alignment = false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage();
      jobs = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else if (arg == "--no-triage") {
      triage = false;
    } else if (arg == "--no-lint") {
      lint = false;
    } else if (arg == "--triage-window") {
      const char* v = next();
      if (!v) return usage();
      triage_window = std::stoull(v);
    } else if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--diff") {
      const char* v = next();
      if (!v) return usage();
      diff_path = v;
    } else if (arg == "--gate-rate-drop") {
      const char* v = next();
      if (!v) return usage();
      gates.max_rate_drop = std::stod(v);
    } else if (arg == "--gate-coverage-drop") {
      const char* v = next();
      if (!v) return usage();
      gates.max_coverage_drop = std::stod(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage();
      metrics_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage();
      trace_path = v;
    } else if (arg == "--flight-recorder") {
      const char* v = next();
      if (!v) return usage();
      flight_lines = std::stoul(v);
    } else {
      return usage();
    }
  }
  } catch (const std::exception&) {
    // std::stoi/stoul/stod reject malformed numeric arguments.
    std::fprintf(stderr, "invalid numeric argument\n");
    return usage();
  }

  if (!sample_dir.empty()) {
    write_sample_configs(sample_dir);
    return 0;
  }
  if (config_dir.empty()) return usage();

  // Pre-flight lint: catch semantically broken configurations before any
  // testbench is built — a bad deadline list should fail in milliseconds,
  // not surface hours into a campaign. Errors stop the run; warnings and
  // notes are printed and the campaign proceeds.
  if (lint) {
    const auto lrep = crve::lint::lint_config_dir(config_dir);
    if (!lrep.findings.empty()) {
      std::fprintf(stderr, "%s", crve::lint::render_text(lrep).c_str());
    }
    if (lrep.exit_code() >= 2) {
      std::fprintf(stderr,
                   "lint: refusing to run a campaign over broken configs in "
                   "%s (--no-lint to bypass)\n",
                   config_dir.c_str());
      return 2;
    }
  }

  std::vector<stbus::NodeConfig> configs;
  try {
    configs = regress::configs_from_dir(config_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (configs.empty()) {
    std::fprintf(stderr, "no .cfg files in %s\n", config_dir.c_str());
    return 2;
  }

  std::vector<verif::TestSpec> tests;
  for (const auto& spec : verif::catg_test_suite()) {
    if (test_filter.empty()) {
      tests.push_back(spec);
      continue;
    }
    for (const auto& f : test_filter) {
      if (spec.name.rfind(f, 0) == 0) {
        tests.push_back(spec);
        break;
      }
    }
  }
  if (tests.empty()) {
    std::fprintf(stderr, "no tests match the --tests filter\n");
    return 2;
  }

  regress::RunPlan base;
  base.tests = tests;
  base.seeds = seeds;
  base.n_transactions = tx;
  base.run_alignment = alignment;
  base.alignment_threshold = threshold;
  base.faults = faults;
  base.out_dir = out_dir;
  base.jobs = jobs;
  base.run_triage = triage;
  base.triage_window = triage_window;

  if (!diff_path.empty() && baseline_path.empty()) {
    std::fprintf(stderr, "--diff requires --baseline\n");
    return usage();
  }

  // Campaign-plan sanity: duplicate (test, seed) rows and out-of-range
  // thresholds are user input the config files cannot vouch for.
  if (lint) {
    crve::lint::CampaignSpec spec;
    for (const auto& t : base.tests) spec.tests.push_back(t.name);
    spec.seeds = base.seeds;
    spec.alignment_threshold = base.alignment_threshold;
    const auto lrep = crve::lint::lint_campaign(spec);
    if (!lrep.findings.empty()) {
      std::fprintf(stderr, "%s", crve::lint::render_text(lrep).c_str());
    }
    if (lrep.exit_code() >= 2) {
      std::fprintf(stderr,
                   "lint: refusing to run a broken campaign plan "
                   "(--no-lint to bypass)\n");
      return 2;
    }
  }

  for (const auto& cfg : configs) {
    std::printf("=== %s ===\n", cfg.summary().c_str());
  }

  // Observability setup (all off by default; see DESIGN.md §10).
  if (!metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!trace_path.empty()) obs::trace_begin();
  std::unique_ptr<FlightRecorder> recorder;
  if (flight_lines > 0) {
    recorder = std::make_unique<FlightRecorder>(flight_lines);
    set_flight_recorder(recorder.get(), LogLevel::kInfo);
  }

  int exit_code = 1;
  try {
    const auto mres = regress::Regression::run_matrix(configs, base);
    for (const auto& res : mres.results) {
      std::printf("--- %s ---\n%s\n", res.config_name.c_str(),
                  res.summary().c_str());
    }
    std::printf("%s", mres.summary().c_str());
    exit_code = mres.all_signed_off ? 0 : 1;
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      os << mres.json();
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        exit_code = 1;
      }
    }
    if (!baseline_path.empty()) {
      std::ifstream bis(baseline_path);
      if (!bis) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << bis.rdbuf();
      const auto base_doc = crve::json::parse(buf.str());
      const auto cur_doc = crve::json::parse(mres.json());
      const auto drift = regress::compute_drift(base_doc, cur_doc, gates);
      std::printf("%s", drift.summary().c_str());
      if (!diff_path.empty()) {
        std::ofstream os(diff_path);
        os << drift.json();
        if (!os) {
          std::fprintf(stderr, "error: cannot write %s\n", diff_path.c_str());
          exit_code = exit_code == 0 ? 1 : exit_code;
        }
      }
      // The drift gate only refines a passing campaign; a hard campaign
      // failure keeps exit code 1.
      if (!drift.ok() && exit_code == 0) exit_code = 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    exit_code = 1;
  }

  // Flush observability outputs even when the batch failed or threw — a
  // broken campaign is exactly when the trace and metrics matter.
  if (!trace_path.empty()) {
    try {
      obs::trace_end_file(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    // Stamp build provenance as the leading member; the registry sections
    // keep their documented paths (.counters / .gauges / .histograms).
    std::string doc = obs::registry().json(/*include_timing=*/true);
    doc.insert(2, "  \"build\": " + build_info_json("  ") + ",\n");
    os << doc;
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  if (recorder) set_flight_recorder(nullptr);
  return exit_code;
}
