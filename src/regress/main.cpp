// crve_regress — the regression tool as a command-line batch runner.
//
// The paper's tool has a GUI for submitting HDL parameters and "runs
// regression tests in batch mode, through generic scripts that are design
// independent... it's sufficient to indicate the directory to which the
// tool has to point". This binary is that batch mode:
//
//   crve_regress --configs DIR [options]
//   crve_regress --sample-configs DIR        # write example .cfg files
//
// Options:
//   --configs DIR      run every *.cfg in DIR (sorted)
//   --out DIR          write VCDs, per-run reports, alignment reports
//   --seeds a,b,c      seeds to run every test with        (default: 1)
//   --tests t02,t05    subset of the CATG suite by prefix  (default: all 12)
//   --tx N             transactions per initiator per test (default: 60)
//   --threshold P      alignment sign-off threshold        (default: 0.99)
//   --fault NAME       inject a named BCA fault (see bca/faults.h)
//   --no-alignment     skip VCD dump + STBA comparison
//   --jobs N           worker threads for the (config,test,seed,view)
//                      matrix (default: 0 = one per hardware thread)
//   --json FILE        also write the batch JSON report to FILE
//   --sim-kernel K     simulation kernel: "compiled" (levelized static
//                      schedule, the default) or "interp" (reference
//                      delta-cycle interpreter, the escape hatch and the
//                      differential-testing baseline)
//   --no-triage        skip triage artifacts for below-threshold pairs
//   --triage-window N  excerpt half-width in cycles around the first
//                      divergence (default: 50)
//   --no-lint          skip the pre-flight crve_lint pass over the config
//                      directory and the campaign plan (DESIGN.md §12)
//   --no-design-lint   skip the pre-flight design lint (DESIGN.md §17):
//                      elaborate every configuration's testbench on both
//                      views (no simulation) and run the CRVE1xx structural
//                      rules; error findings stop the campaign with exit 2
//   --design-selftest  run the deliberately defective design-lint selftest
//                      and exit with its code (2) — the CI negative check
//                      that the gate actually fails on a broken design
//
// Campaign cache and the planner/worker protocol (DESIGN.md §13):
//   --cache-dir DIR    content-addressed result cache: pair jobs whose
//                      JobSpec hash is present replay from DIR instead of
//                      re-simulating; missing pairs are stored after they
//                      run. A rebuild changes the hash, so a stale cache
//                      degrades to misses, never to wrong results.
//   --cache-max-mb N   cache size budget (LRU eviction); 0 = unbounded
//   --cache-stats FILE write {"build": ..., "cache": {hits, misses, ...}}
//                      after the batch (requires --cache-dir)
//   --emit-specs FILE  planner half only: probe the cache and write the
//                      missing pair jobs as a spec file, run nothing
//   --worker FILE      worker half: execute a spec file (no --configs
//                      needed; configurations travel inside the specs)
//   --results FILE     with --worker: write the executed payloads as a
//                      results file a planner can --ingest
//   --ingest FILE      load a worker results file into --cache-dir, so the
//                      next planner run replays those pairs
//
// Baseline drift gating (DESIGN.md §11):
//   --baseline FILE    compare this batch's report against a stored
//                      report.json; print the ranked drift summary and fail
//                      the gate on regressions beyond the thresholds
//   --diff FILE        write the drift findings as JSON (requires --baseline)
//   --gate-rate-drop X    max tolerated per-port alignment-rate drop as a
//                         fraction (default: 0.001 = 0.1pp)
//   --gate-coverage-drop X  max tolerated coverage drop in percentage
//                           points (default: 0 = any drop fails)
//
// Observability (DESIGN.md §10, §15):
//   --metrics-out FILE enable metrics collection; write the full registry
//                      (timing metrics included) as JSON after the batch.
//                      Orthogonal to --profile-out and --progress-out: the
//                      registry aggregates campaign-level counters, the
//                      profiler attributes kernel time per process, and the
//                      progress stream reports job lifecycle. Any
//                      combination is valid and none changes the others'
//                      output.
//   --trace-out FILE   record phase spans; write a Chrome trace-event file
//                      loadable in Perfetto / chrome://tracing
//   --flight-recorder N
//                      keep the last N log lines (info and up) in a ring;
//                      a failing, throwing or timing-out job dumps them
//                      next to its artifacts
//   --profile-out FILE enable the kernel hotspot profiler on every job;
//                      write the merged campaign hotspot report to FILE,
//                      plus per-job profile_<test>_s<seed>_<view>.json
//                      artifacts under --out. Profiling never perturbs the
//                      campaign cache key, so a profiled rerun still
//                      replays its cache hits.
//   --txn-trace-out FILE
//                      enable transaction-lifecycle tracing on every job;
//                      write the merged campaign latency report (per-hop
//                      histograms, top-K slowest spans, dual-view delta
//                      join) to FILE, plus per-job txn_<test>_s<seed>_
//                      <view>.json span artifacts and .trace.json Chrome
//                      trace-event files under --out. Like --profile-out,
//                      the knob never perturbs the campaign cache key, so
//                      a traced rerun still replays its cache hits
//                      (replayed pairs contribute no spans).
//   --progress-out FILE
//                      stream NDJSON campaign telemetry to FILE: job
//                      lifecycle with verdicts and cache hits, heartbeats
//                      with in-flight set and ETA, eviction counts
//                      (schema in DESIGN.md §15)
//   --progress         single-line live status display on stderr
//
// Exit status: 0 when every configuration signs off (and, with --baseline,
// no drift regression exceeds its threshold); 1 on campaign failure;
// 2 on usage errors or error-severity lint findings; 3 when the campaign
// passed but the drift gate failed. Every output-file flag fails fast: an
// unwritable path (--json, --diff, --cache-stats, --metrics-out,
// --trace-out, --profile-out, --txn-trace-out, --progress-out) is a usage
// error, reported with exit 2 before the campaign starts — never after it
// spent its wall clock. The file's parent directory is created if missing (so an output
// file inside the --out directory works before the runner makes it); only
// a path that cannot be created fails.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/build_info.h"
#include "common/json.h"
#include "common/log.h"
#include "lint/design_lint.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regress/baseline.h"
#include "regress/config_file.h"
#include "regress/job_spec.h"
#include "regress/progress.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace {

using namespace crve;

int usage() {
  std::fprintf(stderr,
               "usage: crve_regress --configs DIR [--out DIR] [--seeds a,b]\n"
               "                    [--tests t02,t05] [--tx N] [--threshold P]\n"
               "                    [--fault NAME] [--no-alignment]\n"
               "                    [--jobs N] [--json FILE]\n"
               "                    [--sim-kernel compiled|interp]\n"
               "                    [--no-triage] [--triage-window N]\n"
               "                    [--no-lint] [--no-design-lint]\n"
               "                    [--cache-dir DIR] [--cache-max-mb N]\n"
               "                    [--cache-stats FILE] [--emit-specs FILE]\n"
               "                    [--baseline FILE] [--diff FILE]\n"
               "                    [--gate-rate-drop X] "
               "[--gate-coverage-drop X]\n"
               "                    [--metrics-out FILE] [--trace-out FILE]\n"
               "                    [--flight-recorder N]\n"
               "                    [--profile-out FILE] "
               "[--txn-trace-out FILE]\n"
               "                    [--progress-out FILE] [--progress]\n"
               "       crve_regress --worker FILE [--results FILE]\n"
               "                    [--out DIR] [--jobs N] [--cache-dir DIR]\n"
               "       crve_regress --ingest FILE --cache-dir DIR\n"
               "       crve_regress --sample-configs DIR\n"
               "       crve_regress --design-selftest\n");
  return 2;
}

void write_sample_configs(const std::string& dir) {
  std::filesystem::create_directories(dir);
  auto write = [&dir](const char* name, stbus::NodeConfig cfg) {
    std::ofstream os(dir + "/" + name);
    os << regress::format_config(cfg);
  };
  stbus::NodeConfig a;
  a.name = "node_t2_xbar_lru";
  a.n_initiators = 3;
  a.n_targets = 2;
  a.arb = stbus::ArbPolicy::kLru;
  write("a_node_t2_xbar_lru.cfg", a);

  stbus::NodeConfig b;
  b.name = "node_t3_shared_latency";
  b.n_initiators = 4;
  b.n_targets = 2;
  b.type = stbus::ProtocolType::kType3;
  b.arch = stbus::Architecture::kSharedBus;
  b.arb = stbus::ArbPolicy::kLatencyBased;
  b.latency_deadline = {4, 8, 16, 32};
  write("b_node_t3_shared_latency.cfg", b);

  stbus::NodeConfig c;
  c.name = "node_t2_wide_prog";
  c.n_initiators = 2;
  c.n_targets = 2;
  c.bus_bytes = 16;
  c.arb = stbus::ArbPolicy::kProgrammable;
  c.programming_port = true;
  write("c_node_t2_wide_prog.cfg", c);
  std::printf("wrote 3 sample configurations to %s\n", dir.c_str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Fail-fast preflight for an output-file flag: an unwritable path is a
// usage error detected before any simulation starts, not a surprise after
// the campaign spent its wall clock. An explicitly requested output file
// implies its directory (mirroring what the runner does for --out), so
// `--profile-out fresh_dir/profile.json` works; only a path that cannot be
// created is an error. Append mode, so an existing file's contents survive
// until the real writer truncates it.
bool check_writable(const std::string& path) {
  if (path.empty()) return true;
  const auto parent = std::filesystem::path(path).parent_path();
  std::error_code ec;
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream os(path, std::ios::app);
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_dir, out_dir, sample_dir, json_path;
  std::string metrics_path, trace_path, profile_path, txn_path, progress_path;
  bool progress_tty = false;
  std::string baseline_path, diff_path;
  std::string cache_dir, cache_stats_path;
  std::string emit_specs_path, worker_path, results_path, ingest_path;
  std::uint64_t cache_max_mb = 0;
  regress::DriftThresholds gates;
  std::size_t flight_lines = 0;  // 0 = no flight recorder
  std::vector<std::uint64_t> seeds = {1};
  std::vector<std::string> test_filter;
  int tx = 60;
  double threshold = 0.99;
  bca::Faults faults;
  bool alignment = true;
  bool triage = true;
  bool lint = true;
  bool design_lint = true;
  bool design_selftest = false;
  std::uint64_t triage_window = 50;
  unsigned jobs = 0;  // 0 = one worker per hardware thread
  sim::KernelKind kernel = sim::KernelKind::kCompiled;

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--configs") {
      const char* v = next();
      if (!v) return usage();
      config_dir = v;
    } else if (arg == "--sample-configs") {
      const char* v = next();
      if (!v) return usage();
      sample_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_dir = v;
    } else if (arg == "--seeds") {
      const char* v = next();
      if (!v) return usage();
      seeds.clear();
      for (const auto& s : split_csv(v)) seeds.push_back(std::stoull(s));
    } else if (arg == "--tests") {
      const char* v = next();
      if (!v) return usage();
      test_filter = split_csv(v);
    } else if (arg == "--tx") {
      const char* v = next();
      if (!v) return usage();
      tx = std::stoi(v);
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return usage();
      threshold = std::stod(v);
    } else if (arg == "--fault") {
      const char* v = next();
      if (!v || !regress::set_fault_by_name(faults, v)) {
        std::fprintf(stderr, "unknown fault '%s'\n", v ? v : "");
        return 2;
      }
    } else if (arg == "--no-alignment") {
      alignment = false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return usage();
      jobs = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--sim-kernel") {
      const char* v = next();
      if (!v) return usage();
      const std::string k = v;
      if (k == "compiled") {
        kernel = sim::KernelKind::kCompiled;
      } else if (k == "interp") {
        kernel = sim::KernelKind::kInterp;
      } else {
        std::fprintf(stderr, "unknown kernel '%s'\n", v);
        return 2;
      }
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else if (arg == "--no-triage") {
      triage = false;
    } else if (arg == "--no-lint") {
      lint = false;
    } else if (arg == "--no-design-lint") {
      design_lint = false;
    } else if (arg == "--design-selftest") {
      design_selftest = true;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (!v) return usage();
      cache_dir = v;
    } else if (arg == "--cache-max-mb") {
      const char* v = next();
      if (!v) return usage();
      cache_max_mb = std::stoull(v);
    } else if (arg == "--cache-stats") {
      const char* v = next();
      if (!v) return usage();
      cache_stats_path = v;
    } else if (arg == "--emit-specs") {
      const char* v = next();
      if (!v) return usage();
      emit_specs_path = v;
    } else if (arg == "--worker") {
      const char* v = next();
      if (!v) return usage();
      worker_path = v;
    } else if (arg == "--results") {
      const char* v = next();
      if (!v) return usage();
      results_path = v;
    } else if (arg == "--ingest") {
      const char* v = next();
      if (!v) return usage();
      ingest_path = v;
    } else if (arg == "--triage-window") {
      const char* v = next();
      if (!v) return usage();
      triage_window = std::stoull(v);
    } else if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--diff") {
      const char* v = next();
      if (!v) return usage();
      diff_path = v;
    } else if (arg == "--gate-rate-drop") {
      const char* v = next();
      if (!v) return usage();
      gates.max_rate_drop = std::stod(v);
    } else if (arg == "--gate-coverage-drop") {
      const char* v = next();
      if (!v) return usage();
      gates.max_coverage_drop = std::stod(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return usage();
      metrics_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage();
      trace_path = v;
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (!v) return usage();
      profile_path = v;
    } else if (arg == "--txn-trace-out") {
      const char* v = next();
      if (!v) return usage();
      txn_path = v;
    } else if (arg == "--progress-out") {
      const char* v = next();
      if (!v) return usage();
      progress_path = v;
    } else if (arg == "--progress") {
      progress_tty = true;
    } else if (arg == "--flight-recorder") {
      const char* v = next();
      if (!v) return usage();
      flight_lines = std::stoul(v);
    } else {
      return usage();
    }
  }
  } catch (const std::exception&) {
    // std::stoi/stoul/stod reject malformed numeric arguments.
    std::fprintf(stderr, "invalid numeric argument\n");
    return usage();
  }

  if (!sample_dir.empty()) {
    write_sample_configs(sample_dir);
    return 0;
  }

  // Negative check for the design-lint gate: lint a deliberately defective
  // elaboration and exit with its code. CI asserts this is 2 — proof the
  // preflight actually refuses broken designs, not just that shipped
  // configs happen to be clean.
  if (design_selftest) {
    const auto dres = crve::lint::lint_design_selftest();
    std::fprintf(stderr, "%s", crve::lint::render_text(dres.report).c_str());
    return dres.report.exit_code();
  }

  // Worker mode: execute a spec file. Standalone — the configurations
  // travel inside the specs, so no --configs directory is involved.
  if (!worker_path.empty()) {
    std::ifstream is(worker_path);
    if (!is) {
      std::fprintf(stderr, "error: cannot read %s\n", worker_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
      const auto specs = regress::parse_job_specs(buf.str());
      regress::WorkerOptions wopts;
      wopts.out_dir = out_dir;
      wopts.jobs = jobs;
      wopts.cache_dir = cache_dir;
      wopts.cache_max_mb = cache_max_mb;
      const auto outcomes = regress::Regression::run_worker(specs, wopts);
      bool all_passed = true;
      std::vector<std::pair<std::string, std::string>> hash_payloads;
      hash_payloads.reserve(outcomes.size());
      for (const auto& o : outcomes) {
        all_passed = all_passed && o.passed;
        hash_payloads.push_back({o.hash, o.payload});
      }
      if (!results_path.empty()) {
        std::ofstream os(results_path);
        os << regress::format_worker_results(hash_payloads);
        if (!os) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       results_path.c_str());
          return 2;
        }
      }
      std::printf("worker: executed %zu spec(s)%s\n", outcomes.size(),
                  all_passed ? "" : ", some FAILED");
      return all_passed ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  // Ingest mode: load a worker results file into the cache so the next
  // planner run replays those pairs.
  if (!ingest_path.empty()) {
    if (cache_dir.empty()) {
      std::fprintf(stderr, "--ingest requires --cache-dir\n");
      return usage();
    }
    std::ifstream is(ingest_path);
    if (!is) {
      std::fprintf(stderr, "error: cannot read %s\n", ingest_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
      const auto results = regress::parse_worker_results(buf.str());
      cache::CacheOptions copts;
      copts.dir = cache_dir;
      copts.max_bytes = cache_max_mb * 1024ULL * 1024ULL;
      copts.git_hash = build_info().git_hash;
      copts.sanitize = build_info().sanitize;
      cache::Cache store(copts);
      std::size_t stored = 0;
      for (const auto& [hash, payload] : results) {
        if (!cache::Cache::valid_key(hash)) {
          std::fprintf(stderr, "warning: skipping malformed key %s\n",
                       hash.c_str());
          continue;
        }
        store.store(hash, payload, {});
        ++stored;
      }
      std::printf("ingested %zu result(s) into %s\n", stored,
                  cache_dir.c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  if (config_dir.empty()) return usage();
  if (!cache_stats_path.empty() && cache_dir.empty()) {
    std::fprintf(stderr, "--cache-stats requires --cache-dir\n");
    return usage();
  }

  // Pre-flight lint: catch semantically broken configurations before any
  // testbench is built — a bad deadline list should fail in milliseconds,
  // not surface hours into a campaign. Errors stop the run; warnings and
  // notes are printed and the campaign proceeds.
  if (lint) {
    const auto lrep = crve::lint::lint_config_dir(config_dir);
    if (!lrep.findings.empty()) {
      std::fprintf(stderr, "%s", crve::lint::render_text(lrep).c_str());
    }
    if (lrep.exit_code() >= 2) {
      std::fprintf(stderr,
                   "lint: refusing to run a campaign over broken configs in "
                   "%s (--no-lint to bypass)\n",
                   config_dir.c_str());
      return 2;
    }
  }

  std::vector<stbus::NodeConfig> configs;
  try {
    configs = regress::configs_from_dir(config_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (configs.empty()) {
    std::fprintf(stderr, "no .cfg files in %s\n", config_dir.c_str());
    return 2;
  }

  // Design-lint preflight (DESIGN.md §17): elaborate every configuration's
  // testbench on both views — initialize() only, no cycles simulated — and
  // run the CRVE1xx structural rules over the exported design graphs. A
  // contested signal or an undriven read should fail here in milliseconds,
  // not as an alignment mystery hours into the campaign. Error findings
  // stop the run; warnings and notes are printed and the campaign proceeds.
  // The per-(config, view) summaries feed the design_<config>.json
  // artifacts and the dashboard's "Design health" panel.
  std::vector<crve::lint::DesignSummary> design_summaries;
  if (design_lint) {
    const auto dres = crve::lint::lint_design_dir(config_dir);
    if (!dres.report.findings.empty()) {
      std::fprintf(stderr, "%s",
                   crve::lint::render_text(dres.report).c_str());
    }
    if (dres.report.exit_code() >= 2) {
      std::fprintf(stderr,
                   "design-lint: refusing to run a campaign over "
                   "structurally broken designs in %s "
                   "(--no-design-lint to bypass)\n",
                   config_dir.c_str());
      return 2;
    }
    design_summaries = dres.summaries;
  }

  std::vector<verif::TestSpec> tests;
  for (const auto& spec : verif::catg_test_suite()) {
    if (test_filter.empty()) {
      tests.push_back(spec);
      continue;
    }
    for (const auto& f : test_filter) {
      if (spec.name.rfind(f, 0) == 0) {
        tests.push_back(spec);
        break;
      }
    }
  }
  if (tests.empty()) {
    std::fprintf(stderr, "no tests match the --tests filter\n");
    return 2;
  }

  regress::RunPlan base;
  base.tests = tests;
  base.kernel = kernel;
  base.seeds = seeds;
  base.n_transactions = tx;
  base.run_alignment = alignment;
  base.alignment_threshold = threshold;
  base.faults = faults;
  base.out_dir = out_dir;
  base.jobs = jobs;
  base.run_triage = triage;
  base.triage_window = triage_window;
  base.cache_dir = cache_dir;
  base.cache_max_mb = cache_max_mb;
  base.profile_out = profile_path;
  base.txn_trace_out = txn_path;
  for (const auto& s : design_summaries) {
    regress::DesignHealth h;
    h.config = s.config;
    h.view = s.view;
    h.signals = s.signals;
    h.comb_processes = s.comb_processes;
    h.clocked_processes = s.clocked_processes;
    h.ranks = s.ranks;
    h.max_fanout = s.max_fanout;
    h.max_fanout_signal = s.max_fanout_signal;
    h.errors = s.errors;
    h.warnings = s.warnings;
    h.notes = s.notes;
    base.design_health.push_back(h);
  }

  if (!diff_path.empty() && baseline_path.empty()) {
    std::fprintf(stderr, "--diff requires --baseline\n");
    return usage();
  }

  // Campaign-plan sanity: duplicate (test, seed) rows and out-of-range
  // thresholds are user input the config files cannot vouch for.
  if (lint) {
    crve::lint::CampaignSpec spec;
    for (const auto& t : base.tests) spec.tests.push_back(t.name);
    spec.seeds = base.seeds;
    spec.alignment_threshold = base.alignment_threshold;
    const auto lrep = crve::lint::lint_campaign(spec);
    if (!lrep.findings.empty()) {
      std::fprintf(stderr, "%s", crve::lint::render_text(lrep).c_str());
    }
    if (lrep.exit_code() >= 2) {
      std::fprintf(stderr,
                   "lint: refusing to run a broken campaign plan "
                   "(--no-lint to bypass)\n");
      return 2;
    }
  }

  // Cache provenance pre-flight (CRVE060, warn severity — never blocks):
  // a sanitizer build probing an uninstrumented cache re-runs everything.
  if (lint && !cache_dir.empty()) {
    const auto lrep =
        crve::lint::lint_cache_provenance(cache_dir, build_info().sanitize);
    if (!lrep.findings.empty()) {
      std::fprintf(stderr, "%s", crve::lint::render_text(lrep).c_str());
    }
  }

  // Planner half only: probe the cache, emit the missing pair jobs as a
  // spec file for out-of-process workers, and run nothing.
  if (!emit_specs_path.empty()) {
    try {
      const auto mplan = regress::Regression::plan_matrix(configs, base);
      std::ofstream os(emit_specs_path);
      os << regress::format_job_specs(mplan.missing);
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     emit_specs_path.c_str());
        return 2;
      }
      std::printf("plan: %zu of %zu pairs missing (%zu cached) -> %s\n",
                  mplan.missing.size(), mplan.total_pairs, mplan.cached_pairs,
                  emit_specs_path.c_str());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  for (const auto& cfg : configs) {
    std::printf("=== %s ===\n", cfg.summary().c_str());
  }

  // Fail-fast: reject unwritable output paths before any simulation runs.
  for (const std::string* p : {&json_path, &diff_path, &cache_stats_path,
                               &metrics_path, &trace_path, &profile_path,
                               &txn_path, &progress_path}) {
    if (!check_writable(*p)) return usage();
  }

  // Per-config design-summary artifacts, next to where report.json will
  // land. Written before the campaign: the summaries are elaboration facts,
  // valid whether or not the batch subsequently signs off.
  if (!design_summaries.empty() && !out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    std::vector<std::string> config_order;
    for (const auto& s : design_summaries) {
      if (std::find(config_order.begin(), config_order.end(), s.config) ==
          config_order.end()) {
        config_order.push_back(s.config);
      }
    }
    for (const auto& name : config_order) {
      std::vector<crve::lint::DesignSummary> subset;
      for (const auto& s : design_summaries) {
        if (s.config == name) subset.push_back(s);
      }
      const std::string path = out_dir + "/design_" +
                               regress::sanitize_artifact_name(name) +
                               ".json";
      std::ofstream os(path);
      os << crve::lint::design_summary_json(subset);
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 2;
      }
    }
  }

  // Observability setup (all off by default; see DESIGN.md §10, §15).
  if (!metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!trace_path.empty()) obs::trace_begin();
  std::unique_ptr<FlightRecorder> recorder;
  if (flight_lines > 0) {
    recorder = std::make_unique<FlightRecorder>(flight_lines);
    set_flight_recorder(recorder.get(), LogLevel::kInfo);
  }
  std::unique_ptr<regress::ProgressTracker> progress;
  if (!progress_path.empty() || progress_tty) {
    regress::ProgressOptions popts;
    popts.out_path = progress_path;
    popts.tty = progress_tty;
    try {
      progress = std::make_unique<regress::ProgressTracker>(popts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return usage();
    }
    base.progress = progress.get();
  }

  int exit_code = 1;
  try {
    const auto mres = regress::Regression::run_matrix(configs, base);
    for (const auto& res : mres.results) {
      std::printf("--- %s ---\n%s\n", res.config_name.c_str(),
                  res.summary().c_str());
    }
    std::printf("%s", mres.summary().c_str());
    exit_code = mres.all_signed_off ? 0 : 1;
    if (!cache_stats_path.empty()) {
      std::ofstream os(cache_stats_path);
      os << "{\n  \"build\": " << build_info_json("  ") << ",\n"
         << "  \"cache\": "
         << (mres.cache_stats_json.empty() ? "{}" : mres.cache_stats_json)
         << "\n}\n";
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     cache_stats_path.c_str());
        exit_code = exit_code == 0 ? 1 : exit_code;
      }
    }
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      os << mres.json();
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        exit_code = 1;
      }
    }
    if (!baseline_path.empty()) {
      std::ifstream bis(baseline_path);
      if (!bis) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << bis.rdbuf();
      const auto base_doc = crve::json::parse(buf.str());
      const auto cur_doc = crve::json::parse(mres.json());
      const auto drift = regress::compute_drift(base_doc, cur_doc, gates);
      std::printf("%s", drift.summary().c_str());
      if (!diff_path.empty()) {
        std::ofstream os(diff_path);
        os << drift.json();
        if (!os) {
          std::fprintf(stderr, "error: cannot write %s\n", diff_path.c_str());
          exit_code = exit_code == 0 ? 1 : exit_code;
        }
      }
      // The drift gate only refines a passing campaign; a hard campaign
      // failure keeps exit code 1.
      if (!drift.ok() && exit_code == 0) exit_code = 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    exit_code = 1;
  }

  // Flush observability outputs even when the batch failed or threw — a
  // broken campaign is exactly when the trace and metrics matter.
  if (!trace_path.empty()) {
    try {
      obs::trace_end_file(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    // Stamp build provenance as the leading member; the registry sections
    // keep their documented paths (.counters / .gauges / .histograms).
    std::string doc = obs::registry().json(/*include_timing=*/true);
    doc.insert(2, "  \"build\": " + build_info_json("  ") + ",\n");
    os << doc;
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  if (recorder) set_flight_recorder(nullptr);
  return exit_code;
}
