// Streaming campaign telemetry (DESIGN.md §15).
//
// A ProgressTracker turns the runner's job lifecycle into an append-only
// NDJSON event stream — one self-contained JSON object per line — plus an
// optional single-line TTY status display. The stream is the wire format
// remote workers will send back in the fleet-orchestration PR (ROADMAP
// item 1): every event carries an "event" discriminator and a campaign-
// relative "t_ms" timestamp, so a consumer can tail the file (or a socket
// carrying the same lines) and reconstruct campaign state at any moment.
//
// Event schema (all fields always present for a given event type):
//   {"event":"campaign_start","t_ms":T,"configs":N,"total_jobs":J,
//    "cached_jobs":C}
//   {"event":"job_start","t_ms":T,"config":"...","test":"...","seed":S,
//    "view":"rtl"|"bca"|"align"}
//   {"event":"job_finish","t_ms":T,"config":"...","test":"...","seed":S,
//    "view":"...","verdict":"pass"|"fail"|"error","cached":B,"wall_ms":W}
//   {"event":"heartbeat","t_ms":T,"done":D,"total":J,"in_flight":[...],
//    "rate_jobs_per_s":R,"eta_ms":E}          (E = -1 while unknown)
//   {"event":"eviction","t_ms":T,"evictions":N}
//   {"event":"campaign_end","t_ms":T,"done":D,"failed":F,"signed_off":B,
//    "wall_ms":W}
//
// All writes are serialized through one mutex and flushed per line, so
// events from concurrent worker threads never interleave mid-line and a
// consumer never sees a torn tail. The ETA is a running-rate estimate:
// fresh (non-cached) completions per elapsed second, applied to the jobs
// still outstanding. Heartbeats are emitted opportunistically on job
// boundaries, rate-limited to one per heartbeat_ms — no background thread,
// so the tracker adds nothing to the TSan surface and dies with the
// campaign.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace crve::regress {

struct ProgressOptions {
  // NDJSON event stream path; empty = no stream file.
  std::string out_path;
  // Single-line \r status display on stderr (--progress).
  bool tty = false;
  // Minimum gap between heartbeat events (0 = one per job boundary).
  std::uint64_t heartbeat_ms = 1000;
};

// One job's lifecycle as observed by the tracker; the dashboard renders
// these as the campaign timeline.
struct JobRecord {
  std::string config;
  std::string test;
  std::uint64_t seed = 0;
  std::string view;  // "rtl" | "bca" | "align"
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::string verdict;  // "pass" | "fail" | "error"
  bool cached = false;
};

class ProgressTracker {
 public:
  // Opens the stream file (truncating) immediately; throws
  // std::runtime_error when it cannot be written, so the CLI fails fast
  // with a usage error before any simulation starts — not mid-campaign.
  explicit ProgressTracker(ProgressOptions opts);
  ~ProgressTracker();

  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;

  void campaign_start(std::size_t configs, std::size_t total_jobs,
                      std::size_t cached_jobs);
  void job_start(const std::string& config, const std::string& test,
                 std::uint64_t seed, const std::string& view);
  // verdict: "pass" | "fail" | "error"; cached jobs report their original
  // wall_ms from the cache payload.
  void job_finish(const std::string& config, const std::string& test,
                  std::uint64_t seed, const std::string& view,
                  const std::string& verdict, bool cached, double wall_ms);
  void evictions(std::uint64_t n);
  void campaign_end(bool signed_off);

  // Finished-job rows in completion order. Quiescent read only (after the
  // pool drained / campaign_end) — the runner reads it for the dashboard.
  const std::vector<JobRecord>& records() const { return records_; }

 private:
  double elapsed_ms() const;
  void write_line(const std::string& line);  // caller holds mu_
  void maybe_heartbeat();                    // caller holds mu_
  void render_tty();                         // caller holds mu_

  ProgressOptions opts_;
  std::ofstream out_;
  std::mutex mu_;
  std::uint64_t t0_ns_ = 0;
  std::size_t total_jobs_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t fresh_done_ = 0;  // non-cached completions (rate estimate)
  std::uint64_t last_heartbeat_ns_ = 0;
  bool tty_active_ = false;
  // Deterministically ordered in-flight set: key -> start time in ms.
  std::map<std::string, double> in_flight_;
  std::vector<JobRecord> records_;
};

}  // namespace crve::regress
