// Machine-readable regression reports.
//
// RegressionResult::json / MatrixResult::json (declared in runner.h, schema
// documented in DESIGN.md) are implemented here, together with the small
// JSON formatting helpers they rely on. The reports are consumed by CI, so
// everything outside the opt-in timing fields must serialize
// deterministically: doubles use the shortest round-trip form and 64-bit
// digests are emitted as hex strings (JSON numbers lose precision past
// 2^53).
#pragma once

#include <cstdint>
#include <string>

namespace crve::regress {

// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(const std::string& s);

// Shortest round-trip decimal form of a finite double (locale-independent).
std::string json_number(double v);

// 64-bit value as a quoted hex literal, e.g. "0x1f".
std::string json_hex(std::uint64_t v);

}  // namespace crve::regress
