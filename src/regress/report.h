// Machine-readable regression reports.
//
// RegressionResult::json / MatrixResult::json (declared in runner.h, schema
// documented in DESIGN.md) are implemented here. The reports are consumed
// by CI and by the baseline drift gate, so everything outside the opt-in
// timing fields must serialize deterministically: doubles use the shortest
// round-trip form and 64-bit digests are emitted as hex strings (JSON
// numbers lose precision past 2^53). The formatting helpers are thin
// aliases of the shared crve::json ones, kept for source compatibility.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"

namespace crve::regress {

// Escapes a string for inclusion inside JSON quotes.
inline std::string json_escape(const std::string& s) {
  return crve::json::escape(s);
}

// Shortest round-trip decimal form of a finite double (locale-independent).
inline std::string json_number(double v) { return crve::json::number(v); }

// 64-bit value as a quoted hex literal, e.g. "0x1f".
inline std::string json_hex(std::uint64_t v) { return crve::json::hex(v); }

}  // namespace crve::regress
