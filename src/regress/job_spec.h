// Canonical job specifications for the campaign cache and the
// planner/worker protocol (DESIGN.md §13).
//
// One JobSpec describes one pair job — both views of (config, test, seed)
// plus their alignment — precisely enough that any machine holding the
// same build can execute it: the configuration travels as canonical
// serialized content (not a filename), the test by its CATG suite name,
// and the build provenance pins the binary flavour. canonical_json() is
// the single serialization the SHA-256 cache key is computed over; its
// field order and formatting are frozen (doubles in shortest round-trip
// form, 64-bit values as hex strings), so the same job hashes identically
// everywhere and any input change — a config edit, a new seed, a rebuild —
// moves the key and misses the cache.
//
// The pair-payload codec round-trips the deterministic slice of a pair's
// results (every field the JSON report renders, including the original
// wall-clock times) so a warm-cache campaign reduces to a report
// byte-identical to the cold run modulo the `cached` provenance fields.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bca/faults.h"
#include "regress/runner.h"

namespace crve::regress {

struct JobSpec {
  int version = 1;
  std::string config_text;  // canonical format_config() serialization
  std::string test;         // CATG suite name (e.g. "t02_random_all_opcodes")
  std::uint64_t seed = 1;
  int n_transactions = 0;  // effective per-initiator count (override applied)
  std::uint64_t max_cycles = 500000;
  bool run_alignment = true;
  double alignment_threshold = 0.99;
  bool run_triage = true;
  std::uint64_t triage_window = 50;
  // Simulation kernel the jobs run under ("compiled" or "interp"). Part of
  // the hash: the kernels produce byte-identical artifacts, but a cache
  // replay must never mask a kernel-specific bug being hunted with
  // --sim-kernel.
  std::string kernel = "compiled";
  std::vector<std::string> faults;  // sorted active BCA fault names
  // Build provenance of the binary expected to execute this job; part of
  // the hash, so a rebuilt tree never replays another build's results.
  std::string git_hash;
  std::string compiler;
  std::string build_type;
  bool sanitize = false;

  // The frozen canonical form (one line, fixed member order).
  std::string canonical_json() const;
  // SHA-256 of canonical_json() — the cache key.
  std::string hash() const;
};

// Spec for the pair (plan, test, seed), stamped with this build's
// provenance. The effective transaction count (plan override or the
// test's own default) is resolved into the spec.
JobSpec job_spec_for(const RunPlan& plan, const verif::TestSpec& test,
                     std::uint64_t seed);

// --- BCA fault catalogue by name ------------------------------------------
// Shared by the CLI (--fault) and the JobSpec serialization so both sides
// of the worker protocol agree on fault identifiers.
std::vector<std::string> fault_names(const bca::Faults& f);
bool set_fault_by_name(bca::Faults& f, const std::string& name);
// Throws std::runtime_error on an unknown name.
bca::Faults faults_from_names(const std::vector<std::string>& names);

// --- Spec files (planner → worker) ----------------------------------------

// {"version": 1, "jobs": [<canonical spec>, ...]}
std::string format_job_specs(const std::vector<JobSpec>& specs);
// Throws std::runtime_error on malformed input.
std::vector<JobSpec> parse_job_specs(const std::string& text);

// --- Pair payload codec (worker → cache/reducer) --------------------------

// The deterministic slice of one executed pair job.
struct PairResult {
  TestOutcome rtl;
  TestOutcome bca;
  bool has_alignment = false;
  AlignmentOutcome alignment;
  // Build that originally executed the pair (report provenance on replay).
  std::string git_hash;
  std::string compiler;
  std::string build_type;
  bool sanitize = false;
};

std::string encode_pair_result(const PairResult& pr,
                               const std::string& spec_hash);
// Throws std::runtime_error on malformed or wrong-version payloads.
PairResult decode_pair_result(const std::string& text);

// The originating build stamp of a decoded pair as a pretty JSON object
// (same shape as build_info_json), nested at `indent`.
std::string pair_build_json(const PairResult& pr, const std::string& indent);

// --- Results files (worker → planner ingest) ------------------------------

// {"version": 1, "results": [{"hash": ..., "payload": {...}}, ...]}
std::string format_worker_results(
    const std::vector<std::pair<std::string, std::string>>& hash_payloads);
// Returns (hash, payload-json) pairs; throws on malformed input.
std::vector<std::pair<std::string, std::string>> parse_worker_results(
    const std::string& text);

}  // namespace crve::regress
