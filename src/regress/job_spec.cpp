#include "regress/job_spec.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/build_info.h"
#include "common/sha256.h"
#include "regress/config_file.h"
#include "regress/report.h"

namespace crve::regress {

namespace {

// Fault catalogue: name → member. Order is the canonical (sorted) order
// fault_names() emits, so the JobSpec hash is stable.
struct FaultEntry {
  const char* name;
  bool bca::Faults::* member;
};

const std::vector<FaultEntry>& fault_table() {
  static const std::vector<FaultEntry> table = {
      {"byte_enable_dropped", &bca::Faults::byte_enable_dropped},
      {"eop_one_cell_early", &bca::Faults::eop_one_cell_early},
      {"grant_during_lock", &bca::Faults::grant_during_lock},
      {"lru_stale_on_chunk", &bca::Faults::lru_stale_on_chunk},
      {"opcode_corrupt_on_busy", &bca::Faults::opcode_corrupt_on_busy},
      {"priority_register_ignored", &bca::Faults::priority_register_ignored},
      {"response_src_swap", &bca::Faults::response_src_swap},
      {"size_conv_endianness", &bca::Faults::size_conv_endianness},
  };
  return table;
}

const char* view_str(verif::ModelKind m) {
  switch (m) {
    case verif::ModelKind::kRtl:
      return "rtl";
    case verif::ModelKind::kBca:
      return "bca";
    case verif::ModelKind::kBcaWrapped:
      return "bca_wrapped";
  }
  return "unknown";
}

verif::ModelKind view_from(const std::string& s) {
  if (s == "rtl") return verif::ModelKind::kRtl;
  if (s == "bca") return verif::ModelKind::kBca;
  if (s == "bca_wrapped") return verif::ModelKind::kBcaWrapped;
  throw std::runtime_error("pair payload: unknown view '" + s + "'");
}

// Required-member accessors over parsed payloads: a missing member is a
// schema mismatch the caller turns into a cache invalidation, not a crash.
const json::Value& member(const json::Value& v, const char* key) {
  const json::Value* m = v.find(key);
  if (!m) {
    throw std::runtime_error(std::string("pair payload: missing '") + key +
                             "'");
  }
  return *m;
}

std::uint64_t u64_of(const json::Value& v, const char* key) {
  const json::Value& m = member(v, key);
  if (m.kind == json::Value::Kind::kString) {
    return std::strtoull(m.str.c_str(), nullptr, 16);
  }
  if (m.kind == json::Value::Kind::kNumber) {
    return static_cast<std::uint64_t>(m.num);
  }
  throw std::runtime_error(std::string("pair payload: '") + key +
                           "' is not a number");
}

bool bool_of(const json::Value& v, const char* key) {
  return member(v, key).boolean;
}

std::string str_of(const json::Value& v, const char* key) {
  return member(v, key).str;
}

void write_run(std::ostream& os, const TestOutcome& o) {
  os << "    {\"test\": \"" << json_escape(o.test) << "\", \"seed\": "
     << json_hex(o.seed) << ", \"view\": \"" << view_str(o.model) << "\""
     << ", \"completed\": " << (o.result.completed ? "true" : "false")
     << ", \"cycles\": " << json_hex(o.result.cycles)
     << ", \"evaluations\": " << json_hex(o.result.evaluations)
     << ", \"checker_violations\": " << json_hex(o.result.checker_violations)
     << ", \"scoreboard_errors\": " << json_hex(o.result.scoreboard_errors)
     << ", \"reference_mismatches\": "
     << json_hex(o.result.reference_mismatches)
     << ", \"coverage_percent\": " << json_number(o.result.coverage_percent)
     << ", \"coverage_digest\": " << json_hex(o.result.coverage_digest)
     << ", \"toggle_percent\": " << json_number(o.result.toggle_percent)
     << ", \"wall_ms\": " << json_number(o.wall_ms) << "}";
}

TestOutcome read_run(const json::Value& v) {
  TestOutcome o;
  o.test = str_of(v, "test");
  o.seed = u64_of(v, "seed");
  o.model = view_from(str_of(v, "view"));
  o.result.completed = bool_of(v, "completed");
  o.result.cycles = u64_of(v, "cycles");
  o.result.evaluations = u64_of(v, "evaluations");
  o.result.checker_violations = u64_of(v, "checker_violations");
  o.result.scoreboard_errors = u64_of(v, "scoreboard_errors");
  o.result.reference_mismatches = u64_of(v, "reference_mismatches");
  o.result.coverage_percent = member(v, "coverage_percent").num;
  o.result.coverage_digest = u64_of(v, "coverage_digest");
  o.result.toggle_percent = member(v, "toggle_percent").num;
  o.wall_ms = v.number_or("wall_ms", 0.0);
  return o;
}

}  // namespace

std::string JobSpec::canonical_json() const {
  std::ostringstream os;
  os << "{\"v\": " << version << ", \"test\": \"" << json_escape(test)
     << "\", \"seed\": " << json_hex(seed) << ", \"tx\": " << n_transactions
     << ", \"max_cycles\": " << json_hex(max_cycles)
     << ", \"alignment\": " << (run_alignment ? "true" : "false")
     << ", \"threshold\": " << json_number(alignment_threshold)
     << ", \"triage\": " << (run_triage ? "true" : "false")
     << ", \"triage_window\": " << json_hex(triage_window)
     << ", \"kernel\": \"" << json_escape(kernel) << "\", \"faults\": [";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << json_escape(faults[i]) << "\"";
  }
  os << "], \"build\": {\"git_hash\": \"" << json_escape(git_hash)
     << "\", \"compiler\": \"" << json_escape(compiler)
     << "\", \"build_type\": \"" << json_escape(build_type)
     << "\", \"sanitize\": " << (sanitize ? "true" : "false")
     << "}, \"config\": \"" << json_escape(config_text) << "\"}";
  return os.str();
}

std::string JobSpec::hash() const { return sha256_hex(canonical_json()); }

JobSpec job_spec_for(const RunPlan& plan, const verif::TestSpec& test,
                     std::uint64_t seed) {
  JobSpec s;
  s.config_text = format_config(plan.cfg);
  s.test = test.name;
  s.seed = seed;
  s.n_transactions =
      plan.n_transactions > 0 ? plan.n_transactions : test.n_transactions;
  s.max_cycles = plan.max_cycles;
  s.run_alignment = plan.run_alignment;
  s.alignment_threshold = plan.alignment_threshold;
  s.run_triage = plan.run_triage;
  s.triage_window = plan.triage_window;
  s.kernel =
      plan.kernel == sim::KernelKind::kInterp ? "interp" : "compiled";
  s.faults = fault_names(plan.faults);
  const BuildInfo& b = build_info();
  s.git_hash = b.git_hash;
  s.compiler = b.compiler;
  s.build_type = b.build_type;
  s.sanitize = b.sanitize;
  return s;
}

std::vector<std::string> fault_names(const bca::Faults& f) {
  std::vector<std::string> names;
  for (const FaultEntry& e : fault_table()) {
    if (f.*(e.member)) names.push_back(e.name);
  }
  return names;  // fault_table() is sorted by name
}

bool set_fault_by_name(bca::Faults& f, const std::string& name) {
  for (const FaultEntry& e : fault_table()) {
    if (name == e.name) {
      f.*(e.member) = true;
      return true;
    }
  }
  return false;
}

bca::Faults faults_from_names(const std::vector<std::string>& names) {
  bca::Faults f;
  for (const std::string& n : names) {
    if (!set_fault_by_name(f, n)) {
      throw std::runtime_error("job spec: unknown fault '" + n + "'");
    }
  }
  return f;
}

std::string format_job_specs(const std::vector<JobSpec>& specs) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"jobs\": [";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << specs[i].canonical_json();
  }
  os << (specs.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::vector<JobSpec> parse_job_specs(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (static_cast<int>(doc.number_or("version", 0.0)) != 1) {
    throw std::runtime_error("job specs: unsupported version");
  }
  const json::Value& jobs = member(doc, "jobs");
  if (!jobs.is_array()) {
    throw std::runtime_error("job specs: 'jobs' is not an array");
  }
  std::vector<JobSpec> out;
  out.reserve(jobs.items.size());
  for (const json::Value& j : jobs.items) {
    JobSpec s;
    s.version = static_cast<int>(member(j, "v").num);
    s.test = str_of(j, "test");
    s.seed = u64_of(j, "seed");
    s.n_transactions = static_cast<int>(member(j, "tx").num);
    s.max_cycles = u64_of(j, "max_cycles");
    s.run_alignment = bool_of(j, "alignment");
    s.alignment_threshold = member(j, "threshold").num;
    s.run_triage = bool_of(j, "triage");
    s.triage_window = u64_of(j, "triage_window");
    s.kernel = j.string_or("kernel", "compiled");
    const json::Value& faults = member(j, "faults");
    for (const json::Value& f : faults.items) s.faults.push_back(f.str);
    const json::Value& b = member(j, "build");
    s.git_hash = str_of(b, "git_hash");
    s.compiler = str_of(b, "compiler");
    s.build_type = str_of(b, "build_type");
    s.sanitize = bool_of(b, "sanitize");
    s.config_text = str_of(j, "config");
    out.push_back(std::move(s));
  }
  return out;
}

std::string encode_pair_result(const PairResult& pr,
                               const std::string& spec_hash) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"spec_hash\": \"" << json_escape(spec_hash)
     << "\",\n  \"build\": {\"git_hash\": \"" << json_escape(pr.git_hash)
     << "\", \"compiler\": \"" << json_escape(pr.compiler)
     << "\", \"build_type\": \"" << json_escape(pr.build_type)
     << "\", \"sanitize\": " << (pr.sanitize ? "true" : "false")
     << "},\n  \"runs\": [\n";
  write_run(os, pr.rtl);
  os << ",\n";
  write_run(os, pr.bca);
  os << "\n  ]";
  if (pr.has_alignment) {
    const stba::AlignmentReport& rep = pr.alignment.report;
    os << ",\n  \"alignment\": {\"wall_ms\": "
       << json_number(pr.alignment.wall_ms) << ", \"ports\": [";
    for (std::size_t i = 0; i < rep.ports.size(); ++i) {
      const stba::PortAlignment& p = rep.ports[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"port\": \""
         << json_escape(p.port)
         << "\", \"total_cycles\": " << json_hex(p.total_cycles)
         << ", \"aligned_cycles\": " << json_hex(p.aligned_cycles)
         << ", \"first_divergence\": " << json_hex(p.first_divergence)
         << ", \"diverged_signals\": [";
      for (std::size_t s = 0; s < p.diverged_signals.size(); ++s) {
        os << (s == 0 ? "" : ", ") << "\""
           << json_escape(p.diverged_signals[s]) << "\"";
      }
      os << "], \"note\": \"" << json_escape(p.note) << "\", \"cells_a\": "
         << json_hex(p.cells_a) << ", \"cells_b\": " << json_hex(p.cells_b)
         << ", \"cells_matching\": " << json_hex(p.cells_matching) << "}";
    }
    os << (rep.ports.empty() ? "]" : "\n  ]") << "}";
  }
  os << "\n}\n";
  return os.str();
}

PairResult decode_pair_result(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (static_cast<int>(doc.number_or("version", 0.0)) != 1) {
    throw std::runtime_error("pair payload: unsupported version");
  }
  PairResult pr;
  const json::Value& b = member(doc, "build");
  pr.git_hash = str_of(b, "git_hash");
  pr.compiler = str_of(b, "compiler");
  pr.build_type = str_of(b, "build_type");
  pr.sanitize = bool_of(b, "sanitize");
  const json::Value& runs = member(doc, "runs");
  if (!runs.is_array() || runs.items.size() != 2) {
    throw std::runtime_error("pair payload: expected exactly two runs");
  }
  pr.rtl = read_run(runs.items[0]);
  pr.bca = read_run(runs.items[1]);
  if (pr.rtl.model != verif::ModelKind::kRtl ||
      pr.bca.model != verif::ModelKind::kBca) {
    throw std::runtime_error("pair payload: runs out of (rtl, bca) order");
  }
  const json::Value* al = doc.find("alignment");
  if (al) {
    pr.has_alignment = true;
    pr.alignment.test = pr.rtl.test;
    pr.alignment.seed = pr.rtl.seed;
    pr.alignment.wall_ms = al->number_or("wall_ms", 0.0);
    const json::Value& ports = member(*al, "ports");
    for (const json::Value& pv : ports.items) {
      stba::PortAlignment p;
      p.port = str_of(pv, "port");
      p.total_cycles = u64_of(pv, "total_cycles");
      p.aligned_cycles = u64_of(pv, "aligned_cycles");
      p.first_divergence = u64_of(pv, "first_divergence");
      const json::Value& sigs = member(pv, "diverged_signals");
      for (const json::Value& s : sigs.items) {
        p.diverged_signals.push_back(s.str);
      }
      p.note = pv.string_or("note", "");
      p.cells_a = u64_of(pv, "cells_a");
      p.cells_b = u64_of(pv, "cells_b");
      p.cells_matching = u64_of(pv, "cells_matching");
      pr.alignment.report.ports.push_back(std::move(p));
    }
  }
  return pr;
}

std::string pair_build_json(const PairResult& pr, const std::string& indent) {
  std::string out;
  out += "{\n";
  out += indent + "  \"git_hash\": \"" + json_escape(pr.git_hash) + "\",\n";
  out += indent + "  \"compiler\": \"" + json_escape(pr.compiler) + "\",\n";
  out +=
      indent + "  \"build_type\": \"" + json_escape(pr.build_type) + "\",\n";
  out += indent + "  \"sanitize\": " + (pr.sanitize ? "true" : "false") + "\n";
  out += indent + "}";
  return out;
}

std::string format_worker_results(
    const std::vector<std::pair<std::string, std::string>>& hash_payloads) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"results\": [";
  for (std::size_t i = 0; i < hash_payloads.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << "{\"hash\": \""
       << json_escape(hash_payloads[i].first) << "\", \"payload\": \""
       << json_escape(hash_payloads[i].second) << "\"}";
  }
  os << (hash_payloads.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::vector<std::pair<std::string, std::string>> parse_worker_results(
    const std::string& text) {
  const json::Value doc = json::parse(text);
  if (static_cast<int>(doc.number_or("version", 0.0)) != 1) {
    throw std::runtime_error("worker results: unsupported version");
  }
  const json::Value& results = member(doc, "results");
  if (!results.is_array()) {
    throw std::runtime_error("worker results: 'results' is not an array");
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(results.items.size());
  for (const json::Value& r : results.items) {
    out.emplace_back(str_of(r, "hash"), str_of(r, "payload"));
  }
  return out;
}

}  // namespace crve::regress
