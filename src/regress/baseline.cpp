#include "regress/baseline.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/build_info.h"

namespace crve::regress {

using json::Value;

const char* to_string(DriftKind k) {
  switch (k) {
    case DriftKind::kSignoff:
      return "signoff";
    case DriftKind::kPortRate:
      return "port_rate";
    case DriftKind::kCoverage:
      return "coverage";
    case DriftKind::kMetric:
      return "metric";
  }
  return "unknown";
}

namespace {

int kind_rank(DriftKind k) {
  switch (k) {
    case DriftKind::kSignoff:
      return 0;
    case DriftKind::kPortRate:
      return 1;
    case DriftKind::kCoverage:
      return 2;
    case DriftKind::kMetric:
      return 3;
  }
  return 4;
}

std::string u64_str(const Value& v, const std::string& key) {
  const Value* m = v.find(key);
  if (!m) return "?";
  if (m->kind == Value::Kind::kNumber) {
    return std::to_string(static_cast<long long>(m->num));
  }
  return m->str;
}

// Array member lookup by a matching string/number member per element.
const Value* find_by(const Value* array, const std::string& key,
                     const std::string& want) {
  if (!array || !array->is_array()) return nullptr;
  for (const Value& item : array->items) {
    if (u64_str(item, key) == want ||
        item.string_or(key, "\x01") == want) {
      return &item;
    }
  }
  return nullptr;
}

struct Collector {
  const DriftThresholds& th;
  std::vector<DriftFinding> findings;
  std::vector<std::string> notes;

  void add(DriftKind kind, std::string where, double baseline, double current,
           bool gated) {
    DriftFinding f;
    f.kind = kind;
    f.where = std::move(where);
    f.baseline = baseline;
    f.current = current;
    f.delta = current - baseline;
    f.gated = gated;
    findings.push_back(std::move(f));
  }

  // Rate-type comparison (fractions); records only actual change.
  void rate(const std::string& where, double b, double c) {
    if (b == c) return;
    add(DriftKind::kPortRate, where, b, c, b - c > th.max_rate_drop);
  }

  // Coverage comparison (percentage points).
  void coverage(const std::string& where, double b, double c) {
    if (b == c) return;
    add(DriftKind::kCoverage, where, b, c, b - c > th.max_coverage_drop);
  }
};

// Key for a run entry: test/seed/view.
std::string run_key(const Value& run) {
  return run.string_or("test", "?") + "/s" + u64_str(run, "seed") + "/" +
         run.string_or("view", "?");
}

std::string pair_key(const Value& a) {
  return a.string_or("test", "?") + "/s" + u64_str(a, "seed");
}

const Value* find_run(const Value* runs, const std::string& key) {
  if (!runs || !runs->is_array()) return nullptr;
  for (const Value& r : runs->items) {
    if (run_key(r) == key) return &r;
  }
  return nullptr;
}

const Value* find_pair(const Value* aligns, const std::string& key) {
  if (!aligns || !aligns->is_array()) return nullptr;
  for (const Value& a : aligns->items) {
    if (pair_key(a) == key) return &a;
  }
  return nullptr;
}

void diff_alignment(Collector& col, const std::string& where,
                    const Value& bal, const Value& cal) {
  const Value* bports = bal.find("ports");
  const Value* cports = cal.find("ports");
  if (bports && bports->is_array() && cports && cports->is_array()) {
    for (const Value& cp : cports->items) {
      const std::string port = cp.string_or("port", "?");
      const Value* bp = find_by(bports, "port", port);
      if (!bp) {
        col.notes.push_back("new port in " + where + ": " + port);
        continue;
      }
      col.rate(where + " " + port, bp->number_or("rate", 1.0),
               cp.number_or("rate", 1.0));
    }
    for (const Value& bp : bports->items) {
      const std::string port = bp.string_or("port", "?");
      if (!find_by(cports, "port", port)) {
        col.notes.push_back("port removed from " + where + ": " + port);
      }
    }
    return;
  }
  // Old-schema baseline without per-port detail: pair-level rates only.
  col.rate(where + " min_rate", bal.number_or("min_rate", 1.0),
           cal.number_or("min_rate", 1.0));
}

void diff_metrics(Collector& col, const Value* bm, const Value* cm) {
  if (!bm || !cm || !bm->is_object() || !cm->is_object()) return;
  for (const char* section : {"counters", "gauges"}) {
    const Value* bs = bm->find(section);
    const Value* cs = cm->find(section);
    if (!bs || !cs || !bs->is_object() || !cs->is_object()) continue;
    for (const auto& [name, cv] : cs->members) {
      if (cv.kind != Value::Kind::kNumber) continue;
      const Value* bv = bs->find(name);
      if (!bv) {
        col.notes.push_back("new metric: " + name);
        continue;
      }
      if (bv->kind == Value::Kind::kNumber && bv->num != cv.num) {
        col.add(DriftKind::kMetric, name, bv->num, cv.num, /*gated=*/false);
      }
    }
    for (const auto& [name, bv] : bs->members) {
      (void)bv;
      if (!cs->find(name)) col.notes.push_back("metric removed: " + name);
    }
  }
}

void diff_config(Collector& col, const Value& bcfg, const Value& ccfg) {
  const std::string cfg = ccfg.string_or("config", "?");
  // Cache provenance (report "cache" section, per-run "cached" flags) is
  // bookkeeping about HOW results were obtained, not WHAT they are: a
  // warm-cache rerun replays byte-identical numbers, so a provenance
  // difference is surfaced as a note and never gates.
  const bool bcache = bcfg.find("cache") != nullptr;
  const bool ccache = ccfg.find("cache") != nullptr;
  if (bcache != ccache) {
    col.notes.push_back(std::string("cache provenance ") +
                        (ccache ? "added in " : "removed from ") + cfg +
                        " (replayed results, not drift)");
  }
  const bool bso = bcfg.bool_or("signed_off", false);
  const bool cso = ccfg.bool_or("signed_off", false);
  if (bso != cso) {
    // A config losing sign-off is always gated; regaining it is reported
    // as an (ungated) improvement.
    col.add(DriftKind::kSignoff, cfg, bso ? 1.0 : 0.0, cso ? 1.0 : 0.0,
            bso && !cso);
  }
  col.coverage(cfg + " mean_coverage_rtl",
               bcfg.number_or("mean_coverage_rtl", 0.0),
               ccfg.number_or("mean_coverage_rtl", 0.0));

  const Value* bruns = bcfg.find("runs");
  const Value* cruns = ccfg.find("runs");
  if (cruns && cruns->is_array()) {
    for (const Value& cr : cruns->items) {
      const std::string key = run_key(cr);
      const Value* br = find_run(bruns, key);
      if (!br) {
        col.notes.push_back("new run in " + cfg + ": " + key);
        continue;
      }
      col.coverage(cfg + "/" + key, br->number_or("coverage_percent", 0.0),
                   cr.number_or("coverage_percent", 0.0));
    }
  }
  if (bruns && bruns->is_array()) {
    for (const Value& br : bruns->items) {
      if (!find_run(cruns, run_key(br))) {
        col.notes.push_back("run removed from " + cfg + ": " + run_key(br));
      }
    }
  }

  const Value* bals = bcfg.find("alignments");
  const Value* cals = ccfg.find("alignments");
  if (cals && cals->is_array()) {
    for (const Value& ca : cals->items) {
      const std::string key = pair_key(ca);
      const Value* ba = find_pair(bals, key);
      if (!ba) {
        col.notes.push_back("new alignment pair in " + cfg + ": " + key);
        continue;
      }
      diff_alignment(col, cfg + "/" + key, *ba, ca);
    }
  }
  if (bals && bals->is_array()) {
    for (const Value& ba : bals->items) {
      if (!find_pair(cals, pair_key(ba))) {
        col.notes.push_back("alignment pair removed from " + cfg + ": " +
                            pair_key(ba));
      }
    }
  }
}

}  // namespace

DriftReport compute_drift(const Value& baseline, const Value& current,
                          const DriftThresholds& thresholds) {
  const Value* bcfgs = baseline.find("configs");
  const Value* ccfgs = current.find("configs");
  if (!bcfgs || !bcfgs->is_array() || !ccfgs || !ccfgs->is_array()) {
    throw std::runtime_error(
        "drift: both documents must be matrix reports with a configs array");
  }
  Collector col{thresholds, {}, {}};

  for (const Value& ccfg : ccfgs->items) {
    const std::string name = ccfg.string_or("config", "?");
    const Value* bcfg = find_by(bcfgs, "config", name);
    if (!bcfg) {
      col.notes.push_back("new config: " + name);
      continue;
    }
    diff_config(col, *bcfg, ccfg);
  }
  for (const Value& bcfg : bcfgs->items) {
    const std::string name = bcfg.string_or("config", "?");
    if (!find_by(ccfgs, "config", name)) {
      col.notes.push_back("config removed: " + name);
    }
  }
  diff_metrics(col, baseline.find("metrics"), current.find("metrics"));

  DriftReport report;
  report.thresholds = thresholds;
  report.findings = std::move(col.findings);
  report.notes = std::move(col.notes);
  // Rank: gated first, then kind severity, then regression magnitude
  // (improvements last within a kind), then location for a total order.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const DriftFinding& a, const DriftFinding& b) {
                     if (a.gated != b.gated) return a.gated;
                     const int ra = kind_rank(a.kind), rb = kind_rank(b.kind);
                     if (ra != rb) return ra < rb;
                     const double da = a.delta < 0 ? -a.delta : 0.0;
                     const double db = b.delta < 0 ? -b.delta : 0.0;
                     if (da != db) return da > db;
                     return a.where < b.where;
                   });
  for (const auto& f : report.findings) {
    if (f.gated) ++report.gated_count;
  }
  return report;
}

std::string DriftReport::summary() const {
  std::ostringstream os;
  os << "drift gate: " << (ok() ? "PASS" : "FAIL") << " (" << gated_count
     << " gated regression" << (gated_count == 1 ? "" : "s") << ", "
     << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
     << ", " << notes.size() << " note" << (notes.size() == 1 ? "" : "s")
     << ")\n";
  for (const auto& f : findings) {
    os << "  " << (f.gated ? "[GATED] " : "        ") << to_string(f.kind)
       << " " << f.where << ": " << f.baseline << " -> " << f.current
       << " (delta " << (f.delta > 0 ? "+" : "") << f.delta << ")\n";
  }
  for (const auto& n : notes) {
    os << "  note: " << n << "\n";
  }
  return os.str();
}

std::string DriftReport::json() const {
  using crve::json::escape;
  using crve::json::number;
  std::string out;
  out += "{\n";
  out += "  \"build\": " + build_info_json("  ") + ",\n";
  out += "  \"thresholds\": {\"max_rate_drop\": " +
         number(thresholds.max_rate_drop) +
         ", \"max_coverage_drop\": " + number(thresholds.max_coverage_drop) +
         "},\n";
  out += std::string("  \"gate_passed\": ") + (ok() ? "true" : "false") +
         ",\n";
  out += "  \"gated_count\": " + std::to_string(gated_count) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const DriftFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += std::string("    {\"kind\": \"") + to_string(f.kind) + "\"";
    out += ", \"where\": \"" + escape(f.where) + "\"";
    out += ", \"baseline\": " + number(f.baseline);
    out += ", \"current\": " + number(f.current);
    out += ", \"delta\": " + number(f.delta);
    out += std::string(", \"gated\": ") + (f.gated ? "true" : "false") + "}";
  }
  out += findings.empty() ? "]" : "\n  ]";
  out += ",\n  \"notes\": [";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + escape(notes[i]) + "\"";
  }
  out += notes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace crve::regress
