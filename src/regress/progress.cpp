#include "regress/progress.h"

#include <cstdio>
#include <stdexcept>

#include "common/json.h"
#include "obs/metrics.h"

namespace crve::regress {

namespace {

std::string job_key(const std::string& config, const std::string& test,
                    std::uint64_t seed, const std::string& view) {
  return config + ":" + test + ":s" + std::to_string(seed) + ":" + view;
}

}  // namespace

ProgressTracker::ProgressTracker(ProgressOptions opts)
    : opts_(std::move(opts)) {
  if (!opts_.out_path.empty()) {
    out_.open(opts_.out_path, std::ios::trunc);
    if (!out_) {
      throw std::runtime_error("cannot write progress stream: " +
                               opts_.out_path);
    }
  }
  t0_ns_ = obs::now_ns();
}

ProgressTracker::~ProgressTracker() {
  if (tty_active_) std::fprintf(stderr, "\n");
}

double ProgressTracker::elapsed_ms() const {
  return static_cast<double>(obs::now_ns() - t0_ns_) / 1e6;
}

void ProgressTracker::write_line(const std::string& line) {
  if (out_.is_open()) {
    out_ << line << "\n";
    out_.flush();
  }
}

void ProgressTracker::render_tty() {
  if (!opts_.tty) return;
  std::string line = "[crve] " + std::to_string(done_) + "/" +
                     std::to_string(total_jobs_) + " jobs";
  if (failed_ > 0) line += ", " + std::to_string(failed_) + " failed";
  line += ", " + std::to_string(in_flight_.size()) + " in flight";
  std::fprintf(stderr, "\r%-79s", line.c_str());
  std::fflush(stderr);
  tty_active_ = true;
}

void ProgressTracker::maybe_heartbeat() {
  std::uint64_t now = obs::now_ns();
  if (last_heartbeat_ns_ != 0 &&
      now - last_heartbeat_ns_ < opts_.heartbeat_ms * 1000000ULL) {
    return;
  }
  last_heartbeat_ns_ = now;

  double elapsed_s = static_cast<double>(now - t0_ns_) / 1e9;
  double rate = 0.0;
  double eta_ms = -1.0;
  if (fresh_done_ > 0 && elapsed_s > 0.0) {
    rate = static_cast<double>(fresh_done_) / elapsed_s;
    std::size_t remaining =
        total_jobs_ > done_ ? total_jobs_ - done_ : 0;
    eta_ms = static_cast<double>(remaining) / rate * 1000.0;
  }

  std::string line = "{\"event\":\"heartbeat\",\"t_ms\":" +
                     json::number(elapsed_ms()) +
                     ",\"done\":" + std::to_string(done_) +
                     ",\"total\":" + std::to_string(total_jobs_) +
                     ",\"in_flight\":[";
  bool first = true;
  for (const auto& [key, start] : in_flight_) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json::escape(key) + "\"";
  }
  line += "],\"rate_jobs_per_s\":" + json::number(rate) +
          ",\"eta_ms\":" + json::number(eta_ms) + "}";
  write_line(line);
}

void ProgressTracker::campaign_start(std::size_t configs,
                                     std::size_t total_jobs,
                                     std::size_t cached_jobs) {
  std::lock_guard<std::mutex> lock(mu_);
  total_jobs_ = total_jobs;
  write_line("{\"event\":\"campaign_start\",\"t_ms\":" +
             json::number(elapsed_ms()) +
             ",\"configs\":" + std::to_string(configs) +
             ",\"total_jobs\":" + std::to_string(total_jobs) +
             ",\"cached_jobs\":" + std::to_string(cached_jobs) + "}");
  render_tty();
}

void ProgressTracker::job_start(const std::string& config,
                                const std::string& test, std::uint64_t seed,
                                const std::string& view) {
  std::lock_guard<std::mutex> lock(mu_);
  double t = elapsed_ms();
  in_flight_.emplace(job_key(config, test, seed, view), t);
  write_line("{\"event\":\"job_start\",\"t_ms\":" + json::number(t) +
             ",\"config\":\"" + json::escape(config) + "\",\"test\":\"" +
             json::escape(test) + "\",\"seed\":" + std::to_string(seed) +
             ",\"view\":\"" + json::escape(view) + "\"}");
  maybe_heartbeat();
  render_tty();
}

void ProgressTracker::job_finish(const std::string& config,
                                 const std::string& test, std::uint64_t seed,
                                 const std::string& view,
                                 const std::string& verdict, bool cached,
                                 double wall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  double t = elapsed_ms();
  std::string key = job_key(config, test, seed, view);
  JobRecord rec;
  rec.config = config;
  rec.test = test;
  rec.seed = seed;
  rec.view = view;
  rec.end_ms = t;
  rec.verdict = verdict;
  rec.cached = cached;
  auto it = in_flight_.find(key);
  if (it != in_flight_.end()) {
    rec.start_ms = it->second;
    in_flight_.erase(it);
  } else {
    rec.start_ms = t;  // cached replay: never had a job_start
  }
  records_.push_back(std::move(rec));

  ++done_;
  if (verdict != "pass") ++failed_;
  if (!cached) ++fresh_done_;

  write_line("{\"event\":\"job_finish\",\"t_ms\":" + json::number(t) +
             ",\"config\":\"" + json::escape(config) + "\",\"test\":\"" +
             json::escape(test) + "\",\"seed\":" + std::to_string(seed) +
             ",\"view\":\"" + json::escape(view) + "\",\"verdict\":\"" +
             json::escape(verdict) + "\",\"cached\":" +
             (cached ? "true" : "false") +
             ",\"wall_ms\":" + json::number(wall_ms) + "}");
  maybe_heartbeat();
  render_tty();
}

void ProgressTracker::evictions(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  write_line("{\"event\":\"eviction\",\"t_ms\":" + json::number(elapsed_ms()) +
             ",\"evictions\":" + std::to_string(n) + "}");
}

void ProgressTracker::campaign_end(bool signed_off) {
  std::lock_guard<std::mutex> lock(mu_);
  double t = elapsed_ms();
  write_line("{\"event\":\"campaign_end\",\"t_ms\":" + json::number(t) +
             ",\"done\":" + std::to_string(done_) +
             ",\"failed\":" + std::to_string(failed_) + ",\"signed_off\":" +
             (signed_off ? "true" : "false") +
             ",\"wall_ms\":" + json::number(t) + "}");
  if (tty_active_) {
    std::fprintf(stderr, "\n");
    tty_active_ = false;
  }
  if (out_.is_open()) out_.close();
}

}  // namespace crve::regress
