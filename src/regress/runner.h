// Regression runner (paper Fig. 4 / Fig. 5).
//
// Implements the common verification flow end-to-end for one node
// configuration: build the testbench for each view, run the same test suite
// with the same seeds on both, collect verification and coverage reports,
// dump VCD waveforms, and — once both views pass — call STBA for the
// bus-accurate comparison. The sign-off criteria are the paper's: all
// checks green on both views, identical functional coverage, and >= 99%
// alignment at every port.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "stba/analyzer.h"
#include "stbus/config.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace crve::regress {

struct RunPlan {
  stbus::NodeConfig cfg;
  std::vector<verif::TestSpec> tests;  // empty = full CATG suite
  std::vector<std::uint64_t> seeds = {1};
  int n_transactions = 0;  // 0 = keep each test's default
  // Artifact directory for VCD dumps and text reports; empty = in-memory.
  std::string out_dir;
  bool run_alignment = true;
  double alignment_threshold = 0.99;
  bca::Faults faults;  // injected into the BCA runs
  std::uint64_t max_cycles = 500000;
};

struct TestOutcome {
  std::string test;
  std::uint64_t seed = 0;
  verif::ModelKind model{};
  verif::RunResult result;
};

struct AlignmentOutcome {
  std::string test;
  std::uint64_t seed = 0;
  stba::AlignmentReport report;
};

struct RegressionResult {
  std::vector<TestOutcome> outcomes;
  std::vector<AlignmentOutcome> alignments;
  bool rtl_passed = false;
  bool bca_passed = false;
  bool coverage_match = false;  // per-(test,seed) digests equal across views
  double min_alignment = 1.0;
  double mean_coverage_rtl = 0.0;
  bool signed_off = false;

  std::string summary() const;
};

class Regression {
 public:
  static RegressionResult run(const RunPlan& plan);
};

}  // namespace crve::regress
