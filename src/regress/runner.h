// Regression runner (paper Fig. 4 / Fig. 5).
//
// Implements the common verification flow end-to-end for one node
// configuration: build the testbench for each view, run the same test suite
// with the same seeds on both, collect verification and coverage reports,
// dump VCD waveforms, and — once both views pass — call STBA for the
// bus-accurate comparison. The sign-off criteria are the paper's: all
// checks green on both views, identical functional coverage, and >= 99%
// alignment at every port.
//
// The (test, seed, view) job matrix is sharded across a thread pool
// (RunPlan::jobs workers). Every job owns its testbench, RNG stream and
// artifact files, and writes its result into a pre-sized slot, so the
// outcome order, every aggregate and the JSON report are bit-identical to
// the serial run. Regression::run_matrix batches several configurations
// (e.g. a whole configs/ directory) through one shared pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "stba/analyzer.h"
#include "stbus/config.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace crve::regress {

struct RunPlan {
  stbus::NodeConfig cfg;
  std::vector<verif::TestSpec> tests;  // empty = full CATG suite
  std::vector<std::uint64_t> seeds = {1};
  int n_transactions = 0;  // 0 = keep each test's default
  // Artifact directory for VCD dumps and text reports; empty = in-memory.
  std::string out_dir;
  bool run_alignment = true;
  double alignment_threshold = 0.99;
  bca::Faults faults;  // injected into the BCA runs
  std::uint64_t max_cycles = 500000;
  // Worker threads the (test, seed, view) jobs are sharded across.
  // 1 = serial (the default), 0 = one worker per hardware thread.
  unsigned jobs = 1;
  // When a pair misses its alignment threshold and artifacts go to disk,
  // run the stba::Triage deep-dive and write `triage_<test>_s<seed>.json`
  // plus windowed VCD excerpts of both views around the first divergence.
  bool run_triage = true;
  // Half-width, in cycles, of the excerpt window around the divergence.
  std::uint64_t triage_window = 50;
};

struct TestOutcome {
  std::string test;
  std::uint64_t seed = 0;
  verif::ModelKind model{};
  verif::RunResult result;
  double wall_ms = 0.0;  // wall-clock time of this one job
};

struct AlignmentOutcome {
  std::string test;
  std::uint64_t seed = 0;
  stba::AlignmentReport report;
  double wall_ms = 0.0;  // wall-clock time of the STBA comparison
};

struct RegressionResult {
  std::string config_name;
  std::vector<TestOutcome> outcomes;
  std::vector<AlignmentOutcome> alignments;
  bool rtl_passed = false;
  bool bca_passed = false;
  bool coverage_match = false;  // per-(test,seed) digests equal across views
  double min_alignment = 1.0;
  double mean_coverage_rtl = 0.0;
  double alignment_threshold = 0.99;
  bool signed_off = false;
  double wall_ms = 0.0;  // whole-campaign wall clock
  // Deterministic (kStable-only) obs-registry snapshot taken at campaign
  // end when metrics collection is enabled; empty otherwise. Empty = the
  // "metrics" section is omitted from json(), preserving the byte-identical
  // report guarantee for uninstrumented runs. The registry is process-wide
  // and accumulating, so this reflects everything recorded since the last
  // registry().reset(). Only Regression::run fills it (run_matrix campaigns
  // share one registry; see MatrixResult::metrics_json).
  std::string metrics_json;

  std::string summary() const;
  // Machine-readable report (schema in DESIGN.md). with_timing=false omits
  // every wall-clock field; everything that remains is deterministic, so the
  // report is byte-identical for any RunPlan::jobs value.
  std::string json(bool with_timing = true) const;
};

// Result of a multi-configuration batch (Regression::run_matrix).
struct MatrixResult {
  std::vector<RegressionResult> results;  // one per config, input order
  bool all_signed_off = false;
  unsigned jobs = 1;      // resolved worker count the batch ran with
  double wall_ms = 0.0;   // whole-batch wall clock
  // Batch-level analog of RegressionResult::metrics_json (the configs share
  // one process-wide registry, so the snapshot lives here, not per config).
  std::string metrics_json;

  std::string summary() const;
  std::string json(bool with_timing = true) const;
};

class Regression {
 public:
  static RegressionResult run(const RunPlan& plan);

  // Batch entry point: runs `base` against every configuration, sharding
  // the whole (config, test, seed, view) matrix across one pool of
  // base.jobs workers. base.cfg is ignored; when base.out_dir is set each
  // configuration gets an isolated `<out_dir>/<config name>` artifact
  // directory and the batch report is written to `<out_dir>/report.json`.
  static MatrixResult run_matrix(const std::vector<stbus::NodeConfig>& configs,
                                 const RunPlan& base);
};

}  // namespace crve::regress
