// Regression runner (paper Fig. 4 / Fig. 5).
//
// Implements the common verification flow end-to-end for one node
// configuration: build the testbench for each view, run the same test suite
// with the same seeds on both, collect verification and coverage reports,
// dump VCD waveforms, and — once both views pass — call STBA for the
// bus-accurate comparison. The sign-off criteria are the paper's: all
// checks green on both views, identical functional coverage, and >= 99%
// alignment at every port.
//
// The (test, seed, view) job matrix is sharded across a thread pool
// (RunPlan::jobs workers). Every job owns its testbench, RNG stream and
// artifact files, and writes its result into a pre-sized slot, so the
// outcome order, every aggregate and the JSON report are bit-identical to
// the serial run. Regression::run_matrix batches several configurations
// (e.g. a whole configs/ directory) through one shared pool.
//
// With RunPlan::cache_dir set the runner becomes a planner/worker pipeline
// over a content-addressed result cache (DESIGN.md §13): every pair job is
// keyed by the SHA-256 of its canonical JobSpec (config content, test,
// seed, views, build provenance); the planner replays cache hits into
// their slots and schedules only the missing pairs onto the pool; the
// existing slot-ordered reduce merges replayed and fresh results, so a
// warm-cache report is byte-identical to the cold run modulo the `cached`
// provenance fields. plan_matrix/run_worker expose the same split across
// processes: a spec file emitted by the planner can be executed by
// `crve_regress --worker` anywhere the same build exists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "obs/txn_trace.h"
#include "stba/analyzer.h"
#include "stbus/config.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace crve::regress {

// Artifact-name component sanitizer: any byte outside [A-Za-z0-9._-]
// becomes '_', so test names containing '/' or spaces cannot escape the
// artifact directory or produce unopenable paths. Applied to every
// `<kind>_<test>_s<seed>...` artifact the runner writes (reports, flight
// dumps, triage, profiles, txn traces). Identity for the CATG suite names.
std::string sanitize_artifact_name(const std::string& name);

class ProgressTracker;  // regress/progress.h

// Elaboration-time design-health row for the dashboard, one per
// (config, view). Plain data deliberately mirroring lint::DesignSummary
// without depending on it: the design-lint preflight lives in the CLI (the
// crve_design_lint library sits above this one), which fills
// RunPlan::design_health after the gate passes; run_matrix just threads the
// rows through to MatrixResult for html_report.
struct DesignHealth {
  std::string config;
  std::string view;  // "RTL" / "BCA"
  std::size_t signals = 0;
  std::size_t comb_processes = 0;
  std::size_t clocked_processes = 0;
  std::size_t ranks = 0;
  std::size_t max_fanout = 0;
  std::string max_fanout_signal;
  int errors = 0;
  int warnings = 0;
  int notes = 0;
};

struct RunPlan {
  stbus::NodeConfig cfg;
  std::vector<verif::TestSpec> tests;  // empty = full CATG suite
  // Simulation kernel used for every job in the campaign (`--sim-kernel`).
  sim::KernelKind kernel = sim::KernelKind::kCompiled;
  std::vector<std::uint64_t> seeds = {1};
  int n_transactions = 0;  // 0 = keep each test's default
  // Artifact directory for VCD dumps and text reports; empty = in-memory.
  std::string out_dir;
  bool run_alignment = true;
  double alignment_threshold = 0.99;
  bca::Faults faults;  // injected into the BCA runs
  std::uint64_t max_cycles = 500000;
  // Worker threads the (test, seed, view) jobs are sharded across.
  // 1 = serial (the default), 0 = one worker per hardware thread.
  unsigned jobs = 1;
  // When a pair misses its alignment threshold and artifacts go to disk,
  // run the stba::Triage deep-dive and write `triage_<test>_s<seed>.json`
  // plus windowed VCD excerpts of both views around the first divergence.
  bool run_triage = true;
  // Half-width, in cycles, of the excerpt window around the divergence.
  std::uint64_t triage_window = 50;
  // Content-addressed result cache (DESIGN.md §13). Empty = no cache. When
  // set, pair jobs whose JobSpec hash is present replay from the cache
  // instead of simulating; missing pairs are stored after they run.
  std::string cache_dir;
  // Cache size budget in MiB (LRU eviction on store); 0 = unbounded.
  std::uint64_t cache_max_mb = 0;
  // Kernel hotspot profiler (DESIGN.md §15). Non-empty: every job runs with
  // the per-process profiler enabled, per-job `profile_<test>_s<seed>_
  // <view>.json` artifacts land in out_dir, and the campaign-level merged
  // hotspot report is written to this path. Deliberately absent from
  // JobSpec: profiling never perturbs the cache key, so a profiled rerun
  // still replays its hits (replayed pairs simply contribute no samples).
  std::string profile_out;
  // Transaction-lifecycle tracing (DESIGN.md §16). Non-empty: every job runs
  // with the txn tracer enabled, per-job `txn_<test>_s<seed>_<view>.json`
  // span artifacts plus `.trace.json` Chrome trace-event files land in
  // out_dir, and the campaign-level merged latency report (histograms,
  // top-K slowest table, dual-view delta join) is written to this path.
  // Like profile_out, deliberately absent from JobSpec: tracing never
  // perturbs the cache key (replayed pairs contribute no spans).
  std::string txn_trace_out;
  // Streaming campaign telemetry (--progress-out / --progress); not owned.
  // The runner emits job lifecycle events through it; null = no telemetry.
  ProgressTracker* progress = nullptr;
  // Design-lint summaries from the CLI preflight (empty when the gate was
  // skipped); rendered by the dashboard as the "Design health" panel.
  std::vector<DesignHealth> design_health;
};

struct TestOutcome {
  std::string test;
  std::uint64_t seed = 0;
  verif::ModelKind model{};
  verif::RunResult result;
  double wall_ms = 0.0;  // wall-clock time of this one job
  // Replayed from the campaign cache instead of simulated. The wall_ms of
  // a replayed outcome is the original run's, preserved in the payload.
  bool cached = false;
};

struct AlignmentOutcome {
  std::string test;
  std::uint64_t seed = 0;
  stba::AlignmentReport report;
  double wall_ms = 0.0;  // wall-clock time of the STBA comparison
  bool cached = false;   // replayed from the campaign cache
};

struct RegressionResult {
  std::string config_name;
  std::vector<TestOutcome> outcomes;
  std::vector<AlignmentOutcome> alignments;
  bool rtl_passed = false;
  bool bca_passed = false;
  bool coverage_match = false;  // per-(test,seed) digests equal across views
  double min_alignment = 1.0;
  double mean_coverage_rtl = 0.0;
  double alignment_threshold = 0.99;
  bool signed_off = false;
  double wall_ms = 0.0;  // whole-campaign wall clock
  // Deterministic (kStable-only) obs-registry snapshot taken at campaign
  // end when metrics collection is enabled; empty otherwise. Empty = the
  // "metrics" section is omitted from json(), preserving the byte-identical
  // report guarantee for uninstrumented runs. The registry is process-wide
  // and accumulating, so this reflects everything recorded since the last
  // registry().reset(). Only Regression::run fills it (run_matrix campaigns
  // share one registry; see MatrixResult::metrics_json).
  std::string metrics_json;
  // Pair jobs replayed from the campaign cache (0 = fully simulated). When
  // non-zero the report carries a "cache" section with the originating
  // build stamp, and every replayed run/alignment entry is marked
  // "cached": true — provenance the baseline differ reads as a note, not
  // as drift.
  std::size_t cached_pairs = 0;
  // Originating build stamp of the replayed entries (pretty JSON object,
  // inner lines at column 0); empty when cached_pairs == 0.
  std::string cache_build_json;
  // Merged per-process hotspot profile across every freshly simulated job
  // (RunPlan::profile_out); empty when profiling was off. Not part of
  // json() — the profiler writes its own artifact — so report.json stays
  // byte-identical whether or not the campaign was profiled.
  obs::ProfileData profile;
  // Merged transaction-latency aggregate and the per-pair dual-view delta
  // join across the campaign (RunPlan::txn_trace_out); empty when tracing
  // was off, which also omits the optional "txn_latency" report section.
  obs::TxnTraceData txn;
  obs::TxnDeltaStats txn_delta;

  std::string summary() const;
  // Machine-readable report (schema in DESIGN.md). with_timing=false omits
  // every wall-clock field; everything that remains is deterministic, so the
  // report is byte-identical for any RunPlan::jobs value.
  std::string json(bool with_timing = true) const;
};

// Result of a multi-configuration batch (Regression::run_matrix).
struct MatrixResult {
  std::vector<RegressionResult> results;  // one per config, input order
  bool all_signed_off = false;
  unsigned jobs = 1;      // resolved worker count the batch ran with
  double wall_ms = 0.0;   // whole-batch wall clock
  // Batch-level analog of RegressionResult::metrics_json (the configs share
  // one process-wide registry, so the snapshot lives here, not per config).
  std::string metrics_json;
  // Flat JSON object of cache hit/miss/store/evict counters (CacheStats
  // schema) when the batch ran with a cache; empty otherwise.
  std::string cache_stats_json;
  // Batch-level merge of every config's profile (RunPlan::profile_out);
  // empty when profiling was off.
  obs::ProfileData profile;
  // Batch-level merge of every config's transaction-latency aggregate and
  // delta join (RunPlan::txn_trace_out); empty when tracing was off.
  obs::TxnTraceData txn;
  obs::TxnDeltaStats txn_delta;
  // Copied from RunPlan::design_health; empty = no "Design health" panel in
  // the dashboard (keeps pre-existing dashboards byte-identical).
  std::vector<DesignHealth> design_health;

  std::string summary() const;
  std::string json(bool with_timing = true) const;
};

struct JobSpec;  // regress/job_spec.h

// Planner-only view of a batch: which pair jobs the cache cannot satisfy.
struct MatrixPlan {
  std::vector<JobSpec> missing;  // config order, then (test, seed) order
  std::size_t total_pairs = 0;
  std::size_t cached_pairs = 0;
};

// Options for executing a spec file out of process (crve_regress --worker).
struct WorkerOptions {
  // Artifact directory (per-job subdirectories); empty = in-memory runs
  // with empty artifact manifests.
  std::string out_dir;
  unsigned jobs = 1;  // worker threads per pair job (0 = hardware threads)
  // Non-empty: store each executed pair straight into this cache.
  std::string cache_dir;
  std::uint64_t cache_max_mb = 0;
};

// One executed spec: the content hash and the encoded pair payload.
struct WorkerOutcome {
  std::string hash;
  std::string payload;
  bool passed = false;  // both views passed (diagnostic only; workers
                        // execute, the planner's reduce judges)
};

class Regression {
 public:
  static RegressionResult run(const RunPlan& plan);

  // Batch entry point: runs `base` against every configuration, sharding
  // the whole (config, test, seed, view) matrix across one pool of
  // base.jobs workers. base.cfg is ignored; when base.out_dir is set each
  // configuration gets an isolated `<out_dir>/<config name>` artifact
  // directory and the batch report is written to `<out_dir>/report.json`.
  static MatrixResult run_matrix(const std::vector<stbus::NodeConfig>& configs,
                                 const RunPlan& base);

  // Planner half on its own: hash every pair job of the batch, probe the
  // cache (base.cache_dir; an empty cache dir reports everything missing)
  // and return the specs a fleet of workers would have to execute. Does
  // not simulate anything.
  static MatrixPlan plan_matrix(const std::vector<stbus::NodeConfig>& configs,
                                const RunPlan& base);

  // Worker half: execute the given specs (each reconstructs its
  // configuration from canonical content and its test from the CATG suite
  // by name) and return the encoded pair payloads, storing them into
  // opts.cache_dir when set. Throws std::runtime_error on a spec naming an
  // unknown test or fault.
  static std::vector<WorkerOutcome> run_worker(
      const std::vector<JobSpec>& specs, const WorkerOptions& opts);
};

}  // namespace crve::regress
