// Self-contained campaign dashboard.
//
// Renders a MatrixResult (plus the optional deterministic metrics snapshot)
// as one dependency-free HTML document: no external CSS, fonts, images or
// JS frameworks — everything inline, charts as inline SVG — so the file can
// be opened from a CI artifact tarball or an NFS results directory as-is.
//
// Content: overall verdict, per-configuration pass/fail run matrix, the
// per-port alignment heatmap with drill-down links to triage reports and
// flight-recorder dumps (links are relative to the dashboard's directory,
// matching the runner's artifact layout), per-pair coverage bars, and the
// stable metrics tables with log2-histogram charts.
//
// Determinism: the document is a pure function of its inputs — fixed
// iteration orders, no timestamps, shortest round-trip number formatting —
// so for a given campaign it is byte-identical for any --jobs value
// (tests/test_dashboard.cpp holds this).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "regress/progress.h"
#include "regress/runner.h"

namespace crve::regress {

struct HtmlOptions {
  // Emit drill-down links to `<config>/triage_<test>_s<seed>.json` (and the
  // VCD excerpts) for pairs below their sign-off threshold. Enable only
  // when the campaign actually wrote those artifacts.
  bool triage_links = false;
  // Emit links to `<config>/flight_<test>_s<seed>_<view>.log` for failed
  // runs. Enable only when a flight recorder was installed.
  bool flight_links = false;
  // Finished-job records from the progress tracker (quiescent read after
  // the pool drained); non-null adds the campaign timeline panel. The
  // timeline carries wall-clock data, so it sits outside the dashboard's
  // byte-determinism guarantee — exactly like the hotspot wall times.
  const std::vector<JobRecord>* timeline = nullptr;
};

// Renders the dashboard. `stable_metrics` may be null (metrics section is
// omitted); when present it must be a kStable-only snapshot so the
// byte-determinism guarantee holds.
std::string html_report(const MatrixResult& mres,
                        const obs::Registry::Snapshot* stable_metrics = nullptr,
                        const HtmlOptions& opts = {});

}  // namespace crve::regress
