// Baseline drift gating.
//
// Compares the machine-readable report of the current campaign against a
// stored baseline report (both MatrixResult::json documents, parsed with
// crve::json) and turns silent quality erosion into an explicit gate:
// per-port alignment-rate drops, functional-coverage drops, sign-off
// flips and stable-metric deltas are collected as ranked findings, and the
// configurable thresholds decide which of them fail the gate
// (`crve-regress --baseline prev.json` exits non-zero on any gated
// finding even when the campaign itself passed).
//
// Matching is structural and tolerant: configs pair by name, alignment
// entries by (test, seed), ports by name, runs by (test, seed, view).
// Entries present on only one side are reported as notes, never gated — a
// renamed test should read as "new + removed", not as a regression.
// Baselines written before the per-port `ports` detail existed degrade to
// pair-level min-rate comparison.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"

namespace crve::regress {

struct DriftThresholds {
  // Max tolerated per-port alignment-rate drop, as a rate fraction
  // (0.001 == 0.1 percentage points).
  double max_rate_drop = 0.001;
  // Max tolerated functional-coverage drop, in percentage points. The
  // default gates any drop at all.
  double max_coverage_drop = 0.0;
};

enum class DriftKind {
  kSignoff,   // a config's sign-off verdict flipped
  kPortRate,  // per-port (or pair-level, for old baselines) alignment rate
  kCoverage,  // functional coverage (per run, or per-config mean)
  kMetric,    // stable obs metric (informational, never gated)
};

const char* to_string(DriftKind k);

struct DriftFinding {
  DriftKind kind{};
  std::string where;     // e.g. "cfg32/t_unit_loads/s1 tb.init0"
  double baseline = 0.0;
  double current = 0.0;
  double delta = 0.0;    // current - baseline (negative = regression)
  bool gated = false;    // fails the gate under the active thresholds
};

struct DriftReport {
  DriftThresholds thresholds;
  // Ranked: gated first, then by kind severity, then by regression
  // magnitude, then by location — the first line names the worst offender.
  std::vector<DriftFinding> findings;
  // Structural differences (new/removed configs, pairs, ports, metrics);
  // informational, never gated.
  std::vector<std::string> notes;
  std::size_t gated_count = 0;

  bool ok() const { return gated_count == 0; }
  // Ranked human-readable summary (what the CLI prints).
  std::string summary() const;
  // diff.json document: build stamp, thresholds, verdict, ranked findings.
  std::string json() const;
};

// Computes the drift of `current` relative to `baseline`. Both documents
// must be parsed MatrixResult reports; throws std::runtime_error when the
// top-level shape is not an object with a configs array.
DriftReport compute_drift(const json::Value& baseline,
                          const json::Value& current,
                          const DriftThresholds& thresholds);

}  // namespace crve::regress
