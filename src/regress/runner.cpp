#include "regress/runner.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "cache/cache.h"
#include "common/build_info.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "regress/config_file.h"
#include "regress/html_report.h"
#include "regress/job_spec.h"
#include "regress/progress.h"
#include "stba/triage.h"
#include "vcd/excerpt.h"

namespace crve::regress {

using verif::ModelKind;
using verif::RunResult;
using verif::Testbench;
using verif::TestbenchOptions;
using verif::TestSpec;

std::string sanitize_artifact_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Environment-side port prefixes to align for a given (config, test).
std::vector<std::string> alignment_ports(stbus::NodeConfig cfg,
                                         const TestSpec& spec) {
  if (spec.adjust) spec.adjust(cfg);
  cfg.validate_and_normalize();
  std::vector<std::string> ports;
  for (int i = 0; i < cfg.n_initiators; ++i) {
    ports.push_back(Testbench::initiator_port_name(i));
  }
  for (int t = 0; t < cfg.n_targets; ++t) {
    ports.push_back(Testbench::target_port_name(t));
  }
  return ports;
}

void write_text(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
}

std::string run_report(const TestOutcome& o) {
  std::ostringstream os;
  os << "test " << o.test << " seed " << o.seed << " model "
     << verif::to_string(o.model) << "\n";
  os << "  completed: " << (o.result.completed ? "yes" : "NO") << " in "
     << o.result.cycles << " cycles\n";
  os << "  checker violations: " << o.result.checker_violations << "\n";
  for (const auto& v : o.result.violations) {
    os << "    @" << v.cycle << " " << v.port << " [" << v.rule << "] "
       << v.message << "\n";
  }
  os << "  scoreboard errors: " << o.result.scoreboard_errors << "\n";
  for (const auto& e : o.result.sb_errors) {
    os << "    @" << e.cycle << " " << e.where << " " << e.message << "\n";
  }
  os << "  functional coverage: " << o.result.coverage_percent << "%\n";
  if (o.result.toggle_percent >= 0.0) {
    os << "  toggle coverage: " << o.result.toggle_percent << "%\n";
  }
  os << "  port utilisation (busy cycles / packets in / packets out):\n";
  for (const auto& u : o.result.utilisation) {
    os << "    " << u.port << ": " << u.busy_cycles << " / "
       << u.request_packets << " / " << u.response_packets << "\n";
  }
  return os.str();
}

// One configuration's expanded campaign while its jobs are in flight.
//
// Pair p = test_index * n_seeds + seed_index and unit u = 2*p + view
// (view 0 = RTL, 1 = BCA) — exactly the serial visit order. Every job
// writes into its own pre-sized slot, so the reduction reads results in
// serial order no matter which worker ran what.
struct Campaign {
  RunPlan plan;
  std::vector<TestSpec> tests;
  std::size_t n_pairs = 0;
  std::vector<TestOutcome> outcomes;    // one slot per unit
  std::vector<std::string> waves;       // in-memory VCD text per unit
  std::vector<std::string> wave_paths;  // on-disk VCD path per unit
  std::vector<AlignmentOutcome> aligns;  // one slot per pair
  // Cache planning state: pair_cached[p] marks a pair the planner replayed
  // from the cache (its slots are already filled); missing_units and
  // missing_pairs are the jobs that still have to run. Without a cache the
  // missing lists cover the whole campaign.
  std::vector<char> pair_cached;
  std::vector<std::size_t> missing_units;
  std::vector<std::size_t> missing_pairs;
  std::string cache_build_json;  // originating build of the replayed pairs

  void prepare() {
    tests = plan.tests.empty() ? verif::catg_test_suite() : plan.tests;
    n_pairs = tests.size() * plan.seeds.size();
    outcomes.resize(2 * n_pairs);
    waves.resize(2 * n_pairs);
    wave_paths.resize(2 * n_pairs);
    if (plan.run_alignment) aligns.resize(n_pairs);
    pair_cached.assign(n_pairs, 0);
    missing_units.clear();
    missing_pairs.clear();
    for (std::size_t p = 0; p < n_pairs; ++p) {
      missing_units.push_back(2 * p);
      missing_units.push_back(2 * p + 1);
      if (plan.run_alignment) missing_pairs.push_back(p);
    }
    if (!plan.out_dir.empty()) {
      std::filesystem::create_directories(plan.out_dir);
    }
  }

  const TestSpec& spec_of(std::size_t pair) const {
    return tests[pair / plan.seeds.size()];
  }
  std::uint64_t seed_of(std::size_t pair) const {
    return plan.seeds[pair % plan.seeds.size()];
  }

  // Runs one (test, seed, view) job into its slot.
  void run_unit(std::size_t unit) {
    const std::size_t pair = unit / 2;
    const int m = static_cast<int>(unit % 2);
    const TestSpec& spec = spec_of(pair);
    const std::uint64_t seed = seed_of(pair);
    const bool to_disk = !plan.out_dir.empty();
    const ModelKind model = m == 0 ? ModelKind::kRtl : ModelKind::kBca;
    const std::string view = m == 0 ? "rtl" : "bca";
    const std::string stem =
        sanitize_artifact_name(spec.name) + "_s" + std::to_string(seed);

    obs::SpanGuard job_span("job");
    if (obs::tracing_enabled()) {
      job_span.set_detail(plan.cfg.name + ":" + spec.name + ":s" +
                          std::to_string(seed) + ":" + view);
    }

    TestbenchOptions opts;
    opts.model = model;
    opts.kernel = plan.kernel;
    opts.seed = seed;
    opts.max_cycles = plan.max_cycles;
    opts.profile = !plan.profile_out.empty();
    opts.txn_trace = !plan.txn_trace_out.empty();
    if (model != ModelKind::kRtl) opts.faults = plan.faults;
    std::ostringstream wave;
    if (plan.run_alignment || to_disk) {
      if (to_disk) {
        wave_paths[unit] = plan.out_dir + "/" + stem + "_" + view + ".vcd";
        opts.vcd_path = wave_paths[unit];
      } else {
        opts.vcd_stream = &wave;
      }
    }
    TestSpec s = spec;
    if (plan.n_transactions > 0) s.n_transactions = plan.n_transactions;

    if (plan.progress) {
      plan.progress->job_start(plan.cfg.name, spec.name, seed, view);
    }
    const auto t0 = Clock::now();
    std::optional<Testbench> tb;
    RunResult r;
    try {
      {
        CRVE_SPAN("build");
        tb.emplace(plan.cfg, s, opts);
      }
      {
        CRVE_SPAN("sim");
        r = tb->run();
      }
    } catch (...) {
      // A job that throws (elaboration failure, resource exhaustion) never
      // reaches the !passed() dump below; preserve the flight-recorder
      // context for it too, before the exception unwinds the pool.
      dump_flight_recorder(spec.name, seed, view);
      if (plan.progress) {
        plan.progress->job_finish(plan.cfg.name, spec.name, seed, view,
                                  "error", /*cached=*/false, ms_since(t0));
      }
      throw;
    }
    tb.reset();  // closes the VCD before alignment may read it
    log_info() << plan.cfg.name << ": " << spec.name << " seed " << seed
               << " " << to_string(model) << " -> "
               << (r.passed() ? "pass" : "FAIL") << " (" << r.cycles
               << " cycles)";
    if (obs::metrics_enabled()) {
      obs::counter("regress.jobs").inc();
      // add(0) still registers the metric, so reports always carry an
      // explicit failure count.
      obs::counter("regress.failures").add(r.passed() ? 0 : 1);
    }
    if (!r.passed()) dump_flight_recorder(spec.name, seed, view);

    TestOutcome& out = outcomes[unit];
    out.test = spec.name;
    out.seed = seed;
    out.model = model;
    out.result = r;
    out.wall_ms = ms_since(t0);
    {
      CRVE_SPAN("artifacts");
      if (to_disk) {
        write_text(plan.out_dir + "/report_" + stem + "_" + view + ".txt",
                   run_report(out));
        if (opts.profile) {
          write_text(plan.out_dir + "/profile_" + stem + "_" + view + ".json",
                     obs::profile_json(r.profile));
        }
        if (opts.txn_trace) {
          write_text(plan.out_dir + "/txn_" + stem + "_" + view + ".json",
                     obs::txn_json(r.txn, /*with_spans=*/true));
          write_text(
              plan.out_dir + "/txn_" + stem + "_" + view + ".trace.json",
              obs::txn_chrome_trace(r.txn));
        }
      } else if (plan.run_alignment) {
        waves[unit] = wave.str();
      }
    }
    if (plan.progress) {
      plan.progress->job_finish(plan.cfg.name, spec.name, seed, view,
                                r.passed() ? "pass" : "fail",
                                /*cached=*/false, out.wall_ms);
    }
  }

  // Failure forensics: when a flight recorder is installed, preserve the
  // last captured log lines next to the failing job's other artifacts (or
  // on the console when running in-memory). The ring is process-wide, so
  // under a parallel run the dump may interleave lines from other jobs —
  // still exactly the context a post-mortem wants.
  void dump_flight_recorder(const std::string& test, std::uint64_t seed,
                            const std::string& view) const {
    FlightRecorder* fr = flight_recorder();
    if (!fr) return;
    const std::string dump = fr->dump();
    if (dump.empty()) return;
    if (!plan.out_dir.empty()) {
      write_text(plan.out_dir + "/flight_" + sanitize_artifact_name(test) +
                     "_s" + std::to_string(seed) + "_" + view + ".log",
                 dump);
    } else {
      log_error() << "flight recorder (last " << fr->capacity()
                  << " lines) before " << test << " seed " << seed << " "
                  << view << " failure:\n"
                  << dump;
    }
  }

  // Bus-accurate comparison (Fig. 4: after both views of the pair ran).
  void run_alignment(std::size_t pair) {
    const TestSpec& spec = spec_of(pair);
    const std::uint64_t seed = seed_of(pair);
    const bool to_disk = !plan.out_dir.empty();
    const auto ports = alignment_ports(plan.cfg, spec);

    obs::SpanGuard align_span("align");
    if (obs::tracing_enabled()) {
      align_span.set_detail(plan.cfg.name + ":" + spec.name + ":s" +
                            std::to_string(seed));
    }
    if (obs::metrics_enabled()) obs::counter("regress.alignments").inc();

    if (plan.progress) {
      plan.progress->job_start(plan.cfg.name, spec.name, seed, "align");
    }
    const auto t0 = Clock::now();
    stba::AlignmentReport rep;
    // Parse the traces explicitly (instead of compare_files) so a failing
    // pair can reuse them for the triage deep-dive without a second parse.
    vcd::Trace ta, tb;
    try {
      if (to_disk) {
        ta = vcd::Trace::parse_file(wave_paths[2 * pair]);
        tb = vcd::Trace::parse_file(wave_paths[2 * pair + 1]);
      } else {
        std::istringstream a(waves[2 * pair]);
        std::istringstream b(waves[2 * pair + 1]);
        ta = vcd::Trace::parse(a);
        tb = vcd::Trace::parse(b);
      }
      rep = stba::Analyzer::compare(ta, tb, ports);
      if (to_disk) {
        write_text(plan.out_dir + "/alignment_" +
                       sanitize_artifact_name(spec.name) + "_s" +
                       std::to_string(seed) + ".txt",
                   rep.summary());
        if (plan.run_triage && !rep.signed_off(plan.alignment_threshold)) {
          // The alignment pool runs strictly after the unit pool, so both
          // views' outcome slots (and their txn span data) are final here.
          run_triage(spec.name, seed, ta, tb, ports,
                     outcomes[2 * pair].result.txn,
                     outcomes[2 * pair + 1].result.txn);
        }
      }
    } catch (...) {
      // Same forensics contract as run_unit: a comparison that throws
      // (unreadable wave, parse error) still dumps the flight recorder.
      dump_flight_recorder(spec.name, seed, "align");
      if (plan.progress) {
        plan.progress->job_finish(plan.cfg.name, spec.name, seed, "align",
                                  "error", /*cached=*/false, ms_since(t0));
      }
      throw;
    }
    AlignmentOutcome& out = aligns[pair];
    out.test = spec.name;
    out.seed = seed;
    out.report = std::move(rep);
    out.wall_ms = ms_since(t0);
    if (plan.progress) {
      plan.progress->job_finish(
          plan.cfg.name, spec.name, seed, "align",
          out.report.signed_off(plan.alignment_threshold) ? "pass" : "fail",
          /*cached=*/false, out.wall_ms);
    }
  }

  // Root-cause artifacts for a pair that missed sign-off: the triage report
  // (divergence windows, per-signal interval lists, in-flight transaction
  // context) plus windowed VCD excerpts of both views around the first
  // divergence, all next to the pair's other artifacts (DESIGN.md section 11).
  void run_triage(const std::string& test, std::uint64_t seed,
                  const vcd::Trace& ta, const vcd::Trace& tb,
                  const std::vector<std::string>& ports,
                  const obs::TxnTraceData& txn_a,
                  const obs::TxnTraceData& txn_b) const {
    CRVE_SPAN("triage");
    if (obs::metrics_enabled()) obs::counter("regress.triages").inc();
    const stba::TriageReport tri = stba::Triage::analyze(ta, tb, ports);
    const std::string stem =
        sanitize_artifact_name(test) + "_s" + std::to_string(seed);
    std::vector<std::pair<std::string, std::string>> context = {
        {"config", plan.cfg.name},
        {"test", test},
        {"seed", std::to_string(seed)},
        {"vcd_a", stem + "_rtl.vcd"},
        {"vcd_b", stem + "_bca.vcd"},
    };
    if (tri.any_diverged()) {
      const std::uint64_t w = plan.triage_window;
      const std::uint64_t begin =
          tri.first_divergence > w ? tri.first_divergence - w : 0;
      const std::uint64_t end = tri.first_divergence + w;
      vcd::write_excerpt_file(ta, begin, end,
                              plan.out_dir + "/excerpt_" + stem + "_rtl.vcd");
      vcd::write_excerpt_file(tb, begin, end,
                              plan.out_dir + "/excerpt_" + stem + "_bca.vcd");
      context.push_back({"excerpt_a", "excerpt_" + stem + "_rtl.vcd"});
      context.push_back({"excerpt_b", "excerpt_" + stem + "_bca.vcd"});
    }
    // With the txn tracer on, correlate each divergence window with the
    // transactions in flight on each view and their lifecycle stage.
    std::vector<std::pair<std::string, std::string>> sections;
    if (!txn_a.empty() || !txn_b.empty()) {
      sections.push_back(
          {"txn_in_flight", stba::txn_flight_json(tri, txn_a, txn_b)});
    }
    write_text(plan.out_dir + "/triage_" + stem + ".json",
               tri.json(context, sections));
  }

  // Serial, order-deterministic aggregation over the filled slots.
  RegressionResult reduce() {
    RegressionResult res;
    res.config_name = plan.cfg.name;
    res.alignment_threshold = plan.alignment_threshold;
    res.rtl_passed = true;
    res.bca_passed = true;
    res.coverage_match = true;
    double cov_sum = 0.0;
    int cov_n = 0;
    for (std::size_t p = 0; p < n_pairs; ++p) {
      const RunResult& rtl = outcomes[2 * p].result;
      const RunResult& bca = outcomes[2 * p + 1].result;
      res.rtl_passed = res.rtl_passed && rtl.passed();
      res.bca_passed = res.bca_passed && bca.passed();
      cov_sum += rtl.coverage_percent;
      ++cov_n;
      if (rtl.coverage_digest != bca.coverage_digest) {
        res.coverage_match = false;
      }
      if (plan.run_alignment) {
        res.min_alignment =
            std::min(res.min_alignment, aligns[p].report.min_rate());
      }
    }
    if (!plan.profile_out.empty()) {
      // Replayed pairs carry empty profiles (profiling never perturbs the
      // cache key), so they merge as no-ops and the merged report reflects
      // exactly the freshly simulated work.
      for (const auto& o : outcomes) res.profile.merge(o.result.profile);
    }
    if (!plan.txn_trace_out.empty()) {
      // Slot order makes the merge deterministic; labels carry the full
      // provenance so campaign-level top-K ties rank under a total order
      // even across configs. Replayed pairs carry empty txn data (the trace
      // knob never perturbs the cache key) and merge as no-ops.
      for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::string pair_label = plan.cfg.name + ":" + spec_of(p).name +
                                       ":s" + std::to_string(seed_of(p));
        for (int v = 0; v < 2; ++v) {
          obs::TxnTraceData td = outcomes[2 * p + v].result.txn;
          for (auto& s : td.slowest) {
            s.label = pair_label + (v == 0 ? ":rtl" : ":bca");
          }
          res.txn.merge(td);
        }
        res.txn_delta.merge(obs::txn_delta(outcomes[2 * p].result.txn,
                                           outcomes[2 * p + 1].result.txn,
                                           pair_label));
      }
    }
    res.outcomes = std::move(outcomes);
    res.alignments = std::move(aligns);
    res.mean_coverage_rtl = cov_n > 0 ? cov_sum / cov_n : 0.0;
    res.signed_off = res.rtl_passed && res.bca_passed && res.coverage_match &&
                     res.min_alignment >= plan.alignment_threshold;
    for (char c : pair_cached) res.cached_pairs += c ? 1 : 0;
    if (res.cached_pairs > 0) res.cache_build_json = cache_build_json;
    return res;
  }
};

// Names the artifacts one pair job may have written to its out_dir. The
// full waves are deliberately absent: they are bulk intermediates the
// alignment already consumed, not results worth a cache's budget (the
// windowed excerpts around a divergence are what triage reads). The
// profile_* and txn_* artifacts are absent too: their knobs are excluded
// from the JobSpec hash, so caching them would leak instrumentation files
// into later uninstrumented replays of the same key.
std::vector<std::string> pair_artifact_names(const std::string& test,
                                             std::uint64_t seed) {
  const std::string stem =
      sanitize_artifact_name(test) + "_s" + std::to_string(seed);
  return {
      "report_" + stem + "_rtl.txt",  "report_" + stem + "_bca.txt",
      "alignment_" + stem + ".txt",   "triage_" + stem + ".json",
      "excerpt_" + stem + "_rtl.vcd", "excerpt_" + stem + "_bca.vcd",
      "flight_" + stem + "_rtl.log",  "flight_" + stem + "_bca.log",
  };
}

// Planner side of the campaign cache: probes every pair job's JobSpec
// hash, replays hits into their slots (narrowing the campaign's job lists
// to the misses) and, once the pool drained, stores the freshly executed
// pairs. Inactive (all methods no-ops) when the plan has no cache_dir.
struct CachePlanner {
  std::unique_ptr<cache::Cache> store;

  explicit CachePlanner(const RunPlan& plan) {
    if (plan.cache_dir.empty()) return;
    cache::CacheOptions copts;
    copts.dir = plan.cache_dir;
    copts.max_bytes = plan.cache_max_mb * 1024ULL * 1024ULL;
    copts.git_hash = build_info().git_hash;
    copts.sanitize = build_info().sanitize;
    store = std::make_unique<cache::Cache>(copts);
  }

  bool active() const { return store != nullptr; }

  // Only suite tests reachable by name can be re-executed elsewhere, so
  // only they are cacheable; ad-hoc TestSpecs (custom lambdas) always run.
  static bool cacheable(const TestSpec& spec) {
    static const std::set<std::string> suite = [] {
      std::set<std::string> names;
      for (const auto& t : verif::catg_test_suite()) names.insert(t.name);
      return names;
    }();
    return suite.count(spec.name) > 0;
  }

  // Probes every pair of `camp` and rewrites its missing lists to the
  // cache misses. Returns the specs of the missing cacheable pairs in
  // slot order (the worker protocol's job list).
  std::vector<JobSpec> probe(Campaign& camp) {
    std::vector<JobSpec> missing_specs;
    if (!active()) return missing_specs;
    camp.missing_units.clear();
    camp.missing_pairs.clear();
    for (std::size_t p = 0; p < camp.n_pairs; ++p) {
      const TestSpec& spec = camp.spec_of(p);
      bool hit = false;
      if (cacheable(spec)) {
        const JobSpec js = job_spec_for(camp.plan, spec, camp.seed_of(p));
        const std::string key = js.hash();
        if (std::optional<std::string> payload = store->fetch(key)) {
          hit = replay(camp, p, key, *payload);
        }
        if (!hit) missing_specs.push_back(js);
      }
      if (hit) {
        camp.pair_cached[p] = 1;
      } else {
        camp.missing_units.push_back(2 * p);
        camp.missing_units.push_back(2 * p + 1);
        if (camp.plan.run_alignment) camp.missing_pairs.push_back(p);
      }
    }
    return missing_specs;
  }

  // Decodes a payload into the pair's slots and re-materializes its
  // manifest-listed artifacts. A payload that does not decode, or does not
  // describe this job, is stale-schema garbage: invalidate it and report a
  // miss — never crash, never poison the campaign.
  bool replay(Campaign& camp, std::size_t p, const std::string& key,
              const std::string& payload) {
    PairResult pr;
    try {
      pr = decode_pair_result(payload);
    } catch (const std::exception& e) {
      log_warn() << "cache entry " << key.substr(0, 12) << " undecodable ("
                 << e.what() << "); invalidating";
      store->invalidate(key);
      return false;
    }
    const TestSpec& spec = camp.spec_of(p);
    const std::uint64_t seed = camp.seed_of(p);
    if (pr.rtl.test != spec.name || pr.rtl.seed != seed ||
        (camp.plan.run_alignment && !pr.has_alignment)) {
      log_warn() << "cache entry " << key.substr(0, 12)
                 << " does not describe its job; invalidating";
      store->invalidate(key);
      return false;
    }
    if (camp.cache_build_json.empty()) {
      camp.cache_build_json = pair_build_json(pr, "");
    }
    pr.rtl.cached = true;
    pr.bca.cached = true;
    camp.outcomes[2 * p] = std::move(pr.rtl);
    camp.outcomes[2 * p + 1] = std::move(pr.bca);
    if (camp.plan.run_alignment) {
      pr.alignment.cached = true;
      camp.aligns[p] = std::move(pr.alignment);
    }
    if (!camp.plan.out_dir.empty()) {
      store->materialize(key, camp.plan.out_dir);
    }
    if (obs::metrics_enabled()) obs::counter("regress.pairs_replayed").inc();
    return true;
  }

  // Stores every freshly executed cacheable pair of `camp`. Must run
  // before reduce() (which moves the slots out). Cache trouble — a full
  // disk, permissions — degrades to a warning: the campaign's own results
  // are already in their slots.
  void store_results(const Campaign& camp) {
    if (!active()) return;
    for (std::size_t p = 0; p < camp.n_pairs; ++p) {
      if (camp.pair_cached[p]) continue;
      const TestSpec& spec = camp.spec_of(p);
      if (!cacheable(spec)) continue;
      const std::uint64_t seed = camp.seed_of(p);
      const JobSpec js = job_spec_for(camp.plan, spec, seed);
      PairResult pr;
      pr.rtl = camp.outcomes[2 * p];
      pr.bca = camp.outcomes[2 * p + 1];
      pr.has_alignment = camp.plan.run_alignment;
      if (pr.has_alignment) pr.alignment = camp.aligns[p];
      const BuildInfo& bi = build_info();
      pr.git_hash = bi.git_hash;
      pr.compiler = bi.compiler;
      pr.build_type = bi.build_type;
      pr.sanitize = bi.sanitize;
      std::vector<std::pair<std::string, std::string>> files;
      if (!camp.plan.out_dir.empty()) {
        for (const std::string& name : pair_artifact_names(spec.name, seed)) {
          const std::string path = camp.plan.out_dir + "/" + name;
          if (std::filesystem::exists(path)) files.push_back({name, path});
        }
      }
      try {
        store->store(js.hash(), encode_pair_result(pr, js.hash()), files);
      } catch (const std::exception& e) {
        log_warn() << "cache store failed for " << spec.name << " s" << seed
                   << ": " << e.what();
      }
    }
  }
};

void write_campaign_artifacts(const RunPlan& plan,
                              const RegressionResult& res) {
  if (plan.out_dir.empty()) return;
  write_text(plan.out_dir + "/summary.txt", res.summary());
  write_text(plan.out_dir + "/report.json", res.json());
}

// Campaign-level hotspot report (RunPlan::profile_out): the merged profile
// with the build stamp spliced in after the opening brace, mirroring how
// the JSON report carries provenance.
void write_profile_report(const std::string& path,
                          const obs::ProfileData& pd) {
  std::string doc = obs::profile_json(pd);
  doc.insert(2, "  \"build\": " + build_info_json("  ") + ",\n");
  write_text(path, doc);
}

// Campaign-level transaction-latency report (RunPlan::txn_trace_out): the
// merged stable aggregate plus the dual-view delta join, stamped with
// build provenance like every other artifact.
void write_txn_report(const std::string& path, const obs::TxnTraceData& td,
                      const obs::TxnDeltaStats& delta) {
  std::string doc = "{\n";
  doc += "  \"build\": " + build_info_json("  ") + ",\n";
  doc += "  \"txn\": " + obs::txn_json(td, /*with_spans=*/false, "  ") + ",\n";
  doc += "  \"delta\": " + obs::txn_delta_json(delta, "  ") + "\n}\n";
  write_text(path, doc);
}

// Telemetry job accounting: every (test, seed) pair is two view units plus
// one alignment comparison when enabled.
std::size_t campaign_total_jobs(const Campaign& camp) {
  return camp.n_pairs * (camp.plan.run_alignment ? 3u : 2u);
}

std::size_t campaign_cached_jobs(const Campaign& camp) {
  std::size_t cached_pairs = 0;
  for (char c : camp.pair_cached) cached_pairs += c ? 1 : 0;
  return cached_pairs * (camp.plan.run_alignment ? 3u : 2u);
}

// Cache hits never enter the pool, so their lifecycle events are emitted
// here, straight after the probe: one job_finish per replayed unit with
// cached=true and the original run's wall clock from the payload.
void emit_cached_finishes(const Campaign& camp, ProgressTracker* progress) {
  if (!progress) return;
  for (std::size_t p = 0; p < camp.n_pairs; ++p) {
    if (!camp.pair_cached[p]) continue;
    const TestSpec& spec = camp.spec_of(p);
    const std::uint64_t seed = camp.seed_of(p);
    const TestOutcome& rtl = camp.outcomes[2 * p];
    const TestOutcome& bca = camp.outcomes[2 * p + 1];
    progress->job_finish(camp.plan.cfg.name, spec.name, seed, "rtl",
                         rtl.result.passed() ? "pass" : "fail",
                         /*cached=*/true, rtl.wall_ms);
    progress->job_finish(camp.plan.cfg.name, spec.name, seed, "bca",
                         bca.result.passed() ? "pass" : "fail",
                         /*cached=*/true, bca.wall_ms);
    if (camp.plan.run_alignment) {
      const AlignmentOutcome& a = camp.aligns[p];
      progress->job_finish(
          camp.plan.cfg.name, spec.name, seed, "align",
          a.report.signed_off(camp.plan.alignment_threshold) ? "pass" : "fail",
          /*cached=*/true, a.wall_ms);
    }
  }
}

}  // namespace

RegressionResult Regression::run(const RunPlan& plan) {
  const auto t0 = Clock::now();
  obs::SpanGuard campaign_span("campaign");
  if (obs::tracing_enabled()) campaign_span.set_detail(plan.cfg.name);
  Campaign camp;
  camp.plan = plan;
  camp.prepare();
  CachePlanner planner(plan);
  planner.probe(camp);  // no cache: the missing lists stay full
  if (plan.progress) {
    plan.progress->campaign_start(1, campaign_total_jobs(camp),
                                  campaign_cached_jobs(camp));
    emit_cached_finishes(camp, plan.progress);
  }

  ThreadPool pool(resolve_jobs(plan.jobs));
  pool.parallel_for(camp.missing_units.size(), [&](std::size_t k) {
    camp.run_unit(camp.missing_units[k]);
  });
  if (plan.run_alignment) {
    pool.parallel_for(camp.missing_pairs.size(), [&](std::size_t k) {
      camp.run_alignment(camp.missing_pairs[k]);
    });
  }
  planner.store_results(camp);
  if (plan.progress && planner.active()) {
    plan.progress->evictions(planner.store->stats().evictions);
  }

  RegressionResult res;
  {
    CRVE_SPAN("reduce");
    res = camp.reduce();
  }
  // Quiescent read: parallel_for returns when the last task body finishes,
  // but a worker may still be writing its own pool.* timing cells after
  // that. wait() drains in_flight_, which workers decrement only after
  // those writes — the happens-before edge the merge needs.
  pool.wait();
  if (obs::metrics_enabled()) {
    res.metrics_json = obs::registry().json(/*include_timing=*/false);
  }
  res.wall_ms = ms_since(t0);
  write_campaign_artifacts(plan, res);
  if (!plan.profile_out.empty()) {
    write_profile_report(plan.profile_out, res.profile);
  }
  if (!plan.txn_trace_out.empty()) {
    write_txn_report(plan.txn_trace_out, res.txn, res.txn_delta);
  }
  if (plan.progress) plan.progress->campaign_end(res.signed_off);
  return res;
}

MatrixResult Regression::run_matrix(
    const std::vector<stbus::NodeConfig>& configs, const RunPlan& base) {
  const auto t0 = Clock::now();
  // Intentionally the same span name as Regression::run's campaign guard:
  // both cover one whole campaign entry point, whichever was called, so
  // traces stay comparable across the two. crve-lint: allow(CRVE062)
  CRVE_SPAN("campaign", "matrix");
  MatrixResult mres;
  mres.jobs = resolve_jobs(base.jobs);
  mres.design_health = base.design_health;

  std::vector<Campaign> camps(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    camps[i].plan = base;
    camps[i].plan.cfg = configs[i];
    if (!base.out_dir.empty()) {
      camps[i].plan.out_dir = base.out_dir + "/" + configs[i].name;
    }
    camps[i].prepare();
  }
  CachePlanner planner(base);
  for (auto& camp : camps) planner.probe(camp);
  if (base.progress) {
    std::size_t total = 0;
    std::size_t cached = 0;
    for (const auto& camp : camps) {
      total += campaign_total_jobs(camp);
      cached += campaign_cached_jobs(camp);
    }
    base.progress->campaign_start(configs.size(), total, cached);
    for (const auto& camp : camps) emit_cached_finishes(camp, base.progress);
  }

  // Flatten every campaign's missing units into one global job list so a
  // slow configuration keeps all workers busy instead of gating the batch.
  struct Ref {
    std::size_t camp;
    std::size_t idx;
  };
  std::vector<Ref> units;
  std::vector<Ref> pairs;
  for (std::size_t i = 0; i < camps.size(); ++i) {
    for (std::size_t u : camps[i].missing_units) units.push_back({i, u});
    for (std::size_t p : camps[i].missing_pairs) pairs.push_back({i, p});
  }

  ThreadPool pool(mres.jobs);
  pool.parallel_for(units.size(), [&](std::size_t k) {
    camps[units[k].camp].run_unit(units[k].idx);
  });
  pool.parallel_for(pairs.size(), [&](std::size_t k) {
    camps[pairs[k].camp].run_alignment(pairs[k].idx);
  });
  for (const auto& camp : camps) planner.store_results(camp);
  if (planner.active()) {
    mres.cache_stats_json = planner.store->stats().json(
        planner.store->entry_count(), planner.store->total_bytes());
    if (base.progress) {
      base.progress->evictions(planner.store->stats().evictions);
    }
  }

  mres.all_signed_off = true;
  mres.results.reserve(camps.size());
  {
    // Intentionally the same span name as Regression::run's reduce: both
    // cover the one slot-ordered aggregation phase, whichever entry point
    // ran it, so traces stay comparable across the two.
    // crve-lint: allow(CRVE062)
    CRVE_SPAN("reduce");
    for (auto& camp : camps) {
      RegressionResult res = camp.reduce();
      // Batch mode: per-config wall is the summed job time (the configs ran
      // interleaved, so a per-config elapsed time would be meaningless).
      for (const auto& o : res.outcomes) res.wall_ms += o.wall_ms;
      for (const auto& a : res.alignments) res.wall_ms += a.wall_ms;
      write_campaign_artifacts(camp.plan, res);
      mres.all_signed_off = mres.all_signed_off && res.signed_off;
      if (!base.profile_out.empty()) mres.profile.merge(res.profile);
      if (!base.txn_trace_out.empty()) {
        mres.txn.merge(res.txn);
        mres.txn_delta.merge(res.txn_delta);
      }
      mres.results.push_back(std::move(res));
    }
  }
  // Quiescent read: drain the pool's post-task metric writes (see run()).
  pool.wait();
  if (obs::metrics_enabled()) {
    mres.metrics_json = obs::registry().json(/*include_timing=*/false);
  }
  mres.wall_ms = ms_since(t0);
  if (!base.profile_out.empty()) {
    write_profile_report(base.profile_out, mres.profile);
  }
  if (!base.txn_trace_out.empty()) {
    write_txn_report(base.txn_trace_out, mres.txn, mres.txn_delta);
  }
  if (!base.out_dir.empty()) {
    write_text(base.out_dir + "/report.json", mres.json());
    // Campaign dashboard next to the report. Link targets mirror what the
    // campaigns actually wrote: triage artifacts appear exactly for
    // below-threshold pairs, flight dumps only when a recorder is installed.
    HtmlOptions hopts;
    hopts.triage_links = base.run_triage;
    hopts.flight_links = flight_recorder() != nullptr;
    // Quiescent read: the pool drained above, so the tracker's record list
    // is complete and stable for the timeline panel.
    if (base.progress) hopts.timeline = &base.progress->records();
    if (obs::metrics_enabled()) {
      const obs::Registry::Snapshot snap =
          obs::registry().snapshot(/*include_timing=*/false);
      write_text(base.out_dir + "/dashboard.html",
                 html_report(mres, &snap, hopts));
    } else {
      write_text(base.out_dir + "/dashboard.html",
                 html_report(mres, nullptr, hopts));
    }
  }
  if (base.progress) base.progress->campaign_end(mres.all_signed_off);
  return mres;
}

MatrixPlan Regression::plan_matrix(
    const std::vector<stbus::NodeConfig>& configs, const RunPlan& base) {
  MatrixPlan mplan;
  CachePlanner planner(base);
  for (const auto& cfg : configs) {
    Campaign camp;
    camp.plan = base;
    camp.plan.cfg = cfg;
    camp.plan.out_dir.clear();  // planning must not create artifact dirs
    camp.prepare();
    mplan.total_pairs += camp.n_pairs;
    if (!planner.active()) {
      for (std::size_t p = 0; p < camp.n_pairs; ++p) {
        const TestSpec& spec = camp.spec_of(p);
        if (!CachePlanner::cacheable(spec)) continue;
        mplan.missing.push_back(
            job_spec_for(camp.plan, spec, camp.seed_of(p)));
      }
      continue;
    }
    std::vector<JobSpec> missing = planner.probe(camp);
    for (char c : camp.pair_cached) mplan.cached_pairs += c ? 1 : 0;
    for (auto& js : missing) mplan.missing.push_back(std::move(js));
  }
  return mplan;
}

std::vector<WorkerOutcome> Regression::run_worker(
    const std::vector<JobSpec>& specs, const WorkerOptions& opts) {
  std::vector<WorkerOutcome> out;
  out.reserve(specs.size());
  std::unique_ptr<cache::Cache> store;
  if (!opts.cache_dir.empty()) {
    cache::CacheOptions copts;
    copts.dir = opts.cache_dir;
    copts.max_bytes = opts.cache_max_mb * 1024ULL * 1024ULL;
    copts.git_hash = build_info().git_hash;
    copts.sanitize = build_info().sanitize;
    store = std::make_unique<cache::Cache>(copts);
  }
  const std::vector<TestSpec> suite = verif::catg_test_suite();
  ThreadPool pool(resolve_jobs(opts.jobs));
  for (const JobSpec& js : specs) {
    const TestSpec* spec = nullptr;
    for (const auto& t : suite) {
      if (t.name == js.test) {
        spec = &t;
        break;
      }
    }
    if (!spec) throw std::runtime_error("worker: unknown test " + js.test);
    if (js.git_hash != build_info().git_hash) {
      log_warn() << "worker: spec " << js.hash().substr(0, 12)
                 << " was planned for build " << js.git_hash
                 << ", executing with " << build_info().git_hash;
    }
    RunPlan plan;
    {
      std::istringstream is(js.config_text);
      plan.cfg = parse_config(is, "jobspec");
    }
    plan.tests = {*spec};
    plan.seeds = {js.seed};
    plan.n_transactions = js.n_transactions;
    plan.max_cycles = js.max_cycles;
    plan.run_alignment = js.run_alignment;
    plan.alignment_threshold = js.alignment_threshold;
    plan.run_triage = js.run_triage;
    plan.triage_window = js.triage_window;
    plan.kernel = js.kernel == "interp" ? sim::KernelKind::kInterp
                                        : sim::KernelKind::kCompiled;
    plan.faults = faults_from_names(js.faults);
    const std::string key = js.hash();
    if (!opts.out_dir.empty()) {
      plan.out_dir = opts.out_dir + "/" + key.substr(0, 12);
    }

    Campaign camp;
    camp.plan = plan;
    camp.prepare();
    pool.parallel_for(2 * camp.n_pairs,
                      [&](std::size_t u) { camp.run_unit(u); });
    if (plan.run_alignment) {
      pool.parallel_for(camp.n_pairs,
                        [&](std::size_t p) { camp.run_alignment(p); });
    }
    pool.wait();

    PairResult pr;
    pr.rtl = camp.outcomes[0];
    pr.bca = camp.outcomes[1];
    pr.has_alignment = plan.run_alignment;
    if (pr.has_alignment) pr.alignment = camp.aligns[0];
    const BuildInfo& bi = build_info();
    pr.git_hash = bi.git_hash;
    pr.compiler = bi.compiler;
    pr.build_type = bi.build_type;
    pr.sanitize = bi.sanitize;

    WorkerOutcome wo;
    wo.hash = key;
    wo.payload = encode_pair_result(pr, key);
    wo.passed = pr.rtl.result.passed() && pr.bca.result.passed();
    if (store) {
      std::vector<std::pair<std::string, std::string>> files;
      if (!plan.out_dir.empty()) {
        for (const std::string& name :
             pair_artifact_names(spec->name, js.seed)) {
          const std::string path = plan.out_dir + "/" + name;
          if (std::filesystem::exists(path)) files.push_back({name, path});
        }
      }
      try {
        store->store(key, wo.payload, files);
      } catch (const std::exception& e) {
        log_warn() << "worker: cache store failed for " << key.substr(0, 12)
                   << ": " << e.what();
      }
    }
    out.push_back(std::move(wo));
  }
  return out;
}

std::string RegressionResult::summary() const {
  std::ostringstream os;
  os << "regression: " << outcomes.size() << " runs\n";
  os << "  RTL view:   " << (rtl_passed ? "PASS" : "FAIL") << "\n";
  os << "  BCA view:   " << (bca_passed ? "PASS" : "FAIL") << "\n";
  os << "  coverage:   " << (coverage_match ? "identical on both views"
                                            : "MISMATCH between views")
     << " (mean " << mean_coverage_rtl << "% on RTL)\n";
  os << "  alignment:  min " << 100.0 * min_alignment << "% across "
     << alignments.size() << " comparisons\n";
  os << "  sign-off:   " << (signed_off ? "YES" : "NO") << "\n";
  if (cached_pairs > 0) {
    os << "  cache:      " << cached_pairs << " of " << outcomes.size() / 2
       << " pairs replayed\n";
  }
  for (const auto& o : outcomes) {
    if (!o.result.passed()) {
      os << "  FAILED: " << o.test << " seed " << o.seed << " "
         << verif::to_string(o.model) << " (viol "
         << o.result.checker_violations << ", sb "
         << o.result.scoreboard_errors << ", "
         << (o.result.completed ? "completed" : "TIMEOUT") << ")\n";
    }
  }
  return os.str();
}

std::string MatrixResult::summary() const {
  std::ostringstream os;
  std::size_t runs = 0;
  for (const auto& r : results) runs += r.outcomes.size();
  os << "batch: " << results.size() << " configurations, " << runs
     << " runs, jobs=" << jobs << "\n";
  for (const auto& r : results) {
    os << "  " << r.config_name << ": "
       << (r.signed_off ? "signed off" : "NOT signed off") << " (RTL "
       << (r.rtl_passed ? "PASS" : "FAIL") << ", BCA "
       << (r.bca_passed ? "PASS" : "FAIL") << ", min alignment "
       << 100.0 * r.min_alignment << "%)\n";
  }
  std::size_t cached = 0;
  for (const auto& r : results) cached += r.cached_pairs;
  if (cached > 0) os << "cache: " << cached << " pairs replayed\n";
  os << "overall: " << (all_signed_off ? "ALL SIGNED OFF" : "NOT signed off")
     << "\n";
  return os.str();
}

}  // namespace crve::regress
