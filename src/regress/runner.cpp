#include "regress/runner.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace crve::regress {

using verif::ModelKind;
using verif::RunResult;
using verif::Testbench;
using verif::TestbenchOptions;
using verif::TestSpec;

namespace {

// Environment-side port prefixes to align for a given (config, test).
std::vector<std::string> alignment_ports(stbus::NodeConfig cfg,
                                         const TestSpec& spec) {
  if (spec.adjust) spec.adjust(cfg);
  cfg.validate_and_normalize();
  std::vector<std::string> ports;
  for (int i = 0; i < cfg.n_initiators; ++i) {
    ports.push_back(Testbench::initiator_port_name(i));
  }
  for (int t = 0; t < cfg.n_targets; ++t) {
    ports.push_back(Testbench::target_port_name(t));
  }
  return ports;
}

void write_text(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
}

std::string run_report(const TestOutcome& o) {
  std::ostringstream os;
  os << "test " << o.test << " seed " << o.seed << " model "
     << verif::to_string(o.model) << "\n";
  os << "  completed: " << (o.result.completed ? "yes" : "NO") << " in "
     << o.result.cycles << " cycles\n";
  os << "  checker violations: " << o.result.checker_violations << "\n";
  for (const auto& v : o.result.violations) {
    os << "    @" << v.cycle << " " << v.port << " [" << v.rule << "] "
       << v.message << "\n";
  }
  os << "  scoreboard errors: " << o.result.scoreboard_errors << "\n";
  for (const auto& e : o.result.sb_errors) {
    os << "    @" << e.cycle << " " << e.where << " " << e.message << "\n";
  }
  os << "  functional coverage: " << o.result.coverage_percent << "%\n";
  if (o.result.toggle_percent >= 0.0) {
    os << "  toggle coverage: " << o.result.toggle_percent << "%\n";
  }
  os << "  port utilisation (busy cycles / packets in / packets out):\n";
  for (const auto& u : o.result.utilisation) {
    os << "    " << u.port << ": " << u.busy_cycles << " / "
       << u.request_packets << " / " << u.response_packets << "\n";
  }
  return os.str();
}

}  // namespace

RegressionResult Regression::run(const RunPlan& plan) {
  RegressionResult res;
  std::vector<TestSpec> tests =
      plan.tests.empty() ? verif::catg_test_suite() : plan.tests;

  const bool to_disk = !plan.out_dir.empty();
  if (to_disk) std::filesystem::create_directories(plan.out_dir);

  res.rtl_passed = true;
  res.bca_passed = true;
  res.coverage_match = true;
  double cov_sum = 0.0;
  int cov_n = 0;

  for (const auto& spec : tests) {
    for (std::uint64_t seed : plan.seeds) {
      std::uint64_t digest[2] = {0, 0};
      bool run_ok[2] = {false, false};
      // In-memory waveforms when no artifact directory is given.
      std::ostringstream wave[2];
      std::string wave_path[2];

      for (int m = 0; m < 2; ++m) {
        const ModelKind model = m == 0 ? ModelKind::kRtl : ModelKind::kBca;
        TestbenchOptions opts;
        opts.model = model;
        opts.seed = seed;
        opts.max_cycles = plan.max_cycles;
        if (model != ModelKind::kRtl) opts.faults = plan.faults;
        if (plan.run_alignment || to_disk) {
          if (to_disk) {
            wave_path[m] = plan.out_dir + "/" + spec.name + "_s" +
                           std::to_string(seed) + "_" +
                           (m == 0 ? "rtl" : "bca") + ".vcd";
            opts.vcd_path = wave_path[m];
          } else {
            opts.vcd_stream = &wave[m];
          }
        }
        TestSpec s = spec;
        if (plan.n_transactions > 0) s.n_transactions = plan.n_transactions;
        Testbench tb(plan.cfg, s, opts);
        const RunResult r = tb.run();
        log_info() << plan.cfg.name << ": " << spec.name << " seed " << seed
                   << " " << to_string(model) << " -> "
                   << (r.passed() ? "pass" : "FAIL") << " (" << r.cycles
                   << " cycles)";

        TestOutcome out;
        out.test = spec.name;
        out.seed = seed;
        out.model = model;
        out.result = r;
        if (to_disk) {
          write_text(plan.out_dir + "/report_" + spec.name + "_s" +
                         std::to_string(seed) + "_" +
                         (m == 0 ? "rtl" : "bca") + ".txt",
                     run_report(out));
        }
        digest[m] = r.coverage_digest;
        run_ok[m] = r.passed();
        if (m == 0) {
          res.rtl_passed = res.rtl_passed && r.passed();
          cov_sum += r.coverage_percent;
          ++cov_n;
        } else {
          res.bca_passed = res.bca_passed && r.passed();
        }
        res.outcomes.push_back(std::move(out));
      }

      if (digest[0] != digest[1]) res.coverage_match = false;

      // Bus-accurate comparison (Fig. 4: after both views verified).
      if (plan.run_alignment) {
        const auto ports = alignment_ports(plan.cfg, spec);
        stba::AlignmentReport rep;
        if (to_disk) {
          rep = stba::Analyzer::compare_files(wave_path[0], wave_path[1],
                                              ports);
        } else {
          std::istringstream a(wave[0].str());
          std::istringstream b(wave[1].str());
          const vcd::Trace ta = vcd::Trace::parse(a);
          const vcd::Trace tb2 = vcd::Trace::parse(b);
          rep = stba::Analyzer::compare(ta, tb2, ports);
        }
        res.min_alignment = std::min(res.min_alignment, rep.min_rate());
        if (to_disk) {
          write_text(plan.out_dir + "/alignment_" + spec.name + "_s" +
                         std::to_string(seed) + ".txt",
                     rep.summary());
        }
        res.alignments.push_back({spec.name, seed, std::move(rep)});
      }
      (void)run_ok;
    }
  }

  res.mean_coverage_rtl = cov_n > 0 ? cov_sum / cov_n : 0.0;
  res.signed_off = res.rtl_passed && res.bca_passed && res.coverage_match &&
                   res.min_alignment >= plan.alignment_threshold;
  if (to_disk) write_text(plan.out_dir + "/summary.txt", res.summary());
  return res;
}

std::string RegressionResult::summary() const {
  std::ostringstream os;
  os << "regression: " << outcomes.size() << " runs\n";
  os << "  RTL view:   " << (rtl_passed ? "PASS" : "FAIL") << "\n";
  os << "  BCA view:   " << (bca_passed ? "PASS" : "FAIL") << "\n";
  os << "  coverage:   " << (coverage_match ? "identical on both views"
                                            : "MISMATCH between views")
     << " (mean " << mean_coverage_rtl << "% on RTL)\n";
  os << "  alignment:  min " << 100.0 * min_alignment << "% across "
     << alignments.size() << " comparisons\n";
  os << "  sign-off:   " << (signed_off ? "YES" : "NO") << "\n";
  for (const auto& o : outcomes) {
    if (!o.result.passed()) {
      os << "  FAILED: " << o.test << " seed " << o.seed << " "
         << verif::to_string(o.model) << " (viol "
         << o.result.checker_violations << ", sb "
         << o.result.scoreboard_errors << ", "
         << (o.result.completed ? "completed" : "TIMEOUT") << ")\n";
    }
  }
  return os.str();
}

}  // namespace crve::regress
