// TLM (transaction-level) view of the interconnect — the paper's future
// work brought into the flow: "Future including of SystemC Verification in
// verification flow will be a great opportunity to add TLM development and
// verification phase in the flow."
//
// tlm::Node is an untimed functional model: one blocking transport call per
// logical operation, no pins, no cycles. It serves two roles:
//   * the first design view to verify, before BCA and RTL exist (the flow
//     of Fig. 4 gains a third, earlier column);
//   * the independent reference model the common environment replays
//     observed traffic through (verif::ReferenceModel), checking the
//     cycle-accurate views' end-to-end data semantics against the spec.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stbus/config.h"
#include "stbus/packet.h"

namespace crve::tlm {

// Byte-sparse memory with the shared deterministic fill pattern.
class Memory {
 public:
  explicit Memory(std::uint64_t pattern = 0x5a5a) : pattern_(pattern) {}

  std::uint8_t read(std::uint32_t addr) const;
  void write(std::uint32_t addr, std::uint8_t value) { bytes_[addr] = value; }

 private:
  std::uint64_t pattern_;
  std::unordered_map<std::uint32_t, std::uint8_t> bytes_;
};

// Result of one transported operation.
struct Completion {
  stbus::RspOpcode status = stbus::RspOpcode::kOk;
  std::vector<std::uint8_t> rdata;  // loads/atomics
  int target = -1;                  // -1 = decode error
};

class Node {
 public:
  explicit Node(stbus::NodeConfig cfg);

  // Blocking transport: routes the operation, applies memory semantics at
  // the decoded target, returns the completion. Never touches memory on a
  // decode error or an illegal lane geometry (status = kError).
  Completion transport(const stbus::Request& req);

  // Applies an operation directly at a known target (used by the reference
  // model when replaying target-port traffic).
  Completion apply_at(int target, const stbus::Request& req);

  Memory& memory(int target) {
    return mem_[static_cast<std::size_t>(target)];
  }
  const stbus::NodeConfig& config() const { return cfg_; }

 private:
  stbus::NodeConfig cfg_;
  std::vector<Memory> mem_;
};

}  // namespace crve::tlm
