#include "tlm/model.h"

#include <stdexcept>

#include "common/mem_pattern.h"

namespace crve::tlm {

using stbus::Opcode;
using stbus::Request;
using stbus::RspOpcode;

std::uint8_t Memory::read(std::uint32_t addr) const {
  auto it = bytes_.find(addr);
  if (it != bytes_.end()) return it->second;
  return default_mem_byte(addr, pattern_);
}

Node::Node(stbus::NodeConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate_and_normalize();
  mem_.resize(static_cast<std::size_t>(cfg_.n_targets));
}

Completion Node::transport(const Request& req) {
  const int target = cfg_.route(req.add);
  if (target < 0) {
    Completion c;
    c.status = RspOpcode::kError;
    if (stbus::is_load(req.opc) || stbus::is_atomic(req.opc)) {
      c.rdata.assign(static_cast<std::size_t>(stbus::size_bytes(req.opc)), 0);
    }
    return c;
  }
  return apply_at(target, req);
}

Completion Node::apply_at(int target, const Request& req) {
  if (target < 0 || target >= cfg_.n_targets) {
    throw std::out_of_range("tlm::Node::apply_at: bad target");
  }
  Completion c;
  c.target = target;
  const Opcode opc = req.opc;
  const int size = stbus::size_bytes(opc);
  Memory& mem = mem_[static_cast<std::size_t>(target)];

  if (!stbus::lanes_legal(opc, req.add, cfg_.bus_bytes) ||
      (stbus::is_atomic(opc) && size > cfg_.bus_bytes)) {
    c.status = RspOpcode::kError;
    if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
      c.rdata.assign(static_cast<std::size_t>(size), 0);
    }
    return c;
  }

  // Loads and atomics return the pre-store value.
  if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
    c.rdata.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      c.rdata.push_back(mem.read(req.add + static_cast<std::uint32_t>(i)));
    }
  }
  if (stbus::is_store(opc) || opc == Opcode::kSwap4) {
    if (static_cast<int>(req.wdata.size()) != size) {
      throw std::invalid_argument("tlm::Node: wdata size mismatch");
    }
    for (int i = 0; i < size; ++i) {
      mem.write(req.add + static_cast<std::uint32_t>(i),
                req.wdata[static_cast<std::size_t>(i)]);
    }
  } else if (opc == Opcode::kRmw4) {
    if (static_cast<int>(req.wdata.size()) != size) {
      throw std::invalid_argument("tlm::Node: wdata size mismatch");
    }
    for (int i = 0; i < size; ++i) {
      const std::uint32_t a = req.add + static_cast<std::uint32_t>(i);
      mem.write(a, static_cast<std::uint8_t>(
                       mem.read(a) | req.wdata[static_cast<std::size_t>(i)]));
    }
  }
  return c;
}

}  // namespace crve::tlm
