#include "vcd/parser.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crve::vcd {

namespace {

// Pads or truncates a VCD binary value to exactly `width` characters and
// expands x/z to 0 (our models are two-valued).
std::string normalize(std::string v, int width) {
  for (auto& c : v) {
    if (c == 'x' || c == 'X' || c == 'z' || c == 'Z') c = '0';
  }
  const auto w = static_cast<std::size_t>(width);
  if (v.size() < w) v.insert(v.begin(), w - v.size(), '0');
  if (v.size() > w) v.erase(0, v.size() - w);
  return v;
}

}  // namespace

Trace Trace::parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("vcd::Trace: cannot open " + path);
  return parse(is);
}

Trace Trace::parse(std::istream& is) {
  Trace t;
  std::map<std::string, int> by_id;
  std::vector<std::string> scope;

  std::string tok;
  // --- header ---------------------------------------------------------
  while (is >> tok) {
    if (tok == "$scope") {
      std::string kind, name, end;
      is >> kind >> name >> end;
      scope.push_back(name);
    } else if (tok == "$upscope") {
      std::string end;
      is >> end;
      if (!scope.empty()) scope.pop_back();
    } else if (tok == "$var") {
      std::string kind, width_s, id, name, end_or_range;
      is >> kind >> width_s >> id >> name >> end_or_range;
      // Optional "[msb:lsb]" token before $end.
      if (end_or_range != "$end") {
        std::string end;
        is >> end;
      }
      Var v;
      v.width = std::stoi(width_s);
      v.id = id;
      std::string full;
      for (const auto& s : scope) full += s + ".";
      full += name;
      v.name = full;
      by_id[id] = static_cast<int>(t.vars_.size());
      t.vars_.push_back(std::move(v));
    } else if (tok == "$enddefinitions") {
      std::string end;
      is >> end;
      break;
    } else if (tok == "$date" || tok == "$version" || tok == "$timescale" ||
               tok == "$comment") {
      while (is >> tok && tok != "$end") {
      }
    }
  }

  t.changes_.resize(t.vars_.size());
  t.zeros_.reserve(t.vars_.size());
  for (const auto& v : t.vars_) {
    t.zeros_.emplace_back(static_cast<std::size_t>(v.width), '0');
  }

  // --- change stream ----------------------------------------------------
  std::uint64_t now = 0;
  while (is >> tok) {
    if (tok.empty()) continue;
    const char c = tok[0];
    if (c == '#') {
      now = std::stoull(tok.substr(1));
      t.max_time_ = std::max(t.max_time_, now);
    } else if (c == 'b' || c == 'B') {
      std::string id;
      is >> id;
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        throw std::runtime_error("vcd::Trace: unknown id " + id);
      }
      const int vi = it->second;
      t.changes_[static_cast<std::size_t>(vi)].push_back(
          {now, normalize(tok.substr(1),
                          t.vars_[static_cast<std::size_t>(vi)].width)});
    } else if (c == '0' || c == '1' || c == 'x' || c == 'X' || c == 'z' ||
               c == 'Z') {
      const std::string id = tok.substr(1);
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        throw std::runtime_error("vcd::Trace: unknown id " + id);
      }
      t.changes_[static_cast<std::size_t>(it->second)].push_back(
          {now, normalize(std::string(1, c), 1)});
    } else if (c == '$') {
      // $dumpvars / $end etc. — skip keyword blocks without payload.
      continue;
    } else {
      throw std::runtime_error("vcd::Trace: unexpected token " + tok);
    }
  }
  return t;
}

std::optional<int> Trace::find(const std::string& suffix) const {
  std::optional<int> hit;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const std::string& n = vars_[i].name;
    const bool match =
        n == suffix || (n.size() > suffix.size() &&
                        n.compare(n.size() - suffix.size(), suffix.size(),
                                  suffix) == 0 &&
                        n[n.size() - suffix.size() - 1] == '.');
    if (match) {
      if (hit) return std::nullopt;  // ambiguous
      hit = static_cast<int>(i);
    }
  }
  return hit;
}

const std::string& Trace::value_at(int var, std::uint64_t t) const {
  const auto& ch = changes_[static_cast<std::size_t>(var)];
  // Last change with time <= t.
  auto it = std::upper_bound(
      ch.begin(), ch.end(), t,
      [](std::uint64_t x, const Change& c) { return x < c.time; });
  if (it == ch.begin()) return zeros_[static_cast<std::size_t>(var)];
  return std::prev(it)->value;
}

}  // namespace crve::vcd
