// Windowed VCD excerpt writer.
//
// Re-emits a slice [begin, end] of an already parsed Trace as a standalone,
// well-formed VCD: full header (scope tree rebuilt from the dotted names,
// original identifier codes preserved), a snapshot of every variable's
// settled value at `begin`, then the in-window changes in (time, variable)
// order, and a final `#end` time marker so the excerpt's extent is explicit
// even when the last in-window cycle is quiet.
//
// The triage path (stba::Triage) uses this to cut a small waveform around
// the first divergence of a failing run — both views, same window — so the
// artifact a human opens is kilobytes, not the full campaign dump. The
// output parses back through vcd::Trace::parse (tests round-trip it).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "vcd/parser.h"

namespace crve::vcd {

// Writes the excerpt of `trace` covering [begin, end] to `os`. `end` is
// clamped to the trace's last change time; `begin` past that yields a
// snapshot-only excerpt. begin > end (after clamping) is a no-op header +
// snapshot at `begin`.
void write_excerpt(const Trace& trace, std::uint64_t begin, std::uint64_t end,
                   std::ostream& os);

// Same, to a file; throws std::runtime_error when the file cannot be opened.
void write_excerpt_file(const Trace& trace, std::uint64_t begin,
                        std::uint64_t end, const std::string& path);

}  // namespace crve::vcd
