// VCD reader used by the STBus Analyzer.
//
// Parses the header into a variable table (hierarchical names rebuilt from
// $scope nesting) and the change stream into per-variable change lists.
// value_at() answers "what did signal X hold at cycle T" by binary search,
// which is all the alignment computation needs.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crve::vcd {

struct Var {
  std::string name;  // full dotted name, e.g. "tb.init0.req"
  int width = 0;
  std::string id;    // VCD identifier code
};

struct Change {
  std::uint64_t time = 0;
  std::string value;  // normalized: exactly `width` binary chars
};

class Trace {
 public:
  static Trace parse(std::istream& is);
  static Trace parse_file(const std::string& path);

  const std::vector<Var>& vars() const { return vars_; }

  // Index of the variable whose full name ends with `suffix` (unique match
  // required); nullopt when absent.
  std::optional<int> find(const std::string& suffix) const;

  // Settled value of variable `var` at time `t` (last change at or before t).
  // Before the first change the value is all-zeros.
  const std::string& value_at(int var, std::uint64_t t) const;

  const std::vector<Change>& changes(int var) const {
    return changes_[static_cast<std::size_t>(var)];
  }

  std::uint64_t max_time() const { return max_time_; }

 private:
  std::vector<Var> vars_;
  std::vector<std::vector<Change>> changes_;
  std::vector<std::string> zeros_;  // all-zero value per var, for t < first
  std::uint64_t max_time_ = 0;
};

}  // namespace crve::vcd
