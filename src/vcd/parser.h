// VCD reader used by the STBus Analyzer.
//
// Parses the header into a variable table (hierarchical names rebuilt from
// $scope nesting) and the change stream into per-variable change lists.
// value_at() answers "what did signal X hold at cycle T" by binary search,
// which is all the alignment computation needs.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crve::vcd {

struct Var {
  std::string name;  // full dotted name, e.g. "tb.init0.req"
  int width = 0;
  std::string id;    // VCD identifier code
};

struct Change {
  std::uint64_t time = 0;
  std::string value;  // normalized: exactly `width` binary chars
};

class Trace {
 public:
  static Trace parse(std::istream& is);
  static Trace parse_file(const std::string& path);

  const std::vector<Var>& vars() const { return vars_; }

  // Index of the variable whose full name ends with `suffix` (unique match
  // required); nullopt when absent.
  std::optional<int> find(const std::string& suffix) const;

  // Settled value of variable `var` at time `t` (last change at or before t).
  // Before the first change the value is all-zeros. O(log changes) random
  // access; for monotone scans prefer cursor().
  const std::string& value_at(int var, std::uint64_t t) const;

  const std::vector<Change>& changes(int var) const {
    return changes_[static_cast<std::size_t>(var)];
  }

  std::uint64_t max_time() const { return max_time_; }

  // Forward iterator over one variable's change list. value_at(t) with
  // non-decreasing t is amortized O(1) per call over a full sweep — the
  // trace-analysis fast path (STBA's merge walks one cursor per field).
  class Cursor {
   public:
    // Sentinel returned by next_change_time() when no change lies ahead.
    static constexpr std::uint64_t kNoChange = ~std::uint64_t{0};

    // Settled value at time `t`. Calls must use non-decreasing `t`;
    // rewinding requires a fresh cursor.
    const std::string& value_at(std::uint64_t t) {
      while (pos_ < changes_->size() && (*changes_)[pos_].time <= t) ++pos_;
      return pos_ == 0 ? *zero_ : (*changes_)[pos_ - 1].value;
    }

    // Time of the next change strictly after the last value_at() query
    // (or of the first change, before any query); kNoChange when exhausted.
    std::uint64_t next_change_time() const {
      return pos_ < changes_->size() ? (*changes_)[pos_].time : kNoChange;
    }

    // Number of changes at or before the last queried time.
    std::size_t consumed() const { return pos_; }

   private:
    friend class Trace;
    Cursor(const std::vector<Change>& ch, const std::string& zero)
        : changes_(&ch), zero_(&zero) {}

    const std::vector<Change>* changes_;
    const std::string* zero_;  // all-zero value for t < first change
    std::size_t pos_ = 0;      // changes applied so far
  };

  Cursor cursor(int var) const {
    return Cursor(changes_[static_cast<std::size_t>(var)],
                  zeros_[static_cast<std::size_t>(var)]);
  }

 private:
  std::vector<Var> vars_;
  std::vector<std::vector<Change>> changes_;
  std::vector<std::string> zeros_;  // all-zero value per var, for t < first
  std::uint64_t max_time_ = 0;
};

}  // namespace crve::vcd
