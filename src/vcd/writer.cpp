#include "vcd/writer.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace crve::vcd {

Writer::Writer(std::ostream& os) : os_(os) {}

Writer::Writer(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(*owned_) {
  if (!*owned_) throw std::runtime_error("vcd::Writer: cannot open " + path);
}

Writer::~Writer() { finish(); }

void Writer::finish() { os_.flush(); }

std::string Writer::id_code(int index) {
  // Base-94 over the printable ASCII range '!'..'~'.
  std::string id;
  int n = index;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n > 0);
  return id;
}

namespace {

// Splits "tb.node.req" into scope path {"tb","node"} and leaf "req".
std::pair<std::vector<std::string>, std::string> split_name(
    const std::string& full) {
  std::vector<std::string> scopes;
  std::string part;
  std::istringstream is(full);
  while (std::getline(is, part, '.')) scopes.push_back(part);
  std::string leaf = scopes.back();
  scopes.pop_back();
  return {scopes, leaf};
}

}  // namespace

void Writer::write_header(const std::vector<sim::SignalBase*>& signals) {
  os_ << "$date crve $end\n";
  os_ << "$version crve vcd writer $end\n";
  os_ << "$timescale 1ns $end\n";

  // Emit $scope/$upscope transitions between consecutive signals' paths.
  std::vector<std::string> open;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    auto [scopes, leaf] = split_name(signals[i]->name());
    std::size_t common = 0;
    while (common < open.size() && common < scopes.size() &&
           open[common] == scopes[common]) {
      ++common;
    }
    for (std::size_t j = open.size(); j > common; --j) {
      os_ << "$upscope $end\n";
    }
    open.resize(common);
    for (std::size_t j = common; j < scopes.size(); ++j) {
      os_ << "$scope module " << scopes[j] << " $end\n";
      open.push_back(scopes[j]);
    }
    os_ << "$var wire " << signals[i]->width() << " "
        << id_code(static_cast<int>(i)) << " " << leaf << " $end\n";
  }
  for (std::size_t j = open.size(); j > 0; --j) os_ << "$upscope $end\n";
  os_ << "$enddefinitions $end\n";
  last_.assign(signals.size(), std::string());
}

void Writer::emit(int index, const std::string& value) {
  if (value.size() == 1) {
    os_ << value << id_code(index) << "\n";
  } else {
    // Canonical VCD truncates leading zeros but keeps at least one digit.
    std::size_t first = value.find('1');
    const std::string trimmed =
        first == std::string::npos ? "0" : value.substr(first);
    os_ << "b" << trimmed << " " << id_code(index) << "\n";
  }
}

void Writer::sample(std::uint64_t cycle,
                    const std::vector<sim::SignalBase*>& signals) {
  if (!header_done_) {
    write_header(signals);
    header_done_ = true;
  }
  bool time_emitted = false;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    const std::string v = signals[i]->vcd_value();
    if (v == last_[i]) continue;
    if (!time_emitted) {
      os_ << "#" << cycle << "\n";
      time_emitted = true;
    }
    emit(static_cast<int>(i), v);
    last_[i] = v;
  }
}

}  // namespace crve::vcd
