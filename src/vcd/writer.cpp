#include "vcd/writer.h"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace crve::vcd {

namespace {

// Staged-output flush threshold. Large enough that the stream sees a few
// big writes per run instead of one per change line.
constexpr std::size_t kFlushAt = 64 * 1024;

}  // namespace

Writer::Writer(std::ostream& os) : os_(os) { buf_.reserve(kFlushAt + 1024); }

Writer::Writer(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(*owned_) {
  if (!*owned_) throw std::runtime_error("vcd::Writer: cannot open " + path);
  buf_.reserve(kFlushAt + 1024);
}

Writer::~Writer() { finish(); }

void Writer::flush_buffer() {
  if (!buf_.empty()) {
    bytes_flushed_ += buf_.size();
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

void Writer::publish_metrics() {
  if (metrics_published_ || !obs::metrics_enabled()) return;
  metrics_published_ = true;
  std::uint64_t touched = 0;
  for (const auto& v : last_) {
    if (!v.empty()) ++touched;
  }
  obs::counter("vcd.dumps").inc();
  obs::counter("vcd.bytes_flushed").add(bytes_flushed_);
  obs::counter("vcd.value_changes").add(value_changes_);
  obs::counter("vcd.signals_declared").add(last_.size());
  obs::counter("vcd.signals_touched").add(touched);
}

void Writer::finish() {
  flush_buffer();
  os_.flush();
  publish_metrics();
}

std::string Writer::id_code(int index) {
  // Base-94 over the printable ASCII range '!'..'~'.
  std::string id;
  int n = index;
  do {
    id.push_back(static_cast<char>('!' + n % 94));
    n /= 94;
  } while (n > 0);
  return id;
}

namespace {

// Splits "tb.node.req" into scope path {"tb","node"} and leaf "req".
std::pair<std::vector<std::string>, std::string> split_name(
    const std::string& full) {
  std::vector<std::string> scopes;
  std::string part;
  std::istringstream is(full);
  while (std::getline(is, part, '.')) scopes.push_back(part);
  std::string leaf = scopes.back();
  scopes.pop_back();
  return {scopes, leaf};
}

}  // namespace

void Writer::write_header(const std::vector<sim::SignalBase*>& signals) {
  buf_ += "$date crve $end\n";
  buf_ += "$version crve vcd writer $end\n";
  buf_ += "$timescale 1ns $end\n";

  ids_.reserve(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    ids_.push_back(id_code(static_cast<int>(i)));
  }

  // Emit $scope/$upscope transitions between consecutive signals' paths.
  std::vector<std::string> open;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    auto [scopes, leaf] = split_name(signals[i]->name());
    std::size_t common = 0;
    while (common < open.size() && common < scopes.size() &&
           open[common] == scopes[common]) {
      ++common;
    }
    for (std::size_t j = open.size(); j > common; --j) {
      buf_ += "$upscope $end\n";
    }
    open.resize(common);
    for (std::size_t j = common; j < scopes.size(); ++j) {
      buf_ += "$scope module ";
      buf_ += scopes[j];
      buf_ += " $end\n";
      open.push_back(scopes[j]);
    }
    buf_ += "$var wire ";
    buf_ += std::to_string(signals[i]->width());
    buf_ += " ";
    buf_ += ids_[i];
    buf_ += " ";
    buf_ += leaf;
    buf_ += " $end\n";
  }
  for (std::size_t j = open.size(); j > 0; --j) buf_ += "$upscope $end\n";
  buf_ += "$enddefinitions $end\n";

  last_.assign(signals.size(), std::string());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    last_[i].reserve(static_cast<std::size_t>(signals[i]->width()));
  }
  scratch_.reserve(256);
}

void Writer::emit_if_changed(std::uint64_t cycle, int index,
                             const sim::SignalBase& sig, bool& time_emitted) {
  const auto ui = static_cast<std::size_t>(index);
  scratch_.clear();
  sig.append_vcd(scratch_);
  if (scratch_ == last_[ui]) return;
  ++value_changes_;
  if (!time_emitted) {
    buf_ += "#";
    buf_ += std::to_string(cycle);
    buf_ += "\n";
    time_emitted = true;
  }
  if (scratch_.size() == 1) {
    buf_ += scratch_;
    buf_ += ids_[ui];
    buf_ += "\n";
  } else {
    // Canonical VCD truncates leading zeros but keeps at least one digit.
    std::size_t first = scratch_.find('1');
    buf_ += "b";
    if (first == std::string::npos) {
      buf_ += "0";
    } else {
      buf_.append(scratch_, first, std::string::npos);
    }
    buf_ += " ";
    buf_ += ids_[ui];
    buf_ += "\n";
  }
  last_[ui].assign(scratch_);
}

void Writer::sample(std::uint64_t cycle,
                    const std::vector<sim::SignalBase*>& signals,
                    const std::vector<int>& changed) {
  bool time_emitted = false;
  if (!header_done_) {
    write_header(signals);
    header_done_ = true;
    // Initial snapshot: every signal, regardless of the changed-set (the
    // writer may be attached after the kernel's first sample).
    for (std::size_t i = 0; i < signals.size(); ++i) {
      emit_if_changed(cycle, static_cast<int>(i), *signals[i], time_emitted);
    }
  } else {
    for (const int i : changed) {
      emit_if_changed(cycle, i, *signals[static_cast<std::size_t>(i)],
                      time_emitted);
    }
  }
  if (buf_.size() >= kFlushAt) flush_buffer();
}

}  // namespace crve::vcd
