// VCD (Value Change Dump, IEEE 1364) writer.
//
// Implements sim::Tracer: after each settled cycle it emits value changes
// for the signals the kernel reports as changed. The regression tool dumps
// one VCD per (model view, test, seed) run; STBA later diffs the RTL and
// BCA dumps.
//
// The emit path is change-driven and allocation-free per cycle: id codes
// are precomputed at header time, values are formatted into a reusable
// scratch buffer via SignalBase::append_vcd, and output is staged in a
// write buffer flushed in large chunks. The byte stream is identical to a
// naive per-cycle full-scan writer (tests/test_trace_path.cpp checks this).
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/context.h"

namespace crve::vcd {

class Writer : public sim::Tracer {
 public:
  // Writes to an externally owned stream.
  explicit Writer(std::ostream& os);
  // Opens and owns a file stream; throws on failure.
  explicit Writer(const std::string& path);
  ~Writer() override;

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void sample(std::uint64_t cycle,
              const std::vector<sim::SignalBase*>& signals,
              const std::vector<int>& changed) override;

  // Flushes the write buffer and the underlying stream (done automatically
  // on destruction).
  void finish();

  // VCD identifier code for the i-th declared variable.
  static std::string id_code(int index);

 private:
  void write_header(const std::vector<sim::SignalBase*>& signals);
  // Emits signal `index` if its current value differs from the last
  // emitted one; lazily writes the `#cycle` marker first.
  void emit_if_changed(std::uint64_t cycle, int index,
                       const sim::SignalBase& sig, bool& time_emitted);
  void flush_buffer();

  // Publishes bytes/changes/signals-touched counters into the obs metrics
  // registry (once, from finish()).
  void publish_metrics();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream& os_;
  bool header_done_ = false;
  bool metrics_published_ = false;
  std::uint64_t bytes_flushed_ = 0;   // bytes handed to the stream
  std::uint64_t value_changes_ = 0;   // change lines emitted (snapshot incl.)
  std::string buf_;                // staged output, flushed in chunks
  std::string scratch_;            // reusable value-formatting buffer
  std::vector<std::string> last_;  // last emitted value per signal
  std::vector<std::string> ids_;   // cached id_code per signal index
};

}  // namespace crve::vcd
