// VCD (Value Change Dump, IEEE 1364) writer.
//
// Implements sim::Tracer: after each settled cycle it emits value changes
// for every registered signal. The regression tool dumps one VCD per
// (model view, test, seed) run; STBA later diffs the RTL and BCA dumps.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/context.h"

namespace crve::vcd {

class Writer : public sim::Tracer {
 public:
  // Writes to an externally owned stream.
  explicit Writer(std::ostream& os);
  // Opens and owns a file stream; throws on failure.
  explicit Writer(const std::string& path);
  ~Writer() override;

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void sample(std::uint64_t cycle,
              const std::vector<sim::SignalBase*>& signals) override;

  // Flushes the underlying stream (done automatically on destruction).
  void finish();

  // VCD identifier code for the i-th declared variable.
  static std::string id_code(int index);

 private:
  void write_header(const std::vector<sim::SignalBase*>& signals);
  void emit(int index, const std::string& value);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream& os_;
  bool header_done_ = false;
  std::vector<std::string> last_;  // last emitted value per signal
};

}  // namespace crve::vcd
