#include "vcd/excerpt.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace crve::vcd {

namespace {

// Splits "tb.node.req" into scope path {"tb","node"} and leaf "req".
std::pair<std::vector<std::string>, std::string> split_name(
    const std::string& full) {
  std::vector<std::string> scopes;
  std::string part;
  std::istringstream is(full);
  while (std::getline(is, part, '.')) scopes.push_back(part);
  std::string leaf = scopes.back();
  scopes.pop_back();
  return {scopes, leaf};
}

// Change line in canonical VCD form: scalars as `<bit><id>`, vectors as
// `b<value> <id>` with leading zeros truncated down to one digit — the same
// rules vcd::Writer follows, so excerpts byte-match full dumps line-wise.
void append_change(std::string& out, const std::string& value,
                   const std::string& id) {
  if (value.size() == 1) {
    out += value;
    out += id;
    out += "\n";
    return;
  }
  const std::size_t first = value.find('1');
  out += "b";
  if (first == std::string::npos) {
    out += "0";
  } else {
    out.append(value, first, std::string::npos);
  }
  out += " ";
  out += id;
  out += "\n";
}

}  // namespace

void write_excerpt(const Trace& trace, std::uint64_t begin, std::uint64_t end,
                   std::ostream& os) {
  if (end > trace.max_time()) end = trace.max_time();

  std::string out;
  out.reserve(4096);
  out += "$date crve $end\n";
  out += "$version crve vcd excerpt $end\n";
  out += "$comment window " + std::to_string(begin) + " " +
         std::to_string(end) + " $end\n";
  out += "$timescale 1ns $end\n";

  const auto& vars = trace.vars();
  std::vector<std::string> open;
  for (const auto& var : vars) {
    auto [scopes, leaf] = split_name(var.name);
    std::size_t common = 0;
    while (common < open.size() && common < scopes.size() &&
           open[common] == scopes[common]) {
      ++common;
    }
    for (std::size_t j = open.size(); j > common; --j) {
      out += "$upscope $end\n";
    }
    open.resize(common);
    for (std::size_t j = common; j < scopes.size(); ++j) {
      out += "$scope module ";
      out += scopes[j];
      out += " $end\n";
      open.push_back(scopes[j]);
    }
    out += "$var wire ";
    out += std::to_string(var.width);
    out += " ";
    out += var.id;
    out += " ";
    out += leaf;
    out += " $end\n";
  }
  for (std::size_t j = open.size(); j > 0; --j) out += "$upscope $end\n";
  out += "$enddefinitions $end\n";

  // Snapshot: every variable's settled value at the window start.
  out += "#" + std::to_string(begin) + "\n";
  for (std::size_t i = 0; i < vars.size(); ++i) {
    append_change(out, trace.value_at(static_cast<int>(i), begin), vars[i].id);
  }

  // In-window changes, merged across variables in (time, declaration order).
  struct Event {
    std::uint64_t time;
    std::size_t var;
    const std::string* value;
  };
  std::vector<Event> events;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (const Change& c : trace.changes(static_cast<int>(i))) {
      if (c.time > begin && c.time <= end) {
        events.push_back({c.time, i, &c.value});
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time != b.time ? a.time < b.time : a.var < b.var;
  });

  std::uint64_t last_time = begin;
  bool any_at_end = false;
  for (const Event& e : events) {
    if (e.time != last_time) {
      out += "#" + std::to_string(e.time) + "\n";
      last_time = e.time;
    }
    if (e.time == end) any_at_end = true;
    append_change(out, *e.value, vars[e.var].id);
  }

  // Close the window explicitly so its extent parses back even when the
  // final cycles are quiet.
  if (end > begin && !any_at_end) {
    out += "#" + std::to_string(end) + "\n";
  }

  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void write_excerpt_file(const Trace& trace, std::uint64_t begin,
                        std::uint64_t end, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("vcd::write_excerpt_file: cannot open " + path);
  }
  write_excerpt(trace, begin, end, os);
}

}  // namespace crve::vcd
