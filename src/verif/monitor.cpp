#include "verif/monitor.h"

namespace crve::verif {

Monitor::Monitor(sim::Context& ctx, std::string name,
                 const stbus::PortPins& pins)
    : name_(std::move(name)), ctx_(ctx), pins_(pins) {
  // Clocked processes observe the settled values of the cycle that is
  // ending, which is exactly the sampling point a monitor needs. Payload
  // pins are sampled only when a channel fires, so the full bundle is
  // declared for the design-lint view.
  sim::ClockedOpts decl;
  decl.reads = pins.all_signals();
  ctx.add_clocked("mon." + name_, [this] { sample(); }, std::move(decl));
}

void Monitor::sample() {
  // ctx_.cycle() was already advanced for the new cycle; the pins still
  // carry the previous (settled) cycle's values.
  const std::uint64_t cycle = ctx_.cycle() - 1;
  ++stats_.cycles;
  bool busy = false;

  if (pins_.request_fires()) {
    busy = true;
    const stbus::RequestCell cell = pins_.sample_request();
    ++stats_.request_cells;
    const auto opc = static_cast<std::size_t>(cell.opc);
    if (opc < stats_.request_opcode_cells.size()) {
      ++stats_.request_opcode_cells[opc];
    }
    for (auto* l : listeners_) l->on_request_cell(cell, cycle);
    req_acc_.cells.push_back(cell);
    req_acc_.cycles.push_back(cycle);
    if (cell.eop) {
      ++stats_.request_packets;
      for (auto* l : listeners_) l->on_request_packet(req_acc_);
      req_acc_ = {};
    }
  }
  if (pins_.response_fires()) {
    busy = true;
    const stbus::ResponseCell cell = pins_.sample_response();
    ++stats_.response_cells;
    for (auto* l : listeners_) l->on_response_cell(cell, cycle);
    rsp_acc_.cells.push_back(cell);
    rsp_acc_.cycles.push_back(cycle);
    if (cell.eop) {
      ++stats_.response_packets;
      for (auto* l : listeners_) l->on_response_packet(rsp_acc_);
      rsp_acc_ = {};
    }
  }
  if (busy) ++stats_.busy_cycles;
}

}  // namespace crve::verif
