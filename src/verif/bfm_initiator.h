// Initiator BFM (harness): constrained-random STBus traffic generation.
//
// One BFM drives one initiator port. Stimulus is drawn from a deterministic
// per-BFM random stream (forked from the test seed), so running the same
// test with the same seed against the RTL and BCA views produces identical
// cycle-level stimulus — the property the paper's regression flow and the
// STBA alignment comparison rely on.
//
// A directed sequence can be supplied instead of the random profile; that
// mode also reproduces the paper's "old flow" write-then-read harness.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/packet.h"
#include "stbus/pins.h"

namespace crve::verif {

struct InitiatorProfile {
  // Relative weight per opcode (index = stbus::Opcode); zero disables.
  std::vector<std::uint32_t> opcode_weights =
      std::vector<std::uint32_t>(stbus::kNumOpcodes, 1);
  // Cap on operation size (bytes); opcodes above it are masked out.
  int max_size_bytes = 64;
  // Address windows to draw from, normally one per reachable target.
  // Each window must lie entirely inside one address-map range.
  std::vector<stbus::AddressRange> windows;
  // Per-mille chance of aiming at `error_window` (unmapped) instead.
  std::uint32_t decode_error_permille = 0;
  std::optional<stbus::AddressRange> error_window;
  // Per-mille chance a packet opens/continues a chunk (lck on eop).
  std::uint32_t chunk_permille = 0;
  int max_chunk_packets = 4;
  // Per-mille chance of inserting an idle cycle between packets.
  std::uint32_t idle_permille = 250;
  // Split-transaction depth (Type3; Type2 pipelines to the same target).
  int max_outstanding = 4;
  // Per-mille chance of stalling the response channel (r_gnt low) a cycle.
  std::uint32_t rsp_stall_permille = 0;
  // Type2 pins all in-flight traffic to one window (ordering); with this
  // per-mille chance per generation opportunity the BFM instead drains its
  // pipeline so the next packet gets a fresh window pick. Keeps long runs
  // from sticking to the first window chosen.
  std::uint32_t pipeline_drain_permille = 80;
  // Number of transactions to issue.
  int n_transactions = 100;
  // Record completed transactions (tests and latency benches).
  bool keep_history = false;
};

struct CompletedTx {
  stbus::Request request;
  std::vector<stbus::ResponseCell> response;
  stbus::RspOpcode status = stbus::RspOpcode::kOk;
  std::vector<std::uint8_t> rdata;  // loads/atomics
  std::uint64_t gen_cycle = 0;      // request generated (drive attempt)
  std::uint64_t issue_cycle = 0;    // first request cell granted
  std::uint64_t done_cycle = 0;     // response eop granted
};

class InitiatorBfm {
 public:
  // Random-profile constructor.
  InitiatorBfm(sim::Context& ctx, std::string name, stbus::PortPins& pins,
               stbus::ProtocolType type, int src_id,
               const stbus::NodeConfig& map, InitiatorProfile profile,
               Rng rng);
  // Directed-sequence constructor (profile still supplies pacing knobs).
  InitiatorBfm(sim::Context& ctx, std::string name, stbus::PortPins& pins,
               stbus::ProtocolType type, int src_id,
               const stbus::NodeConfig& map, InitiatorProfile profile,
               Rng rng, std::vector<stbus::Request> directed);

  // Observability tap: called once per generated request, at the cycle the
  // BFM first attempts to drive it (before arbitration). The monitor only
  // sees pins after the grant, so transaction-lifecycle tracing needs this
  // issue event from the BFM itself. Empty by default — zero cost unset.
  void set_issue_hook(
      std::function<void(const stbus::Request&, std::uint64_t gen_cycle)> h) {
    issue_hook_ = std::move(h);
  }

  bool done() const;
  int issued() const { return issued_; }
  int completed() const { return completed_; }
  const std::vector<CompletedTx>& history() const { return history_; }

  // Mean first-grant -> response-complete latency (transport latency).
  double mean_latency() const;
  // Mean generation -> response-complete latency (includes arbitration
  // wait); needs keep_history.
  double mean_total_latency() const;

 private:
  void step();
  void generate_next();
  std::uint8_t alloc_tid() const;

  std::string name_;
  sim::Context& ctx_;
  stbus::PortPins& pins_;
  stbus::ProtocolType type_;
  int src_;
  stbus::NodeConfig map_;
  InitiatorProfile prof_;
  Rng rng_;

  std::vector<stbus::Request> directed_;
  std::size_t directed_idx_ = 0;

  // Current request packet being driven.
  std::vector<stbus::RequestCell> cells_;
  std::size_t cell_idx_ = 0;
  std::optional<stbus::Request> current_;
  int gap_left_ = 0;

  // Chunk bookkeeping: remaining packets and the window they must hit.
  int chunk_left_ = 0;
  int chunk_window_ = -1;
  // Sticky pipeline-drain state (see pipeline_drain_permille).
  bool draining_ = false;

  // Outstanding transactions. Type3 keys them by tid; Type2 shares tid 0
  // and relies on strict response ordering, so a FIFO tracks them instead.
  struct Flight {
    stbus::Request request;
    std::uint64_t gen_cycle = 0;
    std::uint64_t issue_cycle = 0;
    std::vector<stbus::ResponseCell> rsp;
  };
  std::vector<std::optional<Flight>> flights_;  // Type3, indexed by tid
  std::deque<Flight> fifo_;                     // Type2, oldest first
  int outstanding_ = 0;
  // Type2: window of the in-flight stream (-1 = error window,
  // -2 = unconstrained).
  int pipeline_window_ = -2;

  std::function<void(const stbus::Request&, std::uint64_t)> issue_hook_;

  int issued_ = 0;
  int completed_ = 0;
  std::vector<CompletedTx> history_;
  std::uint64_t latency_sum_ = 0;
};

}  // namespace crve::verif
