// Port monitor: the passive traffic-collection element of the environment.
//
// A monitor attaches to one PortPins bundle and samples the settled pin
// values once per cycle, reconstructing request and response packets from
// granted cells. Everything downstream — protocol checkers, scoreboard,
// functional coverage — subscribes to monitors, never to the DUT, so the
// same instances work unchanged on the RTL view, the BCA view, or any
// wrapped variant (paper Fig. 2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/packet.h"
#include "stbus/pins.h"

namespace crve::verif {

// A fully observed packet, with the cycles each cell was transferred on.
struct ObservedRequest {
  std::vector<stbus::RequestCell> cells;
  std::vector<std::uint64_t> cycles;
  std::uint64_t start_cycle() const { return cycles.front(); }
  std::uint64_t end_cycle() const { return cycles.back(); }
};

struct ObservedResponse {
  std::vector<stbus::ResponseCell> cells;
  std::vector<std::uint64_t> cycles;
  std::uint64_t start_cycle() const { return cycles.front(); }
  std::uint64_t end_cycle() const { return cycles.back(); }
};

// Subscriber interface; all hooks default to no-ops.
class MonitorListener {
 public:
  virtual ~MonitorListener() = default;
  virtual void on_request_cell(const stbus::RequestCell& /*cell*/,
                               std::uint64_t /*cycle*/) {}
  virtual void on_response_cell(const stbus::ResponseCell& /*cell*/,
                                std::uint64_t /*cycle*/) {}
  virtual void on_request_packet(const ObservedRequest& /*pkt*/) {}
  virtual void on_response_packet(const ObservedResponse& /*pkt*/) {}
};

class Monitor {
 public:
  // `name` identifies the port in reports (e.g. "init0", "targ1").
  Monitor(sim::Context& ctx, std::string name, const stbus::PortPins& pins);

  void subscribe(MonitorListener* l) { listeners_.push_back(l); }

  const std::string& name() const { return name_; }
  const stbus::PortPins& pins() const { return pins_; }

  struct Stats {
    std::uint64_t request_cells = 0;
    std::uint64_t response_cells = 0;
    std::uint64_t request_packets = 0;
    std::uint64_t response_packets = 0;
    std::uint64_t busy_cycles = 0;  // cycles with any transfer
    std::uint64_t cycles = 0;
    // Request cells per opcode, indexed by static_cast<int>(Opcode). Feeds
    // the verif.opc.* traffic-mix counters in the obs metrics registry.
    std::array<std::uint64_t, stbus::kNumOpcodes> request_opcode_cells{};
  };
  const Stats& stats() const { return stats_; }

  // Packets still being assembled (should be none at end of test).
  bool request_in_progress() const { return !req_acc_.cells.empty(); }
  bool response_in_progress() const { return !rsp_acc_.cells.empty(); }

 private:
  void sample();

  std::string name_;
  sim::Context& ctx_;
  const stbus::PortPins& pins_;
  std::vector<MonitorListener*> listeners_;
  ObservedRequest req_acc_;
  ObservedResponse rsp_acc_;
  Stats stats_;
};

}  // namespace crve::verif
