#include "verif/bfm_target.h"

#include "common/mem_pattern.h"

namespace crve::verif {

using stbus::Opcode;
using stbus::RspOpcode;

TargetBfm::TargetBfm(sim::Context& ctx, std::string name,
                     stbus::PortPins& pins, stbus::ProtocolType type,
                     TargetProfile profile, Rng rng)
    : name_(std::move(name)),
      ctx_(ctx),
      pins_(pins),
      type_(type),
      prof_(profile),
      rng_(rng) {
  // Design-lint declarations: request payload is sampled only while a
  // request fires, the response payload driven only while one is pending.
  sim::ClockedOpts decl;
  decl.reads = pins.request_signals();
  decl.reads.push_back(&pins.gnt);
  decl.reads.push_back(&pins.r_req);
  decl.reads.push_back(&pins.r_gnt);
  decl.writes = pins.response_signals();
  decl.writes.push_back(&pins.gnt);
  ctx.add_clocked("tgt." + name_, [this] { step(); }, std::move(decl));
}

std::uint8_t TargetBfm::peek(std::uint32_t addr) const {
  auto it = mem_.find(addr);
  if (it != mem_.end()) return it->second;
  return default_mem_byte(addr, prof_.mem_pattern);
}

void TargetBfm::poke(std::uint32_t addr, std::uint8_t value) {
  mem_[addr] = value;
}

void TargetBfm::step() {
  // Retire the response cell delivered last cycle.
  if (!rsp_cells_.empty() && pins_.response_fires()) {
    rsp_cells_.pop_front();
  }
  // Promote the next ready packet; one response packet in flight at a time.
  if (rsp_cells_.empty() && !pending_.empty() &&
      ctx_.cycle() >= pending_.front().ready_cycle) {
    for (auto& c : pending_.front().cells) rsp_cells_.push_back(c);
    pending_.pop_front();
  }
  if (!rsp_cells_.empty()) {
    pins_.drive_response(rsp_cells_.front());
  } else {
    pins_.idle_response();
  }

  // Absorb request cells granted last cycle.
  if (pins_.request_fires()) {
    req_cells_.push_back(pins_.sample_request());
    if (req_cells_.back().eop) process_packet();
  }
  // One acceptance draw per cycle keeps the stream timing-independent.
  const bool stall = prof_.gnt_stall_permille > 0 &&
                     rng_.chance(prof_.gnt_stall_permille, 1000);
  pins_.gnt.write(!stall);
}

void TargetBfm::process_packet() {
  const auto& head = req_cells_.front();
  const Opcode opc = head.opc;
  ++stats_.packets;

  // A corrupted DUT can deliver geometrically illegal packets (unaligned
  // sub-bus lanes, straddling atomics). Answer them with ERROR cells — the
  // checkers and scoreboard flag the corruption; the environment itself
  // must never crash on it.
  if (!stbus::lanes_legal(opc, head.add, pins_.bus_bytes) ||
      (stbus::is_atomic(opc) && stbus::size_bytes(opc) > pins_.bus_bytes)) {
    ++stats_.illegal_packets;
    Pending p;
    p.cells = stbus::build_error_response(opc, pins_.bus_bytes, type_,
                                          head.src, head.tid);
    p.ready_cycle =
        ctx_.cycle() + static_cast<std::uint64_t>(prof_.fixed_latency);
    pending_.push_back(std::move(p));
    req_cells_.clear();
    return;
  }

  const bool fail = prof_.error_permille > 0 &&
                    rng_.chance(prof_.error_permille, 1000);
  std::vector<std::uint8_t> rdata;
  if (fail) {
    ++stats_.error_packets;
    if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
      rdata.assign(static_cast<std::size_t>(stbus::size_bytes(opc)), 0);
    }
  } else {
    // Loads and atomics read the pre-store value.
    if (stbus::is_load(opc) || stbus::is_atomic(opc)) {
      const int size = stbus::size_bytes(opc);
      rdata.reserve(static_cast<std::size_t>(size));
      for (int i = 0; i < size; ++i) {
        rdata.push_back(peek(head.add + static_cast<std::uint32_t>(i)));
      }
    }
    // Apply stores honouring byte enables, lane by lane.
    if (stbus::is_store(opc) || opc == Opcode::kSwap4) {
      for (const auto& cell : req_cells_) {
        const std::uint32_t base =
            cell.add & ~static_cast<std::uint32_t>(pins_.bus_bytes - 1);
        for (int lane = 0; lane < pins_.bus_bytes; ++lane) {
          if (cell.be.bit(lane)) {
            mem_[base + static_cast<std::uint32_t>(lane)] =
                cell.data.byte(lane);
          }
        }
      }
    } else if (opc == Opcode::kRmw4) {
      // Atomic OR of the enabled lanes.
      const auto& cell = req_cells_.front();
      const std::uint32_t base =
          cell.add & ~static_cast<std::uint32_t>(pins_.bus_bytes - 1);
      for (int lane = 0; lane < pins_.bus_bytes; ++lane) {
        if (cell.be.bit(lane)) {
          const std::uint32_t a = base + static_cast<std::uint32_t>(lane);
          mem_[a] = static_cast<std::uint8_t>(peek(a) | cell.data.byte(lane));
        }
      }
    }
  }

  Pending p;
  p.cells = stbus::build_response(
      opc, head.add, rdata, fail ? RspOpcode::kError : RspOpcode::kOk,
      pins_.bus_bytes, type_, head.src, head.tid);
  const std::uint64_t extra =
      prof_.extra_latency_max > 0 ? rng_.range(0, prof_.extra_latency_max)
                                  : 0;
  p.ready_cycle =
      ctx_.cycle() + static_cast<std::uint64_t>(prof_.fixed_latency) + extra;
  pending_.push_back(std::move(p));
  req_cells_.clear();
}

}  // namespace crve::verif
