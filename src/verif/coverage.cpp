#include "verif/coverage.h"

#include <stdexcept>

#include "stbus/packet.h"

namespace crve::verif {

// ---------------------------------------------------------------------------
// Coverpoint / Cross
// ---------------------------------------------------------------------------

Coverpoint::Coverpoint(std::string name, std::vector<Bin> bins)
    : name_(std::move(name)), bins_(std::move(bins)) {
  if (bins_.empty()) throw std::invalid_argument("Coverpoint: no bins");
}

Coverpoint Coverpoint::identity(std::string name, int n) {
  std::vector<Bin> bins;
  bins.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint64_t>(i);
    bins.push_back({std::to_string(i), v, v, 0});
  }
  return Coverpoint(std::move(name), std::move(bins));
}

int Coverpoint::bin_of(std::uint64_t v) const {
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (v >= bins_[i].lo && v <= bins_[i].hi) return static_cast<int>(i);
  }
  return -1;
}

void Coverpoint::sample(std::uint64_t v) {
  const int b = bin_of(v);
  if (b >= 0) ++bins_[static_cast<std::size_t>(b)].hits;
}

int Coverpoint::bins_hit() const {
  int n = 0;
  for (const auto& b : bins_) n += b.hits > 0 ? 1 : 0;
  return n;
}

double Coverpoint::percent() const {
  return 100.0 * bins_hit() / num_bins();
}

Cross::Cross(std::string name, const Coverpoint& a, const Coverpoint& b)
    : name_(std::move(name)),
      a_(a),
      b_(b),
      na_(a.num_bins()),
      nb_(b.num_bins()),
      hits_(static_cast<std::size_t>(na_ * nb_), 0) {}

void Cross::sample(std::uint64_t va, std::uint64_t vb) {
  const int ba = a_.bin_of(va);
  const int bb = b_.bin_of(vb);
  if (ba >= 0 && bb >= 0) {
    ++hits_[static_cast<std::size_t>(ba * nb_ + bb)];
  }
}

int Cross::bins_hit() const {
  int n = 0;
  for (auto h : hits_) n += h > 0 ? 1 : 0;
  return n;
}

double Cross::percent() const { return 100.0 * bins_hit() / num_bins(); }

// ---------------------------------------------------------------------------
// StbusCoverage
// ---------------------------------------------------------------------------

namespace {

std::vector<Bin> size_bins() {
  std::vector<Bin> bins;
  for (int s = 1; s <= 64; s *= 2) {
    bins.push_back({std::to_string(s) + "B", static_cast<std::uint64_t>(s),
                    static_cast<std::uint64_t>(s), 0});
  }
  return bins;
}

std::vector<Bin> depth_bins() {
  std::vector<Bin> bins;
  for (int d = 0; d < 7; ++d) {
    bins.push_back({std::to_string(d), static_cast<std::uint64_t>(d),
                    static_cast<std::uint64_t>(d), 0});
  }
  bins.push_back({"7+", 7, ~std::uint64_t{0}, 0});
  return bins;
}

}  // namespace

StbusCoverage::StbusCoverage(const stbus::NodeConfig& cfg)
    : cfg_(cfg),
      opcode_(Coverpoint::identity("opcode", stbus::kNumOpcodes)),
      size_("size", size_bins()),
      initiator_(Coverpoint::identity("initiator", cfg.n_initiators)),
      target_(Coverpoint::identity("target", cfg.n_targets + 1)),
      chunked_(Coverpoint::identity("chunked", 2)),
      status_(Coverpoint::identity("rsp_status", 2)),
      outstanding_("outstanding", depth_bins()),
      opcode_x_target_("opcode_x_target", opcode_, target_),
      initiator_x_target_("initiator_x_target", initiator_, target_),
      status_x_opcode_("status_x_opcode", status_, opcode_),
      in_flight_(static_cast<std::size_t>(cfg.n_initiators), 0),
      pending_opc_(static_cast<std::size_t>(cfg.n_initiators),
                   std::vector<int>(256, -1)) {
  cfg_.validate_and_normalize();
}

void StbusCoverage::sample_request(int initiator, const ObservedRequest& pkt) {
  const auto& head = pkt.cells.front();
  const auto opc = static_cast<std::uint64_t>(head.opc);
  const int routed = cfg_.route(head.add);
  // Decode errors land in the extra "error" bin (index n_targets).
  const auto tgt = static_cast<std::uint64_t>(
      routed < 0 ? cfg_.n_targets : routed);
  opcode_.sample(opc);
  size_.sample(static_cast<std::uint64_t>(stbus::size_bytes(head.opc)));
  initiator_.sample(static_cast<std::uint64_t>(initiator));
  target_.sample(tgt);
  chunked_.sample(pkt.cells.back().lck ? 1 : 0);
  outstanding_.sample(
      static_cast<std::uint64_t>(in_flight_[static_cast<std::size_t>(initiator)]));
  opcode_x_target_.sample(opc, tgt);
  initiator_x_target_.sample(static_cast<std::uint64_t>(initiator), tgt);
  ++in_flight_[static_cast<std::size_t>(initiator)];
  pending_opc_[static_cast<std::size_t>(initiator)][head.tid] =
      static_cast<int>(head.opc);
}

void StbusCoverage::sample_response(int initiator,
                                    const ObservedResponse& pkt) {
  bool any_error = false;
  for (const auto& c : pkt.cells) {
    if (c.opc != stbus::RspOpcode::kOk) any_error = true;
  }
  status_.sample(any_error ? 1 : 0);
  // The response does not carry the opcode; recover it from the request
  // bookkeeping by (initiator, tid) — works for in-order Type2 (tid 0, one
  // packet at a time per tid) and out-of-order Type3 alike.
  const std::uint8_t tid = pkt.cells.front().tid;
  int& slot = pending_opc_[static_cast<std::size_t>(initiator)][tid];
  if (slot >= 0) {
    status_x_opcode_.sample(any_error ? 1 : 0,
                            static_cast<std::uint64_t>(slot));
    slot = -1;
  }
  auto& f = in_flight_[static_cast<std::size_t>(initiator)];
  if (f > 0) --f;
}

CoverageReport StbusCoverage::report() const {
  CoverageReport r;
  auto add_point = [&r](const std::string& name, int hit, int total) {
    r.items.push_back({name, hit, total,
                       total > 0 ? 100.0 * hit / total : 100.0});
    r.hit += hit;
    r.total += total;
  };
  add_point(opcode_.name(), opcode_.bins_hit(), opcode_.num_bins());
  add_point(size_.name(), size_.bins_hit(), size_.num_bins());
  add_point(initiator_.name(), initiator_.bins_hit(), initiator_.num_bins());
  add_point(target_.name(), target_.bins_hit(), target_.num_bins());
  add_point(chunked_.name(), chunked_.bins_hit(), chunked_.num_bins());
  add_point(status_.name(), status_.bins_hit(), status_.num_bins());
  add_point(outstanding_.name(), outstanding_.bins_hit(),
            outstanding_.num_bins());
  add_point(opcode_x_target_.name(), opcode_x_target_.bins_hit(),
            opcode_x_target_.num_bins());
  add_point(initiator_x_target_.name(), initiator_x_target_.bins_hit(),
            initiator_x_target_.num_bins());
  add_point(status_x_opcode_.name(), status_x_opcode_.bins_hit(),
            status_x_opcode_.num_bins());
  r.percent = r.total > 0 ? 100.0 * r.hit / r.total : 100.0;
  return r;
}

int StbusCoverage::bins_hit() const { return report().hit; }
int StbusCoverage::bins_total() const { return report().total; }

namespace {
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}
}  // namespace

std::uint64_t StbusCoverage::digest() const {
  std::uint64_t h = 0;
  auto mix_point = [&h](const Coverpoint& p) {
    for (const auto& b : p.bins()) mix(h, b.hits);
  };
  mix_point(opcode_);
  mix_point(size_);
  mix_point(initiator_);
  mix_point(target_);
  mix_point(chunked_);
  mix_point(status_);
  mix_point(outstanding_);
  auto mix_cross = [&h](const Cross& c, int na, int nb) {
    for (int a = 0; a < na; ++a) {
      for (int b = 0; b < nb; ++b) mix(h, c.hits(a, b));
    }
  };
  mix_cross(opcode_x_target_, stbus::kNumOpcodes, cfg_.n_targets + 1);
  mix_cross(initiator_x_target_, cfg_.n_initiators, cfg_.n_targets + 1);
  mix_cross(status_x_opcode_, 2, stbus::kNumOpcodes);
  return h;
}

void StbusCoverage::merge(const StbusCoverage& other) {
  // Shape check via total bins; hit counts are merged bin-by-bin.
  if (bins_total() != other.bins_total()) {
    throw std::invalid_argument("StbusCoverage::merge: shape mismatch");
  }
  auto merge_point = [](Coverpoint& a, const Coverpoint& b) {
    for (int i = 0; i < a.num_bins(); ++i) {
      a.add_hits(i, b.bins()[static_cast<std::size_t>(i)].hits);
    }
  };
  merge_point(opcode_, other.opcode_);
  merge_point(size_, other.size_);
  merge_point(initiator_, other.initiator_);
  merge_point(target_, other.target_);
  merge_point(chunked_, other.chunked_);
  merge_point(status_, other.status_);
  merge_point(outstanding_, other.outstanding_);
  auto merge_cross = [](Cross& a, const Cross& b, int na, int nb) {
    for (int x = 0; x < na; ++x) {
      for (int y = 0; y < nb; ++y) a.add_hits(x, y, b.hits(x, y));
    }
  };
  merge_cross(opcode_x_target_, other.opcode_x_target_, stbus::kNumOpcodes,
              cfg_.n_targets + 1);
  merge_cross(initiator_x_target_, other.initiator_x_target_,
              cfg_.n_initiators, cfg_.n_targets + 1);
  merge_cross(status_x_opcode_, other.status_x_opcode_, 2,
              stbus::kNumOpcodes);
}

}  // namespace crve::verif
