#include "verif/type1_checker.h"

namespace crve::verif {

using stbus::RspOpcode;

Type1Checker::Type1Checker(sim::Context& ctx, std::string name,
                           const stbus::PortPins& pins)
    : name_(std::move(name)), ctx_(ctx), pins_(pins) {
  // Design-lint declaration: the request payload is sampled only while a
  // request is up; the Type1 ack convention reuses gnt/r_data/r_opc.
  sim::ClockedOpts decl;
  decl.reads = pins.request_signals();
  decl.reads.push_back(&pins.gnt);
  decl.reads.push_back(&pins.r_data);
  decl.reads.push_back(&pins.r_opc);
  decl.reads.push_back(&pins.r_req);
  decl.reads.push_back(&pins.r_eop);
  decl.reads.push_back(&pins.r_gnt);
  ctx.add_clocked("t1chk." + name_, [this] { sample(); }, std::move(decl));
}

void Type1Checker::report(std::uint64_t cycle, const std::string& rule,
                          const std::string& message) {
  ++count_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back({cycle, name_, rule, message});
  }
}

void Type1Checker::sample() {
  const std::uint64_t cycle = ctx_.cycle() - 1;
  const bool req = pins_.req.read();
  const bool gnt = pins_.gnt.read();

  if (req) {
    const stbus::RequestCell cell = pins_.sample_request();
    const int size = stbus::size_bytes(cell.opc);
    if (size > pins_.bus_bytes) {
      report(cycle, "T1_SIZE",
             stbus::to_string(cell.opc) + " wider than the " +
                 std::to_string(pins_.bus_bytes * 8) + "-bit port");
    } else if (!stbus::aligned(cell.opc, cell.add)) {
      report(cycle, "T1_ALIGN", "address unaligned for " +
                                    stbus::to_string(cell.opc));
    }
    // Payload must hold while ungranted.
    if (prev_valid_ && prev_req_ && !prev_gnt_) {
      const stbus::RequestCell& p = prev_cell_;
      if (cell.opc != p.opc || cell.add != p.add || !(cell.data == p.data)) {
        report(cycle, "T1_HOLD", "payload changed while waiting for ack");
      }
    }
    prev_cell_ = cell;
  } else if (prev_valid_ && prev_req_ && !prev_gnt_) {
    report(cycle, "T1_HOLD", "request retracted before the ack");
  }

  if (gnt) {
    if (!prev_valid_ || !prev_req_) {
      report(cycle, "T1_ACK_SPUR", "ack with no pending request");
    }
    if (prev_valid_ && prev_gnt_) {
      report(cycle, "T1_ACK_WIDE", "ack held for more than one cycle");
    }
    const auto opc = static_cast<RspOpcode>(pins_.r_opc.read());
    if (opc != RspOpcode::kOk && opc != RspOpcode::kError) {
      report(cycle, "T1_OPC", "illegal r_opc during ack");
    }
    // Both DUT views mirror the Type1 ack onto the response-channel
    // handshake (r_req/r_eop track gnt; a Type1 response is always a single
    // cell). Check the mirror so a view that drops it diverges loudly.
    if (!pins_.r_req.read() || !pins_.r_eop.read()) {
      report(cycle, "T1_RSP_MIRROR",
             "response handshake not mirrored during ack");
    }
    if (!pins_.r_gnt.read()) {
      report(cycle, "T1_RSP_MIRROR",
             "programming master must hold r_gnt during ack");
    }
  }

  prev_valid_ = true;
  prev_req_ = req;
  prev_gnt_ = gnt;
}

}  // namespace crve::verif
