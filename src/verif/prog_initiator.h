// Programming initiator: drives the node's Type1 programming port.
//
// Executes a directed schedule of priority-register accesses (paper Fig. 6:
// the "Programming Initiator" that changes arbitration priorities while
// random traffic runs on the data ports).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/pins.h"

namespace crve::verif {

struct ProgOp {
  std::uint64_t at_cycle = 0;  // earliest cycle the access may start
  bool write = false;
  int index = 0;               // initiator whose priority register is touched
  std::uint32_t value = 0;     // write data
};

struct ProgResult {
  ProgOp op;
  std::uint32_t read_value = 0;
  bool error = false;
  std::uint64_t done_cycle = 0;
};

class ProgInitiator {
 public:
  ProgInitiator(sim::Context& ctx, std::string name, stbus::PortPins& pins,
                std::vector<ProgOp> schedule);

  bool done() const { return next_ >= schedule_.size() && !busy_; }
  const std::vector<ProgResult>& results() const { return results_; }

 private:
  void step();

  std::string name_;
  sim::Context& ctx_;
  stbus::PortPins& pins_;
  std::vector<ProgOp> schedule_;
  std::size_t next_ = 0;
  bool busy_ = false;
  std::vector<ProgResult> results_;
};

}  // namespace crve::verif
