// Toggle coverage over the traced signals.
//
// The paper's second coverage axis is code coverage (line/branch/statement
// from the HDL simulator), which "can be applied only in the RTL
// verification since no tool is able to generate this metric for SystemC".
// The closest structural metric available to *both* views in this repo is
// per-bit toggle coverage of the port signals: every bit of every traced
// signal should be seen both rising and falling during a healthy campaign.
// Stuck bits point at dead configuration space exactly the way unexecuted
// lines do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/context.h"

namespace crve::verif {

class ToggleCoverage : public sim::Tracer {
 public:
  ToggleCoverage() = default;

  // Change-driven: only the signals the kernel reports as changed are
  // re-formatted and diffed against their previous value; quiet signals
  // cost nothing per cycle.
  void sample(std::uint64_t cycle,
              const std::vector<sim::SignalBase*>& signals,
              const std::vector<int>& changed) override;

  struct SignalReport {
    std::string name;
    int bits = 0;
    int rose = 0;  // bits seen 0 -> 1
    int fell = 0;  // bits seen 1 -> 0
    int covered = 0;  // bits with both transitions
  };

  struct Report {
    std::vector<SignalReport> signals;
    int bits_total = 0;
    int bits_covered = 0;
    double percent = 0.0;
  };
  Report report() const;
  double percent() const { return report().percent; }

  // Names of signals with at least one never-toggled bit (diagnostics).
  std::vector<std::string> stuck_signals() const;

 private:
  struct BitState {
    bool rose = false;
    bool fell = false;
  };
  struct Entry {
    const sim::SignalBase* signal = nullptr;
    std::string prev;
    std::vector<BitState> bits;
  };
  std::vector<Entry> entries_;
  std::string scratch_;  // reusable value-formatting buffer
  bool initialized_ = false;
};

}  // namespace crve::verif
