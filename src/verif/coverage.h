// Functional coverage.
//
// Generic covergroup machinery (coverpoints with value bins, pairwise
// crosses) plus StbusCoverage, the STBus-specific model the CATG library
// ships: opcode/size/port/chunk/status points and their crosses, sized from
// the DUT configuration. Coverage is collected from monitors only, so the
// same model runs on both DUT views, and the paper's invariant — identical
// tests/seeds must produce identical functional coverage on RTL and BCA —
// is directly checkable via digest().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stbus/config.h"
#include "verif/monitor.h"

namespace crve::verif {

struct Bin {
  std::string name;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // inclusive
  std::uint64_t hits = 0;
};

class Coverpoint {
 public:
  Coverpoint(std::string name, std::vector<Bin> bins);

  // One bin per integer value 0..n-1.
  static Coverpoint identity(std::string name, int n);

  void sample(std::uint64_t v);
  // Bin index for a value; -1 when no bin matches.
  int bin_of(std::uint64_t v) const;
  // Adds raw hits to a bin (coverage merging across runs).
  void add_hits(int bin, std::uint64_t count) {
    bins_[static_cast<std::size_t>(bin)].hits += count;
  }

  const std::string& name() const { return name_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  int bins_hit() const;
  double percent() const;
  const std::vector<Bin>& bins() const { return bins_; }

 private:
  std::string name_;
  std::vector<Bin> bins_;
};

// Cross of two coverpoints: a bin per (bin_a, bin_b) pair.
class Cross {
 public:
  Cross(std::string name, const Coverpoint& a, const Coverpoint& b);

  void sample(std::uint64_t va, std::uint64_t vb);

  const std::string& name() const { return name_; }
  int num_bins() const { return na_ * nb_; }
  int bins_hit() const;
  double percent() const;
  std::uint64_t hits(int bin_a, int bin_b) const {
    return hits_[static_cast<std::size_t>(bin_a * nb_ + bin_b)];
  }
  void add_hits(int bin_a, int bin_b, std::uint64_t count) {
    hits_[static_cast<std::size_t>(bin_a * nb_ + bin_b)] += count;
  }

 private:
  std::string name_;
  const Coverpoint& a_;
  const Coverpoint& b_;
  int na_, nb_;
  std::vector<std::uint64_t> hits_;
};

struct CoverageItemReport {
  std::string name;
  int hit = 0;
  int total = 0;
  double percent = 0.0;
};

struct CoverageReport {
  std::vector<CoverageItemReport> items;
  int hit = 0;
  int total = 0;
  double percent = 0.0;
};

// The CATG-style STBus functional coverage model.
class StbusCoverage {
 public:
  explicit StbusCoverage(const stbus::NodeConfig& cfg);

  // Sampling hooks (wired to initiator-port monitors by the testbench).
  void sample_request(int initiator, const ObservedRequest& pkt);
  void sample_response(int initiator, const ObservedResponse& pkt);

  CoverageReport report() const;
  double percent() const { return report().percent; }

  // Accumulate another run's hits (same configuration required).
  void merge(const StbusCoverage& other);

  // Order-insensitive fingerprint of all bin hit counts; equal digests on
  // the RTL and BCA runs is one of the paper's two quality gates.
  std::uint64_t digest() const;

  // Convenience for regression summaries: number of distinct bins hit.
  int bins_hit() const;
  int bins_total() const;

 private:
  stbus::NodeConfig cfg_;
  Coverpoint opcode_;
  Coverpoint size_;
  Coverpoint initiator_;
  Coverpoint target_;  // n_targets bins + one decode-error bin
  Coverpoint chunked_;
  Coverpoint status_;
  Coverpoint outstanding_;  // depth at issue, 0..7+
  Cross opcode_x_target_;
  Cross initiator_x_target_;
  Cross status_x_opcode_;
  std::vector<int> in_flight_;  // per initiator
  // (initiator, tid) -> opcode of the outstanding request, so responses can
  // be crossed against the operation that produced them.
  std::vector<std::vector<int>> pending_opc_;
};

}  // namespace crve::verif
