// Generic testbench (paper Fig. 2 / Fig. 6).
//
// Builds, for one node configuration and one test specification, the full
// common verification environment — initiator/target BFMs, monitors,
// protocol checkers, scoreboard, functional coverage, optional programming
// initiator and VCD dump — around either view of the DUT. The choice of
// model (RTL, BCA, or BCA-behind-wrappers) is a single enum: nothing else
// in the environment changes, which is the paper's central claim.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "bca/node.h"
#include "obs/profiler.h"
#include "obs/txn_trace.h"
#include "rtl/node.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"
#include "vcd/writer.h"
#include "verif/bfm_initiator.h"
#include "verif/bfm_target.h"
#include "verif/coverage.h"
#include "verif/monitor.h"
#include "verif/prog_initiator.h"
#include "verif/protocol_checker.h"
#include "verif/reference_model.h"
#include "verif/scoreboard.h"
#include "verif/toggle_coverage.h"
#include "verif/type1_checker.h"

namespace crve::verif {

enum class ModelKind { kRtl, kBca, kBcaWrapped };

std::string to_string(ModelKind m);

// One of the twelve (plus old-flow) generic test cases. All hooks receive
// the final node configuration so tests adapt to any HDL parameter set.
struct TestSpec {
  std::string name;
  std::string description;
  int n_transactions = 100;  // per initiator
  // Configuration demands of the test (e.g. forces an arbitration policy).
  std::function<void(stbus::NodeConfig&)> adjust;
  // Random profile per initiator (required unless `directed` is set).
  std::function<InitiatorProfile(const stbus::NodeConfig&, int)> profile;
  // Directed sequence per initiator (old-flow harness, smoke tests).
  std::function<std::vector<stbus::Request>(const stbus::NodeConfig&, int)>
      directed;
  // Target profile per target (default: short per-target-staggered latency).
  std::function<TargetProfile(const stbus::NodeConfig&, int)> target;
  // Programming-port schedule (requires cfg.programming_port).
  std::function<std::vector<ProgOp>(const stbus::NodeConfig&)> prog;
};

struct TestbenchOptions {
  ModelKind model = ModelKind::kRtl;
  // Simulation kernel: compiled levelized schedule (default) or the
  // reference delta-cycle interpreter (`--sim-kernel interp`).
  sim::KernelKind kernel = sim::KernelKind::kCompiled;
  std::uint64_t seed = 1;
  bca::Faults faults;        // applied to the BCA view only
  bool bca_memoization = true;  // ablation knob (bench_sim_speed)
  std::string vcd_path;      // non-empty: dump all signals to this file
  std::ostream* vcd_stream = nullptr;  // alternative in-memory dump target
  bool enable_checkers = true;
  bool enable_scoreboard = true;
  bool enable_coverage = true;
  // Replays observed traffic through the untimed TLM view and checks the
  // end-to-end data semantics. Auto-disabled when a target BFM injects
  // random errors (the reference model cannot predict those).
  bool enable_reference_model = true;
  // Monitors are required by the scoreboard, coverage and the reference
  // model; disabling them is only legal (and only useful) for raw
  // model-speed measurements.
  bool enable_monitors = true;
  // Per-bit toggle coverage over all traced signals (the both-view analog
  // of the paper's RTL-only code coverage). Opt-in: it samples every signal
  // every cycle.
  bool enable_toggle_coverage = false;
  bool keep_history = false;  // record completed transactions in the BFMs
  std::uint64_t max_cycles = 500000;
  // Kernel hotspot profiler (DESIGN.md §15): attribute wall time and
  // evaluation/skip counts to every named process; RunResult::profile
  // carries the per-run snapshot. Off by default — the disabled path is one
  // branch per evaluation site, inside the obs <2% overhead budget.
  bool profile = false;
  // Transaction-lifecycle tracer (DESIGN.md §16): stitch BFM issue events
  // and monitor packet taps into per-transaction spans; RunResult::txn
  // carries the per-run data. Requires monitors. Off by default — when off,
  // no tracer, no taps and no BFM hooks exist at all.
  bool txn_trace = false;
};

struct RunResult {
  bool completed = false;  // all traffic drained before max_cycles
  std::uint64_t cycles = 0;
  std::uint64_t evaluations = 0;  // kernel process evaluations (sim cost)
  std::uint64_t checker_violations = 0;
  std::uint64_t scoreboard_errors = 0;
  std::uint64_t reference_mismatches = 0;
  double coverage_percent = 0.0;
  std::uint64_t coverage_digest = 0;
  double toggle_percent = -1.0;  // -1 = toggle coverage disabled
  // Per-port utilisation (cycles with any transfer / total cycles).
  struct PortUtilisation {
    std::string port;
    std::uint64_t busy_cycles = 0;
    std::uint64_t request_packets = 0;
    std::uint64_t response_packets = 0;
  };
  std::vector<PortUtilisation> utilisation;
  std::vector<Violation> violations;         // first ~100
  std::vector<ScoreboardError> sb_errors;    // first ~100
  std::vector<ReferenceError> ref_errors;    // first ~100
  // Per-process hotspot profile (empty unless TestbenchOptions::profile).
  obs::ProfileData profile;
  // Transaction spans (empty unless TestbenchOptions::txn_trace).
  obs::TxnTraceData txn;

  bool passed() const {
    return completed && checker_violations == 0 && scoreboard_errors == 0 &&
           reference_mismatches == 0;
  }
};

class Testbench {
 public:
  Testbench(stbus::NodeConfig cfg, const TestSpec& spec,
            TestbenchOptions opts);
  ~Testbench();

  Testbench(const Testbench&) = delete;
  Testbench& operator=(const Testbench&) = delete;

  // Runs to completion (or opts.max_cycles) and gathers the result.
  RunResult run();

  // --- component access for tests and benches -----------------------------
  sim::Context& ctx() { return ctx_; }
  const stbus::NodeConfig& config() const { return cfg_; }
  InitiatorBfm& initiator(int i) { return *bfms_[static_cast<std::size_t>(i)]; }
  TargetBfm& target(int t) { return *targets_[static_cast<std::size_t>(t)]; }
  Monitor& initiator_monitor(int i) {
    return *imons_[static_cast<std::size_t>(i)];
  }
  Monitor& target_monitor(int t) {
    return *tmons_[static_cast<std::size_t>(t)];
  }
  const StbusCoverage* coverage() const { return coverage_.get(); }
  const ToggleCoverage* toggle_coverage() const { return toggle_.get(); }
  const ReferenceModel* reference_model() const { return reference_.get(); }
  ProgInitiator* prog_initiator() { return prog_bfm_.get(); }
  rtl::Node* rtl_node() { return rtl_node_.get(); }
  bca::Node* bca_node() { return bca_node_.get(); }

  // Full dotted names of the environment-side port signals (for STBA).
  static std::vector<std::string> port_signal_names(const std::string& port);
  static std::string initiator_port_name(int i);
  static std::string target_port_name(int t);

 private:
  bool traffic_drained() const;

  stbus::NodeConfig cfg_;
  TestbenchOptions opts_;
  sim::Context ctx_;

  std::vector<std::unique_ptr<stbus::PortPins>> ipins_;
  std::vector<std::unique_ptr<stbus::PortPins>> tpins_;
  std::unique_ptr<stbus::PortPins> prog_pins_;
  // Wrapped mode: DUT-side bundles behind the relays.
  std::vector<std::unique_ptr<stbus::PortPins>> dut_ipins_;
  std::vector<std::unique_ptr<stbus::PortPins>> dut_tpins_;

  std::unique_ptr<rtl::Node> rtl_node_;
  std::unique_ptr<bca::Node> bca_node_;

  std::vector<std::unique_ptr<InitiatorBfm>> bfms_;
  std::vector<std::unique_ptr<TargetBfm>> targets_;
  std::unique_ptr<ProgInitiator> prog_bfm_;

  std::vector<std::unique_ptr<Monitor>> imons_;
  std::vector<std::unique_ptr<Monitor>> tmons_;
  std::vector<std::unique_ptr<ProtocolChecker>> checkers_;
  std::unique_ptr<Type1Checker> prog_checker_;
  std::unique_ptr<Scoreboard> scoreboard_;
  std::unique_ptr<ReferenceModel> reference_;
  std::unique_ptr<StbusCoverage> coverage_;
  std::unique_ptr<ToggleCoverage> toggle_;
  std::vector<std::unique_ptr<MonitorListener>> cov_taps_;
  std::unique_ptr<obs::TxnTracer> txn_tracer_;
  std::vector<std::unique_ptr<MonitorListener>> txn_taps_;
  std::unique_ptr<vcd::Writer> vcd_;
};

}  // namespace crve::verif
