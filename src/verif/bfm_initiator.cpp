#include "verif/bfm_initiator.h"

#include <stdexcept>

namespace crve::verif {

using stbus::Opcode;
using stbus::ProtocolType;
using stbus::Request;
using stbus::RspOpcode;

namespace {
constexpr int kTidSlots = 256;
}

InitiatorBfm::InitiatorBfm(sim::Context& ctx, std::string name,
                           stbus::PortPins& pins, ProtocolType type,
                           int src_id, const stbus::NodeConfig& map,
                           InitiatorProfile profile, Rng rng)
    : InitiatorBfm(ctx, std::move(name), pins, type, src_id, map,
                   std::move(profile), rng, {}) {}

InitiatorBfm::InitiatorBfm(sim::Context& ctx, std::string name,
                           stbus::PortPins& pins, ProtocolType type,
                           int src_id, const stbus::NodeConfig& map,
                           InitiatorProfile profile, Rng rng,
                           std::vector<Request> directed)
    : name_(std::move(name)),
      ctx_(ctx),
      pins_(pins),
      type_(type),
      src_(src_id),
      map_(map),
      prof_(std::move(profile)),
      rng_(rng),
      directed_(std::move(directed)),
      flights_(kTidSlots) {
  map_.validate_and_normalize();
  if (prof_.windows.empty() && directed_.empty()) {
    // Default: one size-aligned window per address-map range.
    for (const auto& r : map_.address_map) {
      prof_.windows.push_back(r);
    }
  }
  for (const auto& w : prof_.windows) {
    if (w.base % 64 != 0 || w.size % 64 != 0 || w.size < 64) {
      throw std::invalid_argument(
          "InitiatorProfile: windows must be 64-byte aligned and sized");
    }
  }
  if (!directed_.empty()) {
    prof_.n_transactions = static_cast<int>(directed_.size());
  }
  if (prof_.max_outstanding < 1 || prof_.max_outstanding > 16) {
    throw std::invalid_argument("InitiatorProfile: max_outstanding in 1..16");
  }
  // Design-lint declarations: the response payload is sampled only while a
  // response fires and the request payload is driven only while a packet is
  // outstanding, so a single recorded evaluation sees neither slice.
  sim::ClockedOpts decl;
  decl.reads = pins.response_signals();
  decl.reads.push_back(&pins.req);
  decl.reads.push_back(&pins.gnt);
  decl.reads.push_back(&pins.r_gnt);
  decl.writes = pins.request_signals();
  decl.writes.push_back(&pins.r_gnt);
  ctx.add_clocked("bfm." + name_, [this] { step(); }, std::move(decl));
}

bool InitiatorBfm::done() const {
  return issued_ >= prof_.n_transactions && outstanding_ == 0 &&
         cells_.empty() && chunk_left_ == 0;
}

double InitiatorBfm::mean_latency() const {
  return completed_ > 0 ? static_cast<double>(latency_sum_) / completed_ : 0.0;
}

double InitiatorBfm::mean_total_latency() const {
  if (history_.empty()) return 0.0;
  double sum = 0;
  for (const auto& tx : history_) {
    sum += static_cast<double>(tx.done_cycle - tx.gen_cycle);
  }
  return sum / static_cast<double>(history_.size());
}

std::uint8_t InitiatorBfm::alloc_tid() const {
  for (int t = 0; t < kTidSlots; ++t) {
    if (!flights_[static_cast<std::size_t>(t)]) {
      return static_cast<std::uint8_t>(t);
    }
  }
  throw std::logic_error("InitiatorBfm: no free tid");
}

void InitiatorBfm::step() {
  const std::uint64_t prev_cycle = ctx_.cycle() - 1;

  // --- response channel ---------------------------------------------------
  if (pins_.response_fires()) {
    const stbus::ResponseCell cell = pins_.sample_response();
    // Type3 responses are matched by tid; Type2 shares tid 0 and is strictly
    // ordered, so the oldest flight is the one completing.
    Flight* fl = nullptr;
    if (type_ == ProtocolType::kType3) {
      if (flights_[cell.tid]) fl = &*flights_[cell.tid];
    } else if (!fifo_.empty()) {
      fl = &fifo_.front();
    }
    if (fl != nullptr) {
      fl->rsp.push_back(cell);
      if (cell.eop) {
        ++completed_;
        --outstanding_;
        latency_sum_ += prev_cycle - fl->issue_cycle;
        if (prof_.keep_history) {
          CompletedTx tx;
          tx.request = fl->request;
          tx.response = fl->rsp;
          tx.gen_cycle = fl->gen_cycle;
          tx.issue_cycle = fl->issue_cycle;
          tx.done_cycle = prev_cycle;
          for (const auto& c : fl->rsp) {
            if (c.opc != RspOpcode::kOk) tx.status = RspOpcode::kError;
          }
          if (stbus::is_load(fl->request.opc) ||
              stbus::is_atomic(fl->request.opc)) {
            tx.rdata = stbus::extract_response_data(
                fl->request.opc, fl->request.add, fl->rsp, pins_.bus_bytes);
          }
          history_.push_back(std::move(tx));
        }
        if (type_ == ProtocolType::kType3) {
          flights_[cell.tid].reset();
        } else {
          fifo_.pop_front();
        }
        if (outstanding_ == 0) pipeline_window_ = -2;  // -2 = unconstrained
      }
    }
  }
  // One backpressure draw per cycle, unconditionally, so the random stream
  // does not depend on DUT timing.
  const bool stall =
      prof_.rsp_stall_permille > 0 &&
      rng_.chance(prof_.rsp_stall_permille, 1000);
  pins_.r_gnt.write(!stall);

  // --- request channel ----------------------------------------------------
  if (!cells_.empty() && pins_.request_fires()) {
    if (cell_idx_ == 0 && current_) {
      if (type_ == ProtocolType::kType3) {
        auto& fl = flights_[current_->tid];
        if (fl) fl->issue_cycle = prev_cycle;
      } else if (!fifo_.empty()) {
        fifo_.back().issue_cycle = prev_cycle;
      }
    }
    ++cell_idx_;
    if (cell_idx_ == cells_.size()) {
      cells_.clear();
      cell_idx_ = 0;
      current_.reset();
    }
  }

  if (draining_ && outstanding_ == 0) draining_ = false;
  if (cells_.empty()) {
    if (chunk_left_ > 0) {
      generate_next();  // a chunk must be continued to closure
    } else if (!draining_ && issued_ < prof_.n_transactions &&
               outstanding_ < prof_.max_outstanding) {
      const bool idle = prof_.idle_permille > 0 &&
                        rng_.chance(prof_.idle_permille, 1000);
      // Periodically drain the Type2 pipeline so window choice re-opens.
      if (directed_.empty() && type_ == ProtocolType::kType2 &&
          outstanding_ > 0 && prof_.pipeline_drain_permille > 0 &&
          rng_.chance(prof_.pipeline_drain_permille, 1000)) {
        draining_ = true;
      } else if (!idle) {
        generate_next();
      }
    }
  }

  if (!cells_.empty()) {
    pins_.drive_request(cells_[cell_idx_]);
  } else {
    pins_.idle_request();
  }
}

void InitiatorBfm::generate_next() {
  Request req;
  if (!directed_.empty()) {
    if (directed_idx_ >= directed_.size()) return;
    req = directed_[directed_idx_++];
    req.src = static_cast<std::uint8_t>(src_);
    if (type_ == ProtocolType::kType3) req.tid = alloc_tid();
  } else {
    // Opcode: weighted pick over the size-masked table.
    std::vector<std::uint32_t> w = prof_.opcode_weights;
    w.resize(stbus::kNumOpcodes, 0);
    for (int i = 0; i < stbus::kNumOpcodes; ++i) {
      const auto opc = static_cast<Opcode>(i);
      if (stbus::size_bytes(opc) > prof_.max_size_bytes) {
        w[static_cast<std::size_t>(i)] = 0;
      }
      // Atomics are single-cell and cannot straddle beats.
      if (stbus::is_atomic(opc) &&
          stbus::size_bytes(opc) > pins_.bus_bytes) {
        w[static_cast<std::size_t>(i)] = 0;
      }
    }
    req.opc = static_cast<Opcode>(rng_.weighted(w));
    const int size = stbus::size_bytes(req.opc);

    // Window: chunks and Type2 pipelining pin the stream to one window.
    int win;
    if (chunk_left_ > 0) {
      win = chunk_window_;
    } else if (type_ == ProtocolType::kType2 && outstanding_ > 0 &&
               pipeline_window_ != -2) {
      win = pipeline_window_;
    } else if (prof_.decode_error_permille > 0 && prof_.error_window &&
               rng_.chance(prof_.decode_error_permille, 1000)) {
      win = -1;
    } else {
      win = rng_.index(prof_.windows.size());
    }
    const stbus::AddressRange& range =
        win < 0 ? *prof_.error_window
                : prof_.windows[static_cast<std::size_t>(win)];
    const std::uint32_t slots = range.size / static_cast<std::uint32_t>(size);
    req.add = range.base +
              static_cast<std::uint32_t>(rng_.range(0, slots - 1)) *
                  static_cast<std::uint32_t>(size);
    if (stbus::is_store(req.opc) || stbus::is_atomic(req.opc)) {
      req.wdata.resize(static_cast<std::size_t>(size));
      for (auto& b : req.wdata) {
        b = static_cast<std::uint8_t>(rng_.range(0, 255));
      }
    }
    req.src = static_cast<std::uint8_t>(src_);
    req.tid = type_ == ProtocolType::kType3 ? alloc_tid() : 0;

    // Chunking.
    if (chunk_left_ > 0) {
      --chunk_left_;
      req.lck = chunk_left_ > 0;
    } else if (win >= 0 && prof_.chunk_permille > 0 &&
               prof_.max_chunk_packets > 1 &&
               rng_.chance(prof_.chunk_permille, 1000)) {
      chunk_left_ = static_cast<int>(
          rng_.range(1, static_cast<std::uint64_t>(
                            prof_.max_chunk_packets - 1)));
      chunk_window_ = win;
      req.lck = true;
    }
    pipeline_window_ = win;
  }

  cells_ = stbus::build_request(req, pins_.bus_bytes, type_);
  cells_.back().lck = req.lck;
  cell_idx_ = 0;
  current_ = req;
  Flight fl;
  fl.request = req;
  fl.gen_cycle = ctx_.cycle();
  fl.issue_cycle = ctx_.cycle();
  if (type_ == ProtocolType::kType3) {
    flights_[req.tid] = std::move(fl);
  } else {
    fifo_.push_back(std::move(fl));
  }
  ++outstanding_;
  ++issued_;
  if (issue_hook_) issue_hook_(req, ctx_.cycle());
}

}  // namespace crve::verif
