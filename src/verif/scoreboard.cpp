#include "verif/scoreboard.h"

#include "stbus/packet.h"

namespace crve::verif {

using stbus::RequestCell;
using stbus::ResponseCell;
using stbus::RspOpcode;

// Routes monitor callbacks to the scoreboard with port identity attached.
class ScoreboardTap : public MonitorListener {
 public:
  ScoreboardTap(Scoreboard& sb, int id, bool initiator)
      : sb_(sb), id_(id), initiator_(initiator) {}
  void on_request_packet(const ObservedRequest& pkt) override {
    if (initiator_) {
      sb_.initiator_request(id_, pkt);
    } else {
      sb_.target_request(id_, pkt);
    }
  }
  void on_response_packet(const ObservedResponse& pkt) override {
    if (initiator_) {
      sb_.initiator_response(id_, pkt);
    } else {
      sb_.target_response(id_, pkt);
    }
  }

 private:
  Scoreboard& sb_;
  int id_;
  bool initiator_;
};

Scoreboard::Scoreboard(const stbus::NodeConfig& cfg) : cfg_(cfg) {
  cfg_.validate_and_normalize();
  req_fifo_.assign(
      static_cast<std::size_t>(cfg_.n_initiators),
      std::vector<std::deque<ObservedRequest>>(
          static_cast<std::size_t>(cfg_.n_targets)));
  rsp_fifo_.assign(
      static_cast<std::size_t>(cfg_.n_targets),
      std::vector<std::deque<ObservedResponse>>(
          static_cast<std::size_t>(cfg_.n_initiators)));
  expected_errors_.resize(static_cast<std::size_t>(cfg_.n_initiators));
}

Scoreboard::~Scoreboard() = default;

void Scoreboard::attach_initiator(Monitor& mon, int id) {
  taps_.push_back(std::make_unique<ScoreboardTap>(*this, id, true));
  mon.subscribe(taps_.back().get());
}

void Scoreboard::attach_target(Monitor& mon, int id) {
  taps_.push_back(std::make_unique<ScoreboardTap>(*this, id, false));
  mon.subscribe(taps_.back().get());
}

void Scoreboard::fail(std::uint64_t cycle, const std::string& where,
                      const std::string& message) {
  ++count_;
  if (errors_.size() < kMaxStored) errors_.push_back({cycle, where, message});
}

bool Scoreboard::request_cells_equal(const RequestCell& a,
                                     const RequestCell& b, std::string* why) {
  if (a.opc != b.opc) {
    *why = "opcode";
    return false;
  }
  if (a.add != b.add) {
    *why = "address";
    return false;
  }
  if (!(a.be == b.be)) {
    *why = "byte enables";
    return false;
  }
  if (a.eop != b.eop || a.lck != b.lck) {
    *why = "eop/lck";
    return false;
  }
  if (a.tid != b.tid) {
    *why = "tid";
    return false;
  }
  // Data compared on enabled lanes only.
  for (int i = 0; i < a.be.width(); ++i) {
    if (a.be.bit(i) && a.data.byte(i) != b.data.byte(i)) {
      *why = "data (lane " + std::to_string(i) + ")";
      return false;
    }
  }
  return true;
}

bool Scoreboard::response_cells_equal(const ResponseCell& a,
                                      const ResponseCell& b,
                                      std::string* why) {
  if (a.opc != b.opc) {
    *why = "status";
    return false;
  }
  if (!(a.data == b.data)) {
    *why = "data";
    return false;
  }
  if (a.eop != b.eop) {
    *why = "eop";
    return false;
  }
  if (a.src != b.src || a.tid != b.tid) {
    *why = "src/tid";
    return false;
  }
  return true;
}

void Scoreboard::initiator_request(int id, const ObservedRequest& pkt) {
  const int target = cfg_.route(pkt.cells.front().add);
  if (target < 0) {
    // Decode error: the node itself must answer with ERROR cells.
    expected_errors_[static_cast<std::size_t>(id)].push_back(
        {pkt.cells.front().opc, pkt.cells.front().tid,
         stbus::response_cells(pkt.cells.front().opc, cfg_.bus_bytes,
                               cfg_.type)});
    return;
  }
  req_fifo_[static_cast<std::size_t>(id)][static_cast<std::size_t>(target)]
      .push_back(pkt);
}

void Scoreboard::target_request(int id, const ObservedRequest& pkt) {
  const int src = pkt.cells.front().src;
  if (src < 0 || src >= cfg_.n_initiators) {
    fail(pkt.end_cycle(), "targ" + std::to_string(id),
         "request with illegal src " + std::to_string(src));
    return;
  }
  auto& fifo =
      req_fifo_[static_cast<std::size_t>(src)][static_cast<std::size_t>(id)];
  if (fifo.empty()) {
    fail(pkt.end_cycle(), "targ" + std::to_string(id),
         "request from init" + std::to_string(src) +
             " was never issued at the initiator port");
    return;
  }
  const ObservedRequest expect = fifo.front();
  fifo.pop_front();
  if (expect.cells.size() != pkt.cells.size()) {
    fail(pkt.end_cycle(), "targ" + std::to_string(id),
         "request packet length changed through the node");
    return;
  }
  for (std::size_t c = 0; c < pkt.cells.size(); ++c) {
    std::string why;
    if (!request_cells_equal(expect.cells[c], pkt.cells[c], &why)) {
      fail(pkt.cycles[c], "targ" + std::to_string(id),
           "request cell " + std::to_string(c) + " corrupted: " + why);
      return;
    }
  }
  ++stats_.requests_matched;
}

void Scoreboard::target_response(int id, const ObservedResponse& pkt) {
  const int dest = pkt.cells.front().src;
  if (dest < 0 || dest >= cfg_.n_initiators) {
    fail(pkt.end_cycle(), "targ" + std::to_string(id),
         "response with illegal src " + std::to_string(dest));
    return;
  }
  rsp_fifo_[static_cast<std::size_t>(id)][static_cast<std::size_t>(dest)]
      .push_back(pkt);
}

void Scoreboard::initiator_response(int id, const ObservedResponse& pkt) {
  // Try the per-target in-flight FIFOs first.
  for (int t = 0; t < cfg_.n_targets; ++t) {
    auto& fifo =
        rsp_fifo_[static_cast<std::size_t>(t)][static_cast<std::size_t>(id)];
    if (fifo.empty()) continue;
    const ObservedResponse& front = fifo.front();
    if (front.cells.size() != pkt.cells.size()) continue;
    bool all_equal = true;
    std::string why;
    for (std::size_t c = 0; c < pkt.cells.size(); ++c) {
      if (!response_cells_equal(front.cells[c], pkt.cells[c], &why)) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      fifo.pop_front();
      ++stats_.responses_matched;
      return;
    }
  }
  // Then node-generated error responses.
  auto& errs = expected_errors_[static_cast<std::size_t>(id)];
  if (!errs.empty()) {
    const ExpectedError& e = errs.front();
    bool ok = static_cast<int>(pkt.cells.size()) == e.cells &&
              pkt.cells.front().tid == e.tid;
    for (const auto& c : pkt.cells) {
      if (c.opc != RspOpcode::kError || !c.data.is_zero()) ok = false;
    }
    if (ok) {
      errs.pop_front();
      ++stats_.error_responses_matched;
      return;
    }
  }
  // No source produced this packet: a partially matching candidate gives a
  // better diagnostic than "unmatched".
  for (int t = 0; t < cfg_.n_targets; ++t) {
    auto& fifo =
        rsp_fifo_[static_cast<std::size_t>(t)][static_cast<std::size_t>(id)];
    if (fifo.empty()) continue;
    const ObservedResponse& front = fifo.front();
    if (front.cells.front().tid == pkt.cells.front().tid &&
        front.cells.size() == pkt.cells.size()) {
      std::string why;
      for (std::size_t c = 0; c < pkt.cells.size(); ++c) {
        if (!response_cells_equal(front.cells[c], pkt.cells[c], &why)) break;
      }
      fail(pkt.end_cycle(), "init" + std::to_string(id),
           "response data corrupted through the node (from targ" +
               std::to_string(t) + "): " + why);
      fifo.pop_front();
      return;
    }
  }
  fail(pkt.end_cycle(), "init" + std::to_string(id),
       "response packet matches no target output (tid " +
           std::to_string(pkt.cells.front().tid) + ")");
}

void Scoreboard::end_of_test() {
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    for (int t = 0; t < cfg_.n_targets; ++t) {
      const auto n =
          req_fifo_[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)]
              .size();
      if (n != 0) {
        fail(0, "init" + std::to_string(i),
             std::to_string(n) + " request packets never reached targ" +
                 std::to_string(t));
      }
      const auto m =
          rsp_fifo_[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
              .size();
      if (m != 0) {
        fail(0, "targ" + std::to_string(t),
             std::to_string(m) + " response packets never reached init" +
                 std::to_string(i));
      }
    }
    if (!expected_errors_[static_cast<std::size_t>(i)].empty()) {
      fail(0, "init" + std::to_string(i),
           "node error responses missing for decode-error requests");
    }
  }
}

}  // namespace crve::verif
