#include "verif/toggle_coverage.h"

namespace crve::verif {

void ToggleCoverage::sample(std::uint64_t /*cycle*/,
                            const std::vector<sim::SignalBase*>& signals,
                            const std::vector<int>& changed) {
  if (!initialized_) {
    initialized_ = true;
    entries_.reserve(signals.size());
    for (const auto* s : signals) {
      Entry e;
      e.signal = s;
      e.prev = s->vcd_value();
      e.bits.resize(static_cast<std::size_t>(s->width()));
      entries_.push_back(std::move(e));
    }
    return;
  }
  for (const int idx : changed) {
    Entry& e = entries_[static_cast<std::size_t>(idx)];
    scratch_.clear();
    e.signal->append_vcd(scratch_);
    if (scratch_ == e.prev) continue;  // changed-and-reverted within a cycle
    // MSB-first strings; bit index irrelevant for the metric.
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      if (scratch_[i] == e.prev[i]) continue;
      if (scratch_[i] == '1') {
        e.bits[i].rose = true;
      } else {
        e.bits[i].fell = true;
      }
    }
    e.prev.assign(scratch_);
  }
}

ToggleCoverage::Report ToggleCoverage::report() const {
  Report r;
  for (const auto& e : entries_) {
    SignalReport sr;
    sr.name = e.signal->name();
    sr.bits = static_cast<int>(e.bits.size());
    for (const auto& b : e.bits) {
      sr.rose += b.rose ? 1 : 0;
      sr.fell += b.fell ? 1 : 0;
      sr.covered += (b.rose && b.fell) ? 1 : 0;
    }
    r.bits_total += sr.bits;
    r.bits_covered += sr.covered;
    r.signals.push_back(std::move(sr));
  }
  r.percent = r.bits_total > 0 ? 100.0 * r.bits_covered / r.bits_total : 0.0;
  return r;
}

std::vector<std::string> ToggleCoverage::stuck_signals() const {
  std::vector<std::string> out;
  for (const auto& sr : report().signals) {
    if (sr.covered < sr.bits) out.push_back(sr.name);
  }
  return out;
}

}  // namespace crve::verif
