// STBus interface protocol checker.
//
// One checker watches one port and enforces the protocol rule set of
// DESIGN.md §4 on the settled pin values of every cycle. It is entirely
// DUT-agnostic: the same instance checks the RTL view, the BCA view, or a
// wrapped model. Violations are collected, not thrown, so a run can report
// every failure it saw (the regression tool aggregates them per test).
//
// Rule identifiers:
//   HOLD_REQ   request payload must hold while req=1 and gnt=0
//   HOLD_RSP   response payload must hold while r_req=1 and r_gnt=0
//   ALIGN      packet address naturally aligned to the operation size
//   ADDR_SEQ   beat addresses increment by the bus width within a packet
//   OPC_STABLE opcode constant within a packet
//   BE         byte enables match opcode/address/beat
//   PKT_LEN    eop exactly on cell request_cells(opc) of the packet
//   LCK_MID    cells before eop must assert lck (allocation held)
//   SRC_STABLE src constant within a packet (and, at initiator ports,
//              equal to the configured port id)
//   TID_REUSE  initiator reused a tid that is still outstanding (Type3)
//   RSP_MATCH  response packet matches an outstanding request (src/tid/
//              cell count); in-order per source for Type2
//   RSP_SPUR   response with no outstanding request
//   RSP_OPC    illegal r_opc encoding
//   CHUNK_TGT  packet after a lck-terminated packet routes to a different
//              target (needs the address map)
//   STARVE     a request (or response) stayed ungranted for more than the
//              starvation limit of consecutive cycles
//   EOT        end-of-test: outstanding transactions or partial packets
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::verif {

struct Violation {
  std::uint64_t cycle = 0;
  std::string port;
  std::string rule;
  std::string message;
};

class ProtocolChecker {
 public:
  enum class Role { kInitiatorPort, kTargetPort };

  // `expected_src`: the port id an initiator port must drive (-1 = don't
  // check). `map` (optional) enables the chunk-target rule.
  ProtocolChecker(sim::Context& ctx, std::string name,
                  const stbus::PortPins& pins, stbus::ProtocolType type,
                  Role role, int expected_src = -1,
                  const stbus::NodeConfig* map = nullptr);

  // Final quiescence checks; call once after the run completes.
  void end_of_test();

  // Consecutive stalled cycles before STARVE fires (0 disables). The
  // default is generous: bandwidth-limited arbitration legitimately stalls
  // a requester for up to its refill window.
  void set_starvation_limit(int cycles) { starve_limit_ = cycles; }

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t violation_count() const { return count_; }
  bool clean() const { return count_ == 0; }

 private:
  struct Outstanding {
    stbus::Opcode opc{};
    std::uint8_t src = 0;
    std::uint8_t tid = 0;
    int rsp_cells = 0;
  };

  void sample();
  void check_request_fire(std::uint64_t cycle);
  void check_response_fire(std::uint64_t cycle);
  void report(std::uint64_t cycle, const std::string& rule,
              const std::string& message);

  std::string name_;
  sim::Context& ctx_;
  const stbus::PortPins& pins_;
  stbus::ProtocolType type_;
  Role role_;
  int expected_src_;
  const stbus::NodeConfig* map_;

  // Previous-cycle snapshot for the hold rules.
  bool prev_valid_ = false;
  bool prev_req_ = false, prev_gnt_ = false;
  stbus::RequestCell prev_req_cell_;
  bool prev_r_req_ = false, prev_r_gnt_ = false;
  stbus::ResponseCell prev_rsp_cell_;

  // Request packet assembly state.
  std::vector<stbus::RequestCell> req_pkt_;
  // Response packet assembly state.
  std::vector<stbus::ResponseCell> rsp_pkt_;

  // Outstanding requests, in issue order (per port).
  std::deque<Outstanding> outstanding_;
  // Chunk continuation: target the next packet must route to.
  std::optional<int> chunk_target_;

  // Starvation watchdog state.
  int starve_limit_ = 2000;
  int req_stalled_ = 0;
  int rsp_stalled_ = 0;
  bool req_starved_reported_ = false;
  bool rsp_starved_reported_ = false;

  std::vector<Violation> violations_;
  std::uint64_t count_ = 0;
  static constexpr std::size_t kMaxStored = 100;
};

}  // namespace crve::verif
