#include "verif/testbench.h"

#include <array>
#include <stdexcept>

#include "obs/metrics.h"
#include "verif/wrapper.h"

namespace crve::verif {

std::string to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kRtl:
      return "RTL";
    case ModelKind::kBca:
      return "BCA";
    case ModelKind::kBcaWrapped:
      return "BCA-wrapped";
  }
  return "?";
}

namespace {

// Coverage tap: forwards initiator-port packets into the coverage model.
class CoverageTap : public MonitorListener {
 public:
  CoverageTap(StbusCoverage& cov, int initiator)
      : cov_(cov), initiator_(initiator) {}
  void on_request_packet(const ObservedRequest& pkt) override {
    cov_.sample_request(initiator_, pkt);
  }
  void on_response_packet(const ObservedResponse& pkt) override {
    cov_.sample_response(initiator_, pkt);
  }

 private:
  StbusCoverage& cov_;
  int initiator_;
};

// Transaction-tracer taps (DESIGN.md §16). The initiator-side tap converts
// observed packets into grant/response lifecycle events; the target-side
// tap enriches open spans with service timing. Both forward plain integers
// and mnemonics so obs stays free of stbus types.
class TxnInitTap : public MonitorListener {
 public:
  TxnInitTap(obs::TxnTracer& tr, std::string port)
      : tracer_(tr), port_(std::move(port)) {}
  void on_request_packet(const ObservedRequest& pkt) override {
    const stbus::RequestCell& c = pkt.cells.front();
    tracer_.on_request(port_, c.src, c.tid, pkt.start_cycle(),
                       pkt.end_cycle());
  }
  void on_response_packet(const ObservedResponse& pkt) override {
    const stbus::ResponseCell& c = pkt.cells.front();
    bool ok = true;
    for (const auto& cell : pkt.cells) {
      ok = ok && cell.opc == stbus::RspOpcode::kOk;
    }
    tracer_.on_response(port_, c.src, c.tid, pkt.start_cycle(),
                        pkt.end_cycle(), ok);
  }

 private:
  obs::TxnTracer& tracer_;
  std::string port_;
};

class TxnTargTap : public MonitorListener {
 public:
  TxnTargTap(obs::TxnTracer& tr, std::string target)
      : tracer_(tr), target_(std::move(target)) {}
  void on_request_packet(const ObservedRequest& pkt) override {
    const stbus::RequestCell& c = pkt.cells.front();
    tracer_.on_target_request(target_, c.src, c.tid, c.add, pkt.end_cycle());
  }
  void on_response_packet(const ObservedResponse& pkt) override {
    const stbus::ResponseCell& c = pkt.cells.front();
    tracer_.on_target_response(target_, c.src, c.tid, pkt.start_cycle());
  }

 private:
  obs::TxnTracer& tracer_;
  std::string target_;
};

TargetProfile default_target_profile(const stbus::NodeConfig&, int t) {
  TargetProfile p;
  // Staggered speeds: the mix of fast and slow targets the paper's
  // out-of-order test relies on.
  p.fixed_latency = 1 + (t % 3) * 2;
  return p;
}

}  // namespace

std::string Testbench::initiator_port_name(int i) {
  return "tb.init" + std::to_string(i);
}

std::string Testbench::target_port_name(int t) {
  return "tb.targ" + std::to_string(t);
}

std::vector<std::string> Testbench::port_signal_names(
    const std::string& port) {
  static const char* kFields[] = {"req",  "gnt",   "opc",   "add",  "data",
                                  "be",   "eop",   "lck",   "src",  "tid",
                                  "r_req", "r_gnt", "r_opc", "r_data",
                                  "r_eop", "r_src", "r_tid"};
  std::vector<std::string> names;
  for (const char* f : kFields) names.push_back(port + "." + f);
  return names;
}

Testbench::Testbench(stbus::NodeConfig cfg, const TestSpec& spec,
                     TestbenchOptions opts)
    : cfg_(std::move(cfg)), opts_(std::move(opts)) {
  ctx_.set_kernel(opts_.kernel);
  if (opts_.profile) ctx_.set_profiling(true);
  if (spec.adjust) spec.adjust(cfg_);
  if (spec.prog) cfg_.programming_port = true;
  cfg_.validate_and_normalize();

  // --- environment-side pins ----------------------------------------------
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    ipins_.push_back(std::make_unique<stbus::PortPins>(
        ctx_, initiator_port_name(i), cfg_));
  }
  for (int t = 0; t < cfg_.n_targets; ++t) {
    tpins_.push_back(std::make_unique<stbus::PortPins>(
        ctx_, target_port_name(t), cfg_));
  }
  if (cfg_.programming_port) {
    prog_pins_ = std::make_unique<stbus::PortPins>(ctx_, "tb.prog", 4,
                                                   cfg_.address_bits,
                                                   cfg_.src_bits,
                                                   cfg_.tid_bits);
  }

  // --- DUT ------------------------------------------------------------
  std::vector<stbus::PortPins*> node_iports;
  std::vector<stbus::PortPins*> node_tports;
  if (opts_.model == ModelKind::kBcaWrapped) {
    // The paper's VHDL-wrapper plumbing: DUT-side bundles behind relays.
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      dut_ipins_.push_back(std::make_unique<stbus::PortPins>(
          ctx_, "dutwrap.init" + std::to_string(i), cfg_));
      make_port_wrapper(ctx_, "wrap.init" + std::to_string(i),
                        *ipins_[static_cast<std::size_t>(i)],
                        *dut_ipins_.back(), /*dut_receives_requests=*/true);
      node_iports.push_back(dut_ipins_.back().get());
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      dut_tpins_.push_back(std::make_unique<stbus::PortPins>(
          ctx_, "dutwrap.targ" + std::to_string(t), cfg_));
      make_port_wrapper(ctx_, "wrap.targ" + std::to_string(t),
                        *tpins_[static_cast<std::size_t>(t)],
                        *dut_tpins_.back(), /*dut_receives_requests=*/false);
      node_tports.push_back(dut_tpins_.back().get());
    }
  } else {
    for (auto& p : ipins_) node_iports.push_back(p.get());
    for (auto& p : tpins_) node_tports.push_back(p.get());
  }

  switch (opts_.model) {
    case ModelKind::kRtl:
      rtl_node_ = std::make_unique<rtl::Node>(ctx_, cfg_, node_iports,
                                              node_tports, prog_pins_.get());
      break;
    case ModelKind::kBca:
    case ModelKind::kBcaWrapped:
      bca_node_ = std::make_unique<bca::Node>(ctx_, cfg_, node_iports,
                                              node_tports, prog_pins_.get(),
                                              opts_.faults,
                                              opts_.bca_memoization);
      break;
  }

  // --- BFMs --------------------------------------------------------------
  Rng master(opts_.seed);
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    InitiatorProfile prof =
        spec.profile ? spec.profile(cfg_, i) : InitiatorProfile{};
    prof.n_transactions = spec.n_transactions;
    prof.keep_history = prof.keep_history || opts_.keep_history;
    std::vector<stbus::Request> directed;
    if (spec.directed) {
      directed = spec.directed(cfg_, i);
      // A directed test drives only the sequences it specifies; ports with
      // an empty sequence stay silent.
      if (directed.empty()) prof.n_transactions = 0;
    }
    if (!directed.empty()) {
      bfms_.push_back(std::make_unique<InitiatorBfm>(
          ctx_, "init" + std::to_string(i),
          *ipins_[static_cast<std::size_t>(i)], cfg_.type, i, cfg_, prof,
          master.fork(), std::move(directed)));
    } else {
      bfms_.push_back(std::make_unique<InitiatorBfm>(
          ctx_, "init" + std::to_string(i),
          *ipins_[static_cast<std::size_t>(i)], cfg_.type, i, cfg_, prof,
          master.fork()));
    }
  }
  std::vector<std::uint64_t> mem_patterns;
  bool targets_inject_errors = false;
  for (int t = 0; t < cfg_.n_targets; ++t) {
    const TargetProfile prof = spec.target ? spec.target(cfg_, t)
                                           : default_target_profile(cfg_, t);
    mem_patterns.push_back(prof.mem_pattern);
    targets_inject_errors |= prof.error_permille > 0;
    targets_.push_back(std::make_unique<TargetBfm>(
        ctx_, "targ" + std::to_string(t),
        *tpins_[static_cast<std::size_t>(t)], cfg_.type, prof,
        master.fork()));
  }
  if (spec.prog) {
    prog_bfm_ = std::make_unique<ProgInitiator>(ctx_, "prog", *prog_pins_,
                                                spec.prog(cfg_));
  }

  // --- monitors, checkers, scoreboard, coverage ---------------------------
  if (!opts_.enable_monitors &&
      (opts_.enable_scoreboard || opts_.enable_coverage)) {
    throw std::invalid_argument(
        "TestbenchOptions: scoreboard/coverage require monitors");
  }
  if (opts_.enable_monitors) {
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      imons_.push_back(std::make_unique<Monitor>(
          ctx_, "init" + std::to_string(i),
          *ipins_[static_cast<std::size_t>(i)]));
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      tmons_.push_back(std::make_unique<Monitor>(
          ctx_, "targ" + std::to_string(t),
          *tpins_[static_cast<std::size_t>(t)]));
    }
  }
  if (opts_.enable_checkers) {
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      checkers_.push_back(std::make_unique<ProtocolChecker>(
          ctx_, "init" + std::to_string(i),
          *ipins_[static_cast<std::size_t>(i)], cfg_.type,
          ProtocolChecker::Role::kInitiatorPort, i, &cfg_));
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      checkers_.push_back(std::make_unique<ProtocolChecker>(
          ctx_, "targ" + std::to_string(t),
          *tpins_[static_cast<std::size_t>(t)], cfg_.type,
          ProtocolChecker::Role::kTargetPort, -1, &cfg_));
    }
    if (prog_pins_) {
      prog_checker_ =
          std::make_unique<Type1Checker>(ctx_, "prog", *prog_pins_);
    }
  }
  if (opts_.enable_scoreboard) {
    scoreboard_ = std::make_unique<Scoreboard>(cfg_);
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      scoreboard_->attach_initiator(*imons_[static_cast<std::size_t>(i)], i);
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      scoreboard_->attach_target(*tmons_[static_cast<std::size_t>(t)], t);
    }
  }
  if (opts_.enable_reference_model && opts_.enable_monitors &&
      !targets_inject_errors) {
    reference_ = std::make_unique<ReferenceModel>(cfg_, mem_patterns);
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      reference_->attach_initiator(*imons_[static_cast<std::size_t>(i)], i);
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      reference_->attach_target(*tmons_[static_cast<std::size_t>(t)], t);
    }
  }
  if (opts_.enable_coverage) {
    coverage_ = std::make_unique<StbusCoverage>(cfg_);
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      cov_taps_.push_back(std::make_unique<CoverageTap>(*coverage_, i));
      imons_[static_cast<std::size_t>(i)]->subscribe(cov_taps_.back().get());
    }
  }
  if (opts_.txn_trace) {
    if (!opts_.enable_monitors) {
      throw std::invalid_argument(
          "TestbenchOptions: txn_trace requires monitors");
    }
    txn_tracer_ = std::make_unique<obs::TxnTracer>();
    obs::TxnTracer* tr = txn_tracer_.get();
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      const std::string port = "init" + std::to_string(i);
      bfms_[static_cast<std::size_t>(i)]->set_issue_hook(
          [tr, port](const stbus::Request& r, std::uint64_t cycle) {
            tr->on_issue(port, r.src, r.tid, cycle, stbus::to_string(r.opc),
                         r.add);
          });
      txn_taps_.push_back(std::make_unique<TxnInitTap>(*txn_tracer_, port));
      imons_[static_cast<std::size_t>(i)]->subscribe(txn_taps_.back().get());
    }
    for (int t = 0; t < cfg_.n_targets; ++t) {
      txn_taps_.push_back(std::make_unique<TxnTargTap>(
          *txn_tracer_, "targ" + std::to_string(t)));
      tmons_[static_cast<std::size_t>(t)]->subscribe(txn_taps_.back().get());
    }
  }
  if (opts_.enable_toggle_coverage) {
    toggle_ = std::make_unique<ToggleCoverage>();
    ctx_.attach_tracer(toggle_.get());
  }
  if (!opts_.vcd_path.empty()) {
    vcd_ = std::make_unique<vcd::Writer>(opts_.vcd_path);
    ctx_.attach_tracer(vcd_.get());
  } else if (opts_.vcd_stream != nullptr) {
    vcd_ = std::make_unique<vcd::Writer>(*opts_.vcd_stream);
    ctx_.attach_tracer(vcd_.get());
  }
}

Testbench::~Testbench() = default;

bool Testbench::traffic_drained() const {
  for (const auto& b : bfms_) {
    if (!b->done()) return false;
  }
  for (const auto& t : targets_) {
    if (!t->idle()) return false;
  }
  if (prog_bfm_ && !prog_bfm_->done()) return false;
  return true;
}

RunResult Testbench::run() {
  RunResult res;
  ctx_.initialize();
  while (ctx_.cycle() < opts_.max_cycles) {
    ctx_.step();
    if (traffic_drained()) {
      res.completed = true;
      // A few drain cycles so monitors flush final packets.
      ctx_.step(4);
      break;
    }
  }
  for (auto& c : checkers_) c->end_of_test();
  if (scoreboard_) scoreboard_->end_of_test();
  if (reference_) reference_->end_of_test();
  if (vcd_) vcd_->finish();

  res.cycles = ctx_.cycle();
  res.evaluations = ctx_.evaluations();
  for (auto& c : checkers_) {
    res.checker_violations += c->violation_count();
    for (const auto& v : c->violations()) {
      if (res.violations.size() < 100) res.violations.push_back(v);
    }
  }
  if (prog_checker_) {
    res.checker_violations += prog_checker_->violation_count();
    for (const auto& v : prog_checker_->violations()) {
      if (res.violations.size() < 100) res.violations.push_back(v);
    }
  }
  if (scoreboard_) {
    res.scoreboard_errors = scoreboard_->error_count();
    res.sb_errors = scoreboard_->errors();
  }
  if (reference_) {
    res.reference_mismatches = reference_->error_count();
    res.ref_errors = reference_->errors();
  }
  if (coverage_) {
    res.coverage_percent = coverage_->percent();
    res.coverage_digest = coverage_->digest();
  }
  if (toggle_) res.toggle_percent = toggle_->percent();
  auto add_util = [&res](const Monitor& m) {
    res.utilisation.push_back({m.name(), m.stats().busy_cycles,
                               m.stats().request_packets,
                               m.stats().response_packets});
  };
  for (const auto& m : imons_) add_util(*m);
  for (const auto& m : tmons_) add_util(*m);
  if (opts_.profile) res.profile = ctx_.profile();
  if (txn_tracer_) {
    res.txn = txn_tracer_->finish();
    if (obs::metrics_enabled()) {
      obs::counter("txn.spans").add(res.txn.total_spans());
      for (const auto& p : res.txn.ports) {
        obs::counter("txn.incomplete").add(p.incomplete);
        obs::gauge("txn.max_in_flight").observe_max(p.max_in_flight);
      }
      // Exact per-span values (the port histograms are already binned).
      for (const auto& s : res.txn.spans) {
        if (s.complete()) {
          obs::histogram("txn.total_cycles").observe(s.total());
          obs::histogram("txn.queue_wait_cycles").observe(s.queue_wait());
        }
      }
    }
  }
  ctx_.publish_metrics();
  if (obs::metrics_enabled()) {
    obs::counter("verif.runs").inc();
    if (res.completed) obs::counter("verif.runs_completed").inc();
    obs::counter("verif.checker_violations").add(res.checker_violations);
    obs::counter("verif.scoreboard_errors").add(res.scoreboard_errors);
    obs::counter("verif.reference_mismatches").add(res.reference_mismatches);
    // Traffic mix from the initiator-side monitors only (target-side
    // monitors see the same packets again after arbitration).
    std::uint64_t req_pkts = 0;
    std::uint64_t rsp_pkts = 0;
    std::array<std::uint64_t, stbus::kNumOpcodes> opc{};
    for (const auto& m : imons_) {
      req_pkts += m->stats().request_packets;
      rsp_pkts += m->stats().response_packets;
      for (int o = 0; o < stbus::kNumOpcodes; ++o) {
        opc[static_cast<std::size_t>(o)] +=
            m->stats().request_opcode_cells[static_cast<std::size_t>(o)];
      }
    }
    obs::counter("verif.request_packets").add(req_pkts);
    obs::counter("verif.response_packets").add(rsp_pkts);
    for (int o = 0; o < stbus::kNumOpcodes; ++o) {
      const std::uint64_t n = opc[static_cast<std::size_t>(o)];
      if (n != 0) {
        obs::counter("verif.opc." +
                     stbus::to_string(static_cast<stbus::Opcode>(o)))
            .add(n);
      }
    }
    obs::histogram("verif.request_packets_per_run").observe(req_pkts);
  }
  return res;
}

}  // namespace crve::verif
