#include "verif/tests.h"

#include <stdexcept>

namespace crve::verif {

using stbus::AddressRange;
using stbus::ArbPolicy;
using stbus::NodeConfig;
using stbus::Opcode;
using stbus::ProtocolType;
using stbus::Request;

namespace {

// First address-map range owned by a target.
AddressRange range_of_target(const NodeConfig& cfg, int t) {
  for (const auto& r : cfg.address_map) {
    if (r.target == t) return r;
  }
  throw std::invalid_argument("no address range for target " +
                              std::to_string(t));
}

// A 64-aligned window inside a target's range (concentrated traffic makes
// address collisions — and therefore ordering behaviour — more likely).
AddressRange window_of_target(const NodeConfig& cfg, int t,
                              std::uint32_t span = 0x1000) {
  AddressRange r = range_of_target(cfg, t);
  r.size = std::min(r.size, span);
  return r;
}

std::vector<AddressRange> all_windows(const NodeConfig& cfg) {
  std::vector<AddressRange> w;
  for (int t = 0; t < cfg.n_targets; ++t) {
    w.push_back(window_of_target(cfg, t));
  }
  return w;
}

// Only the opcodes listed get the given weight; everything else zero.
std::vector<std::uint32_t> weights_of(
    std::initializer_list<std::pair<Opcode, std::uint32_t>> list) {
  std::vector<std::uint32_t> w(stbus::kNumOpcodes, 0);
  for (auto [opc, weight] : list) {
    w[static_cast<std::size_t>(opc)] = weight;
  }
  return w;
}

// Directed write-then-read sequence into an initiator-private region.
std::vector<Request> write_read_sequence(const NodeConfig& cfg, int init,
                                         int pairs) {
  const int t = init % cfg.n_targets;
  const AddressRange r = range_of_target(cfg, t);
  // Private 1KiB block per initiator to keep read-back values predictable.
  const std::uint32_t base =
      r.base + static_cast<std::uint32_t>(init) * 0x400 % std::max(r.size, 1u);
  std::vector<Request> seq;
  for (int k = 0; k < pairs; ++k) {
    Request st;
    st.opc = Opcode::kSt4;
    st.add = base + static_cast<std::uint32_t>(k) * 4;
    st.wdata = {static_cast<std::uint8_t>(k), static_cast<std::uint8_t>(init),
                0xa5, static_cast<std::uint8_t>(k ^ init)};
    seq.push_back(st);
  }
  for (int k = 0; k < pairs; ++k) {
    Request ld;
    ld.opc = Opcode::kLd4;
    ld.add = base + static_cast<std::uint32_t>(k) * 4;
    seq.push_back(ld);
  }
  return seq;
}

}  // namespace

TestSpec t01_basic_write_read() {
  TestSpec s;
  s.name = "t01_basic_write_read";
  s.description = "directed write-then-read smoke test, private regions";
  s.n_transactions = 32;
  s.profile = [](const NodeConfig&, int) {
    InitiatorProfile p;
    p.max_outstanding = 1;
    return p;
  };
  s.directed = [](const NodeConfig& cfg, int i) {
    return write_read_sequence(cfg, i, 16);
  };
  return s;
}

TestSpec t02_random_all_opcodes() {
  TestSpec s;
  s.name = "t02_random_all_opcodes";
  s.description = "flat random mix over the full opcode set";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.chunk_permille = 50;
    p.idle_permille = 250;
    return p;
  };
  return s;
}

TestSpec t03_out_of_order() {
  TestSpec s;
  s.name = "t03_out_of_order";
  s.description = "short loads to targets of different speeds (Type3 OOO)";
  s.adjust = [](NodeConfig& cfg) { cfg.type = ProtocolType::kType3; };
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.opcode_weights = weights_of({{Opcode::kLd1, 1},
                                   {Opcode::kLd2, 2},
                                   {Opcode::kLd4, 4},
                                   {Opcode::kSt4, 2}});
    p.max_size_bytes = cfg.bus_bytes;
    p.idle_permille = 0;
    p.max_outstanding = 8;
    return p;
  };
  s.target = [](const NodeConfig&, int t) {
    TargetProfile p;
    p.fixed_latency = 1 + 4 * t;  // fast vs slow targets
    return p;
  };
  return s;
}

TestSpec t04_latency_arbitration() {
  TestSpec s;
  s.name = "t04_latency_arbitration";
  s.description = "latency-based arbitration under full contention";
  s.adjust = [](NodeConfig& cfg) {
    cfg.arb = ArbPolicy::kLatencyBased;
    cfg.latency_deadline.clear();
    for (int i = 0; i < cfg.n_initiators; ++i) {
      cfg.latency_deadline.push_back(4 + 6 * i);
    }
  };
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = {window_of_target(cfg, 0)};
    p.opcode_weights = weights_of({{Opcode::kLd4, 1}, {Opcode::kSt4, 1}});
    p.idle_permille = 0;
    p.max_outstanding = 2;
    return p;
  };
  s.target = [](const NodeConfig&, int) {
    TargetProfile p;
    p.fixed_latency = 1;
    return p;
  };
  return s;
}

TestSpec t05_chunked_traffic() {
  TestSpec s;
  s.name = "t05_chunked_traffic";
  s.description = "heavy lck chunking keeps slave allocation";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.chunk_permille = 600;
    p.max_chunk_packets = 4;
    p.max_size_bytes = cfg.bus_bytes * 2;
    p.idle_permille = 100;
    return p;
  };
  return s;
}

TestSpec t06_size_sweep() {
  TestSpec s;
  s.name = "t06_size_sweep";
  s.description = "all operation sizes including multi-cell packets";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.idle_permille = 150;
    p.max_outstanding = 2;
    return p;
  };
  return s;
}

TestSpec t07_target_contention() {
  TestSpec s;
  s.name = "t07_target_contention";
  s.description = "every initiator hammers target 0";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = {window_of_target(cfg, 0)};
    p.idle_permille = 0;
    return p;
  };
  return s;
}

TestSpec t08_programmable_priority() {
  TestSpec s;
  s.name = "t08_programmable_priority";
  s.description = "priorities rewritten mid-run through the prog port";
  s.adjust = [](NodeConfig& cfg) { cfg.arb = ArbPolicy::kProgrammable; };
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = {window_of_target(cfg, 0)};
    p.opcode_weights = weights_of({{Opcode::kLd4, 1}, {Opcode::kSt4, 1}});
    p.idle_permille = 0;
    return p;
  };
  s.prog = [](const NodeConfig& cfg) {
    std::vector<ProgOp> ops;
    ops.push_back({50, true, 0, 100});   // boost initiator 0
    ops.push_back({120, false, 0, 0});   // read back
    const int last = cfg.n_initiators - 1;
    ops.push_back({200, true, last, 200});  // boost the last initiator
    ops.push_back({260, false, last, 0});
    for (int i = 0; i < cfg.n_initiators; ++i) {
      ops.push_back({320 + static_cast<std::uint64_t>(i) * 8, true, i, 5});
    }
    return ops;
  };
  return s;
}

TestSpec t09_backpressure() {
  TestSpec s;
  s.name = "t09_backpressure";
  s.description = "wait states at targets, response stalls at initiators";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.rsp_stall_permille = 300;
    p.idle_permille = 0;
    return p;
  };
  s.target = [](const NodeConfig&, int t) {
    TargetProfile p;
    p.fixed_latency = 1 + (t % 2);
    p.gnt_stall_permille = 300;
    return p;
  };
  return s;
}

TestSpec t10_decode_errors() {
  TestSpec s;
  s.name = "t10_decode_errors";
  s.description = "part of the traffic aims at unmapped addresses";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.decode_error_permille = 250;
    p.error_window = AddressRange{0xF0000000u, 0x10000u, 0};
    p.idle_permille = 100;
    return p;
  };
  return s;
}

TestSpec t11_bandwidth_limits() {
  TestSpec s;
  s.name = "t11_bandwidth_limits";
  s.description = "bandwidth-limited policy with a tight quota on init 0";
  s.adjust = [](NodeConfig& cfg) {
    cfg.arb = ArbPolicy::kBandwidthLimited;
    cfg.bandwidth_quota.assign(static_cast<std::size_t>(cfg.n_initiators), 0);
    cfg.bandwidth_quota[0] = 8;  // at most 8 grants per window
    cfg.bandwidth_window = 64;
  };
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = {window_of_target(cfg, 0)};
    p.opcode_weights = weights_of({{Opcode::kLd4, 1}, {Opcode::kSt4, 1}});
    p.idle_permille = 0;
    return p;
  };
  return s;
}

TestSpec t12_locked_atomics() {
  TestSpec s;
  s.name = "t12_locked_atomics";
  s.description = "read-modify-write and swap mix with chunking";
  s.profile = [](const NodeConfig& cfg, int) {
    InitiatorProfile p;
    p.windows = all_windows(cfg);
    p.opcode_weights = weights_of({{Opcode::kRmw4, 4},
                                   {Opcode::kSwap4, 4},
                                   {Opcode::kLd4, 1},
                                   {Opcode::kSt4, 1}});
    p.chunk_permille = 300;
    p.idle_permille = 100;
    return p;
  };
  return s;
}

std::vector<TestSpec> catg_test_suite() {
  return {t01_basic_write_read(),     t02_random_all_opcodes(),
          t03_out_of_order(),         t04_latency_arbitration(),
          t05_chunked_traffic(),      t06_size_sweep(),
          t07_target_contention(),    t08_programmable_priority(),
          t09_backpressure(),         t10_decode_errors(),
          t11_bandwidth_limits(),     t12_locked_atomics()};
}

TestSpec old_flow_write_read() {
  // The paper's pre-CATG testbench: "a very basic model of harnesses
  // written in SystemC and doing write then read operations towards a
  // memory model" — a single master, no concurrency, no corner cases.
  TestSpec s = t01_basic_write_read();
  s.name = "old_flow_write_read";
  s.description =
      "pre-CATG harness: one master, directed write-then-read, data "
      "self-check only";
  s.directed = [](const NodeConfig& cfg, int i) {
    return i == 0 ? write_read_sequence(cfg, 0, 16)
                  : std::vector<Request>{};
  };
  return s;
}

}  // namespace crve::verif
