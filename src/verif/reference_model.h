// Reference-model checker: replays observed traffic through the untimed
// TLM view and compares end-to-end data semantics.
//
// Where the scoreboard checks *transport* (cells leave the node as they
// entered it), the reference model checks *meaning*: every load must return
// exactly what the TLM functional model predicts given the store stream
// that actually reached each target. It therefore also cross-checks the
// target BFMs themselves — the three views (TLM, BCA, RTL) are held to one
// specification, which is the paper's future-work flow realised.
//
// Replay points:
//   * target-port request packets (their arrival order IS the memory apply
//     order) feed tlm::Node::apply_at and produce predicted completions;
//   * initiator-port request packets that decode to no target produce
//     predicted ERROR completions;
//   * initiator-port response packets are matched against predictions —
//     Type3 by (initiator, tid), Type2 by arrival order filtered on
//     (opcode, address) — and their data compared byte for byte.
//
// Constraint: target BFMs must not inject random errors (error_permille
// == 0); the reference model cannot predict those.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "stbus/config.h"
#include "tlm/model.h"
#include "verif/monitor.h"

namespace crve::verif {

struct ReferenceError {
  std::uint64_t cycle = 0;
  std::string where;
  std::string message;
};

class ReferenceModel {
 public:
  // `mem_patterns`: one fill-pattern seed per target (matching the target
  // BFMs' TargetProfile::mem_pattern).
  ReferenceModel(const stbus::NodeConfig& cfg,
                 std::vector<std::uint64_t> mem_patterns);
  ~ReferenceModel();

  ReferenceModel(const ReferenceModel&) = delete;
  ReferenceModel& operator=(const ReferenceModel&) = delete;

  void attach_initiator(Monitor& mon, int id);
  void attach_target(Monitor& mon, int id);

  void end_of_test();

  const std::vector<ReferenceError>& errors() const { return errors_; }
  std::uint64_t error_count() const { return count_; }
  bool clean() const { return count_ == 0; }

  struct Stats {
    std::uint64_t completions_checked = 0;
    std::uint64_t loads_verified = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class ReferenceTap;

  struct Prediction {
    stbus::Opcode opc{};
    std::uint32_t add = 0;
    std::uint8_t tid = 0;
    stbus::RspOpcode status = stbus::RspOpcode::kOk;
    std::vector<std::uint8_t> rdata;
  };

  void initiator_request(int id, const ObservedRequest& pkt);
  void initiator_response(int id, const ObservedResponse& pkt);
  void target_request(int id, const ObservedRequest& pkt);

  void fail(std::uint64_t cycle, const std::string& where,
            const std::string& message);

  stbus::NodeConfig cfg_;
  tlm::Node model_;
  // Outstanding predictions per initiator, in target-arrival order.
  std::vector<std::deque<Prediction>> pending_;
  std::vector<std::unique_ptr<MonitorListener>> taps_;
  std::vector<ReferenceError> errors_;
  std::uint64_t count_ = 0;
  Stats stats_;
  static constexpr std::size_t kMaxStored = 100;
};

}  // namespace crve::verif
