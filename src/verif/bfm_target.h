// Target BFM: a latency-programmable memory model.
//
// Accepts request packets (with optional per-cycle wait states), applies
// stores to a sparse byte memory honouring byte enables, and produces
// response packets after a configurable latency. Memory reads of untouched
// locations return a deterministic address-hash pattern, so load data is
// reproducible without pre-initialization. Responses leave one target in
// arrival order; out-of-order traffic at an initiator arises from targets
// of different speeds — exactly how the paper's test case forces it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/packet.h"
#include "stbus/pins.h"

namespace crve::verif {

struct TargetProfile {
  // Cycles between absorbing a request packet and offering the response.
  int fixed_latency = 2;
  // Extra random latency drawn uniformly in [0, extra_latency_max].
  std::uint32_t extra_latency_max = 0;
  // Per-mille chance of a wait state (gnt low) each cycle.
  std::uint32_t gnt_stall_permille = 0;
  // Per-mille chance a packet is answered with ERROR (memory untouched).
  std::uint32_t error_permille = 0;
  // Seed for the default memory fill pattern.
  std::uint64_t mem_pattern = 0x5a5a;
};

class TargetBfm {
 public:
  TargetBfm(sim::Context& ctx, std::string name, stbus::PortPins& pins,
            stbus::ProtocolType type, TargetProfile profile, Rng rng);

  // Direct memory access for tests.
  std::uint8_t peek(std::uint32_t addr) const;
  void poke(std::uint32_t addr, std::uint8_t value);

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t error_packets = 0;
    std::uint64_t illegal_packets = 0;  // geometrically malformed requests
  };
  const Stats& stats() const { return stats_; }

  // True when no response is pending or in flight.
  bool idle() const { return pending_.empty() && rsp_cells_.empty(); }

 private:
  struct Pending {
    std::vector<stbus::ResponseCell> cells;
    std::uint64_t ready_cycle = 0;
  };

  void step();
  void process_packet();

  std::string name_;
  sim::Context& ctx_;
  stbus::PortPins& pins_;
  stbus::ProtocolType type_;
  TargetProfile prof_;
  Rng rng_;

  std::unordered_map<std::uint32_t, std::uint8_t> mem_;
  std::vector<stbus::RequestCell> req_cells_;
  std::deque<Pending> pending_;
  std::deque<stbus::ResponseCell> rsp_cells_;  // packet being driven
  Stats stats_;
};

}  // namespace crve::verif
