#include "verif/prog_initiator.h"

#include "stbus/opcode.h"

namespace crve::verif {

ProgInitiator::ProgInitiator(sim::Context& ctx, std::string name,
                             stbus::PortPins& pins,
                             std::vector<ProgOp> schedule)
    : name_(std::move(name)),
      ctx_(ctx),
      pins_(pins),
      schedule_(std::move(schedule)) {
  // Design-lint declaration: the request payload is driven only while an
  // operation is scheduled, and the ack path reads gnt/r_data/r_opc only
  // while busy — both invisible to a single recorded evaluation.
  sim::ClockedOpts decl;
  decl.reads = {&pins.gnt, &pins.r_data, &pins.r_opc};
  decl.writes = pins.request_signals();
  decl.writes.push_back(&pins.r_gnt);
  ctx.add_clocked("prog." + name_, [this] { step(); }, std::move(decl));
}

void ProgInitiator::step() {
  const std::uint64_t prev_cycle = ctx_.cycle() - 1;

  if (busy_ && pins_.gnt.read()) {
    // Type1 ack observed: the access completed last cycle.
    ProgResult r;
    r.op = schedule_[next_];
    r.read_value =
        static_cast<std::uint32_t>(pins_.r_data.read().to_u64() & 0xffffffffu);
    r.error = static_cast<stbus::RspOpcode>(pins_.r_opc.read()) ==
              stbus::RspOpcode::kError;
    r.done_cycle = prev_cycle;
    results_.push_back(r);
    busy_ = false;
    ++next_;
    pins_.idle_request();
    return;
  }

  if (!busy_ && next_ < schedule_.size() &&
      ctx_.cycle() >= schedule_[next_].at_cycle) {
    busy_ = true;
  }

  if (busy_) {
    const ProgOp& op = schedule_[next_];
    stbus::RequestCell cell;
    cell.opc = op.write ? stbus::Opcode::kSt4 : stbus::Opcode::kLd4;
    cell.add = static_cast<std::uint32_t>(op.index) * 4;
    cell.data = crve::Bits(pins_.bus_bytes * 8, op.value);
    cell.be = crve::Bits::all_ones(pins_.bus_bytes);
    cell.eop = true;
    pins_.drive_request(cell);
  } else {
    pins_.idle_request();
  }
  pins_.r_gnt.write(true);
}

}  // namespace crve::verif
