#include "verif/reference_model.h"

#include <algorithm>
#include <stdexcept>

#include "stbus/packet.h"

namespace crve::verif {

using stbus::Opcode;
using stbus::Request;
using stbus::RspOpcode;

class ReferenceTap : public MonitorListener {
 public:
  ReferenceTap(ReferenceModel& rm, int id, bool initiator)
      : rm_(rm), id_(id), initiator_(initiator) {}
  void on_request_packet(const ObservedRequest& pkt) override {
    if (initiator_) {
      rm_.initiator_request(id_, pkt);
    } else {
      rm_.target_request(id_, pkt);
    }
  }
  void on_response_packet(const ObservedResponse& pkt) override {
    if (initiator_) rm_.initiator_response(id_, pkt);
  }

 private:
  ReferenceModel& rm_;
  int id_;
  bool initiator_;
};

ReferenceModel::ReferenceModel(const stbus::NodeConfig& cfg,
                               std::vector<std::uint64_t> mem_patterns)
    : cfg_(cfg), model_([&] {
        auto c = cfg;
        c.validate_and_normalize();
        return c;
      }()) {
  cfg_.validate_and_normalize();
  if (static_cast<int>(mem_patterns.size()) != cfg_.n_targets) {
    throw std::invalid_argument("ReferenceModel: one pattern per target");
  }
  pending_.resize(static_cast<std::size_t>(cfg_.n_initiators));
  // Rebuild the model's memories with the targets' fill patterns.
  for (int t = 0; t < cfg_.n_targets; ++t) {
    model_.memory(t) =
        tlm::Memory(mem_patterns[static_cast<std::size_t>(t)]);
  }
}

ReferenceModel::~ReferenceModel() = default;

void ReferenceModel::attach_initiator(Monitor& mon, int id) {
  taps_.push_back(std::make_unique<ReferenceTap>(*this, id, true));
  mon.subscribe(taps_.back().get());
}

void ReferenceModel::attach_target(Monitor& mon, int id) {
  taps_.push_back(std::make_unique<ReferenceTap>(*this, id, false));
  mon.subscribe(taps_.back().get());
}

void ReferenceModel::fail(std::uint64_t cycle, const std::string& where,
                          const std::string& message) {
  ++count_;
  if (errors_.size() < kMaxStored) errors_.push_back({cycle, where, message});
}

namespace {

// Reassembles the logical Request from an observed packet.
Request to_request(const ObservedRequest& pkt, int bus_bytes) {
  const auto& head = pkt.cells.front();
  Request req;
  req.opc = head.opc;
  req.add = head.add;
  req.src = head.src;
  req.tid = head.tid;
  if (stbus::is_store(req.opc) || stbus::is_atomic(req.opc)) {
    req.wdata =
        stbus::extract_request_data(req.opc, req.add, pkt.cells, bus_bytes);
  }
  return req;
}

}  // namespace

void ReferenceModel::initiator_request(int id, const ObservedRequest& pkt) {
  const auto& head = pkt.cells.front();
  if (cfg_.route(head.add) >= 0) return;  // reaches a target port later
  // Decode error: predict the node-generated ERROR response.
  Prediction p;
  p.opc = head.opc;
  p.add = head.add;
  p.tid = head.tid;
  p.status = RspOpcode::kError;
  if (stbus::is_load(head.opc) || stbus::is_atomic(head.opc)) {
    p.rdata.assign(static_cast<std::size_t>(stbus::size_bytes(head.opc)), 0);
  }
  pending_[static_cast<std::size_t>(id)].push_back(std::move(p));
}

void ReferenceModel::target_request(int id, const ObservedRequest& pkt) {
  const auto& head = pkt.cells.front();
  const int src = head.src;
  if (src < 0 || src >= cfg_.n_initiators) return;  // scoreboard's business
  if (!stbus::lanes_legal(head.opc, head.add, cfg_.bus_bytes)) {
    // Corrupted geometry: the target answers ERROR; predict that.
    Prediction p;
    p.opc = head.opc;
    p.add = head.add;
    p.tid = head.tid;
    p.status = RspOpcode::kError;
    if (stbus::is_load(head.opc) || stbus::is_atomic(head.opc)) {
      p.rdata.assign(static_cast<std::size_t>(stbus::size_bytes(head.opc)),
                     0);
    }
    pending_[static_cast<std::size_t>(src)].push_back(std::move(p));
    return;
  }
  const Request req = to_request(pkt, cfg_.bus_bytes);
  const tlm::Completion c = model_.apply_at(id, req);
  Prediction p;
  p.opc = req.opc;
  p.add = req.add;
  p.tid = req.tid;
  p.status = c.status;
  p.rdata = c.rdata;
  pending_[static_cast<std::size_t>(src)].push_back(std::move(p));
}

void ReferenceModel::initiator_response(int id, const ObservedResponse& pkt) {
  auto& q = pending_[static_cast<std::size_t>(id)];
  const auto& head = pkt.cells.front();

  // Locate the matching prediction.
  auto it = q.end();
  if (cfg_.type == stbus::ProtocolType::kType3) {
    it = std::find_if(q.begin(), q.end(), [&](const Prediction& p) {
      return p.tid == head.tid;
    });
  } else {
    // Type2: arrival order per initiator; responses can outrun predictions
    // only if the DUT invented them, so first match on shape.
    const int cells = static_cast<int>(pkt.cells.size());
    it = std::find_if(q.begin(), q.end(), [&](const Prediction& p) {
      return stbus::response_cells(p.opc, cfg_.bus_bytes, cfg_.type) == cells;
    });
  }
  if (it == q.end()) {
    fail(pkt.end_cycle(), "init" + std::to_string(id),
         "response with no prediction (tid " + std::to_string(head.tid) +
             ")");
    return;
  }

  const Prediction p = *it;
  q.erase(it);
  ++stats_.completions_checked;

  RspOpcode observed = RspOpcode::kOk;
  for (const auto& c : pkt.cells) {
    if (c.opc != RspOpcode::kOk) observed = RspOpcode::kError;
  }
  if (observed != p.status) {
    fail(pkt.end_cycle(), "init" + std::to_string(id),
         std::string("status mismatch vs reference model: observed ") +
             stbus::to_string(observed) + ", predicted " +
             stbus::to_string(p.status) + " for " + stbus::to_string(p.opc));
    return;
  }
  if ((stbus::is_load(p.opc) || stbus::is_atomic(p.opc)) &&
      observed == RspOpcode::kOk) {
    const auto data = stbus::extract_response_data(p.opc, p.add, pkt.cells,
                                                   cfg_.bus_bytes);
    if (data != p.rdata) {
      std::size_t byte = 0;
      while (byte < data.size() && data[byte] == p.rdata[byte]) ++byte;
      fail(pkt.end_cycle(), "init" + std::to_string(id),
           "load data differs from reference model at byte " +
               std::to_string(byte) + " (" + stbus::to_string(p.opc) +
               " @0x" + crve::Bits(32, p.add).to_hex_string() + ")");
      return;
    }
    ++stats_.loads_verified;
  }
}

void ReferenceModel::end_of_test() {
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    const auto n = pending_[static_cast<std::size_t>(i)].size();
    if (n != 0) {
      fail(0, "init" + std::to_string(i),
           std::to_string(n) + " predicted completions never observed");
    }
  }
}

}  // namespace crve::verif
