// Signal-level wrapper emulating the paper's VHDL-around-SystemC plumbing.
//
// In the paper (Fig. 3) the BCA SystemC model is plugged into the VHDL
// testbench through a generated VHDL wrapper, and every pin crosses a
// simulator/type-conversion boundary — which "loses the advantage of having
// a fast SystemC simulator". make_port_wrapper() reproduces that cost: it
// inserts a relay pair between the environment-side bundle and a DUT-side
// bundle, with each crossing converting the value through its textual VCD
// form (the analog of std_logic_vector <-> sc_uint conversion).
#pragma once

#include <string>

#include "sim/context.h"
#include "stbus/pins.h"

namespace crve::verif {

// Adds combinational relay processes copying environment-driven fields to
// the DUT bundle and DUT-driven fields back.
// `dut_receives_requests` selects the direction map: true for initiator
// ports (the DUT grants requests), false for target ports (the DUT issues
// requests toward the environment's target BFM).
inline void make_port_wrapper(sim::Context& ctx, const std::string& name,
                              stbus::PortPins& env, stbus::PortPins& dut,
                              bool dut_receives_requests) {
  auto conv_bits = [](const crve::Bits& b) {
    // Emulated language-boundary conversion: value -> text -> value.
    return crve::Bits::from_bin_string(b.to_bin_string());
  };
  // Fields driven by the request-issuing side.
  auto fwd = [&env, &dut, conv_bits] {
    dut.req.write(env.req.read());
    dut.opc.write(env.opc.read());
    dut.add.write(env.add.read());
    dut.data.write(conv_bits(env.data.read()));
    dut.be.write(conv_bits(env.be.read()));
    dut.eop.write(env.eop.read());
    dut.lck.write(env.lck.read());
    dut.src.write(env.src.read());
    dut.tid.write(env.tid.read());
    dut.r_gnt.write(env.r_gnt.read());
  };
  // Fields driven by the request-receiving side.
  auto bwd = [&env, &dut, conv_bits] {
    env.gnt.write(dut.gnt.read());
    env.r_req.write(dut.r_req.read());
    env.r_opc.write(dut.r_opc.read());
    env.r_data.write(conv_bits(dut.r_data.read()));
    env.r_eop.write(dut.r_eop.read());
    env.r_src.write(dut.r_src.read());
    env.r_tid.write(dut.r_tid.read());
  };
  // For target-side ports the DUT issues requests: same relays, with the
  // bundles swapped.
  auto fwd_t = [&env, &dut, conv_bits] {
    env.req.write(dut.req.read());
    env.opc.write(dut.opc.read());
    env.add.write(dut.add.read());
    env.data.write(conv_bits(dut.data.read()));
    env.be.write(conv_bits(dut.be.read()));
    env.eop.write(dut.eop.read());
    env.lck.write(dut.lck.read());
    env.src.write(dut.src.read());
    env.tid.write(dut.tid.read());
    env.r_gnt.write(dut.r_gnt.read());
  };
  auto bwd_t = [&env, &dut, conv_bits] {
    dut.gnt.write(env.gnt.read());
    dut.r_req.write(env.r_req.read());
    dut.r_opc.write(env.r_opc.read());
    dut.r_data.write(conv_bits(env.r_data.read()));
    dut.r_eop.write(env.r_eop.read());
    dut.r_src.write(env.r_src.read());
    dut.r_tid.write(env.r_tid.read());
  };
  if (dut_receives_requests) {
    ctx.add_comb(name + ".fwd", fwd);
    ctx.add_comb(name + ".bwd", bwd);
  } else {
    ctx.add_comb(name + ".fwd", fwd_t);
    ctx.add_comb(name + ".bwd", bwd_t);
  }
}

}  // namespace crve::verif
