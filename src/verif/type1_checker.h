// Type1 protocol checker.
//
// Type1 is the simple synchronous handshake used for register access and
// slow peripherals (and the node's programming port): the master holds
// req with a stable payload until the slave pulses gnt for one cycle;
// read data and the response status are valid during the gnt cycle; the
// next operation may start the cycle after the pulse.
//
// Rules:
//   T1_HOLD      payload changed or req retracted while waiting for gnt
//   T1_SIZE      operation wider than the port (Type1 is single-cell)
//   T1_ALIGN     address not naturally aligned for the operation size
//   T1_ACK_SPUR  gnt pulsed with no request pending in the previous cycle
//   T1_ACK_WIDE  gnt held for more than one cycle
//   T1_OPC       illegal r_opc encoding during the ack cycle
#pragma once

#include <string>
#include <vector>

#include "sim/context.h"
#include "stbus/packet.h"
#include "stbus/pins.h"
#include "verif/protocol_checker.h"

namespace crve::verif {

class Type1Checker {
 public:
  Type1Checker(sim::Context& ctx, std::string name,
               const stbus::PortPins& pins);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t violation_count() const { return count_; }
  bool clean() const { return count_ == 0; }

 private:
  void sample();
  void report(std::uint64_t cycle, const std::string& rule,
              const std::string& message);

  std::string name_;
  sim::Context& ctx_;
  const stbus::PortPins& pins_;

  bool prev_valid_ = false;
  bool prev_req_ = false;
  bool prev_gnt_ = false;
  stbus::RequestCell prev_cell_;

  std::vector<Violation> violations_;
  std::uint64_t count_ = 0;
  static constexpr std::size_t kMaxStored = 100;
};

}  // namespace crve::verif
