#include "verif/protocol_checker.h"

#include <algorithm>

#include "stbus/packet.h"

namespace crve::verif {

using stbus::Opcode;
using stbus::RequestCell;
using stbus::ResponseCell;
using stbus::RspOpcode;

ProtocolChecker::ProtocolChecker(sim::Context& ctx, std::string name,
                                 const stbus::PortPins& pins,
                                 stbus::ProtocolType type, Role role,
                                 int expected_src,
                                 const stbus::NodeConfig* map)
    : name_(std::move(name)),
      ctx_(ctx),
      pins_(pins),
      type_(type),
      role_(role),
      expected_src_(expected_src),
      map_(map) {
  // Design-lint declaration: payload pins are sampled only around active
  // handshakes, so the recorded read set misses them on an idle bus.
  sim::ClockedOpts decl;
  decl.reads = pins.all_signals();
  ctx.add_clocked("chk." + name_, [this] { sample(); }, std::move(decl));
}

void ProtocolChecker::report(std::uint64_t cycle, const std::string& rule,
                             const std::string& message) {
  ++count_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back({cycle, name_, rule, message});
  }
}

void ProtocolChecker::sample() {
  const std::uint64_t cycle = ctx_.cycle() - 1;

  const bool req = pins_.req.read();
  const bool gnt = pins_.gnt.read();
  const bool r_req = pins_.r_req.read();
  const bool r_gnt = pins_.r_gnt.read();

  // HOLD rules: a stalled channel must not change its payload or retract.
  if (prev_valid_ && prev_req_ && !prev_gnt_) {
    if (!req) {
      report(cycle, "HOLD_REQ", "request retracted while ungranted");
    } else {
      const RequestCell now = pins_.sample_request();
      const RequestCell& p = prev_req_cell_;
      if (now.opc != p.opc || now.add != p.add || !(now.data == p.data) ||
          !(now.be == p.be) || now.eop != p.eop || now.lck != p.lck ||
          now.src != p.src || now.tid != p.tid) {
        report(cycle, "HOLD_REQ", "request payload changed while ungranted");
      }
    }
  }
  if (prev_valid_ && prev_r_req_ && !prev_r_gnt_) {
    if (!r_req) {
      report(cycle, "HOLD_RSP", "response retracted while ungranted");
    } else {
      const ResponseCell now = pins_.sample_response();
      const ResponseCell& p = prev_rsp_cell_;
      if (now.opc != p.opc || !(now.data == p.data) || now.eop != p.eop ||
          now.src != p.src || now.tid != p.tid) {
        report(cycle, "HOLD_RSP", "response payload changed while ungranted");
      }
    }
  }

  // Starvation watchdog: a channel stalled for starve_limit_ consecutive
  // cycles is reported once per episode.
  auto watch = [this, cycle](bool stalled, int& counter, bool& reported,
                             const char* what) {
    if (!stalled) {
      counter = 0;
      reported = false;
      return;
    }
    ++counter;
    if (starve_limit_ > 0 && counter >= starve_limit_ && !reported) {
      reported = true;
      report(cycle, "STARVE",
             std::string(what) + " ungranted for " +
                 std::to_string(counter) + " cycles");
    }
  };
  watch(req && !gnt, req_stalled_, req_starved_reported_, "request");
  watch(r_req && !r_gnt, rsp_stalled_, rsp_starved_reported_, "response");

  if (req && gnt) check_request_fire(cycle);
  if (r_req && r_gnt) check_response_fire(cycle);

  prev_valid_ = true;
  prev_req_ = req;
  prev_gnt_ = gnt;
  if (req) prev_req_cell_ = pins_.sample_request();
  prev_r_req_ = r_req;
  prev_r_gnt_ = r_gnt;
  if (r_req) prev_rsp_cell_ = pins_.sample_response();
}

void ProtocolChecker::check_request_fire(std::uint64_t cycle) {
  const RequestCell cell = pins_.sample_request();
  const int bus = pins_.bus_bytes;
  const int beat = static_cast<int>(req_pkt_.size());

  if (beat == 0) {
    if (!stbus::aligned(cell.opc, cell.add)) {
      report(cycle, "ALIGN",
             "address 0x" + std::to_string(cell.add) + " unaligned for " +
                 stbus::to_string(cell.opc));
    }
    if (chunk_target_ && map_ != nullptr) {
      const int t = map_->route(cell.add);
      if (t != *chunk_target_) {
        report(cycle, "CHUNK_TGT",
               "chunk continued to a different target (" +
                   std::to_string(t) + " vs " +
                   std::to_string(*chunk_target_) + ")");
      }
    }
  } else {
    const RequestCell& head = req_pkt_.front();
    if (cell.opc != head.opc) {
      report(cycle, "OPC_STABLE", "opcode changed within packet");
    }
    const std::uint32_t expect_add =
        stbus::cell_address(head.add, bus, beat);
    if (cell.add != expect_add) {
      report(cycle, "ADDR_SEQ", "beat address not incrementing by bus width");
    }
    if (cell.src != head.src) {
      report(cycle, "SRC_STABLE", "src changed within packet");
    }
  }

  if (role_ == Role::kInitiatorPort && expected_src_ >= 0 &&
      static_cast<int>(cell.src) != expected_src_) {
    report(cycle, "SRC_STABLE",
           "src " + std::to_string(cell.src) + " != port id " +
               std::to_string(expected_src_));
  }

  // Byte enables: multi-beat packets use full enables; sub-bus single-cell
  // packets use the aligned lane mask. A (opcode, address) pair whose lanes
  // cannot fit the bus word at all is itself a violation.
  const int size = stbus::size_bytes(cell.opc);
  const std::uint32_t be_add =
      req_pkt_.empty() ? cell.add : req_pkt_.front().add;
  if (!stbus::lanes_legal(cell.opc, be_add, bus)) {
    report(cycle, "BE", "operation lanes straddle the bus word");
  } else {
    const crve::Bits expect_be =
        size >= bus ? crve::Bits::all_ones(bus)
                    : stbus::byte_enables(cell.opc, be_add, bus, 0);
    if (!(cell.be == expect_be)) {
      report(cycle, "BE", "byte enables do not match opcode/address");
    }
  }

  const int expect_cells = stbus::request_cells(
      req_pkt_.empty() ? cell.opc : req_pkt_.front().opc, bus, type_);
  const bool should_be_last = beat + 1 == expect_cells;
  if (cell.eop != should_be_last) {
    report(cycle, "PKT_LEN",
           "eop on beat " + std::to_string(beat + 1) + " of " +
               std::to_string(expect_cells));
  }
  if (!cell.eop && !cell.lck) {
    report(cycle, "LCK_MID", "mid-packet cell without lck");
  }

  req_pkt_.push_back(cell);
  if (cell.eop || beat + 1 >= expect_cells) {
    // Packet complete (treat a bad-eop packet as complete to resync).
    if (type_ == stbus::ProtocolType::kType3) {
      for (const auto& o : outstanding_) {
        if (o.tid == cell.tid && o.src == req_pkt_.front().src) {
          report(cycle, "TID_REUSE",
                 "tid " + std::to_string(cell.tid) + " already outstanding");
        }
      }
    }
    Outstanding o;
    o.opc = req_pkt_.front().opc;
    o.src = req_pkt_.front().src;
    o.tid = req_pkt_.front().tid;
    o.rsp_cells = stbus::response_cells(o.opc, bus, type_);
    outstanding_.push_back(o);
    chunk_target_.reset();
    if (cell.lck && map_ != nullptr) {
      chunk_target_ = map_->route(req_pkt_.front().add);
    }
    req_pkt_.clear();
  }
}

void ProtocolChecker::check_response_fire(std::uint64_t cycle) {
  const ResponseCell cell = pins_.sample_response();

  if (cell.opc != RspOpcode::kOk && cell.opc != RspOpcode::kError) {
    report(cycle, "RSP_OPC", "illegal r_opc encoding");
  }

  if (rsp_pkt_.empty()) {
    // Start of a response packet: must match an outstanding request.
    auto match = outstanding_.end();
    if (type_ == stbus::ProtocolType::kType3) {
      match = std::find_if(outstanding_.begin(), outstanding_.end(),
                           [&](const Outstanding& o) {
                             return o.tid == cell.tid && o.src == cell.src;
                           });
    } else if (!outstanding_.empty()) {
      // Type2: strictly in order.
      match = outstanding_.begin();
      if (match->src != cell.src || match->tid != cell.tid) {
        report(cycle, "RSP_MATCH", "response out of order (src/tid mismatch)");
      }
    }
    if (match == outstanding_.end()) {
      report(cycle, "RSP_SPUR", "response with no outstanding request");
      rsp_pkt_.push_back(cell);
      if (cell.eop) rsp_pkt_.clear();
      return;
    }
    rsp_pkt_.push_back(cell);
    if (static_cast<int>(rsp_pkt_.size()) == match->rsp_cells) {
      if (!cell.eop) report(cycle, "PKT_LEN", "missing r_eop on last cell");
      outstanding_.erase(match);
      rsp_pkt_.clear();
    } else if (cell.eop) {
      report(cycle, "PKT_LEN",
             "r_eop after " + std::to_string(rsp_pkt_.size()) + " of " +
                 std::to_string(match->rsp_cells) + " cells");
      outstanding_.erase(match);
      rsp_pkt_.clear();
    }
  } else {
    const ResponseCell& head = rsp_pkt_.front();
    if (cell.src != head.src || cell.tid != head.tid) {
      report(cycle, "RSP_MATCH", "response packet interleaved (src/tid)");
    }
    // Find the packet's outstanding entry to know the expected length.
    auto match = std::find_if(outstanding_.begin(), outstanding_.end(),
                              [&](const Outstanding& o) {
                                return o.tid == head.tid && o.src == head.src;
                              });
    rsp_pkt_.push_back(cell);
    const int expect =
        match != outstanding_.end() ? match->rsp_cells
                                    : static_cast<int>(rsp_pkt_.size());
    if (static_cast<int>(rsp_pkt_.size()) == expect) {
      if (!cell.eop) report(cycle, "PKT_LEN", "missing r_eop on last cell");
      if (match != outstanding_.end()) outstanding_.erase(match);
      rsp_pkt_.clear();
    } else if (cell.eop) {
      report(cycle, "PKT_LEN",
             "r_eop after " + std::to_string(rsp_pkt_.size()) + " of " +
                 std::to_string(expect) + " cells");
      if (match != outstanding_.end()) outstanding_.erase(match);
      rsp_pkt_.clear();
    }
  }
}

void ProtocolChecker::end_of_test() {
  const std::uint64_t cycle = ctx_.cycle();
  if (!req_pkt_.empty()) {
    report(cycle, "EOT", "request packet left incomplete");
  }
  if (!rsp_pkt_.empty()) {
    report(cycle, "EOT", "response packet left incomplete");
  }
  if (!outstanding_.empty()) {
    report(cycle, "EOT",
           std::to_string(outstanding_.size()) +
               " transactions without response");
  }
  if (chunk_target_) {
    report(cycle, "EOT", "chunk left open (final packet had lck)");
  }
}

}  // namespace crve::verif
