// Data-integrity scoreboard.
//
// Checks that every request packet granted at an initiator port reappears
// bit-identically at the decoded target port, and that every response
// packet produced at a target port (or synthesized by the node for decode
// errors) reappears at the owning initiator port — "the DUT outputs' data
// correspond to the inputs' one, with respect to the specifications".
//
// The scoreboard subscribes to monitors only; it never touches the DUT, so
// the same instance serves the RTL and BCA views.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "stbus/config.h"
#include "verif/monitor.h"

namespace crve::verif {

struct ScoreboardError {
  std::uint64_t cycle = 0;
  std::string where;
  std::string message;
};

class Scoreboard {
 public:
  explicit Scoreboard(const stbus::NodeConfig& cfg);
  ~Scoreboard();

  Scoreboard(const Scoreboard&) = delete;
  Scoreboard& operator=(const Scoreboard&) = delete;

  // Attach the monitor watching initiator/target port `id`.
  void attach_initiator(Monitor& mon, int id);
  void attach_target(Monitor& mon, int id);

  // Final check: every forwarded packet must have been delivered.
  void end_of_test();

  const std::vector<ScoreboardError>& errors() const { return errors_; }
  std::uint64_t error_count() const { return count_; }
  bool clean() const { return count_ == 0; }

  struct Stats {
    std::uint64_t requests_matched = 0;
    std::uint64_t responses_matched = 0;
    std::uint64_t error_responses_matched = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class ScoreboardTap;

  struct ExpectedError {
    stbus::Opcode opc{};
    std::uint8_t tid = 0;
    int cells = 0;
  };

  void initiator_request(int id, const ObservedRequest& pkt);
  void initiator_response(int id, const ObservedResponse& pkt);
  void target_request(int id, const ObservedRequest& pkt);
  void target_response(int id, const ObservedResponse& pkt);

  void fail(std::uint64_t cycle, const std::string& where,
            const std::string& message);

  static bool request_cells_equal(const stbus::RequestCell& a,
                                  const stbus::RequestCell& b,
                                  std::string* why);
  static bool response_cells_equal(const stbus::ResponseCell& a,
                                   const stbus::ResponseCell& b,
                                   std::string* why);

  stbus::NodeConfig cfg_;
  // req_fifo_[initiator][target]: packets in flight toward a target.
  std::vector<std::vector<std::deque<ObservedRequest>>> req_fifo_;
  // rsp_fifo_[target][initiator]: packets in flight back to an initiator.
  std::vector<std::vector<std::deque<ObservedResponse>>> rsp_fifo_;
  // Node-generated error responses expected per initiator.
  std::vector<std::deque<ExpectedError>> expected_errors_;

  std::vector<std::unique_ptr<MonitorListener>> taps_;
  std::vector<ScoreboardError> errors_;
  std::uint64_t count_ = 0;
  Stats stats_;
  static constexpr std::size_t kMaxStored = 100;
};

}  // namespace crve::verif
