// The generic STBus node test suite.
//
// The paper's Section 5: "Twelve test cases have been developed to cover
// the tests of all main features of the node such as out of order traffic
// or latency based arbitration... The test cases are generic and depend on
// some HDL parameters. They can be reused for all configurations of the
// Node." Each factory returns a TestSpec whose hooks adapt to the node
// configuration they are run against.
//
//   t01_basic_write_read      directed write-then-read smoke test
//   t02_random_all_opcodes    flat random mix of the whole opcode set
//   t03_out_of_order          short loads to targets of different speeds
//   t04_latency_arbitration   latency-based policy under full contention
//   t05_chunked_traffic       heavy lck chunking
//   t06_size_sweep            all sizes incl. multi-cell packets
//   t07_target_contention     every initiator hammers target 0
//   t08_programmable_priority priorities rewritten mid-run via prog port
//   t09_backpressure          wait states and response stalls everywhere
//   t10_decode_errors         traffic aimed partly at unmapped addresses
//   t11_bandwidth_limits      bandwidth-limited policy with tight quota
//   t12_locked_atomics        RMW/SWAP mix with chunking
//
// old_flow_write_read() reproduces the pre-CATG harness: a directed
// write-then-read memory test with no protocol checkers, no scoreboard and
// no coverage — the baseline of the bug-detection experiment (C3).
#pragma once

#include <vector>

#include "verif/testbench.h"

namespace crve::verif {

TestSpec t01_basic_write_read();
TestSpec t02_random_all_opcodes();
TestSpec t03_out_of_order();
TestSpec t04_latency_arbitration();
TestSpec t05_chunked_traffic();
TestSpec t06_size_sweep();
TestSpec t07_target_contention();
TestSpec t08_programmable_priority();
TestSpec t09_backpressure();
TestSpec t10_decode_errors();
TestSpec t11_bandwidth_limits();
TestSpec t12_locked_atomics();

// All twelve, in order.
std::vector<TestSpec> catg_test_suite();

// The "past flow" harness (see header comment).
TestSpec old_flow_write_read();

}  // namespace crve::verif
