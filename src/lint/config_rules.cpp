// Config / campaign rule family (CRVE001..CRVE042).
//
// The scan is deliberately tolerant where parse_config throws: it walks the
// whole file collecting every problem instead of stopping at the first, so
// one lint run over a directory reports everything a campaign would trip
// over. The key grammar (including '#' and "//" comments) mirrors
// regress/config_file.cpp exactly — a config the linter passes clean must
// parse, and vice versa.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "common/json.h"
#include "lint/lint.h"

namespace crve::lint {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

struct Entry {
  std::string value;
  int line = 0;
};

// Last-assignment-wins view of a config text, matching parse_config.
struct RawConfig {
  std::map<std::string, Entry> entries;
  Report findings;  // syntax-level findings collected during the scan

  bool has(const std::string& key) const { return entries.count(key) > 0; }
  const Entry* get(const std::string& key) const {
    const auto it = entries.find(key);
    return it == entries.end() ? nullptr : &it->second;
  }
};

const std::set<std::string>& known_keys() {
  static const std::set<std::string> kKeys = {
      "name",          "n_initiators",     "n_targets",
      "bus_bytes",     "type",             "arch",
      "arb",           "programming_port", "priorities",
      "latency_deadline", "bandwidth_quota", "bandwidth_window",
      "xbar_group"};
  return kKeys;
}

RawConfig scan_config_text(const std::string& text,
                           const std::string& origin) {
  RawConfig raw;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto slashes = line.find("//");
    if (slashes != std::string::npos) line.erase(slashes);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      raw.findings.add("CRVE001", origin, lineno,
                       "expected key=value, got '" + line + "'");
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (key.empty()) {
      raw.findings.add("CRVE001", origin, lineno, "empty key before '='");
      continue;
    }
    if (!known_keys().count(key)) {
      raw.findings.add("CRVE002", origin, lineno,
                       "unknown key '" + key + "'");
      continue;
    }
    const auto [it, inserted] = raw.entries.insert({key, {val, lineno}});
    if (!inserted) {
      raw.findings.add("CRVE003", origin, lineno,
                       "'" + key + "' already set on line " +
                           std::to_string(it->second.line) +
                           "; the earlier value is shadowed");
      it->second = {val, lineno};  // last assignment wins, like the parser
    }
  }
  return raw;
}

std::optional<long> to_int(const std::string& v) {
  if (v.empty()) return std::nullopt;
  std::size_t pos = 0;
  long out = 0;
  try {
    out = std::stol(v, &pos);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (pos != v.size()) return std::nullopt;
  return out;
}

std::optional<std::vector<int>> to_int_list(const std::string& v) {
  std::vector<int> out;
  std::istringstream is(v);
  std::string item;
  while (std::getline(is, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    const auto n = to_int(item);
    if (!n) return std::nullopt;
    out.push_back(static_cast<int>(*n));
  }
  return out;
}

bool is_pow2(long v) { return v > 0 && (v & (v - 1)) == 0; }

// Everything the semantic rules need, independent of whether the source
// was a text scan or an already-parsed NodeConfig.
struct Semantics {
  std::string origin;
  int n_initiators = 2;
  int n_targets = 2;
  long bus_bytes = 4;
  std::string arch = "full";  // shared | full | partial
  std::string arb = "fixed";  // fixed | rr | lru | latency | bandwidth | prog
  bool programming_port = false;
  long bandwidth_window = 64;

  // Present flags carry the source line for findings (0 = struct source).
  std::optional<std::pair<std::vector<int>, int>> priorities;
  std::optional<std::pair<std::vector<int>, int>> latency_deadline;
  std::optional<std::pair<std::vector<int>, int>> bandwidth_quota;
  std::optional<std::pair<std::vector<int>, int>> xbar_group;

  int arb_line = 0;   // line the arb key was set on (0 when defaulted)
  int arch_line = 0;
  int n_initiators_line = 0;
  int n_targets_line = 0;
  int bus_bytes_line = 0;
};

void check_port_count(Report& out, const std::string& origin, int line,
                      const char* key, const char* rule, long v,
                      bool& valid) {
  if (v < 1 || v > 32) {
    out.add(rule, origin, line,
            std::string(key) + " = " + std::to_string(v) +
                " outside the paper's 1..32 port limit");
    valid = false;
  }
}

// The shared semantic pass (CRVE010..CRVE021).
void lint_semantics(const Semantics& s, Report& out) {
  bool ports_valid = true;
  check_port_count(out, s.origin, s.n_initiators_line, "n_initiators",
                   "CRVE010", s.n_initiators, ports_valid);
  check_port_count(out, s.origin, s.n_targets_line, "n_targets", "CRVE011",
                   s.n_targets, ports_valid);
  if (!is_pow2(s.bus_bytes) || s.bus_bytes > 32) {
    out.add("CRVE012", s.origin, s.bus_bytes_line,
            "bus_bytes = " + std::to_string(s.bus_bytes) +
                " must be a power of two in 1..32 (8..256 bits)");
  }

  auto check_list = [&](const char* key,
                        const std::optional<std::pair<std::vector<int>, int>>&
                            list) {
    if (!list || !ports_valid) return;
    if (static_cast<int>(list->first.size()) != s.n_initiators) {
      out.add("CRVE014", s.origin, list->second,
              std::string(key) + " has " +
                  std::to_string(list->first.size()) + " entries for " +
                  std::to_string(s.n_initiators) + " initiators");
    }
  };
  check_list("priorities", s.priorities);
  check_list("latency_deadline", s.latency_deadline);
  check_list("bandwidth_quota", s.bandwidth_quota);

  if (s.arb == "latency") {
    if (!s.latency_deadline) {
      out.add("CRVE013", s.origin, s.arb_line,
              "arb = latency needs a latency_deadline list (one deadline "
              "per initiator); without it every initiator gets the default "
              "16 and the policy degenerates");
    } else {
      for (std::size_t i = 0; i < s.latency_deadline->first.size(); ++i) {
        if (s.latency_deadline->first[i] <= 0) {
          out.add("CRVE021", s.origin, s.latency_deadline->second,
                  "latency_deadline[" + std::to_string(i) + "] = " +
                      std::to_string(s.latency_deadline->first[i]) +
                      " is not a positive cycle count");
        }
      }
    }
  } else if (s.latency_deadline && s.latency_deadline->second > 0) {
    out.add("CRVE020", s.origin, s.latency_deadline->second,
            "latency_deadline is ignored unless arb = latency (arb = " +
                s.arb + ")");
  }

  if (s.arb == "bandwidth") {
    if (!s.bandwidth_quota) {
      out.add("CRVE015", s.origin, s.arb_line,
              "arb = bandwidth needs a bandwidth_quota list (grants per "
              "window, 0 = unlimited)");
    }
    if (s.bandwidth_window < 1) {
      out.add("CRVE015", s.origin, s.arb_line,
              "bandwidth_window = " + std::to_string(s.bandwidth_window) +
                  " must be >= 1");
    }
  } else if (s.bandwidth_quota && s.bandwidth_quota->second > 0) {
    out.add("CRVE020", s.origin, s.bandwidth_quota->second,
            "bandwidth_quota is ignored unless arb = bandwidth (arb = " +
                s.arb + ")");
  }

  if (s.arb == "prog" && !s.programming_port) {
    out.add("CRVE016", s.origin, s.arb_line,
            "arb = prog needs programming_port = 1: the programmable "
            "priorities live in the Type1 programming-port registers");
  }

  if (s.arch == "partial") {
    if (s.xbar_group && ports_valid) {
      const auto& groups = s.xbar_group->first;
      const int line = s.xbar_group->second;
      if (static_cast<int>(groups.size()) != s.n_targets) {
        out.add("CRVE017", s.origin, line,
                "xbar_group has " + std::to_string(groups.size()) +
                    " entries for " + std::to_string(s.n_targets) +
                    " targets");
      } else {
        int max_used = -1;
        for (std::size_t t = 0; t < groups.size(); ++t) {
          if (groups[t] < 0 || groups[t] >= s.n_targets) {
            out.add("CRVE018", s.origin, line,
                    "xbar_group[" + std::to_string(t) + "] = " +
                        std::to_string(groups[t]) + " outside 0.." +
                        std::to_string(s.n_targets - 1));
          } else {
            max_used = std::max(max_used, groups[t]);
          }
        }
        const std::set<int> used(groups.begin(), groups.end());
        for (int g = 0; g <= max_used; ++g) {
          if (!used.count(g)) {
            out.add("CRVE019", s.origin, line,
                    "group " + std::to_string(g) +
                        " is empty; ids are remapped densely, so the "
                        "declared grouping is not what will run");
          }
        }
      }
    }
  } else if (s.xbar_group && s.xbar_group->second > 0) {
    out.add("CRVE020", s.origin, s.xbar_group->second,
            "xbar_group is ignored unless arch = partial (arch = " + s.arch +
                ")");
  }
}

// Fills a Semantics view from a raw scan, reporting value-level problems
// (bad integers, bad enums) along the way.
Semantics semantics_from_raw(const RawConfig& raw, const std::string& origin,
                             Report& out) {
  Semantics s;
  s.origin = origin;

  auto take_int = [&](const char* key, auto setter) {
    const Entry* e = raw.get(key);
    if (!e) return;
    const auto v = to_int(e->value);
    if (!v) {
      out.add("CRVE004", origin, e->line,
              std::string(key) + ": bad integer '" + e->value + "'");
      return;
    }
    setter(*v, e->line);
  };
  auto take_list = [&](const char* key,
                       std::optional<std::pair<std::vector<int>, int>>& dst) {
    const Entry* e = raw.get(key);
    if (!e) return;
    const auto v = to_int_list(e->value);
    if (!v) {
      out.add("CRVE004", origin, e->line,
              std::string(key) + ": bad integer list '" + e->value + "'");
      return;
    }
    dst = {{*v, e->line}};
  };

  take_int("n_initiators", [&](long v, int line) {
    s.n_initiators = static_cast<int>(v);
    s.n_initiators_line = line;
  });
  take_int("n_targets", [&](long v, int line) {
    s.n_targets = static_cast<int>(v);
    s.n_targets_line = line;
  });
  take_int("bus_bytes", [&](long v, int line) {
    s.bus_bytes = v;
    s.bus_bytes_line = line;
  });
  take_int("bandwidth_window", [&](long v, int) { s.bandwidth_window = v; });
  take_int("programming_port",
           [&](long v, int) { s.programming_port = v != 0; });

  if (const Entry* e = raw.get("type")) {
    const auto v = to_int(e->value);
    if (!v || (*v != 2 && *v != 3)) {
      out.add("CRVE005", origin, e->line,
              "type: bad value '" + e->value + "' (accepted: 2, 3)");
    }
  }
  if (const Entry* e = raw.get("arch")) {
    if (e->value == "shared" || e->value == "full" ||
        e->value == "partial") {
      s.arch = e->value;
      s.arch_line = e->line;
    } else {
      out.add("CRVE005", origin, e->line,
              "arch: unknown value '" + e->value +
                  "' (accepted: shared, full, partial)");
    }
  }
  if (const Entry* e = raw.get("arb")) {
    static const std::set<std::string> kArbs = {
        "fixed", "rr", "lru", "latency", "bandwidth", "prog"};
    if (kArbs.count(e->value)) {
      s.arb = e->value;
      s.arb_line = e->line;
    } else {
      out.add("CRVE005", origin, e->line,
              "arb: unknown value '" + e->value +
                  "' (accepted: fixed, rr, lru, latency, bandwidth, prog)");
    }
  }

  take_list("priorities", s.priorities);
  take_list("latency_deadline", s.latency_deadline);
  take_list("bandwidth_quota", s.bandwidth_quota);
  take_list("xbar_group", s.xbar_group);
  return s;
}

// Syntax findings from the scan plus the semantic pass over what parsed.
Report lint_raw(RawConfig&& raw, const std::string& origin) {
  Report out = std::move(raw.findings);
  const Semantics s = semantics_from_raw(raw, origin, out);
  lint_semantics(s, out);
  out.sort();
  return out;
}

}  // namespace

Report lint_config_text(const std::string& text, const std::string& origin) {
  return lint_raw(scan_config_text(text, origin), origin);
}

Report lint_config_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    Report out;
    out.add("CRVE001", path, 0, "cannot open file");
    return out;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return lint_config_text(buf.str(), path);
}

Report lint_config_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  Report out;
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".cfg") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    out.add("CRVE031", dir, 0, "no .cfg files found");
    return out;
  }
  // name -> first file that used it. The name keys artifact directories and
  // report sections, so a duplicate silently merges two configurations.
  std::map<std::string, std::string> names;
  for (const auto& f : files) {
    std::ifstream is(f);
    std::ostringstream buf;
    buf << is.rdbuf();
    RawConfig raw = scan_config_text(buf.str(), f);
    const Entry* name = raw.get("name");
    const std::string value = name ? name->value : "node";  // parser default
    const int name_line = name ? name->line : 0;
    out.merge(lint_raw(std::move(raw), f));
    const auto [it, inserted] = names.insert({value, f});
    if (!inserted) {
      out.add("CRVE030", f, name_line,
              "name '" + value + "' already used by " + it->second +
                  "; artifact directories and report sections would merge");
    }
  }
  out.sort();
  return out;
}

Report lint_node_config(const stbus::NodeConfig& cfg,
                        const std::string& origin) {
  Semantics s;
  s.origin = origin;
  s.n_initiators = cfg.n_initiators;
  s.n_targets = cfg.n_targets;
  s.bus_bytes = cfg.bus_bytes;
  s.bandwidth_window = cfg.bandwidth_window;
  s.programming_port = cfg.programming_port;
  switch (cfg.arch) {
    case stbus::Architecture::kSharedBus:
      s.arch = "shared";
      break;
    case stbus::Architecture::kFullCrossbar:
      s.arch = "full";
      break;
    case stbus::Architecture::kPartialCrossbar:
      s.arch = "partial";
      break;
  }
  switch (cfg.arb) {
    case stbus::ArbPolicy::kFixedPriority:
      s.arb = "fixed";
      break;
    case stbus::ArbPolicy::kRoundRobin:
      s.arb = "rr";
      break;
    case stbus::ArbPolicy::kLru:
      s.arb = "lru";
      break;
    case stbus::ArbPolicy::kLatencyBased:
      s.arb = "latency";
      break;
    case stbus::ArbPolicy::kBandwidthLimited:
      s.arb = "bandwidth";
      break;
    case stbus::ArbPolicy::kProgrammable:
      s.arb = "prog";
      break;
  }
  // Struct sources carry no "key present" information, so a normalized
  // config (lists default-filled) is checked for consistency, not absence.
  if (!cfg.priorities.empty()) s.priorities = {{cfg.priorities, 0}};
  if (!cfg.latency_deadline.empty()) {
    s.latency_deadline = {{cfg.latency_deadline, 0}};
  }
  if (!cfg.bandwidth_quota.empty()) {
    s.bandwidth_quota = {{cfg.bandwidth_quota, 0}};
  }
  if (!cfg.xbar_group.empty()) s.xbar_group = {{cfg.xbar_group, 0}};
  Report out;
  lint_semantics(s, out);
  out.sort();
  return out;
}

Report lint_campaign(const CampaignSpec& spec, const std::string& origin) {
  Report out;
  if (spec.tests.empty()) {
    out.add("CRVE042", origin, 0, "campaign plan has no tests");
  }
  if (spec.seeds.empty()) {
    out.add("CRVE042", origin, 0, "campaign plan has no seeds");
  }
  // The plan is the (test, seed) cross product, so a duplicate in either
  // axis duplicates whole rows of the matrix: wasted compute and ambiguous
  // artifact names (both runs write <test>_s<seed> files).
  std::set<std::string> tests_seen;
  for (const auto& t : spec.tests) {
    if (!tests_seen.insert(t).second) {
      out.add("CRVE040", origin, 0,
              "test '" + t + "' listed twice: every (\"" + t +
                  "\", seed) pair would run twice");
    }
  }
  std::set<std::uint64_t> seeds_seen;
  for (const auto& s : spec.seeds) {
    if (!seeds_seen.insert(s).second) {
      out.add("CRVE040", origin, 0,
              "seed " + std::to_string(s) +
                  " listed twice: every (test, " + std::to_string(s) +
                  ") pair would run twice");
    }
  }
  if (!(spec.alignment_threshold > 0.0 &&
        spec.alignment_threshold <= 1.0)) {
    std::ostringstream v;
    v << spec.alignment_threshold;
    out.add("CRVE041", origin, 0,
            "alignment threshold " + v.str() +
                " outside (0, 1]; the paper's sign-off bar is 0.99");
  }
  out.sort();
  return out;
}

Report lint_cache_provenance(const std::string& cache_dir,
                             bool build_sanitized,
                             const std::string& origin) {
  Report out;
  if (!build_sanitized) return out;  // the hazard is one-directional
  std::ifstream is(std::filesystem::path(cache_dir) / "index.json");
  if (!is) return out;  // fresh or absent cache: nothing to flag
  std::stringstream buf;
  buf << is.rdbuf();
  std::size_t plain = 0;
  std::size_t total = 0;
  try {
    const json::Value doc = json::parse(buf.str());
    const json::Value* entries = doc.find("entries");
    if (!entries || !entries->is_array()) return out;
    for (const json::Value& e : entries->items) {
      ++total;
      if (!e.bool_or("sanitize", false)) ++plain;
    }
  } catch (const std::exception&) {
    return out;  // corrupt index: the cache reconciles it on open
  }
  if (plain > 0) {
    out.add("CRVE060", origin, 0,
            std::to_string(plain) + " of " + std::to_string(total) +
                " entries in " + cache_dir +
                " were produced by an uninstrumented build; this "
                "sanitizer-instrumented build will never replay them "
                "(the build flavour is hashed), so every pair re-runs — "
                "point --cache-dir at a sanitizer-flavoured cache or "
                "prune this one");
  }
  out.sort();
  return out;
}

}  // namespace crve::lint
