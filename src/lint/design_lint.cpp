#include "lint/design_lint.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "common/build_info.h"
#include "common/json.h"
#include "regress/config_file.h"
#include "sim/design_graph.h"
#include "verif/testbench.h"

namespace crve::lint {

namespace {

// Minimal elaboration spec: default random profiles, one transaction (never
// driven — nothing steps), and an empty programming schedule when the
// configuration has a programming port, so the ProgInitiator exists and
// drives the prog pins idle exactly like a real campaign.
verif::TestSpec elaboration_spec(const stbus::NodeConfig& cfg) {
  verif::TestSpec spec;
  spec.name = "design_lint";
  spec.description = "elaboration-only design analysis";
  spec.n_transactions = 1;
  if (cfg.programming_port) {
    spec.prog = [](const stbus::NodeConfig&) {
      return std::vector<verif::ProgOp>{};
    };
  }
  return spec;
}

sim::DesignGraph elaborate_view(const stbus::NodeConfig& cfg,
                                verif::ModelKind model) {
  verif::TestbenchOptions opts;
  opts.model = model;
  opts.kernel = sim::KernelKind::kCompiled;
  opts.seed = 1;
  verif::Testbench tb(cfg, elaboration_spec(cfg), opts);
  return tb.ctx().export_design_graph();
}

DesignSummary summarize(const stbus::NodeConfig& cfg,
                        const std::string& origin, const std::string& view,
                        const sim::DesignGraph& g, const Report& rep) {
  DesignSummary s;
  s.config = cfg.name;
  s.origin = origin;
  s.view = view;
  s.signals = g.signals.size();
  s.comb_processes = g.n_comb;
  s.clocked_processes = g.n_clocked();
  s.ranks = g.n_ranks;
  // Static combinational fanout per signal, the same count CRVE107 flags.
  std::vector<std::size_t> fanout(g.signals.size(), 0);
  for (std::size_t pi = 0; pi < g.n_comb; ++pi) {
    const auto& p = g.procs[pi];
    if (p.dynamic) continue;
    std::vector<int> eff = p.reads;
    eff.insert(eff.end(), p.declared_reads.begin(), p.declared_reads.end());
    std::sort(eff.begin(), eff.end());
    eff.erase(std::unique(eff.begin(), eff.end()), eff.end());
    for (const int sig : eff) ++fanout[static_cast<std::size_t>(sig)];
  }
  for (std::size_t i = 0; i < fanout.size(); ++i) {
    if (fanout[i] > s.max_fanout) {
      s.max_fanout = fanout[i];
      s.max_fanout_signal = g.signals[i].name;
    }
  }
  s.errors = rep.errors();
  s.warnings = rep.warnings();
  s.notes = rep.count(Severity::kNote);
  return s;
}

}  // namespace

DesignLintResult lint_design_config(const stbus::NodeConfig& cfg,
                                    const std::string& origin,
                                    const DesignRuleOptions& opts) {
  DesignLintResult res;
  struct View {
    verif::ModelKind model;
    const char* name;
  };
  // The wrapped view is the BCA model behind relays — same graph plus the
  // wrapper plumbing — so the per-config pass elaborates the two models the
  // campaign actually signs off against each other.
  const View views[] = {{verif::ModelKind::kRtl, "RTL"},
                        {verif::ModelKind::kBca, "BCA"}};
  std::vector<sim::DesignGraph> graphs;
  for (const View& v : views) {
    sim::DesignGraph g;
    try {
      g = elaborate_view(cfg, v.model);
    } catch (const std::exception& e) {
      // An elaboration failure (e.g. a combinational cycle) is itself a
      // design error; surface it under the schedule-shape rule's id-space
      // with error severity via a direct finding.
      Finding f;
      f.rule_id = "CRVE107";
      f.severity = Severity::kError;
      f.file = origin;
      f.line = 0;
      f.message = "view " + std::string(v.name) +
                  ": elaboration failed: " + e.what();
      res.report.findings.push_back(std::move(f));
      graphs.emplace_back();
      continue;
    }
    Report vrep = lint_design_graph(g, origin, v.name, opts);
    res.summaries.push_back(summarize(cfg, origin, v.name, g, vrep));
    res.report.merge(std::move(vrep));
    graphs.push_back(std::move(g));
  }
  if (graphs.size() == 2 && !graphs[0].signals.empty() &&
      !graphs[1].signals.empty()) {
    res.report.merge(lint_design_views(graphs[0], views[0].name, graphs[1],
                                       views[1].name, origin));
  }
  return res;
}

DesignLintResult lint_design_file(const std::string& cfg_path,
                                  const DesignRuleOptions& opts) {
  stbus::NodeConfig cfg;
  try {
    cfg = regress::parse_config_file(cfg_path);
    cfg.validate_and_normalize();
  } catch (const std::exception& e) {
    // The config rule family owns parse diagnostics; here the parse failure
    // only has to make the design pass fail loudly.
    DesignLintResult res;
    Finding f;
    f.rule_id = "CRVE001";
    f.severity = Severity::kError;
    f.file = cfg_path;
    f.line = 0;
    f.message = std::string("cannot elaborate: ") + e.what();
    res.report.findings.push_back(std::move(f));
    return res;
  }
  return lint_design_config(cfg, cfg_path, opts);
}

DesignLintResult lint_design_dir(const std::string& dir,
                                 const DesignRuleOptions& opts) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.is_regular_file() && e.path().extension() == ".cfg") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  DesignLintResult res;
  for (const auto& f : files) {
    DesignLintResult one = lint_design_file(f, opts);
    res.report.merge(std::move(one.report));
    res.summaries.insert(res.summaries.end(),
                         std::make_move_iterator(one.summaries.begin()),
                         std::make_move_iterator(one.summaries.end()));
  }
  return res;
}

DesignLintResult lint_design_selftest() {
  sim::Context ctx;
  sim::SignalBool undriven(ctx, "selftest.undriven");
  sim::SignalBool contested(ctx, "selftest.contested");
  sim::SignalBool out(ctx, "selftest.out");
  ctx.add_comb("selftest.reader",
               [&] { out.write(undriven.read()); });
  ctx.add_comb("selftest.driver_a",
               [&] { contested.write(undriven.read()); });
  ctx.add_comb("selftest.driver_b",
               [&] { contested.write(!undriven.read()); });
  // A clocked reader keeps `contested`/`out` out of the dead-logic rule so
  // the selftest isolates exactly CRVE102 (error) and CRVE100 (warn).
  sim::ClockedOpts observer;
  observer.reads = {&contested, &out};
  ctx.add_clocked("selftest.observer", [] {}, observer);

  const sim::DesignGraph g = ctx.export_design_graph();
  DesignLintResult res;
  res.report = lint_design_graph(g, "<design-selftest>", "selftest");
  return res;
}

std::string design_summary_json(const std::vector<DesignSummary>& summaries) {
  std::string out = "{\n";
  out += "  \"build\": " + build_info_json("  ") + ",\n";
  out += "  \"configs\": [";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const DesignSummary& s = summaries[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"config\": \"" + json::escape(s.config) + "\", ";
    out += "\"file\": \"" + json::escape(s.origin) + "\", ";
    out += "\"view\": \"" + json::escape(s.view) + "\", ";
    out += "\"signals\": " + std::to_string(s.signals) + ", ";
    out += "\"comb_processes\": " + std::to_string(s.comb_processes) + ", ";
    out += "\"clocked_processes\": " + std::to_string(s.clocked_processes) +
           ", ";
    out += "\"ranks\": " + std::to_string(s.ranks) + ", ";
    out += "\"max_fanout\": " + std::to_string(s.max_fanout) + ", ";
    out += "\"max_fanout_signal\": \"" + json::escape(s.max_fanout_signal) +
           "\", ";
    out += "\"findings\": {\"errors\": " + std::to_string(s.errors) +
           ", \"warnings\": " + std::to_string(s.warnings) +
           ", \"notes\": " + std::to_string(s.notes) + "}}";
  }
  out += summaries.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace crve::lint
