// Source determinism rule family (CRVE050..CRVE053) and the literal-name
// collision rules (CRVE061 process names, CRVE062 observability names).
//
// A token-level scanner, not a parser: each file is split into lines with
// comments and string/char literals blanked out (block comments and raw
// strings tracked across lines), then the per-line code text is searched
// for identifier-boundary matches of the forbidden tokens. That is exactly
// the right weight for these rules — every invariant is about a token being
// present at all, not about control flow — and it keeps the scanner fast
// enough to run on every campaign start.
//
// Suppressions: a comment containing `crve-lint: allow(CRVE0xx[, ...])`
// suppresses those rules on its own line; when the line holds only the
// comment, it covers the next line instead. A suppression that matches no
// finding is itself reported (CRVE053) so stale ones cannot accumulate.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint.h"

namespace crve::lint {

namespace {

struct ScannedLine {
  std::string code;     // literals/comments replaced by spaces
  std::string comment;  // concatenated comment text on this line
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Splits `text` into lines of (code, comment), blanking string and char
// literals (escapes honoured), // and /* */ comments, and raw string
// literals R"delim(...)delim".
std::vector<ScannedLine> scan_lines(const std::string& text) {
  std::vector<ScannedLine> lines;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string code, comment, raw_delim;
  auto flush = [&]() {
    lines.push_back({code, comment});
    code.clear();
    comment.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush();
      // Strings and char literals do not span lines; recover rather than
      // swallow the rest of the file on unterminated input.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode: {
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string when the quote is preceded by an R
          // that starts the (possibly u8/L/U-prefixed) literal.
          const bool raw = i >= 1 && text[i - 1] == 'R' &&
                           (i < 2 || !ident_char(text[i - 2]) ||
                            text[i - 2] == '8' || text[i - 2] == 'u' ||
                            text[i - 2] == 'U' || text[i - 2] == 'L');
          if (raw) {
            // The d-char-sequence may not contain parentheses, backslash,
            // quotes or whitespace and is at most 16 chars ([lex.string]).
            // Scanning past the first invalid d-char used to run away
            // hunting for '(' — `R")"` would swallow the rest of the file —
            // so stop at the first invalid char and fall back to ordinary
            // string lexing, which is how such ill-formed input reads.
            raw_delim.clear();
            std::size_t j = i + 1;
            bool delim_ok = true;
            while (j < text.size() && text[j] != '(') {
              const char d = text[j];
              if (d == ')' || d == '\\' || d == '"' ||
                  std::isspace(static_cast<unsigned char>(d)) != 0 ||
                  raw_delim.size() >= 16) {
                delim_ok = false;
                break;
              }
              raw_delim += text[j++];
            }
            if (j >= text.size()) delim_ok = false;
            if (delim_ok) {
              i = j;  // consume up to and including '('
              state = State::kRawString;
            } else {
              state = State::kString;
            }
          } else {
            state = State::kString;
          }
          code += ' ';
        } else if (c == '\'') {
          // A quote between digits is a C++14 digit separator, not a char
          // literal (e.g. 1'000'000).
          const bool separator =
              i >= 1 &&
              std::isalnum(static_cast<unsigned char>(text[i - 1])) != 0 &&
              std::isalnum(static_cast<unsigned char>(next)) != 0;
          if (!separator) state = State::kChar;
          code += ' ';
        } else {
          code += c;
        }
        break;
      }
      case State::kLineComment:
        comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && text.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (!code.empty() || !comment.empty()) flush();
  return lines;
}

// Identifier-boundary search for `word` in blanked code text.
bool has_word(const std::string& code, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// `word` used as a call: word followed (spaces allowed) by '('.
bool has_call(const std::string& code, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + word.size();
    while (end < code.size() && (code[end] == ' ' || code[end] == '\t')) {
      ++end;
    }
    if (left_ok && end < code.size() && code[end] == '(') return true;
    pos += word.size();
  }
  return false;
}

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Modules whose output must be byte-identical across runs and worker
// counts: the report/baseline/html/metrics writers and everything they sit
// on (regress, obs, stba, vcd). An unordered container there is one
// refactor away from iteration order reaching an artifact.
bool is_output_module(const std::string& path) {
  const std::string p = normalize(path);
  if (p.find("/regress/") != std::string::npos) return true;
  if (p.find("/obs/") != std::string::npos) return true;
  if (p.find("/stba/") != std::string::npos) return true;
  if (p.find("/vcd/") != std::string::npos) return true;
  if (p.find("/cache/") != std::string::npos) return true;
  const std::string base = basename_of(p);
  const auto dot = base.find_last_of('.');
  const std::string stem = dot == std::string::npos ? base : base.substr(0, dot);
  return stem == "report" || stem == "baseline" || stem == "html_report" ||
         stem == "metrics";
}

// Raw-text scan for `fn("literal"...)` call sites whose first argument is
// a plain string literal (CRVE061/CRVE062 share this). Scans the raw text
// because the per-line code view blanks string literals; a site only
// counts when the blanked code of its line still carries the identifier,
// which filters mentions inside comments and strings. The literal must be
// terminated by ',' — or, with allow_close_paren, by ')' for zero-payload
// registrations like counter("x") — so a computed name
// ("x" + std::to_string(i)) is skipped. With allow_decl_form, one
// whitespace-separated identifier may sit between fn and the '(' — the
// named-guard declaration `SpanGuard var("name")` — while the glued form
// `fn_suffix(` still never matches.
std::vector<std::pair<int, std::string>> literal_call_sites(
    const std::string& text, const std::vector<ScannedLine>& lines,
    const std::string& fn, bool allow_close_paren,
    bool allow_decl_form = false) {
  std::vector<std::pair<int, std::string>> sites;
  std::size_t pos = 0;
  while ((pos = text.find(fn, pos)) != std::string::npos) {
    const std::size_t site = pos;
    pos += fn.size();
    if (site > 0 && ident_char(text[site - 1])) continue;
    std::size_t j = pos;
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (allow_decl_form && j > pos && j < text.size() && ident_char(text[j])) {
      while (j < text.size() && ident_char(text[j])) ++j;
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
    }
    if (j >= text.size() || text[j] != '(') continue;
    const int line =
        1 + static_cast<int>(std::count(
                text.begin(),
                text.begin() + static_cast<std::ptrdiff_t>(site), '\n'));
    if (line > static_cast<int>(lines.size()) ||
        !has_word(lines[static_cast<std::size_t>(line - 1)].code, fn)) {
      continue;
    }
    ++j;
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j >= text.size() || text[j] != '"') continue;
    std::string name;
    for (++j; j < text.size() && text[j] != '"'; ++j) {
      if (text[j] == '\\' && j + 1 < text.size()) ++j;
      name += text[j];
    }
    std::size_t k = j + 1;
    while (k < text.size() &&
           std::isspace(static_cast<unsigned char>(text[k]))) {
      ++k;
    }
    if (k >= text.size()) continue;
    if (text[k] != ',' && !(allow_close_paren && text[k] == ')')) continue;
    sites.emplace_back(line, name);
  }
  return sites;
}

// One surviving (unsuppressed) CRVE062 observability-name site, exported to
// lint_source_tree for the cross-file half of the accounting.
struct ObsSite {
  int line = 0;
  std::string fn;
  std::string name;
};

// Per-line suppression sets parsed from `crve-lint: allow(...)` comments.
struct Suppression {
  std::set<std::string> rules;
  int declared_line = 0;  // where the comment sits (for CRVE053)
  bool used = false;
};

void parse_suppressions(const std::string& comment, int line,
                        std::vector<Suppression>& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("crve-lint:", pos)) != std::string::npos) {
    pos += 10;
    const auto open = comment.find("allow(", pos);
    if (open == std::string::npos) return;
    const auto close = comment.find(')', open);
    if (close == std::string::npos) return;
    Suppression sup;
    sup.declared_line = line;
    std::istringstream list(comment.substr(open + 6, close - open - 6));
    std::string id;
    while (std::getline(list, id, ',')) {
      const auto b = id.find_first_not_of(" \t");
      const auto e = id.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::string trimmed = id.substr(b, e - b + 1);
      // Only catalogue ids count: prose like allow(CRVE0xx) in this very
      // comment must not register as a (then unused) suppression.
      if (find_rule(trimmed) != nullptr) sup.rules.insert(trimmed);
    }
    if (!sup.rules.empty()) out.push_back(std::move(sup));
    pos = close;
  }
}

// Shared implementation of lint_source_text: with a non-null export_sites,
// the surviving CRVE062 sites (first use of each name within this file,
// suppressed sites dropped) are appended for lint_source_tree's cross-file
// accounting.
Report lint_source_text_impl(const std::string& text, const std::string& path,
                             std::vector<ObsSite>* export_sites) {
  const std::string p = normalize(path);
  const bool rng_exempt = ends_with(p, "common/rng.h") ||
                          basename_of(p) == "rng.h";
  const bool main_exempt = basename_of(p) == "main.cpp";
  const bool output_module = is_output_module(p);

  const auto lines = scan_lines(text);

  // suppressions[i] covers line i+1 (1-based): its own line, plus the next
  // line when the declaring line held only the comment.
  std::vector<std::vector<Suppression*>> covers(lines.size() + 2);
  std::vector<Suppression> sups;
  sups.reserve(8);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::vector<Suppression> here;
    parse_suppressions(lines[i].comment, static_cast<int>(i) + 1, here);
    for (auto& sup : here) sups.push_back(std::move(sup));
  }
  // Second pass to wire covers (sups vector is stable now).
  {
    std::size_t next = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      while (next < sups.size() &&
             sups[next].declared_line == static_cast<int>(i) + 1) {
        Suppression* sup = &sups[next++];
        covers[i + 1].push_back(sup);
        const bool comment_only =
            lines[i].code.find_first_not_of(" \t") == std::string::npos;
        if (comment_only && i + 2 < covers.size()) {
          covers[i + 2].push_back(sup);
        }
      }
    }
  }

  Report out;
  auto add = [&](const char* rule, int line, const std::string& message) {
    for (Suppression* sup : covers[static_cast<std::size_t>(line)]) {
      if (sup->rules.count(rule)) {
        sup->used = true;
        return;
      }
    }
    out.add(rule, path, line, message);
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const int line = static_cast<int>(i) + 1;
    if (output_module) {
      for (const char* container : {"unordered_map", "unordered_set"}) {
        if (has_word(code, container)) {
          add("CRVE050", line,
              std::string(container) +
                  " in a deterministic-output module: iteration order is "
                  "unspecified and one loop away from a report; use an "
                  "ordered container or sort before emitting");
        }
      }
    }
    if (!rng_exempt) {
      for (const char* fn : {"rand", "srand"}) {
        if (has_call(code, fn)) {
          add("CRVE051", line,
              std::string(fn) +
                  "() is not seed-reproducible across views; use crve::Rng "
                  "(common/rng.h)");
        }
      }
      if (has_word(code, "random_device")) {
        add("CRVE051", line,
            "std::random_device is non-deterministic by design; use "
            "crve::Rng (common/rng.h)");
      }
      if (code.find("time(nullptr)") != std::string::npos ||
          code.find("time(NULL)") != std::string::npos ||
          code.find("time( nullptr )") != std::string::npos) {
        add("CRVE051", line,
            "wall-clock time as an input makes runs unreproducible; derive "
            "values from the campaign seed instead");
      }
    }
    if (!main_exempt) {
      for (const char* stream : {"std::cout", "std::cerr"}) {
        if (code.find(stream) != std::string::npos) {
          add("CRVE052", line,
              std::string(stream) +
                  " outside a main.cpp bypasses the mutex-serialised log "
                  "sink and interleaves under --jobs; use CRVE_LOG or "
                  "return data to the caller");
        }
      }
    }
  }

  // CRVE061: two processes registered under the same literal name. The
  // kernel addresses processes by name (`after` edges, cycle diagnostics)
  // and throws at elaboration on collision; the lint catches the mistake
  // statically.
  {
    std::vector<std::pair<int, std::string>> sites;  // (line, name)
    for (const char* fn : {"add_comb", "add_clocked"}) {
      for (auto& s :
           literal_call_sites(text, lines, fn, /*allow_close_paren=*/false)) {
        sites.push_back(std::move(s));
      }
    }
    // add_comb and add_clocked share one namespace; report each duplicate
    // against the first site in file order.
    std::sort(sites.begin(), sites.end());
    std::map<std::string, int> first_use;
    for (const auto& [line, name] : sites) {
      const auto [it, inserted] = first_use.emplace(name, line);
      if (!inserted) {
        add("CRVE061", line,
            "process name \"" + name + "\" already registered at line " +
                std::to_string(it->second) +
                "; duplicate names throw at elaboration");
      }
    }
  }

  // CRVE062: one observability name, one call site. The metric cells and
  // span names live in process-wide registries where a duplicated literal
  // does not throw — both sites silently merge into one series, which is
  // usually a copy-paste and never diagnosable from the output. Suppression
  // is consumed at site-collection time: an allowed site vanishes from the
  // within-file accounting here AND from lint_source_tree's cross-file
  // pass, and the suppression always counts as used (file scope cannot see
  // whether the name collides elsewhere).
  {
    std::vector<ObsSite> sites;
    // SpanGuard rides with the macro form: a named guard declaration
    // (`SpanGuard var("name")`) registers the same span namespace as
    // CRVE_SPAN("name"), so both spellings feed one accounting.
    for (const char* fn :
         {"counter", "gauge", "histogram", "CRVE_SPAN", "SpanGuard"}) {
      const bool decl = std::strcmp(fn, "SpanGuard") == 0;
      for (auto& [line, name] : literal_call_sites(
               text, lines, fn, /*allow_close_paren=*/true, decl)) {
        bool suppressed = false;
        for (Suppression* sup : covers[static_cast<std::size_t>(line)]) {
          if (sup->rules.count("CRVE062")) {
            sup->used = true;
            suppressed = true;
          }
        }
        if (suppressed) continue;
        sites.push_back({line, fn, std::move(name)});
      }
    }
    std::sort(sites.begin(), sites.end(),
              [](const ObsSite& a, const ObsSite& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.name < b.name;
              });
    std::map<std::string, const ObsSite*> first_use;
    for (const auto& s : sites) {
      const auto [it, inserted] = first_use.emplace(s.name, &s);
      if (!inserted) {
        add("CRVE062", s.line,
            "observability name \"" + s.name + "\" already used by " +
                it->second->fn + "() at line " +
                std::to_string(it->second->line) +
                "; duplicate metric/span names merge into one series — "
                "rename, or mark intentional sharing with crve-lint: "
                "allow(CRVE062)");
      } else if (export_sites != nullptr) {
        export_sites->push_back(s);
      }
    }
  }

  for (const auto& sup : sups) {
    if (!sup.used) {
      std::string ids;
      for (const auto& r : sup.rules) ids += (ids.empty() ? "" : ", ") + r;
      out.add("CRVE053", path, sup.declared_line,
              "suppression allow(" + ids +
                  ") matches no finding; remove it or fix the rule id");
    }
  }
  out.sort();
  return out;
}

}  // namespace

Report lint_source_text(const std::string& text, const std::string& path) {
  return lint_source_text_impl(text, path, nullptr);
}

Report lint_source_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    Report out;
    out.add("CRVE001", path, 0, "cannot open file");
    return out;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return lint_source_text(buf.str(), path);
}

Report lint_source_tree(const std::string& dir) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".h", ".hpp", ".cpp", ".cc",
                                              ".cxx"};
  std::vector<std::string> files;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    const auto& entry = *it;
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() &&
        (name.rfind("build", 0) == 0 || name.rfind('.', 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (entry.is_regular_file() &&
        kExts.count(entry.path().extension().string())) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  Report out;
  // Cross-file CRVE062: first use of each observability name wins (files in
  // sorted order, sites in file order), every later file re-using it is
  // flagged once against that site.
  std::map<std::string, std::pair<std::string, ObsSite>> first_use;
  for (const auto& f : files) {
    std::ifstream is(f);
    if (!is) {
      out.add("CRVE001", f, 0, "cannot open file");
      continue;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::vector<ObsSite> sites;
    out.merge(lint_source_text_impl(buf.str(), f, &sites));
    for (const auto& s : sites) {
      const auto [it, inserted] = first_use.emplace(s.name, std::make_pair(f, s));
      if (!inserted) {
        out.add("CRVE062", f, s.line,
                "observability name \"" + s.name + "\" already used by " +
                    it->second.second.fn + "() at " + it->second.first + ":" +
                    std::to_string(it->second.second.line) +
                    "; duplicate metric/span names merge into one series — "
                    "rename, or mark intentional sharing with crve-lint: "
                    "allow(CRVE062)");
      }
    }
  }
  out.sort();
  return out;
}

}  // namespace crve::lint
