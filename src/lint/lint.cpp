#include "lint/lint.h"

#include <algorithm>

namespace crve::lint {

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarn:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const std::vector<Rule>& rule_catalogue() {
  // Sorted by id. IDs are append-only: a retired rule keeps its number.
  static const std::vector<Rule> kRules = {
      {"CRVE001", Severity::kError, "config line is not key=value"},
      {"CRVE002", Severity::kError, "unknown configuration key"},
      {"CRVE003", Severity::kWarn, "duplicate key shadows an earlier value"},
      {"CRVE004", Severity::kError, "malformed integer value"},
      {"CRVE005", Severity::kError, "unknown enum value"},
      {"CRVE010", Severity::kError, "n_initiators outside the 1..32 limit"},
      {"CRVE011", Severity::kError, "n_targets outside the 1..32 limit"},
      {"CRVE012", Severity::kError,
       "bus_bytes not a power of two in 1..32 (8..256 bits)"},
      {"CRVE013", Severity::kError,
       "latency arbitration without a latency_deadline list"},
      {"CRVE014", Severity::kError,
       "per-initiator list length differs from n_initiators"},
      {"CRVE015", Severity::kError,
       "bandwidth arbitration without quotas or with window < 1"},
      {"CRVE016", Severity::kError,
       "programmable arbitration without programming_port=1"},
      {"CRVE017", Severity::kError,
       "partial crossbar xbar_group length differs from n_targets"},
      {"CRVE018", Severity::kError, "xbar_group id outside 0..n_targets-1"},
      {"CRVE019", Severity::kWarn,
       "empty xbar group id inside the used range"},
      {"CRVE020", Severity::kNote,
       "key has no effect under this arch/arb and is ignored"},
      {"CRVE021", Severity::kWarn, "non-positive latency deadline"},
      {"CRVE030", Severity::kError,
       "duplicate configuration name across the directory"},
      {"CRVE031", Severity::kNote, "directory contains no .cfg files"},
      {"CRVE040", Severity::kError,
       "duplicate (test, seed) pair in the campaign plan"},
      {"CRVE041", Severity::kError,
       "alignment threshold outside (0, 1]"},
      {"CRVE042", Severity::kError, "campaign has no tests or no seeds"},
      {"CRVE050", Severity::kError,
       "unordered container in a deterministic-output module"},
      {"CRVE051", Severity::kError,
       "non-deterministic source (rand/random_device/time) outside "
       "common/rng.h"},
      {"CRVE052", Severity::kError,
       "raw std::cout/std::cerr outside a main.cpp"},
      {"CRVE053", Severity::kWarn, "crve-lint suppression matches nothing"},
      {"CRVE060", Severity::kWarn,
       "sanitizer-instrumented build probing a campaign cache with "
       "uninstrumented entries"},
      {"CRVE061", Severity::kWarn,
       "duplicate literal process name in add_comb/add_clocked"},
      {"CRVE062", Severity::kWarn,
       "duplicate literal observability name in counter/gauge/histogram/"
       "CRVE_SPAN/SpanGuard"},
      {"CRVE100", Severity::kWarn,
       "signal is read but never written (constant after elaboration)"},
      {"CRVE101", Severity::kWarn,
       "signal is written by a process but read by none (dead logic)"},
      {"CRVE102", Severity::kError,
       "multiple combinational processes drive the same signal"},
      {"CRVE103", Severity::kWarn,
       "combinational process writes signals but has no visible inputs "
       "(no reads, StateTag or after edges): never re-evaluated"},
      {"CRVE104", Severity::kWarn,
       "data-dependent read observed post-settle but missing from "
       "CombOpts::reads (under-declaration)"},
      {"CRVE105", Severity::kNote,
       "declared CombOpts read never observed in either elaboration "
       "evaluation (possible over-declaration)"},
      {"CRVE106", Severity::kNote,
       "dynamic fixpoint opt-out whose recorded graph is static across "
       "both elaboration evaluations"},
      {"CRVE107", Severity::kNote,
       "schedule depth or signal fanout exceeds the report threshold"},
      {"CRVE108", Severity::kWarn,
       "unreachable process: no reads, writes, state or ordering edges"},
      {"CRVE110", Severity::kError,
       "environment signal present in one view but missing from the other"},
  };
  return kRules;
}

const Rule* find_rule(const std::string& id) {
  const auto& rules = rule_catalogue();
  const auto it = std::lower_bound(
      rules.begin(), rules.end(), id,
      [](const Rule& r, const std::string& key) { return key > r.id; });
  if (it != rules.end() && id == it->id) return &*it;
  return nullptr;
}

std::string Finding::text() const {
  std::string out = file;
  if (line > 0) out += ":" + std::to_string(line);
  out += ": " + to_string(severity) + "[" + rule_id + "]: " + message;
  return out;
}

void Report::add(const std::string& rule_id, const std::string& file,
                 int line, const std::string& message) {
  const Rule* rule = find_rule(rule_id);
  Finding f;
  f.rule_id = rule_id;
  f.severity = rule ? rule->severity : Severity::kError;
  f.file = file;
  f.line = line;
  f.message = message;
  findings.push_back(std::move(f));
}

int Report::count(Severity s) const {
  int n = 0;
  for (const auto& f : findings) n += f.severity == s ? 1 : 0;
  return n;
}

int Report::exit_code(bool werror) const {
  if (errors() > 0) return 2;
  if (warnings() > 0) return werror ? 2 : 1;
  return 0;
}

void Report::merge(Report&& other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
  other.findings.clear();
}

void Report::sort() {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.rule_id != b.rule_id) return a.rule_id < b.rule_id;
                     return a.message < b.message;
                   });
}

}  // namespace crve::lint
