// crve_lint — static analysis for node configurations, campaign plans and
// the determinism invariants of the source tree.
//
// The paper's regression tool assumes every configuration it loads is legal
// ("it's sufficient to indicate the directory to which the tool has to
// point"); parse_config only rejects malformed syntax. This subsystem is
// the shift-left complement: a rule engine with stable rule IDs (CRVE0xx),
// three severities and three output formats (text, JSON, SARIF 2.1.0) that
// catches semantically broken configs and non-deterministic code paths
// *before* a multi-hour campaign runs.
//
// Three rule families (full catalogue in DESIGN.md §12 and §17):
//   * config/campaign rules — paper port/width limits, arbitration and
//     architecture coupling (latency ⇒ deadlines, bandwidth ⇒ quotas,
//     prog ⇒ programming port, partial ⇒ xbar groups), unknown/duplicate
//     keys, duplicate names across a directory, campaign-plan sanity;
//   * source determinism rules — a token-level scanner enforcing the
//     invariants the byte-identical report guarantee depends on: no
//     unordered-container iteration feeding report/baseline/html/metrics
//     output, no rand()/std::random_device/time(nullptr) outside
//     common/rng.h, no raw std::cout/std::cerr outside main.cpp files.
//     Findings are suppressed inline with `// crve-lint: allow(CRVE0xx)`.
//   * design rules (CRVE100..110, design_rules.cpp) — whole-design
//     structural analysis over the elaborated sim::DesignGraph: undriven /
//     dead signals, multiple combinational drivers, stale-read hazards,
//     read-set declaration drift, dynamic opt-outs that look static,
//     unreachable processes, schedule-depth/fanout hotspots and the
//     cross-view environment-signal comparison. The per-config driver that
//     elaborates testbenches lives one layer up in design_lint.h.
//
// Exit-code contract (crve_lint CLI and Report::exit_code): 0 = clean or
// notes only, 1 = warnings, 2 = errors; --werror promotes warnings (and
// only warnings — notes never escalate, in any renderer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stbus/config.h"

namespace crve::sim {
struct DesignGraph;
}

namespace crve::lint {

enum class Severity : std::uint8_t { kNote = 0, kWarn = 1, kError = 2 };

std::string to_string(Severity s);

// One catalogue entry. IDs are stable across releases: renumbering would
// invalidate stored SARIF baselines and inline suppressions.
struct Rule {
  const char* id;       // "CRVE0xx"
  Severity severity;    // default severity of findings under this rule
  const char* summary;  // one line; SARIF shortDescription
};

// The full rule catalogue, sorted by id.
const std::vector<Rule>& rule_catalogue();

// Catalogue lookup; nullptr for an unknown id.
const Rule* find_rule(const std::string& id);

struct Finding {
  std::string rule_id;
  Severity severity = Severity::kError;
  std::string file;  // path, or a pseudo-origin like "<plan>"
  int line = 0;      // 1-based; 0 = whole-file / whole-plan finding
  std::string message;

  // "file:line: error[CRVE013]: message" (line omitted when 0).
  std::string text() const;
};

struct Report {
  std::vector<Finding> findings;

  // Appends a finding under `rule_id` with the rule's default severity.
  void add(const std::string& rule_id, const std::string& file, int line,
           const std::string& message);
  int count(Severity s) const;
  int errors() const { return count(Severity::kError); }
  int warnings() const { return count(Severity::kWarn); }

  // 0 = clean or notes only, 1 = warnings present, 2 = errors present.
  // werror promotes warnings to the error exit code.
  int exit_code(bool werror = false) const;

  void merge(Report&& other);
  // Deterministic ordering: (file, line, rule, message).
  void sort();
};

// --- Config / campaign rules (config_rules.cpp) ---------------------------

// Lints one configuration text without throwing: tolerant key=value scan
// (unknown/duplicate keys, bad integers, bad enums) followed by the
// semantic rules over whatever parsed. `origin` tags every finding.
Report lint_config_text(const std::string& text, const std::string& origin);
Report lint_config_file(const std::string& path);

// Lints every *.cfg in `dir` (sorted by filename, like configs_from_dir)
// plus the cross-file rules (duplicate `name`).
Report lint_config_dir(const std::string& dir);

// Semantic rules over an already-parsed NodeConfig (no text available, so
// the key-level rules don't apply). Lists that validate_and_normalize()
// would default-fill are only checked when non-empty.
Report lint_node_config(const stbus::NodeConfig& cfg,
                        const std::string& origin);

// What crve_regress is about to run: the (test, seed) matrix and the
// sign-off threshold. Kept free of regress types so lint stays below
// regress in the dependency order.
struct CampaignSpec {
  std::vector<std::string> tests;
  std::vector<std::uint64_t> seeds;
  double alignment_threshold = 0.99;
};

Report lint_campaign(const CampaignSpec& spec,
                     const std::string& origin = "<plan>");

// CRVE060: a sanitizer-instrumented build probing a campaign cache whose
// entries came from an uninstrumented build. Those entries can never hit
// (the build flavour is part of the job hash), so the cache silently
// re-runs everything — and a hand-copied or downgraded cache replaying
// them would bypass exactly the checks the instrumented build exists for.
// Reads <cache_dir>/index.json tolerantly: a missing, empty or corrupt
// index is clean (the cache module reconciles its own corruption).
Report lint_cache_provenance(const std::string& cache_dir,
                             bool build_sanitized,
                             const std::string& origin = "<cache>");

// --- Source determinism rules (source_rules.cpp) --------------------------

// Token-level scan of one C++ source text: comments, string/char literals
// (including raw strings) are stripped before matching, and `// crve-lint:
// allow(CRVE0xx[, ...])` comments suppress findings on their own line (or,
// for comment-only lines, the next line). `path` selects the per-file
// exemptions (main.cpp, common/rng.h, deterministic-output modules).
//
// CRVE061 additionally scans the raw text for add_comb("x")/add_clocked("x")
// call sites whose name argument is a plain string literal and flags
// within-file duplicates: the kernel addresses processes by name (`after`
// edges, cycle diagnostics) and throws on collision at elaboration, so the
// lint surfaces the mistake before a simulation ever runs. Names built with
// a computed suffix ("x" + std::to_string(i)) are skipped.
//
// CRVE062 applies the same raw-text scan to the observability name
// registries — counter("x"), gauge("x"), histogram("x", v), CRVE_SPAN("x")
// and the named-guard form SpanGuard var("x") — where a duplicated literal
// does NOT throw: both sites
// silently merge into one metric series or span name, which is usually a
// copy-paste and never diagnosable from the output. Within-file duplicates
// are flagged here; lint_source_tree extends the accounting across files.
// An intentional shared name is suppressed at its site with `crve-lint:
// allow(CRVE062)`, which removes the site from both scopes; because file
// scope cannot see cross-file duplication, a CRVE062 suppression always
// counts as used and is never flagged by CRVE053.
Report lint_source_text(const std::string& text, const std::string& path);
Report lint_source_file(const std::string& path);

// Recursively lints every .h/.hpp/.cpp/.cc/.cxx under `dir`, skipping
// hidden directories and build trees; paths are visited in sorted order.
// Also the cross-file half of CRVE062: observability names surviving each
// file's scan are checked for collisions across the whole tree.
Report lint_source_tree(const std::string& dir);

// --- Design rules (design_rules.cpp) --------------------------------------

// Report thresholds for the schedule-shape rule (CRVE107). The full numbers
// always land in the design summary artifact; the rule only *flags* shapes
// beyond these bounds.
struct DesignRuleOptions {
  // Flag when the rank schedule is deeper than this many levels.
  std::size_t max_rank_depth = 16;
  // Flag a signal whose static combinational fanout exceeds this.
  std::size_t max_fanout = 64;
};

// CRVE100..108 over one elaborated view. `origin` tags every finding (the
// .cfg path or a pseudo-origin); `view` names the elaborated model ("RTL",
// "BCA") inside messages.
Report lint_design_graph(const sim::DesignGraph& g, const std::string& origin,
                         const std::string& view,
                         const DesignRuleOptions& opts = {});

// CRVE110: environment-side (tb.*) signals present in one view's graph but
// absent from the other, in both directions. DUT-internal names legitimately
// differ across views; the shared environment may not.
Report lint_design_views(const sim::DesignGraph& a, const std::string& view_a,
                         const sim::DesignGraph& b, const std::string& view_b,
                         const std::string& origin);

// --- Renderers (render.cpp) -----------------------------------------------

// One line per finding plus a summary line.
std::string render_text(const Report& report);

// {"build": ..., "summary": ..., "findings": [...]}. `werror` must match the
// flag passed to Report::exit_code so the embedded "exit_code" field agrees
// with the process exit status.
std::string render_json(const Report& report, bool werror = false);

// SARIF 2.1.0 with the full rule catalogue as tool.driver.rules, suitable
// for GitHub code scanning upload.
std::string render_sarif(const Report& report);

// The catalogue as "CRVE0xx  severity  summary" lines (crve_lint --rules).
std::string render_rules();

}  // namespace crve::lint
