// crve_lint — static config/campaign linter, determinism scanner and
// elaboration-time design linter.
//
//   crve_lint PATH... [--format text|json|sarif] [--out FILE] [--werror]
//   crve_lint --design PATH... [--design-summary FILE] [same output flags]
//   crve_lint --design-selftest [same output flags]
//   crve_lint --rules
//
// Default mode classifies each PATH by what it holds:
//   *.cfg file                  -> config rules (CRVE001..021)
//   directory with *.cfg files  -> config + cross-file rules (CRVE030..031)
//   .h/.hpp/.cpp/.cc/.cxx file  -> source determinism rules (CRVE050..053)
//   any other directory         -> recursive source scan
//
// --design elaborates each configuration's full verification environment
// once per DUT view (no simulation) and runs the CRVE100..110 design rules
// over the exported graphs; --design-summary additionally writes the
// per-config design summary JSON artifact. --design-selftest lints a
// deliberately defective built-in design (guaranteed CRVE102 error +
// CRVE100 warning) so CI can assert the exit-2 path without a broken model
// in the tree.
//
// Exit status: 0 = clean or notes only, 1 = warnings, 2 = errors (or
// warnings under --werror), matching Report::exit_code. Usage errors also
// exit 2. The full catalogue is in DESIGN.md §12 and §17.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/design_lint.h"
#include "lint/lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: crve_lint PATH... [--format text|json|sarif]\n"
               "                 [--out FILE] [--werror]\n"
               "       crve_lint --design PATH... [--design-summary FILE]\n"
               "       crve_lint --design-selftest\n"
               "       crve_lint --rules\n");
  return 2;
}

bool has_ext(const std::filesystem::path& p,
             std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* x : exts) {
    if (e == x) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string out_path;
  std::string summary_path;
  bool werror = false;
  bool design = false;
  bool selftest = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--format") {
      const char* v = next();
      if (!v) return usage();
      format = v;
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return usage();
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_path = v;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--design") {
      design = true;
    } else if (arg == "--design-summary") {
      const char* v = next();
      if (!v) return usage();
      summary_path = v;
    } else if (arg == "--design-selftest") {
      selftest = true;
    } else if (arg == "--rules") {
      std::printf("%s", crve::lint::render_rules().c_str());
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (!selftest && paths.empty()) return usage();

  namespace fs = std::filesystem;
  crve::lint::Report report;
  std::vector<crve::lint::DesignSummary> summaries;
  if (selftest) {
    report = crve::lint::lint_design_selftest().report;
  } else if (design) {
    for (const auto& p : paths) {
      const fs::path path(p);
      std::error_code ec;
      crve::lint::DesignLintResult res;
      if (fs::is_directory(path, ec)) {
        res = crve::lint::lint_design_dir(p);
      } else if (fs::is_regular_file(path, ec) && has_ext(path, {".cfg"})) {
        res = crve::lint::lint_design_file(p);
      } else {
        std::fprintf(stderr, "error: --design expects .cfg files or "
                             "directories, got %s\n", p.c_str());
        return 2;
      }
      report.merge(std::move(res.report));
      summaries.insert(summaries.end(),
                       std::make_move_iterator(res.summaries.begin()),
                       std::make_move_iterator(res.summaries.end()));
    }
  } else {
    for (const auto& p : paths) {
      const fs::path path(p);
      std::error_code ec;
      if (fs::is_directory(path, ec)) {
        bool has_cfg = false;
        for (const auto& e : fs::directory_iterator(path, ec)) {
          if (e.is_regular_file() && e.path().extension() == ".cfg") {
            has_cfg = true;
            break;
          }
        }
        report.merge(has_cfg ? crve::lint::lint_config_dir(p)
                             : crve::lint::lint_source_tree(p));
      } else if (fs::is_regular_file(path, ec)) {
        if (has_ext(path, {".cfg"})) {
          report.merge(crve::lint::lint_config_file(p));
        } else if (has_ext(path, {".h", ".hpp", ".cpp", ".cc", ".cxx"})) {
          report.merge(crve::lint::lint_source_file(p));
        } else {
          std::fprintf(stderr, "skipping %s: not a .cfg or C++ source\n",
                       p.c_str());
        }
      } else {
        std::fprintf(stderr, "error: cannot stat %s\n", p.c_str());
        return 2;
      }
    }
  }
  report.sort();

  if (!summary_path.empty()) {
    std::ofstream ss(summary_path);
    ss << crve::lint::design_summary_json(summaries);
    if (!ss) {
      std::fprintf(stderr, "error: cannot write %s\n", summary_path.c_str());
      return 2;
    }
  }

  std::string rendered;
  if (format == "json") {
    rendered = crve::lint::render_json(report, werror);
  } else if (format == "sarif") {
    rendered = crve::lint::render_sarif(report);
  } else {
    rendered = crve::lint::render_text(report);
  }
  if (out_path.empty()) {
    std::printf("%s", rendered.c_str());
  } else {
    std::ofstream os(out_path);
    os << rendered;
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 2;
    }
    // Keep the human summary on stdout even when the report goes to a file.
    std::printf("%s", crve::lint::render_text(report).c_str());
  }
  return report.exit_code(werror);
}
