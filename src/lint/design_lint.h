// Design-lint driver: elaborate configurations, lint the graphs.
//
// The rule half of the design family (design_rules.cpp) is a pure function
// over sim::DesignGraph and lives in crve_lint. This driver is the half that
// *produces* those graphs: for each node configuration it builds the full
// common verification environment (verif::Testbench) around the RTL view and
// the BCA view, initializes each — no simulation, elaboration only — exports
// the design graphs, runs CRVE100..108 per view plus the CRVE110 cross-view
// comparison, and collects a per-config design summary for the artifact and
// the dashboard's "Design health" panel. Linking verif (and regress, for the
// .cfg parser) puts it above crve_lint in the dependency order, which is why
// it is a separate library (crve_design_lint) linked by the CLIs only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace crve::lint {

// Elaboration-time shape of one (config, view) pair, for the design summary
// artifact and the dashboard panel. Everything here is deterministic: the
// graph is a pure function of the configuration and the (fixed) elaboration
// seed, so the summary is byte-identical across runs and job counts.
struct DesignSummary {
  std::string config;  // NodeConfig::name
  std::string origin;  // .cfg path, or a pseudo-origin like "<design>"
  std::string view;    // "RTL" / "BCA"
  std::size_t signals = 0;
  std::size_t comb_processes = 0;
  std::size_t clocked_processes = 0;
  std::size_t ranks = 0;  // schedule depth == combinational critical path
  std::size_t max_fanout = 0;
  std::string max_fanout_signal;  // first signal reaching max_fanout
  int errors = 0;    // design findings against this (config, view)
  int warnings = 0;
  int notes = 0;
};

struct DesignLintResult {
  Report report;
  std::vector<DesignSummary> summaries;  // config order, RTL then BCA
};

// Lints one .cfg file: parse, elaborate both views, run the per-view and
// cross-view design rules. A config that fails to parse or elaborate
// produces a CRVE-less error finding under the config-rule family instead
// of throwing (the config linter will have reported the details).
DesignLintResult lint_design_file(const std::string& cfg_path,
                                  const DesignRuleOptions& opts = {});

// Lints every *.cfg in `dir`, sorted by filename (the configs_from_dir
// order), concatenating reports and summaries.
DesignLintResult lint_design_dir(const std::string& dir,
                                 const DesignRuleOptions& opts = {});

// Lints an already-parsed configuration (no file involved).
DesignLintResult lint_design_config(const stbus::NodeConfig& cfg,
                                    const std::string& origin,
                                    const DesignRuleOptions& opts = {});

// Deliberately defective elaboration for the CI negative check and the
// crve_regress gate tests (`--design-selftest`): a small context with two
// combinational drivers of one signal and an undriven read, guaranteed to
// produce a CRVE102 error (exit code 2) plus a CRVE100 warning. Exercises
// graph export, the rules and the exit-code contract end to end without
// needing a shippable-but-broken model in the tree.
DesignLintResult lint_design_selftest();

// The summaries as a pretty JSON document ({"build": ..., "configs": [...]}),
// the per-config design summary artifact crve_regress writes next to
// report.json.
std::string design_summary_json(const std::vector<DesignSummary>& summaries);

}  // namespace crve::lint
