// Design rule family (CRVE100..CRVE110) over the elaborated design graph
// (sim::DesignGraph, DESIGN.md §17).
//
// The compiled-schedule kernel discovers every combinational process's
// read/write sets at initialize(); the export adds one post-settle recheck
// evaluation per combinational process, one instrumented evaluation per
// clocked process, and the CombOpts/ClockedOpts declarations. These rules
// are a pure function of that graph — no simulation, no heuristics over
// source text — so a finding is a statement about the design the kernel
// will actually schedule.
//
// Read/write visibility is deliberately asymmetric. Combinational sets are
// near-exact (recorded ∪ declared is what the scheduler itself uses);
// clocked sets are a single evaluation plus declarations, so the driven/read
// rules (CRVE100/101) treat clocked declarations as first-class: a BFM that
// declares it writes the request pins counts as their driver even when its
// first evaluation only drove idle levels.
#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "sim/design_graph.h"

namespace crve::lint {

namespace {

using sim::DesignGraph;
using sim::DesignProc;

bool contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

// Effective read set of a combinational process: what the scheduler uses.
bool comb_effective_read(const DesignProc& p, int s) {
  return contains(p.reads, s) || contains(p.declared_reads, s);
}

bool proc_reads(const DesignProc& p, int s) {
  if (p.clocked) return contains(p.reads, s) || contains(p.declared_reads, s);
  return comb_effective_read(p, s) || contains(p.recheck_reads, s);
}

bool proc_writes(const DesignProc& p, int s) {
  if (p.clocked) {
    return contains(p.writes, s) || contains(p.declared_writes, s);
  }
  return contains(p.writes, s) || contains(p.declared_writes, s) ||
         contains(p.recheck_writes, s);
}

std::string view_prefix(const std::string& view) {
  return view.empty() ? std::string() : "view " + view + ": ";
}

}  // namespace

Report lint_design_graph(const sim::DesignGraph& g, const std::string& origin,
                         const std::string& view,
                         const DesignRuleOptions& opts) {
  Report rep;
  const std::string vp = view_prefix(view);
  const int n_signals = static_cast<int>(g.signals.size());

  // Per-signal reader/writer tallies, one pass over the processes.
  std::vector<std::vector<int>> comb_writers(g.signals.size());
  std::vector<int> read_by(g.signals.size(), 0);
  std::vector<int> written_by(g.signals.size(), 0);
  std::vector<int> first_reader(g.signals.size(), -1);
  std::vector<std::size_t> comb_fanout(g.signals.size(), 0);
  for (std::size_t pi = 0; pi < g.procs.size(); ++pi) {
    const DesignProc& p = g.procs[pi];
    auto tally = [&](const std::vector<int>& set, std::vector<int>& counter) {
      for (const int s : set) ++counter[static_cast<std::size_t>(s)];
    };
    auto note_readers = [&](const std::vector<int>& set) {
      for (const int s : set) {
        if (first_reader[static_cast<std::size_t>(s)] < 0) {
          first_reader[static_cast<std::size_t>(s)] = static_cast<int>(pi);
        }
      }
    };
    if (p.clocked) {
      tally(p.reads, read_by);
      tally(p.declared_reads, read_by);
      tally(p.writes, written_by);
      tally(p.declared_writes, written_by);
      note_readers(p.reads);
      note_readers(p.declared_reads);
    } else {
      tally(p.reads, read_by);
      tally(p.declared_reads, read_by);
      tally(p.recheck_reads, read_by);
      tally(p.writes, written_by);
      tally(p.declared_writes, written_by);
      tally(p.recheck_writes, written_by);
      note_readers(p.reads);
      note_readers(p.declared_reads);
      note_readers(p.recheck_reads);
      for (const int s : p.writes) {
        comb_writers[static_cast<std::size_t>(s)].push_back(
            static_cast<int>(pi));
      }
      for (const int s : p.declared_writes) {
        auto& w = comb_writers[static_cast<std::size_t>(s)];
        if (w.empty() || w.back() != static_cast<int>(pi)) {
          w.push_back(static_cast<int>(pi));
        }
      }
      for (const int s : p.recheck_writes) {
        auto& w = comb_writers[static_cast<std::size_t>(s)];
        if (w.empty() || w.back() != static_cast<int>(pi)) {
          w.push_back(static_cast<int>(pi));
        }
      }
      if (!p.dynamic) {
        for (const int s : p.reads) {
          ++comb_fanout[static_cast<std::size_t>(s)];
        }
        for (const int s : p.declared_reads) {
          if (!contains(p.reads, s)) ++comb_fanout[static_cast<std::size_t>(s)];
        }
      }
    }
  }

  // CRVE100: read but never written — the reader sees the construction-time
  // default forever. Construction-strapped constants are drivers.
  // CRVE101: written by a process but read by none. Waveform/trace sampling
  // is observability, not function, so it does not count as a reader.
  // CRVE102: more than one combinational driver — last-writer-wins would
  // depend on schedule order, exactly the nondeterminism the compiled
  // kernel exists to exclude.
  for (int s = 0; s < n_signals; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const std::string& sname = g.signals[si].name;
    if (read_by[si] > 0 && written_by[si] == 0 &&
        !g.signals[si].construction_written) {
      rep.add("CRVE100", origin, 0,
              vp + "signal '" + sname + "' is read (first by process '" +
                  g.procs[static_cast<std::size_t>(first_reader[si])].name +
                  "') but never written: it stays at its default value "
                  "forever");
    }
    if (written_by[si] > 0 && read_by[si] == 0) {
      rep.add("CRVE101", origin, 0,
              vp + "signal '" + sname +
                  "' is written but read by no process (dead logic; trace "
                  "sampling does not count as a reader)");
    }
    if (comb_writers[si].size() > 1) {
      std::string names;
      for (const int pi : comb_writers[si]) {
        if (!names.empty()) names += ", ";
        names += "'" + g.procs[static_cast<std::size_t>(pi)].name + "'";
      }
      rep.add("CRVE102", origin, 0,
              vp + "signal '" + sname + "' has " +
                  std::to_string(comb_writers[si].size()) +
                  " combinational drivers (" + names +
                  "): settle order decides the final value");
    }
  }

  // Producer side of `after` edges: a process someone schedules after has an
  // observable effect (a decision wire through module members) even with no
  // signal writes.
  std::vector<char> is_after_producer(g.procs.size(), 0);
  for (const DesignProc& p : g.procs) {
    for (const int producer : p.after) {
      is_after_producer[static_cast<std::size_t>(producer)] = 1;
    }
  }

  for (std::size_t pi = 0; pi < g.n_comb; ++pi) {
    const DesignProc& p = g.procs[pi];
    const bool no_inputs = p.reads.empty() && p.declared_reads.empty() &&
                           p.after.empty() && !p.has_state_tag && !p.dynamic;
    const bool no_writes = p.writes.empty() && p.declared_writes.empty() &&
                           p.recheck_writes.empty();

    // CRVE103: outputs with no visible inputs. The compiled schedule
    // re-evaluates a process only when a read signal commits, its StateTag
    // bumps or an `after` producer runs; with none of those, the values it
    // computed at elaboration are frozen — any module state it actually
    // consults goes stale silently.
    if (no_inputs && !no_writes) {
      rep.add("CRVE103", origin, 0,
              vp + "combinational process '" + p.name +
                  "' writes signals but has no recorded or declared reads, "
                  "no StateTag and no after edges: the compiled schedule "
                  "will never re-evaluate it after elaboration");
    }

    // CRVE108: no reads, no writes, no ordering role — a no-op the schedule
    // carries for nothing.
    if (no_inputs && no_writes && !is_after_producer[pi]) {
      rep.add("CRVE108", origin, 0,
              vp + "combinational process '" + p.name +
                  "' neither reads nor writes any signal and takes no part "
                  "in ordering: it can never have an observable effect");
    }

    if (!p.dynamic) {
      // CRVE104: the post-settle recheck took a branch the scheduler cannot
      // see. A commit to that signal will not re-dirty this process — the
      // classic stale read the CombOpts::reads contract exists to prevent.
      for (const int s : p.recheck_reads) {
        if (!comb_effective_read(p, s)) {
          rep.add("CRVE104", origin, 0,
                  vp + "combinational process '" + p.name +
                      "' read signal '" +
                      g.signals[static_cast<std::size_t>(s)].name +
                      "' when re-evaluated against the settled design, but "
                      "the signal is in neither its recorded nor its "
                      "declared read set: declare it via CombOpts::reads");
        }
      }
      // CRVE105: declared but never seen in either evaluation. Note-level:
      // a legitimately conditional read may hide from both passes.
      for (const int s : p.declared_reads) {
        if (!contains(p.reads, s) && !contains(p.recheck_reads, s)) {
          rep.add("CRVE105", origin, 0,
                  vp + "combinational process '" + p.name +
                      "' declares a read of '" +
                      g.signals[static_cast<std::size_t>(s)].name +
                      "' that neither elaboration evaluation observed; a "
                      "stale declaration widens the dirty set for nothing");
        }
      }
    } else {
      // CRVE106: the fixpoint tail runs this process every cycle. If both
      // instrumented evaluations agree on its read/write sets, the
      // opt-out's only measurable effect so far is the per-cycle cost.
      if (p.reads == p.recheck_reads && p.writes == p.recheck_writes) {
        rep.add("CRVE106", origin, 0,
                vp + "dynamic combinational process '" + p.name +
                    "' recorded identical read/write sets in both "
                    "elaboration evaluations; if the read set is truly "
                    "static, drop CombOpts::dynamic and let it rank");
      }
    }
  }

  // CRVE107: schedule-shape report. The full numbers always travel in the
  // design summary artifact; findings only flag shapes past the thresholds.
  if (g.n_ranks > opts.max_rank_depth) {
    rep.add("CRVE107", origin, 0,
            vp + "rank schedule is " + std::to_string(g.n_ranks) +
                " levels deep (threshold " +
                std::to_string(opts.max_rank_depth) +
                "): the combinational critical path grew past the budget");
  }
  for (int s = 0; s < n_signals; ++s) {
    const auto si = static_cast<std::size_t>(s);
    if (comb_fanout[si] > opts.max_fanout) {
      rep.add("CRVE107", origin, 0,
              vp + "signal '" + g.signals[si].name + "' fans out to " +
                  std::to_string(comb_fanout[si]) +
                  " static combinational readers (threshold " +
                  std::to_string(opts.max_fanout) +
                  "): every commit marks them all dirty");
    }
  }

  return rep;
}

Report lint_design_views(const sim::DesignGraph& a, const std::string& view_a,
                         const sim::DesignGraph& b, const std::string& view_b,
                         const std::string& origin) {
  Report rep;
  auto env_names = [](const sim::DesignGraph& g) {
    std::vector<std::string> names;
    for (const auto& s : g.signals) {
      if (s.name.rfind("tb.", 0) == 0) names.push_back(s.name);
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  const auto na = env_names(a);
  const auto nb = env_names(b);
  auto report_missing = [&](const std::vector<std::string>& have,
                            const std::vector<std::string>& other,
                            const std::string& have_view,
                            const std::string& missing_view) {
    for (const auto& n : have) {
      if (!std::binary_search(other.begin(), other.end(), n)) {
        rep.add("CRVE110", origin, 0,
                "environment signal '" + n + "' exists in the " + have_view +
                    " view but not in the " + missing_view +
                    " view: the common environment diverged");
      }
    }
  };
  report_missing(na, nb, view_a, view_b);
  report_missing(nb, na, view_b, view_a);
  return rep;
}

}  // namespace crve::lint
