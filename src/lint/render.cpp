// Text / JSON / SARIF 2.1.0 renderers for lint reports.
//
// The SARIF output targets GitHub code scanning: one run, the full rule
// catalogue as tool.driver.rules (so suppressed-at-zero rules still show in
// the UI), results carrying ruleId/ruleIndex/level and a physical location.
// Severity mapping follows the SARIF level vocabulary: note/warning/error.
#include <string>

#include "common/build_info.h"
#include "common/json.h"
#include "lint/lint.h"

namespace crve::lint {

namespace {

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarn:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

}  // namespace

std::string render_text(const Report& report) {
  std::string out;
  for (const auto& f : report.findings) {
    out += f.text();
    out += '\n';
  }
  out += "lint: " + std::to_string(report.errors()) + " error(s), " +
         std::to_string(report.warnings()) + " warning(s), " +
         std::to_string(report.count(Severity::kNote)) + " note(s)\n";
  return out;
}

std::string render_json(const Report& report, bool werror) {
  std::string out = "{\n";
  out += "  \"build\": " + build_info_json("  ") + ",\n";
  out += "  \"summary\": {\n";
  out += "    \"errors\": " + std::to_string(report.errors()) + ",\n";
  out += "    \"warnings\": " + std::to_string(report.warnings()) + ",\n";
  out += "    \"notes\": " + std::to_string(report.count(Severity::kNote)) +
         "\n  },\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const auto& f = report.findings[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"rule\": \"" + json::escape(f.rule_id) + "\", ";
    out += "\"severity\": \"" + to_string(f.severity) + "\", ";
    out += "\"file\": \"" + json::escape(f.file) + "\", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"message\": \"" + json::escape(f.message) + "\"}";
  }
  out += report.findings.empty() ? "],\n" : "\n  ],\n";
  // Same promotion rule as the process exit status: --werror escalates
  // warnings only; notes stay notes in every renderer.
  out += "  \"exit_code\": " + std::to_string(report.exit_code(werror)) + "\n";
  out += "}\n";
  return out;
}

std::string render_sarif(const Report& report) {
  const auto& rules = rule_catalogue();
  std::string out = "{\n";
  out +=
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"crve_lint\",\n";
  out += "          \"version\": \"1.0.0\",\n";
  out += "          \"informationUri\": "
         "\"https://example.invalid/crve/DESIGN.md\",\n";
  out += "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += i ? ",\n            {" : "\n            {";
    out += "\"id\": \"" + std::string(rules[i].id) + "\", ";
    out += "\"shortDescription\": {\"text\": \"" +
           json::escape(rules[i].summary) + "\"}, ";
    out += "\"defaultConfiguration\": {\"level\": \"" +
           std::string(sarif_level(rules[i].severity)) + "\"}}";
  }
  out += "\n          ]\n        }\n      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const auto& f = report.findings[i];
    int rule_index = -1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (f.rule_id == rules[r].id) {
        rule_index = static_cast<int>(r);
        break;
      }
    }
    out += i ? ",\n        {" : "\n        {";
    out += "\"ruleId\": \"" + json::escape(f.rule_id) + "\", ";
    out += "\"ruleIndex\": " + std::to_string(rule_index) + ", ";
    out += "\"level\": \"" + std::string(sarif_level(f.severity)) + "\", ";
    out += "\"message\": {\"text\": \"" + json::escape(f.message) + "\"}";
    // Pseudo-origins like "<plan>" carry no artifact; GitHub accepts
    // results without locations.
    if (!f.file.empty() && f.file.front() != '<') {
      std::string uri = f.file;
      if (uri.rfind("./", 0) == 0) uri = uri.substr(2);
      out += ", \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \"" +
             json::escape(uri) + "\"}";
      if (f.line > 0) {
        out += ", \"region\": {\"startLine\": " + std::to_string(f.line) +
               "}";
      }
      out += "}}]";
    }
    out += "}";
  }
  out += report.findings.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

std::string render_rules() {
  std::string out;
  for (const auto& r : rule_catalogue()) {
    std::string sev = to_string(r.severity);
    sev.resize(8, ' ');
    out += std::string(r.id) + "  " + sev + " " + r.summary + "\n";
  }
  return out;
}

}  // namespace crve::lint
