// Divergence triage — the root-cause layer on top of the Analyzer.
//
// The Analyzer answers "is this port aligned and where did it first split";
// sign-off needs no more. When a campaign FAILS, the debugging questions are
// different: where are ALL the divergence windows, which signals carry each
// one, and what transaction was in flight when the views split. Triage
// answers those in one change-driven merge pass per port (same O(changes x
// fields) discipline as Analyzer::compare — no per-cycle strings), then the
// regression runner publishes the result as `triage_<test>_s<seed>.json`
// plus a windowed VCD excerpt of both views around the first divergence.
//
// Interval lists are bounded (kMaxIntervals / kMaxWindows) so a totally
// misaligned dump cannot balloon the artifact; the exact totals are always
// kept, so the bound is visible in the report (listed < total).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stba/analyzer.h"
#include "vcd/parser.h"

namespace crve::obs {
struct TxnTraceData;
}

namespace crve::stba {

// Half-open cycle interval [begin, end) on which one signal diverges.
struct SignalInterval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

// All divergence intervals of one signal (one port field) between the dumps.
struct SignalDivergence {
  std::string signal;                    // full dotted name, e.g. "tb.p0.gnt"
  std::uint64_t diverged_cycles = 0;     // exact total across ALL intervals
  std::uint64_t interval_count = 0;      // exact total number of intervals
  std::vector<SignalInterval> intervals; // first kMaxIntervals of them
};

// The transaction in flight on one view when a divergence window opens: the
// most recent granted cell at or before the window's first cycle.
struct InFlightCell {
  bool valid = false;      // false: no cell granted at or before the window
  std::uint64_t cycle = 0; // grant cycle of that cell
  bool response = false;   // request or response channel
  std::string opc;         // raw binary opcode field
  std::string opc_name;    // decoded mnemonic ("LD4", "ST8", "OK", ...)
  std::string add;         // request address as hex ("" for response cells)
  std::string src;         // source id as hex
  std::string tid;         // transaction id as hex
};

// One maximal run of consecutive cycles on which the port views differ.
struct DivergenceWindow {
  std::uint64_t begin = 0;           // first diverged cycle
  std::uint64_t end = 0;             // exclusive
  std::vector<std::string> signals;  // signals diverging at `begin`
  InFlightCell in_flight_a;          // transaction context, view A
  InFlightCell in_flight_b;          // transaction context, view B
};

struct PortTriage {
  std::string port;
  std::uint64_t total_cycles = 0;
  std::uint64_t aligned_cycles = 0;
  std::uint64_t diverged_cycles = 0;
  std::uint64_t window_count = 0;          // exact total
  std::vector<DivergenceWindow> windows;   // first kMaxWindows
  // Per-signal interval lists, port_fields() order, diverged signals only.
  std::vector<SignalDivergence> signals;
  std::string note;  // Analyzer::activity_note for this port

  double rate() const {
    return total_cycles == 0
               ? 1.0
               : static_cast<double>(aligned_cycles) / total_cycles;
  }
  bool diverged() const { return diverged_cycles != 0; }
};

struct TriageReport {
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  std::vector<PortTriage> ports;
  // Earliest divergence across every port; kNone when fully aligned.
  std::uint64_t first_divergence = kNone;
  std::string first_port;  // port holding that earliest divergence

  bool any_diverged() const { return first_divergence != kNone; }

  // Pretty JSON document. `context` pairs (e.g. test/seed/artifact paths)
  // are emitted verbatim as leading string members after the build stamp, so
  // the artifact is self-describing without Triage knowing about campaigns.
  // `raw_sections` are pre-rendered JSON values appended as trailing members
  // (key, value) — the value's lines after the first must already carry a
  // two-space embedding indent. Byte-deterministic for fixed inputs; with
  // both empty the output is unchanged.
  std::string json(
      const std::vector<std::pair<std::string, std::string>>& context = {},
      const std::vector<std::pair<std::string, std::string>>& raw_sections =
          {}) const;
};

// Transaction-lifecycle correlation (DESIGN.md §16): for each divergence
// window, the transactions in flight on each view at the window's first
// cycle, with their lifecycle stage (queued / request / service / response)
// from the txn tracer's span data. Returns a pre-rendered JSON value
// suitable for TriageReport::json raw_sections (conventionally under the
// key "txn_in_flight"); windows and per-view span lists are bounded, exact
// counts kept. View A is conventionally RTL, view B BCA.
std::string txn_flight_json(const TriageReport& report,
                            const obs::TxnTraceData& a,
                            const obs::TxnTraceData& b);

class Triage {
 public:
  // Artifact bounds: listed intervals/windows are capped, exact counts kept.
  static constexpr std::size_t kMaxIntervals = 64;
  static constexpr std::size_t kMaxWindows = 64;

  // Full divergence breakdown of the given ports between two dumps. Cycle
  // accounting matches Analyzer::compare exactly (same merge, same
  // max(a,b)+1 cycle span); tests hold the equivalence.
  static TriageReport analyze(const vcd::Trace& a, const vcd::Trace& b,
                              const std::vector<std::string>& ports);
};

}  // namespace crve::stba
