// STBA — the STBus Analyzer.
//
// Reimplementation of the paper's internal alignment tool: it reads the VCD
// dumps produced by the RTL and BCA regression runs, extracts STBus
// transaction information per port, and computes, for every port, the
// alignment rate = (cycles on which all of the port's signals carry the
// same value in both dumps) / (total clock cycles). The paper's sign-off
// threshold for a BCA model is a 99% rate at every port.
//
// Beyond the rate it reports the first divergence (cycle + signals) and a
// transaction-level diff, which is what makes the misalignment actionable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vcd/parser.h"

namespace crve::stba {

// One granted cell recovered from a VCD dump.
struct ExtractedCell {
  std::uint64_t cycle = 0;
  bool response = false;  // false: request channel, true: response channel
  std::string opc;        // raw binary field values
  std::string add;
  std::string data;
  std::string be;
  bool eop = false;
  bool lck = false;
  std::string src;
  std::string tid;

  bool same_content(const ExtractedCell& o) const {
    return response == o.response && opc == o.opc && add == o.add &&
           data == o.data && be == o.be && eop == o.eop && lck == o.lck &&
           src == o.src && tid == o.tid;
  }
};

struct PortAlignment {
  std::string port;
  std::uint64_t total_cycles = 0;
  std::uint64_t aligned_cycles = 0;
  // First cycle the port differs; ~0ull when fully aligned.
  std::uint64_t first_divergence = ~std::uint64_t{0};
  std::vector<std::string> diverged_signals;  // at the first divergence
  // Set when the rate is not meaningful — e.g. one dump has no activity at
  // all on this port, so the comparison runs against an all-zeros baseline
  // over max(a,b)+1 cycles. Empty for healthy comparisons.
  std::string note;

  // Cell streams compared content-wise (cycle-independent).
  std::uint64_t cells_a = 0;
  std::uint64_t cells_b = 0;
  std::uint64_t cells_matching = 0;

  double rate() const {
    return total_cycles == 0
               ? 1.0
               : static_cast<double>(aligned_cycles) / total_cycles;
  }
  bool diverged() const { return first_divergence != ~std::uint64_t{0}; }
};

struct AlignmentReport {
  std::vector<PortAlignment> ports;

  double min_rate() const;
  double mean_rate() const;
  // The paper's sign-off criterion: every port at or above `threshold`.
  bool signed_off(double threshold = 0.99) const;
  std::string summary() const;

  // The full report as a pretty JSON document (machine-readable counterpart
  // of summary(), used by `crve_stba --json`). Carries the build stamp, the
  // verdict against `threshold`, and per-port rate / first-divergence /
  // diverged-signal / cell-stream details. Byte-deterministic for a fixed
  // input pair.
  std::string json(double threshold = 0.99) const;
};

class Analyzer {
 public:
  // Standard STBus field suffixes of one port.
  static const std::vector<std::string>& port_fields();

  // Cycle-level + transaction-level comparison of the given ports (each a
  // dotted prefix such as "tb.init0") between two dumps.
  //
  // Implemented as a k-way merge over the two traces' change lists: the
  // alignment status of a port is constant between change events, so whole
  // runs of unchanged cycles are credited at once. O(total changes) instead
  // of O(cycles x fields x log changes), with results identical to the
  // per-cycle scan (tests/test_trace_path.cpp holds the equivalence).
  static AlignmentReport compare(const vcd::Trace& a, const vcd::Trace& b,
                                 const std::vector<std::string>& ports);

  static AlignmentReport compare_files(const std::string& path_a,
                                       const std::string& path_b,
                                       const std::vector<std::string>& ports);

  // Recovers the granted-cell stream of one port from one dump.
  static std::vector<ExtractedCell> extract(const vcd::Trace& t,
                                            const std::string& port);

  // Variable indices of one port's fields in `t`, in port_fields() order.
  // Throws std::runtime_error when a field is absent or ambiguous. Shared
  // by compare() and the Triage deep-dive so both resolve identically.
  static std::vector<int> resolve_port_fields(const vcd::Trace& t,
                                              const std::string& port);

  // The vacuous-rate annotation compare() attaches when one or both dumps
  // show no activity on `port`; empty for a healthy comparison.
  static std::string activity_note(const vcd::Trace& a, const vcd::Trace& b,
                                   const std::string& port);
};

}  // namespace crve::stba
