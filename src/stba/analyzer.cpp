#include "stba/analyzer.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace crve::stba {

const std::vector<std::string>& Analyzer::port_fields() {
  static const std::vector<std::string> kFields = {
      "req",   "gnt",   "opc",   "add",   "data",  "be",   "eop",
      "lck",   "src",   "tid",   "r_req", "r_gnt", "r_opc", "r_data",
      "r_eop", "r_src", "r_tid"};
  return kFields;
}

namespace {

std::vector<int> resolve_port(const vcd::Trace& t, const std::string& port) {
  std::vector<int> idx;
  for (const auto& f : Analyzer::port_fields()) {
    auto v = t.find(port + "." + f);
    if (!v) {
      throw std::runtime_error("STBA: signal " + port + "." + f +
                               " not found (or ambiguous) in dump");
    }
    idx.push_back(*v);
  }
  return idx;
}

}  // namespace

std::vector<ExtractedCell> Analyzer::extract(const vcd::Trace& t,
                                             const std::string& port) {
  const std::vector<int> idx = resolve_port(t, port);
  auto field = [&](int f, std::uint64_t cyc) -> const std::string& {
    return t.value_at(idx[static_cast<std::size_t>(f)], cyc);
  };
  // Field order mirrors port_fields().
  enum {
    kReq, kGnt, kOpc, kAdd, kData, kBe, kEop, kLck, kSrc, kTid,
    kRReq, kRGnt, kROpc, kRData, kREop, kRSrc, kRTid
  };
  std::vector<ExtractedCell> cells;
  for (std::uint64_t c = 0; c <= t.max_time(); ++c) {
    if (field(kReq, c) == "1" && field(kGnt, c) == "1") {
      ExtractedCell cell;
      cell.cycle = c;
      cell.response = false;
      cell.opc = field(kOpc, c);
      cell.add = field(kAdd, c);
      cell.data = field(kData, c);
      cell.be = field(kBe, c);
      cell.eop = field(kEop, c) == "1";
      cell.lck = field(kLck, c) == "1";
      cell.src = field(kSrc, c);
      cell.tid = field(kTid, c);
      cells.push_back(std::move(cell));
    }
    if (field(kRReq, c) == "1" && field(kRGnt, c) == "1") {
      ExtractedCell cell;
      cell.cycle = c;
      cell.response = true;
      cell.opc = field(kROpc, c);
      cell.data = field(kRData, c);
      cell.eop = field(kREop, c) == "1";
      cell.src = field(kRSrc, c);
      cell.tid = field(kRTid, c);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

AlignmentReport Analyzer::compare(const vcd::Trace& a, const vcd::Trace& b,
                                  const std::vector<std::string>& ports) {
  AlignmentReport report;
  const std::uint64_t total = std::max(a.max_time(), b.max_time()) + 1;
  for (const auto& port : ports) {
    PortAlignment pa;
    pa.port = port;
    pa.total_cycles = total;
    const std::vector<int> ia = resolve_port(a, port);
    const std::vector<int> ib = resolve_port(b, port);
    for (std::uint64_t c = 0; c < total; ++c) {
      bool aligned = true;
      for (std::size_t f = 0; f < ia.size(); ++f) {
        if (a.value_at(ia[f], c) != b.value_at(ib[f], c)) {
          aligned = false;
          if (!pa.diverged()) {
            pa.diverged_signals.push_back(port + "." + port_fields()[f]);
          }
        }
      }
      if (aligned) {
        ++pa.aligned_cycles;
      } else if (!pa.diverged()) {
        pa.first_divergence = c;
      }
    }
    // Transaction-level diff (content compare, cycle-independent).
    const auto ca = extract(a, port);
    const auto cb = extract(b, port);
    pa.cells_a = ca.size();
    pa.cells_b = cb.size();
    const std::size_t n = std::min(ca.size(), cb.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (ca[i].same_content(cb[i])) ++pa.cells_matching;
    }
    report.ports.push_back(std::move(pa));
  }
  return report;
}

AlignmentReport Analyzer::compare_files(const std::string& path_a,
                                        const std::string& path_b,
                                        const std::vector<std::string>& ports) {
  const vcd::Trace a = vcd::Trace::parse_file(path_a);
  const vcd::Trace b = vcd::Trace::parse_file(path_b);
  return compare(a, b, ports);
}

double AlignmentReport::min_rate() const {
  double m = 1.0;
  for (const auto& p : ports) m = std::min(m, p.rate());
  return m;
}

double AlignmentReport::mean_rate() const {
  if (ports.empty()) return 1.0;
  double s = 0;
  for (const auto& p : ports) s += p.rate();
  return s / static_cast<double>(ports.size());
}

bool AlignmentReport::signed_off(double threshold) const {
  for (const auto& p : ports) {
    if (p.rate() < threshold) return false;
  }
  return true;
}

std::string AlignmentReport::summary() const {
  std::ostringstream os;
  for (const auto& p : ports) {
    os << p.port << ": " << p.aligned_cycles << "/" << p.total_cycles << " ("
       << 100.0 * p.rate() << "%)";
    if (p.diverged()) {
      os << " first divergence @" << p.first_divergence << " on";
      for (const auto& s : p.diverged_signals) os << " " << s;
    }
    os << "\n";
  }
  os << "min rate " << 100.0 * min_rate() << "%, "
     << (signed_off() ? "SIGNED OFF (>=99% everywhere)" : "NOT signed off")
     << "\n";
  return os.str();
}

}  // namespace crve::stba
