#include "stba/analyzer.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/build_info.h"
#include "common/json.h"
#include "obs/metrics.h"

namespace crve::stba {

const std::vector<std::string>& Analyzer::port_fields() {
  static const std::vector<std::string> kFields = {
      "req",   "gnt",   "opc",   "add",   "data",  "be",   "eop",
      "lck",   "src",   "tid",   "r_req", "r_gnt", "r_opc", "r_data",
      "r_eop", "r_src", "r_tid"};
  return kFields;
}

std::vector<int> Analyzer::resolve_port_fields(const vcd::Trace& t,
                                               const std::string& port) {
  std::vector<int> idx;
  for (const auto& f : port_fields()) {
    auto v = t.find(port + "." + f);
    if (!v) {
      throw std::runtime_error("STBA: signal " + port + "." + f +
                               " not found (or ambiguous) in dump");
    }
    idx.push_back(*v);
  }
  return idx;
}

namespace {

std::vector<int> resolve_port(const vcd::Trace& t, const std::string& port) {
  return Analyzer::resolve_port_fields(t, port);
}

std::vector<vcd::Trace::Cursor> port_cursors(const vcd::Trace& t,
                                             const std::vector<int>& idx) {
  std::vector<vcd::Trace::Cursor> cur;
  cur.reserve(idx.size());
  for (const int i : idx) cur.push_back(t.cursor(i));
  return cur;
}

// Earliest pending change time across a port's field cursors (kNoChange
// when every list is exhausted). The merge advances in one hop from event
// to event instead of cycle by cycle.
std::uint64_t next_event(const std::vector<vcd::Trace::Cursor>& cur) {
  std::uint64_t next = vcd::Trace::Cursor::kNoChange;
  for (const auto& c : cur) next = std::min(next, c.next_change_time());
  return next;
}

bool port_has_activity(const vcd::Trace& t, const std::vector<int>& idx) {
  for (const int i : idx) {
    if (!t.changes(i).empty()) return true;
  }
  return false;
}

}  // namespace

std::string Analyzer::activity_note(const vcd::Trace& a, const vcd::Trace& b,
                                    const std::string& port) {
  const bool a_active = port_has_activity(a, resolve_port(a, port));
  const bool b_active = port_has_activity(b, resolve_port(b, port));
  if (!a_active && !b_active) {
    return "no activity on this port in either dump; rate is vacuous";
  }
  if (!a_active) {
    return "dump A has no activity on this port; rate compares B "
           "against all-zeros";
  }
  if (!b_active) {
    return "dump B has no activity on this port; rate compares A "
           "against all-zeros";
  }
  return "";
}

std::vector<ExtractedCell> Analyzer::extract(const vcd::Trace& t,
                                             const std::string& port) {
  const std::vector<int> idx = resolve_port(t, port);
  // Field order mirrors port_fields().
  enum {
    kReq, kGnt, kOpc, kAdd, kData, kBe, kEop, kLck, kSrc, kTid,
    kRReq, kRGnt, kROpc, kRData, kREop, kRSrc, kRTid, kNumFields
  };
  std::vector<vcd::Trace::Cursor> cur = port_cursors(t, idx);
  auto field = [&](int f, std::uint64_t cyc) -> const std::string& {
    return cur[static_cast<std::size_t>(f)].value_at(cyc);
  };
  std::vector<ExtractedCell> cells;
  const bool metrics = obs::metrics_enabled();
  const std::uint64_t end = t.max_time() + 1;
  std::uint64_t c = 0;
  // Merge over the field change lists: between events every field is
  // constant, so the granted state and cell content hold for the whole run
  // and only the cycle stamp varies.
  while (c < end) {
    const bool req_granted = field(kReq, c) == "1" && field(kGnt, c) == "1";
    const bool rsp_granted = field(kRReq, c) == "1" && field(kRGnt, c) == "1";
    // Settle every remaining cursor at c so next_event() looks past it.
    for (int f = 0; f < kNumFields; ++f) field(f, c);
    const std::uint64_t run_end = std::min(next_event(cur), end);
    if (req_granted || rsp_granted) {
      ExtractedCell req_cell, rsp_cell;
      if (req_granted) {
        req_cell.response = false;
        req_cell.opc = field(kOpc, c);
        req_cell.add = field(kAdd, c);
        req_cell.data = field(kData, c);
        req_cell.be = field(kBe, c);
        req_cell.eop = field(kEop, c) == "1";
        req_cell.lck = field(kLck, c) == "1";
        req_cell.src = field(kSrc, c);
        req_cell.tid = field(kTid, c);
      }
      if (rsp_granted) {
        rsp_cell.response = true;
        rsp_cell.opc = field(kROpc, c);
        rsp_cell.data = field(kRData, c);
        rsp_cell.eop = field(kREop, c) == "1";
        rsp_cell.src = field(kRSrc, c);
        rsp_cell.tid = field(kRTid, c);
      }
      for (std::uint64_t cyc = c; cyc < run_end; ++cyc) {
        if (req_granted) {
          req_cell.cycle = cyc;
          cells.push_back(req_cell);
        }
        if (rsp_granted) {
          rsp_cell.cycle = cyc;
          cells.push_back(rsp_cell);
        }
      }
    }
    c = run_end;
  }
  if (metrics) {
    obs::counter("stba.extracts").inc();
    obs::counter("stba.cells_extracted").add(cells.size());
  }
  return cells;
}

AlignmentReport Analyzer::compare(const vcd::Trace& a, const vcd::Trace& b,
                                  const std::vector<std::string>& ports) {
  AlignmentReport report;
  const bool metrics = obs::metrics_enabled();
  const std::uint64_t total = std::max(a.max_time(), b.max_time()) + 1;
  for (const auto& port : ports) {
    PortAlignment pa;
    pa.port = port;
    pa.total_cycles = total;
    const std::vector<int> ia = resolve_port(a, port);
    const std::vector<int> ib = resolve_port(b, port);
    pa.note = activity_note(a, b, port);
    // k-way merge over the 2x17 field change lists: between events every
    // field is constant on both sides, so alignment holds for whole runs.
    std::vector<vcd::Trace::Cursor> ca = port_cursors(a, ia);
    std::vector<vcd::Trace::Cursor> cb = port_cursors(b, ib);
    std::uint64_t c = 0;
    std::uint64_t merge_events = 0;
    while (c < total) {
      ++merge_events;
      bool aligned = true;
      for (std::size_t f = 0; f < ia.size(); ++f) {
        if (ca[f].value_at(c) != cb[f].value_at(c)) {
          aligned = false;
          if (!pa.diverged()) {
            pa.diverged_signals.push_back(port + "." + port_fields()[f]);
          }
        }
      }
      const std::uint64_t run_end =
          std::min(std::min(next_event(ca), next_event(cb)), total);
      if (aligned) {
        pa.aligned_cycles += run_end - c;
        if (metrics) {
          obs::histogram("stba.aligned_run_cycles").observe(run_end - c);
        }
      } else if (!pa.diverged()) {
        pa.first_divergence = c;
      }
      c = run_end;
    }
    if (metrics) {
      obs::counter("stba.ports_compared").inc();
      obs::counter("stba.merge_events").add(merge_events);
      obs::counter("stba.aligned_cycles").add(pa.aligned_cycles);
      obs::counter("stba.compared_cycles").add(pa.total_cycles);
      obs::histogram("stba.merge_events_per_port").observe(merge_events);
    }
    // Transaction-level diff (content compare, cycle-independent).
    const auto cells_a = extract(a, port);
    const auto cells_b = extract(b, port);
    pa.cells_a = cells_a.size();
    pa.cells_b = cells_b.size();
    const std::size_t n = std::min(cells_a.size(), cells_b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (cells_a[i].same_content(cells_b[i])) ++pa.cells_matching;
    }
    report.ports.push_back(std::move(pa));
  }
  if (metrics) obs::counter("stba.compares").inc();
  return report;
}

AlignmentReport Analyzer::compare_files(const std::string& path_a,
                                        const std::string& path_b,
                                        const std::vector<std::string>& ports) {
  const vcd::Trace a = vcd::Trace::parse_file(path_a);
  const vcd::Trace b = vcd::Trace::parse_file(path_b);
  return compare(a, b, ports);
}

double AlignmentReport::min_rate() const {
  double m = 1.0;
  for (const auto& p : ports) m = std::min(m, p.rate());
  return m;
}

double AlignmentReport::mean_rate() const {
  if (ports.empty()) return 1.0;
  double s = 0;
  for (const auto& p : ports) s += p.rate();
  return s / static_cast<double>(ports.size());
}

bool AlignmentReport::signed_off(double threshold) const {
  for (const auto& p : ports) {
    if (p.rate() < threshold) return false;
  }
  return true;
}

std::string AlignmentReport::summary() const {
  std::ostringstream os;
  for (const auto& p : ports) {
    os << p.port << ": " << p.aligned_cycles << "/" << p.total_cycles << " ("
       << 100.0 * p.rate() << "%)";
    if (p.diverged()) {
      os << " first divergence @" << p.first_divergence << " on";
      for (const auto& s : p.diverged_signals) os << " " << s;
    }
    if (!p.note.empty()) os << " [" << p.note << "]";
    os << "\n";
  }
  os << "min rate " << 100.0 * min_rate() << "%, "
     << (signed_off() ? "SIGNED OFF (>=99% everywhere)" : "NOT signed off")
     << "\n";
  return os.str();
}

std::string AlignmentReport::json(double threshold) const {
  std::string out;
  out += "{\n";
  out += "  \"build\": " + build_info_json("  ") + ",\n";
  out += "  \"threshold\": " + json::number(threshold) + ",\n";
  out += std::string("  \"signed_off\": ") +
         (signed_off(threshold) ? "true" : "false") + ",\n";
  out += "  \"min_rate\": " + json::number(min_rate()) + ",\n";
  out += "  \"mean_rate\": " + json::number(mean_rate()) + ",\n";
  out += "  \"ports\": [";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const PortAlignment& p = ports[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"port\": \"" + json::escape(p.port) + "\"";
    out += ", \"rate\": " + json::number(p.rate());
    out += ", \"aligned_cycles\": " + std::to_string(p.aligned_cycles);
    out += ", \"total_cycles\": " + std::to_string(p.total_cycles);
    out += std::string(", \"diverged\": ") + (p.diverged() ? "true" : "false");
    if (p.diverged()) {
      out += ", \"first_divergence\": " + std::to_string(p.first_divergence);
      out += ", \"diverged_signals\": [";
      for (std::size_t s = 0; s < p.diverged_signals.size(); ++s) {
        if (s != 0) out += ", ";
        out += "\"" + json::escape(p.diverged_signals[s]) + "\"";
      }
      out += "]";
    }
    if (!p.note.empty()) {
      out += ", \"note\": \"" + json::escape(p.note) + "\"";
    }
    out += ", \"cells_a\": " + std::to_string(p.cells_a);
    out += ", \"cells_b\": " + std::to_string(p.cells_b);
    out += ", \"cells_matching\": " + std::to_string(p.cells_matching);
    out += "}";
  }
  out += ports.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace crve::stba
