#include "stba/triage.h"

#include <algorithm>

#include "common/build_info.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "obs/txn_trace.h"
#include "stbus/opcode.h"

namespace crve::stba {

namespace {

// Binary field string -> hex literal of arbitrary width ("0x0" for empty).
std::string bin_to_hex(const std::string& bits) {
  if (bits.empty()) return "0x0";
  std::string out = "0x";
  // Pad the leading nibble implicitly: consume bits MSB-first in groups
  // aligned to the string's tail.
  const std::size_t lead = bits.size() % 4;
  std::size_t pos = 0;
  bool emitted = false;
  auto emit = [&](unsigned nibble) {
    if (!emitted && nibble == 0) return;  // trim leading zero nibbles
    emitted = true;
    out += "0123456789abcdef"[nibble];
  };
  if (lead != 0) {
    unsigned nibble = 0;
    for (; pos < lead; ++pos) nibble = nibble << 1 | (bits[pos] == '1');
    emit(nibble);
  }
  for (; pos < bits.size(); pos += 4) {
    unsigned nibble = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      nibble = nibble << 1 | (bits[pos + i] == '1');
    }
    emit(nibble);
  }
  if (!emitted) out += "0";
  return out;
}

// Binary field string -> value, for opcode decoding (fields are narrow).
std::uint64_t bin_value(const std::string& bits) {
  std::uint64_t v = 0;
  for (char c : bits) v = v << 1 | (c == '1');
  return v;
}

std::string decode_opc(const ExtractedCell& cell) {
  const std::uint64_t v = bin_value(cell.opc);
  if (cell.response) {
    if (v <= 1) return stbus::to_string(static_cast<stbus::RspOpcode>(v));
  } else if (v < static_cast<std::uint64_t>(stbus::kNumOpcodes)) {
    return stbus::to_string(static_cast<stbus::Opcode>(v));
  }
  return "?";
}

// The most recent granted cell at or before `cycle` — the transaction
// context a human wants when the views split. Cells are sorted by cycle
// (extract() emits them in increasing cycle order), so binary search.
InFlightCell in_flight_at(const std::vector<ExtractedCell>& cells,
                          std::uint64_t cycle) {
  InFlightCell ref;
  const auto it = std::upper_bound(
      cells.begin(), cells.end(), cycle,
      [](std::uint64_t c, const ExtractedCell& cell) { return c < cell.cycle; });
  if (it == cells.begin()) return ref;  // nothing granted yet
  const ExtractedCell& cell = *(it - 1);
  ref.valid = true;
  ref.cycle = cell.cycle;
  ref.response = cell.response;
  ref.opc = cell.opc;
  ref.opc_name = decode_opc(cell);
  ref.add = cell.response ? "" : bin_to_hex(cell.add);
  ref.src = bin_to_hex(cell.src);
  ref.tid = bin_to_hex(cell.tid);
  return ref;
}

std::uint64_t next_event(const std::vector<vcd::Trace::Cursor>& cur) {
  std::uint64_t next = vcd::Trace::Cursor::kNoChange;
  for (const auto& c : cur) next = std::min(next, c.next_change_time());
  return next;
}

void render_cell(std::string& out, const char* key, const InFlightCell& c,
                 const std::string& in) {
  out += in + "\"" + key + "\": ";
  if (!c.valid) {
    out += "null";
    return;
  }
  out += "{\"cycle\": " + std::to_string(c.cycle);
  out += std::string(", \"channel\": \"") +
         (c.response ? "response" : "request") + "\"";
  out += ", \"opc\": \"" + crve::json::escape(c.opc) + "\"";
  out += ", \"opc_name\": \"" + crve::json::escape(c.opc_name) + "\"";
  if (!c.add.empty()) out += ", \"add\": \"" + c.add + "\"";
  out += ", \"src\": \"" + c.src + "\"";
  out += ", \"tid\": \"" + c.tid + "\"";
  out += "}";
}

}  // namespace

TriageReport Triage::analyze(const vcd::Trace& a, const vcd::Trace& b,
                             const std::vector<std::string>& ports) {
  TriageReport report;
  const bool metrics = obs::metrics_enabled();
  const auto& fields = Analyzer::port_fields();
  const std::uint64_t total = std::max(a.max_time(), b.max_time()) + 1;
  for (const auto& port : ports) {
    PortTriage pt;
    pt.port = port;
    pt.total_cycles = total;
    pt.note = Analyzer::activity_note(a, b, port);
    const std::vector<int> ia = Analyzer::resolve_port_fields(a, port);
    const std::vector<int> ib = Analyzer::resolve_port_fields(b, port);

    // Transaction context, one stream per view (cycle-sorted, so the window
    // correlation below is a binary search per window, not a scan).
    const auto cells_a = Analyzer::extract(a, port);
    const auto cells_b = Analyzer::extract(b, port);

    std::vector<vcd::Trace::Cursor> ca, cb;
    ca.reserve(ia.size());
    cb.reserve(ib.size());
    for (const int i : ia) ca.push_back(a.cursor(i));
    for (const int i : ib) cb.push_back(b.cursor(i));

    // Per-field interval accumulation state: the exclusive end of the last
    // diverged run per field, to merge adjacent runs into one interval.
    std::vector<SignalDivergence> sig(fields.size());
    std::vector<std::uint64_t> sig_open_end(fields.size(), 0);
    std::vector<bool> sig_seen(fields.size(), false);
    bool window_open = false;
    std::uint64_t window_end = 0;

    // One change-driven merge: alignment status is constant between change
    // events on either side, so each [c, run_end) run is classified once.
    std::uint64_t c = 0;
    while (c < total) {
      std::vector<std::size_t> diffs;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (ca[f].value_at(c) != cb[f].value_at(c)) diffs.push_back(f);
      }
      const std::uint64_t run_end =
          std::min(std::min(next_event(ca), next_event(cb)), total);
      if (diffs.empty()) {
        pt.aligned_cycles += run_end - c;
        window_open = false;
      } else {
        pt.diverged_cycles += run_end - c;
        for (const std::size_t f : diffs) {
          SignalDivergence& sd = sig[f];
          sd.diverged_cycles += run_end - c;
          if (sig_seen[f] && sig_open_end[f] == c) {
            // Adjacent diverged run on the same signal: extend in place.
            if (!sd.intervals.empty() && sd.intervals.back().end == c) {
              sd.intervals.back().end = run_end;
            }
          } else {
            ++sd.interval_count;
            if (sd.intervals.size() < kMaxIntervals) {
              sd.intervals.push_back({c, run_end});
            }
          }
          sig_seen[f] = true;
          sig_open_end[f] = run_end;
        }
        if (window_open && window_end == c) {
          // Same port-level window continues across the event boundary.
          if (!pt.windows.empty() && pt.windows.back().end == c) {
            pt.windows.back().end = run_end;
          }
        } else {
          ++pt.window_count;
          if (pt.windows.size() < kMaxWindows) {
            DivergenceWindow w;
            w.begin = c;
            w.end = run_end;
            for (const std::size_t f : diffs) {
              w.signals.push_back(port + "." + fields[f]);
            }
            w.in_flight_a = in_flight_at(cells_a, c);
            w.in_flight_b = in_flight_at(cells_b, c);
            pt.windows.push_back(std::move(w));
          }
        }
        window_open = true;
        window_end = run_end;
        if (c < report.first_divergence) {
          report.first_divergence = c;
          report.first_port = port;
        }
      }
      c = run_end;
    }

    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (sig[f].diverged_cycles == 0) continue;
      sig[f].signal = port + "." + fields[f];
      pt.signals.push_back(std::move(sig[f]));
    }
    if (metrics) {
      obs::counter("stba.triage_ports").inc();
      obs::counter("stba.triage_windows").add(pt.window_count);
      obs::counter("stba.triage_diverged_cycles").add(pt.diverged_cycles);
    }
    report.ports.push_back(std::move(pt));
  }
  if (metrics) obs::counter("stba.triages").inc();
  return report;
}

std::string TriageReport::json(
    const std::vector<std::pair<std::string, std::string>>& context,
    const std::vector<std::pair<std::string, std::string>>& raw_sections)
    const {
  using crve::json::escape;
  using crve::json::number;
  std::string out;
  out += "{\n";
  out += "  \"build\": " + crve::build_info_json("  ") + ",\n";
  for (const auto& [key, value] : context) {
    out += "  \"" + escape(key) + "\": \"" + escape(value) + "\",\n";
  }
  out += std::string("  \"any_diverged\": ") +
         (any_diverged() ? "true" : "false") + ",\n";
  if (any_diverged()) {
    out += "  \"first_divergence\": " + std::to_string(first_divergence) +
           ",\n";
    out += "  \"first_port\": \"" + escape(first_port) + "\",\n";
  }
  out += "  \"ports\": [";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const PortTriage& p = ports[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"port\": \"" + escape(p.port) + "\",\n";
    out += "      \"rate\": " + number(p.rate()) + ",\n";
    out += "      \"total_cycles\": " + std::to_string(p.total_cycles) + ",\n";
    out += "      \"aligned_cycles\": " + std::to_string(p.aligned_cycles) +
           ",\n";
    out += "      \"diverged_cycles\": " + std::to_string(p.diverged_cycles) +
           ",\n";
    if (!p.note.empty()) {
      out += "      \"note\": \"" + escape(p.note) + "\",\n";
    }
    out += "      \"window_count\": " + std::to_string(p.window_count) + ",\n";
    out += "      \"windows\": [";
    for (std::size_t w = 0; w < p.windows.size(); ++w) {
      const DivergenceWindow& win = p.windows[w];
      out += w == 0 ? "\n" : ",\n";
      out += "        {\"begin\": " + std::to_string(win.begin);
      out += ", \"end\": " + std::to_string(win.end);
      out += ", \"signals\": [";
      for (std::size_t s = 0; s < win.signals.size(); ++s) {
        if (s != 0) out += ", ";
        out += "\"" + escape(win.signals[s]) + "\"";
      }
      out += "],\n";
      render_cell(out, "in_flight_a", win.in_flight_a, "         ");
      out += ",\n";
      render_cell(out, "in_flight_b", win.in_flight_b, "         ");
      out += "}";
    }
    out += p.windows.empty() ? "]" : "\n      ]";
    out += ",\n";
    out += "      \"signals\": [";
    for (std::size_t s = 0; s < p.signals.size(); ++s) {
      const SignalDivergence& sd = p.signals[s];
      out += s == 0 ? "\n" : ",\n";
      out += "        {\"signal\": \"" + escape(sd.signal) + "\"";
      out += ", \"diverged_cycles\": " + std::to_string(sd.diverged_cycles);
      out += ", \"interval_count\": " + std::to_string(sd.interval_count);
      out += ", \"intervals\": [";
      for (std::size_t k = 0; k < sd.intervals.size(); ++k) {
        if (k != 0) out += ", ";
        out += "[" + std::to_string(sd.intervals[k].begin) + ", " +
               std::to_string(sd.intervals[k].end) + "]";
      }
      out += "]}";
    }
    out += p.signals.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
  }
  out += ports.empty() ? "]" : "\n  ]";
  for (const auto& [key, value] : raw_sections) {
    out += ",\n  \"" + escape(key) + "\": " + value;
  }
  out += "\n}\n";
  return out;
}

std::string txn_flight_json(const TriageReport& report,
                            const obs::TxnTraceData& a,
                            const obs::TxnTraceData& b) {
  using crve::json::escape;
  // Artifact bounds, same philosophy as kMaxWindows: listed entries are
  // capped, the window loop order (report port order, then window order) is
  // deterministic, and every listed span is a pure function of the traced
  // traffic.
  constexpr std::size_t kMaxJoinWindows = 8;
  constexpr std::size_t kMaxSpansPerView = 8;

  auto render_view = [&](std::string& out, const char* key,
                         const obs::TxnTraceData& td, std::uint64_t cycle) {
    std::vector<const obs::TxnSpan*> live;
    for (const obs::TxnSpan& s : td.spans) {
      if (obs::txn_in_flight_at(s, cycle)) live.push_back(&s);
    }
    std::sort(live.begin(), live.end(),
              [](const obs::TxnSpan* x, const obs::TxnSpan* y) {
                if (x->issue != y->issue) return x->issue < y->issue;
                if (x->port != y->port) return x->port < y->port;
                if (x->src != y->src) return x->src < y->src;
                if (x->tid != y->tid) return x->tid < y->tid;
                return x->seq < y->seq;
              });
    out += std::string("\"") + key + "_in_flight\": " +
           std::to_string(live.size()) + ", \"" + key + "\": [";
    const std::size_t n = std::min(live.size(), kMaxSpansPerView);
    for (std::size_t i = 0; i < n; ++i) {
      const obs::TxnSpan& s = *live[i];
      if (i != 0) out += ",";
      out += "\n           {\"port\": \"" + escape(s.port) + "\", \"src\": " +
             std::to_string(s.src) + ", \"tid\": " + std::to_string(s.tid) +
             ", \"seq\": " + std::to_string(s.seq) + ", \"opc\": \"" +
             escape(s.opc) + "\", \"issue\": " + std::to_string(s.issue) +
             ", \"stage\": \"" + obs::txn_stage_at(s, cycle) + "\"}";
    }
    out += n == 0 ? "]" : "]";
  };

  std::string out = "{\n";
  out += "    \"windows\": [";
  std::size_t listed = 0;
  bool first = true;
  for (const PortTriage& p : report.ports) {
    for (const DivergenceWindow& w : p.windows) {
      if (listed >= kMaxJoinWindows) break;
      ++listed;
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"port\": \"" + escape(p.port) + "\", \"begin\": " +
             std::to_string(w.begin) + ",\n       ";
      render_view(out, "a", a, w.begin);
      out += ",\n       ";
      render_view(out, "b", b, w.begin);
      out += "}";
    }
  }
  out += first ? "]" : "\n    ]";
  out += "\n  }";
  return out;
}

}  // namespace crve::stba
