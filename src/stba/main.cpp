// crve_stba — the STBus Analyzer as a command-line tool.
//
//   crve_stba RTL.vcd BCA.vcd --ports tb.init0,tb.init1,tb.targ0
//             [--threshold 0.99] [--cells] [--json]
//
// Compares the two dumps port by port, prints the alignment report (rate,
// first divergence, transaction diff) and exits 0 when every port is at or
// above the sign-off threshold. With --json the full AlignmentReport is
// emitted as a machine-readable document (build stamp, per-port rate /
// first-divergence / diverged-signal / cell-stream detail) instead of the
// human summary; the exit code is unchanged.
#include <cstdio>
#include <string>
#include <vector>

#include "stba/analyzer.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: crve_stba A.vcd B.vcd --ports p1,p2,... "
               "[--threshold 0.99] [--cells] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file_a, file_b;
  std::vector<std::string> ports;
  double threshold = 0.99;
  bool show_cells = false;
  bool as_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ports") {
      if (++i >= argc) return usage();
      std::string item;
      for (const char* p = argv[i];; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) ports.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (arg == "--threshold") {
      if (++i >= argc) return usage();
      threshold = std::stod(argv[i]);
    } else if (arg == "--cells") {
      show_cells = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (file_a.empty()) {
      file_a = arg;
    } else if (file_b.empty()) {
      file_b = arg;
    } else {
      return usage();
    }
  }
  if (file_a.empty() || file_b.empty() || ports.empty()) return usage();

  try {
    const auto report =
        crve::stba::Analyzer::compare_files(file_a, file_b, ports);
    if (as_json) {
      std::printf("%s", report.json(threshold).c_str());
    } else {
      std::printf("%s", report.summary().c_str());
      if (show_cells) {
        for (const auto& p : report.ports) {
          std::printf("%s: %llu vs %llu cells, %llu matching in order\n",
                      p.port.c_str(),
                      static_cast<unsigned long long>(p.cells_a),
                      static_cast<unsigned long long>(p.cells_b),
                      static_cast<unsigned long long>(p.cells_matching));
        }
      }
    }
    return report.signed_off(threshold) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
