#include "stbus/packet.h"

#include <stdexcept>

namespace crve::stbus {

int data_cells(Opcode opc, int bus_bytes) {
  const int size = size_bytes(opc);
  return size <= bus_bytes ? 1 : size / bus_bytes;
}

int request_cells(Opcode opc, int bus_bytes, ProtocolType type) {
  if (type == ProtocolType::kType1) return 1;
  if (is_atomic(opc)) return 1;
  if (is_store(opc)) return data_cells(opc, bus_bytes);
  // Loads: Type3 sends the address once; Type2 sends one beat per cell.
  return type == ProtocolType::kType3 ? 1 : data_cells(opc, bus_bytes);
}

int response_cells(Opcode opc, int bus_bytes, ProtocolType type) {
  if (type == ProtocolType::kType1) return 1;
  if (is_atomic(opc)) return 1;
  if (is_load(opc)) return data_cells(opc, bus_bytes);
  // Stores: Type3 acknowledges once; Type2 is symmetric.
  return type == ProtocolType::kType3 ? 1 : data_cells(opc, bus_bytes);
}

bool lanes_legal(Opcode opc, std::uint32_t add, int bus_bytes) {
  const int size = size_bytes(opc);
  if (size >= bus_bytes) return true;
  const int lane0 =
      static_cast<int>(add % static_cast<std::uint32_t>(bus_bytes));
  return lane0 + size <= bus_bytes;
}

Bits byte_enables(Opcode opc, std::uint32_t add, int bus_bytes, int cell) {
  const int size = size_bytes(opc);
  Bits be(bus_bytes);
  if (size >= bus_bytes) {
    return Bits::all_ones(bus_bytes);
  }
  // Sub-bus transfer: one cell, lanes chosen by the address offset.
  if (cell != 0) {
    throw std::invalid_argument("byte_enables: sub-bus op has a single cell");
  }
  if (!lanes_legal(opc, add, bus_bytes)) {
    throw std::invalid_argument("byte_enables: lanes straddle the bus word");
  }
  const int lane0 = static_cast<int>(add % static_cast<std::uint32_t>(bus_bytes));
  for (int i = 0; i < size; ++i) be.set_bit(lane0 + i, true);
  return be;
}

std::uint32_t cell_address(std::uint32_t add, int bus_bytes, int cell) {
  return add + static_cast<std::uint32_t>(cell) *
                   static_cast<std::uint32_t>(bus_bytes);
}

bool aligned(Opcode opc, std::uint32_t add) {
  const auto size = static_cast<std::uint32_t>(size_bytes(opc));
  return (add & (size - 1)) == 0;
}

std::vector<RequestCell> build_request(const Request& req, int bus_bytes,
                                       ProtocolType type) {
  const int size = size_bytes(req.opc);
  const bool carries_data = is_store(req.opc) || is_atomic(req.opc);
  if (carries_data && static_cast<int>(req.wdata.size()) != size) {
    throw std::invalid_argument("build_request: wdata size mismatch");
  }
  if (is_atomic(req.opc) && size > bus_bytes) {
    // Atomics are single-cell by definition and cannot straddle beats.
    throw std::invalid_argument("build_request: atomic wider than the bus");
  }
  const int n = request_cells(req.opc, bus_bytes, type);
  std::vector<RequestCell> cells;
  cells.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    RequestCell cell;
    cell.opc = req.opc;
    cell.add = cell_address(req.add, bus_bytes, c);
    cell.be = byte_enables(req.opc, req.add, bus_bytes, size >= bus_bytes ? 0 : c);
    cell.data = Bits(bus_bytes * 8);
    if (carries_data) {
      const int lane0 = size < bus_bytes ? static_cast<int>(req.add % static_cast<std::uint32_t>(bus_bytes)) : 0;
      const int chunk = size < bus_bytes ? size : bus_bytes;
      for (int i = 0; i < chunk; ++i) {
        const int src_byte = c * bus_bytes + i;
        if (src_byte < size) {
          cell.data.set_byte(lane0 + i, req.wdata[static_cast<std::size_t>(src_byte)]);
        }
      }
    }
    cell.eop = (c == n - 1);
    cell.lck = req.lck || !cell.eop;
    cell.src = req.src;
    cell.tid = req.tid;
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<ResponseCell> build_response(Opcode opc, std::uint32_t add,
                                         std::span<const std::uint8_t> rdata,
                                         RspOpcode status, int bus_bytes,
                                         ProtocolType type, std::uint8_t src,
                                         std::uint8_t tid) {
  const int size = size_bytes(opc);
  const bool carries_data = is_load(opc) || is_atomic(opc);
  if (carries_data && static_cast<int>(rdata.size()) != size) {
    throw std::invalid_argument("build_response: rdata size mismatch");
  }
  if (is_atomic(opc) && size > bus_bytes) {
    throw std::invalid_argument("build_response: atomic wider than the bus");
  }
  const int n = response_cells(opc, bus_bytes, type);
  std::vector<ResponseCell> cells;
  cells.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    ResponseCell cell;
    cell.opc = status;
    cell.data = Bits(bus_bytes * 8);
    if (carries_data) {
      const int lane0 = size < bus_bytes ? static_cast<int>(add % static_cast<std::uint32_t>(bus_bytes)) : 0;
      const int chunk = size < bus_bytes ? size : bus_bytes;
      for (int i = 0; i < chunk; ++i) {
        const int src_byte = c * bus_bytes + i;
        if (src_byte < size) {
          cell.data.set_byte(lane0 + i,
                             rdata[static_cast<std::size_t>(src_byte)]);
        }
      }
    }
    cell.eop = (c == n - 1);
    cell.src = src;
    cell.tid = tid;
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<ResponseCell> build_error_response(Opcode opc, int bus_bytes,
                                               ProtocolType type,
                                               std::uint8_t src,
                                               std::uint8_t tid) {
  const int n = response_cells(opc, bus_bytes, type);
  std::vector<ResponseCell> cells;
  cells.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    ResponseCell cell;
    cell.opc = RspOpcode::kError;
    cell.data = Bits(bus_bytes * 8);
    cell.eop = (c == n - 1);
    cell.src = src;
    cell.tid = tid;
    cells.push_back(std::move(cell));
  }
  return cells;
}

namespace {

// Shared lane-unpacking for request and response data payloads.
std::vector<std::uint8_t> extract_data(Opcode opc, std::uint32_t add,
                                       int bus_bytes, int n_cells,
                                       const Bits* (*get)(const void*, int),
                                       const void* cells) {
  const int size = size_bytes(opc);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size), 0);
  const int lane0 = size < bus_bytes ? static_cast<int>(add % static_cast<std::uint32_t>(bus_bytes)) : 0;
  const int chunk = size < bus_bytes ? size : bus_bytes;
  for (int c = 0; c < n_cells; ++c) {
    const Bits* data = get(cells, c);
    for (int i = 0; i < chunk; ++i) {
      const int dst = c * bus_bytes + i;
      if (dst < size) {
        out[static_cast<std::size_t>(dst)] = data->byte(lane0 + i);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> extract_request_data(
    Opcode opc, std::uint32_t add, std::span<const RequestCell> cells,
    int bus_bytes) {
  return extract_data(
      opc, add, bus_bytes, static_cast<int>(cells.size()),
      [](const void* p, int c) {
        return &static_cast<const RequestCell*>(p)[c].data;
      },
      cells.data());
}

std::vector<std::uint8_t> extract_response_data(
    Opcode opc, std::uint32_t add, std::span<const ResponseCell> cells,
    int bus_bytes) {
  return extract_data(
      opc, add, bus_bytes, static_cast<int>(cells.size()),
      [](const void* p, int c) {
        return &static_cast<const ResponseCell*>(p)[c].data;
      },
      cells.data());
}

}  // namespace crve::stbus
