#include "stbus/opcode.h"

#include <stdexcept>

namespace crve::stbus {

Opcode load_of_size(int bytes) {
  switch (bytes) {
    case 1:
      return Opcode::kLd1;
    case 2:
      return Opcode::kLd2;
    case 4:
      return Opcode::kLd4;
    case 8:
      return Opcode::kLd8;
    case 16:
      return Opcode::kLd16;
    case 32:
      return Opcode::kLd32;
    case 64:
      return Opcode::kLd64;
    default:
      throw std::invalid_argument("load_of_size: bad size " +
                                  std::to_string(bytes));
  }
}

Opcode store_of_size(int bytes) {
  switch (bytes) {
    case 1:
      return Opcode::kSt1;
    case 2:
      return Opcode::kSt2;
    case 4:
      return Opcode::kSt4;
    case 8:
      return Opcode::kSt8;
    case 16:
      return Opcode::kSt16;
    case 32:
      return Opcode::kSt32;
    case 64:
      return Opcode::kSt64;
    default:
      throw std::invalid_argument("store_of_size: bad size " +
                                  std::to_string(bytes));
  }
}

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kRmw4:
      return "RMW4";
    case Opcode::kSwap4:
      return "SWAP4";
    default:
      break;
  }
  const std::string kind = is_load(op) ? "LD" : "ST";
  return kind + std::to_string(size_bytes(op));
}

std::string to_string(RspOpcode op) {
  return op == RspOpcode::kOk ? "OK" : "ERROR";
}

}  // namespace crve::stbus
