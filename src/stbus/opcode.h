// STBus operation and response opcodes.
//
// The public STBus transaction set: loads and stores of power-of-two sizes
// from 1 to 64 bytes, plus the atomic ReadModifyWrite and Swap operations.
// Sizes above the port width produce multi-cell packets.
#pragma once

#include <cstdint>
#include <string>

namespace crve::stbus {

enum class Opcode : std::uint8_t {
  kLd1 = 0,
  kLd2,
  kLd4,
  kLd8,
  kLd16,
  kLd32,
  kLd64,
  kSt1,
  kSt2,
  kSt4,
  kSt8,
  kSt16,
  kSt32,
  kSt64,
  kRmw4,   // atomic OR under byte enables; returns old value
  kSwap4,  // atomic exchange; returns old value
};

constexpr int kOpcodeBits = 6;
constexpr int kNumOpcodes = 16;

constexpr bool is_load(Opcode op) {
  return op >= Opcode::kLd1 && op <= Opcode::kLd64;
}
constexpr bool is_store(Opcode op) {
  return op >= Opcode::kSt1 && op <= Opcode::kSt64;
}
constexpr bool is_atomic(Opcode op) {
  return op == Opcode::kRmw4 || op == Opcode::kSwap4;
}

// Transfer size in bytes.
constexpr int size_bytes(Opcode op) {
  switch (op) {
    case Opcode::kLd1:
    case Opcode::kSt1:
      return 1;
    case Opcode::kLd2:
    case Opcode::kSt2:
      return 2;
    case Opcode::kLd4:
    case Opcode::kSt4:
    case Opcode::kRmw4:
    case Opcode::kSwap4:
      return 4;
    case Opcode::kLd8:
    case Opcode::kSt8:
      return 8;
    case Opcode::kLd16:
    case Opcode::kSt16:
      return 16;
    case Opcode::kLd32:
    case Opcode::kSt32:
      return 32;
    case Opcode::kLd64:
    case Opcode::kSt64:
      return 64;
  }
  return 0;
}

Opcode load_of_size(int bytes);
Opcode store_of_size(int bytes);
std::string to_string(Opcode op);

// Response status carried on r_opc.
enum class RspOpcode : std::uint8_t { kOk = 0, kError = 1 };
constexpr int kRspOpcodeBits = 2;

std::string to_string(RspOpcode op);

}  // namespace crve::stbus
