// STBus port pin bundle.
//
// One bundle carries the request channel (driven by the initiator side,
// granted by the target side) and the response channel (driven by the
// target side, granted by the initiator side). The same bundle type is
// instantiated at initiator ports (BFM <-> node) and target ports
// (node <-> BFM); the verification components attach to bundles without
// caring which view of the DUT sits behind them — this is the mechanism
// that makes the environment reusable across RTL and BCA (paper Fig. 2).
#pragma once

#include <string>
#include <vector>

#include "common/bits.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/packet.h"

namespace crve::stbus {

struct PortPins {
  PortPins(sim::Context& ctx, const std::string& base, const NodeConfig& cfg)
      : PortPins(ctx, base, cfg.bus_bytes, cfg.address_bits, cfg.src_bits,
                 cfg.tid_bits) {}

  PortPins(sim::Context& ctx, const std::string& base, int bus_bytes,
           int address_bits = 32, int src_bits = 6, int tid_bits = 8)
      : bus_bytes(bus_bytes),
        req(ctx, base + ".req"),
        gnt(ctx, base + ".gnt"),
        opc(ctx, base + ".opc", kOpcodeBits),
        add(ctx, base + ".add", address_bits),
        data(ctx, base + ".data", bus_bytes * 8),
        be(ctx, base + ".be", bus_bytes),
        eop(ctx, base + ".eop"),
        lck(ctx, base + ".lck"),
        src(ctx, base + ".src", src_bits),
        tid(ctx, base + ".tid", tid_bits),
        r_req(ctx, base + ".r_req"),
        r_gnt(ctx, base + ".r_gnt"),
        r_opc(ctx, base + ".r_opc", kRspOpcodeBits),
        r_data(ctx, base + ".r_data", bus_bytes * 8),
        r_eop(ctx, base + ".r_eop"),
        r_src(ctx, base + ".r_src", src_bits),
        r_tid(ctx, base + ".r_tid", tid_bits) {}

  int bus_bytes;

  // Request channel.
  sim::SignalBool req;
  sim::SignalBool gnt;
  sim::SignalU64 opc;
  sim::SignalU64 add;
  sim::SignalBits data;
  sim::SignalBits be;
  sim::SignalBool eop;
  sim::SignalBool lck;
  sim::SignalU64 src;
  sim::SignalU64 tid;

  // Response channel.
  sim::SignalBool r_req;
  sim::SignalBool r_gnt;
  sim::SignalU64 r_opc;
  sim::SignalBits r_data;
  sim::SignalBool r_eop;
  sim::SignalU64 r_src;
  sim::SignalU64 r_tid;

  // --- helpers for drivers -----------------------------------------------
  void drive_request(const RequestCell& c) {
    req.write(true);
    opc.write(static_cast<std::uint64_t>(c.opc));
    add.write(c.add);
    data.write(c.data);
    be.write(c.be);
    eop.write(c.eop);
    lck.write(c.lck);
    src.write(c.src);
    tid.write(c.tid);
  }

  void idle_request() { req.write(false); }

  void drive_response(const ResponseCell& c) {
    r_req.write(true);
    r_opc.write(static_cast<std::uint64_t>(c.opc));
    r_data.write(c.data);
    r_eop.write(c.eop);
    r_src.write(c.src);
    r_tid.write(c.tid);
  }

  void idle_response() { r_req.write(false); }

  // --- helpers for samplers (settled values) ------------------------------
  bool request_fires() const { return req.read() && gnt.read(); }
  bool response_fires() const { return r_req.read() && r_gnt.read(); }

  RequestCell sample_request() const {
    RequestCell c;
    c.opc = static_cast<Opcode>(opc.read());
    c.add = static_cast<std::uint32_t>(add.read());
    c.data = data.read();
    c.be = be.read();
    c.eop = eop.read();
    c.lck = lck.read();
    c.src = static_cast<std::uint8_t>(src.read());
    c.tid = static_cast<std::uint8_t>(tid.read());
    return c;
  }

  ResponseCell sample_response() const {
    ResponseCell c;
    c.opc = static_cast<RspOpcode>(r_opc.read());
    c.data = r_data.read();
    c.eop = r_eop.read();
    c.src = static_cast<std::uint8_t>(r_src.read());
    c.tid = static_cast<std::uint8_t>(r_tid.read());
    return c;
  }

  // --- helpers for design-lint declarations (ClockedOpts/CombOpts) --------
  // Pin accesses through the sampler/driver helpers above are data-dependent
  // (payload only when the channel fires), so single-evaluation recording
  // under-approximates; components declare the full bundle slices instead.
  std::vector<const sim::SignalBase*> request_signals() const {
    return {&req, &opc, &add, &data, &be, &eop, &lck, &src, &tid};
  }
  std::vector<const sim::SignalBase*> response_signals() const {
    return {&r_req, &r_opc, &r_data, &r_eop, &r_src, &r_tid};
  }
  std::vector<const sim::SignalBase*> all_signals() const {
    return {&req,   &gnt,    &opc,   &add,   &data, &be,    &eop,   &lck,
            &src,   &tid,    &r_req, &r_gnt, &r_opc, &r_data, &r_eop,
            &r_src, &r_tid};
  }
};

}  // namespace crve::stbus
