// STBus node and interconnect configuration.
//
// Mirrors the HDL parameters the paper's regression tool submits through its
// GUI: protocol type, number of initiator/target ports, data width,
// architecture (shared bus / full / partial crossbar), arbitration policy,
// address map, and the optional programmable-priority port.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stbus/opcode.h"

namespace crve::stbus {

enum class ProtocolType : std::uint8_t { kType1 = 1, kType2 = 2, kType3 = 3 };

enum class Architecture : std::uint8_t {
  kSharedBus = 0,      // one transfer at a time across the whole node
  kFullCrossbar = 1,   // concurrent transfers to distinct targets
  kPartialCrossbar = 2 // concurrency between declared target groups only
};

// The six arbitration policies of the STBus node.
enum class ArbPolicy : std::uint8_t {
  kFixedPriority = 0,
  kRoundRobin = 1,
  kLru = 2,
  kLatencyBased = 3,      // deadline counters per initiator
  kBandwidthLimited = 4,  // token bucket per initiator
  kProgrammable = 5,      // priorities written via the programming port
};

std::string to_string(ProtocolType t);
std::string to_string(Architecture a);
std::string to_string(ArbPolicy p);

struct AddressRange {
  std::uint32_t base = 0;
  std::uint32_t size = 0;  // bytes; base..base+size-1
  int target = 0;

  bool contains(std::uint32_t addr) const {
    return addr >= base && addr - base < size;
  }
};

struct NodeConfig {
  std::string name = "node";
  int n_initiators = 2;
  int n_targets = 2;
  int bus_bytes = 4;  // port data width in bytes: 1..32 (8..256 bits)
  ProtocolType type = ProtocolType::kType2;
  Architecture arch = Architecture::kFullCrossbar;
  ArbPolicy arb = ArbPolicy::kFixedPriority;

  // Request routing. Addresses hitting no range get an error response.
  std::vector<AddressRange> address_map;

  // Per-initiator static priorities (higher wins) for kFixedPriority and the
  // reset values for kProgrammable. Defaults to initiator index.
  std::vector<int> priorities;

  // Per-initiator deadline (cycles) for kLatencyBased: the longer a request
  // has been waiting relative to its deadline, the higher its priority.
  std::vector<int> latency_deadline;

  // Per-initiator token budget for kBandwidthLimited: grants per
  // `bandwidth_window` cycles. 0 = unlimited.
  std::vector<int> bandwidth_quota;
  int bandwidth_window = 64;

  // Partial crossbar: group id per target; targets sharing a group share one
  // datapath resource. Ignored for other architectures.
  std::vector<int> xbar_group;

  // When true the node exposes a Type1 programming port whose registers hold
  // the per-initiator priorities used by kProgrammable.
  bool programming_port = false;

  int address_bits = 32;
  int src_bits = 6;
  int tid_bits = 8;

  // Fills defaulted vectors, checks ranges; throws std::invalid_argument.
  void validate_and_normalize();

  // Evenly splits a window of the address space across targets.
  static std::vector<AddressRange> even_map(int n_targets,
                                            std::uint32_t base = 0,
                                            std::uint32_t per_target = 0x10000);

  // Routes an address; returns -1 for a decode error.
  int route(std::uint32_t addr) const;

  // Datapath resource index for a target under the configured architecture:
  // shared bus -> 0 for all; full crossbar -> target index; partial -> group.
  int resource_of_target(int target) const;
  int num_resources() const;

  std::string summary() const;
};

}  // namespace crve::stbus
