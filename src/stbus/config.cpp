#include "stbus/config.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace crve::stbus {

std::string to_string(ProtocolType t) {
  switch (t) {
    case ProtocolType::kType1:
      return "T1";
    case ProtocolType::kType2:
      return "T2";
    case ProtocolType::kType3:
      return "T3";
  }
  return "?";
}

std::string to_string(Architecture a) {
  switch (a) {
    case Architecture::kSharedBus:
      return "shared";
    case Architecture::kFullCrossbar:
      return "full-xbar";
    case Architecture::kPartialCrossbar:
      return "partial-xbar";
  }
  return "?";
}

std::string to_string(ArbPolicy p) {
  switch (p) {
    case ArbPolicy::kFixedPriority:
      return "fixed-priority";
    case ArbPolicy::kRoundRobin:
      return "round-robin";
    case ArbPolicy::kLru:
      return "lru";
    case ArbPolicy::kLatencyBased:
      return "latency";
    case ArbPolicy::kBandwidthLimited:
      return "bandwidth";
    case ArbPolicy::kProgrammable:
      return "programmable";
  }
  return "?";
}

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

void NodeConfig::validate_and_normalize() {
  if (n_initiators < 1 || n_initiators > 32) {
    throw std::invalid_argument("NodeConfig: n_initiators must be 1..32");
  }
  if (n_targets < 1 || n_targets > 32) {
    throw std::invalid_argument("NodeConfig: n_targets must be 1..32");
  }
  if (!is_pow2(bus_bytes) || bus_bytes < 1 || bus_bytes > 32) {
    throw std::invalid_argument(
        "NodeConfig: bus_bytes must be a power of two in 1..32");
  }
  if (type == ProtocolType::kType1) {
    throw std::invalid_argument("NodeConfig: the node supports Type2/Type3");
  }
  if (address_map.empty()) {
    address_map = even_map(n_targets);
  }
  for (const auto& r : address_map) {
    if (r.target < 0 || r.target >= n_targets) {
      throw std::invalid_argument("NodeConfig: address map target out of range");
    }
    if (r.size == 0) {
      throw std::invalid_argument("NodeConfig: empty address range");
    }
  }
  auto fill = [&](std::vector<int>& v, int def_from_index) {
    if (v.empty()) {
      v.resize(static_cast<std::size_t>(n_initiators));
      for (int i = 0; i < n_initiators; ++i) {
        v[static_cast<std::size_t>(i)] = def_from_index >= 0 ? i : 0;
      }
    }
    if (static_cast<int>(v.size()) != n_initiators) {
      throw std::invalid_argument("NodeConfig: per-initiator vector size");
    }
  };
  fill(priorities, /*def_from_index=*/1);
  if (latency_deadline.empty()) {
    latency_deadline.assign(static_cast<std::size_t>(n_initiators), 16);
  }
  if (static_cast<int>(latency_deadline.size()) != n_initiators) {
    throw std::invalid_argument("NodeConfig: latency_deadline size");
  }
  if (bandwidth_quota.empty()) {
    bandwidth_quota.assign(static_cast<std::size_t>(n_initiators), 0);
  }
  if (static_cast<int>(bandwidth_quota.size()) != n_initiators) {
    throw std::invalid_argument("NodeConfig: bandwidth_quota size");
  }
  if (bandwidth_window < 1) {
    throw std::invalid_argument("NodeConfig: bandwidth_window must be >= 1");
  }
  if (arch == Architecture::kPartialCrossbar) {
    if (xbar_group.empty()) {
      // Default grouping: pairs of targets share a resource.
      xbar_group.resize(static_cast<std::size_t>(n_targets));
      for (int t = 0; t < n_targets; ++t) {
        xbar_group[static_cast<std::size_t>(t)] = t / 2;
      }
    }
    if (static_cast<int>(xbar_group.size()) != n_targets) {
      throw std::invalid_argument("NodeConfig: xbar_group size");
    }
    for (int g : xbar_group) {
      if (g < 0 || g >= n_targets) {
        throw std::invalid_argument("NodeConfig: xbar_group id out of range");
      }
    }
    // Remap group ids to a dense 0..k-1 range so they double as resource
    // indices (per-resource state arrays are sized by num_resources()).
    std::set<int> distinct(xbar_group.begin(), xbar_group.end());
    std::vector<int> order(distinct.begin(), distinct.end());
    for (auto& g : xbar_group) {
      g = static_cast<int>(
          std::lower_bound(order.begin(), order.end(), g) - order.begin());
    }
  }
}

std::vector<AddressRange> NodeConfig::even_map(int n_targets,
                                               std::uint32_t base,
                                               std::uint32_t per_target) {
  std::vector<AddressRange> map;
  map.reserve(static_cast<std::size_t>(n_targets));
  for (int t = 0; t < n_targets; ++t) {
    map.push_back({base + static_cast<std::uint32_t>(t) * per_target,
                   per_target, t});
  }
  return map;
}

int NodeConfig::route(std::uint32_t addr) const {
  for (const auto& r : address_map) {
    if (r.contains(addr)) return r.target;
  }
  return -1;
}

int NodeConfig::resource_of_target(int target) const {
  switch (arch) {
    case Architecture::kSharedBus:
      return 0;
    case Architecture::kFullCrossbar:
      return target;
    case Architecture::kPartialCrossbar:
      return xbar_group[static_cast<std::size_t>(target)];
  }
  return 0;
}

int NodeConfig::num_resources() const {
  switch (arch) {
    case Architecture::kSharedBus:
      return 1;
    case Architecture::kFullCrossbar:
      return n_targets;
    case Architecture::kPartialCrossbar: {
      std::set<int> groups(xbar_group.begin(), xbar_group.end());
      return static_cast<int>(groups.size());
    }
  }
  return 1;
}

std::string NodeConfig::summary() const {
  std::ostringstream os;
  os << name << ": " << to_string(type) << " " << n_initiators << "i x "
     << n_targets << "t, " << bus_bytes * 8 << "-bit, " << to_string(arch)
     << ", " << to_string(arb)
     << (programming_port ? ", prog-port" : "");
  return os.str();
}

}  // namespace crve::stbus
