#include "bca/node.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "stbus/packet.h"

namespace crve::bca {

using stbus::Opcode;
using stbus::PortPins;
using stbus::RequestCell;
using stbus::ResponseCell;
using stbus::RspOpcode;

// ---------------------------------------------------------------------------
// ArbState
// ---------------------------------------------------------------------------

ArbState::ArbState(const stbus::NodeConfig& cfg)
    : policy_(cfg.arb),
      n_(cfg.n_initiators),
      prio_(cfg.priorities),
      waited_(static_cast<std::size_t>(cfg.n_initiators), 0),
      deadline_(cfg.latency_deadline),
      tokens_(cfg.bandwidth_quota),
      quota_(cfg.bandwidth_quota),
      window_(cfg.bandwidth_window) {
  for (int i = 0; i < n_; ++i) lru_order_.push_back(i);
}

int ArbState::choose(std::uint32_t eligible) const {
  if (eligible == 0) return -1;
  std::vector<int> cand;
  for (int i = 0; i < n_; ++i) {
    if ((eligible >> i) & 1u) cand.push_back(i);
  }
  auto rr_distance = [this](int i) { return (i - next_ptr_ + n_) % n_; };
  switch (policy_) {
    case stbus::ArbPolicy::kFixedPriority:
    case stbus::ArbPolicy::kProgrammable: {
      std::stable_sort(cand.begin(), cand.end(), [this](int a, int b) {
        return prio_[static_cast<std::size_t>(a)] >
               prio_[static_cast<std::size_t>(b)];
      });
      return cand.front();
    }
    case stbus::ArbPolicy::kRoundRobin: {
      return *std::min_element(cand.begin(), cand.end(),
                               [&](int a, int b) {
                                 return rr_distance(a) < rr_distance(b);
                               });
    }
    case stbus::ArbPolicy::kLru: {
      for (int i : lru_order_) {
        if ((eligible >> i) & 1u) return i;
      }
      return -1;
    }
    case stbus::ArbPolicy::kLatencyBased: {
      int best = cand.front();
      long best_u = static_cast<long>(waited_[static_cast<std::size_t>(best)]) -
                    deadline_[static_cast<std::size_t>(best)];
      for (int i : cand) {
        const long u = static_cast<long>(waited_[static_cast<std::size_t>(i)]) -
                       deadline_[static_cast<std::size_t>(i)];
        if (u > best_u) {
          best = i;
          best_u = u;
        }
      }
      return best;
    }
    case stbus::ArbPolicy::kBandwidthLimited: {
      std::vector<int> pool;
      for (int i : cand) {
        if (quota_[static_cast<std::size_t>(i)] == 0 ||
            tokens_[static_cast<std::size_t>(i)] > 0) {
          pool.push_back(i);
        }
      }
      if (pool.empty()) pool = cand;  // work-conserving fallback
      return *std::min_element(pool.begin(), pool.end(),
                               [&](int a, int b) {
                                 return rr_distance(a) < rr_distance(b);
                               });
    }
  }
  return -1;
}

void ArbState::update(std::uint64_t next_cycle, int granted,
                      std::uint32_t requesting, bool holds_allocation,
                      const Faults& faults) {
  for (int i = 0; i < n_; ++i) {
    auto& w = waited_[static_cast<std::size_t>(i)];
    if (((requesting >> i) & 1u) && i != granted) {
      ++w;
    } else {
      w = 0;
    }
  }
  if (granted >= 0) {
    const bool skip_lru = faults.lru_stale_on_chunk && holds_allocation;
    if (!skip_lru) {
      lru_order_.remove(granted);
      lru_order_.push_back(granted);
    }
    next_ptr_ = (granted + 1) % n_;
    auto& t = tokens_[static_cast<std::size_t>(granted)];
    if (quota_[static_cast<std::size_t>(granted)] > 0 && t > 0) --t;
  }
  if (window_ > 0 && next_cycle % static_cast<std::uint64_t>(window_) == 0) {
    tokens_ = quota_;
  }
}

bool ArbState::quiescent() const {
  for (const int w : waited_) {
    if (w != 0) return false;
  }
  return window_ <= 0 || tokens_ == quota_;
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

Node::Node(sim::Context& ctx, stbus::NodeConfig cfg,
           std::vector<PortPins*> initiator_ports,
           std::vector<PortPins*> target_ports, PortPins* prog_port,
           Faults faults, bool memoize)
    : ctx_(ctx),
      cfg_(std::move(cfg)),
      iports_(std::move(initiator_ports)),
      tports_(std::move(target_ports)),
      prog_(prog_port),
      faults_(faults),
      memoize_(memoize) {
  cfg_.validate_and_normalize();
  if (static_cast<int>(iports_.size()) != cfg_.n_initiators ||
      static_cast<int>(tports_.size()) != cfg_.n_targets) {
    throw std::invalid_argument("bca::Node: port count mismatch");
  }
  if (cfg_.programming_port && prog_ == nullptr) {
    throw std::invalid_argument("bca::Node: programming port pins missing");
  }
  const int nres = cfg_.num_resources();
  arb_.assign(static_cast<std::size_t>(nres), ArbState(cfg_));
  allocation_.assign(static_cast<std::size_t>(nres), -1);
  to_target_.resize(static_cast<std::size_t>(cfg_.n_targets));
  to_initiator_.resize(static_cast<std::size_t>(cfg_.n_initiators));
  rsp_allocation_.assign(static_cast<std::size_t>(cfg_.n_initiators), -1);
  rsp_next_.assign(static_cast<std::size_t>(cfg_.n_initiators), 0);
  err_pending_.resize(static_cast<std::size_t>(cfg_.n_initiators));

  // Design-lint declaration for the tick process: payload pins are sampled
  // only for ports with traffic in flight; all pin writes go through
  // drive_pins().
  sim::ClockedOpts tick_decl;
  for (const PortPins* p : iports_) {
    for (const auto* s : p->request_signals()) tick_decl.reads.push_back(s);
    tick_decl.reads.push_back(&p->r_gnt);
  }
  for (const PortPins* p : tports_) {
    for (const auto* s : p->response_signals()) tick_decl.reads.push_back(s);
    tick_decl.reads.push_back(&p->gnt);
  }
  if (prog_ != nullptr) {
    tick_decl.reads.push_back(&prog_->req);
    tick_decl.reads.push_back(&prog_->opc);
    tick_decl.reads.push_back(&prog_->add);
    tick_decl.reads.push_back(&prog_->data);
  }
  ctx.add_clocked(cfg_.name + ".tick", [this] { tick(); },
                  std::move(tick_decl));
  // Declared read-set for the compiled schedule: the exact pin superset
  // evaluate()/drive_pins() may read. Discovery alone would miss the
  // data-dependent reads (route(add) behind req, slot checks behind queue
  // occupancy). Internal tick-owned state is covered by the StateTag.
  sim::CombOpts drive_opts;
  drive_opts.state = &tag_;
  for (const PortPins* p : iports_) {
    drive_opts.reads.push_back(&p->req);
    drive_opts.reads.push_back(&p->add);
    drive_opts.reads.push_back(&p->r_gnt);
  }
  for (const PortPins* p : tports_) {
    drive_opts.reads.push_back(&p->gnt);
    drive_opts.reads.push_back(&p->r_req);
    drive_opts.reads.push_back(&p->r_src);
  }
  // Payload slices are driven only while cells are queued — declared for
  // the design-lint view.
  for (const PortPins* p : iports_) {
    for (const auto* s : p->response_signals()) {
      drive_opts.writes.push_back(s);
    }
  }
  for (const PortPins* p : tports_) {
    for (const auto* s : p->request_signals()) {
      drive_opts.writes.push_back(s);
    }
  }
  ctx.add_comb(cfg_.name + ".drive", [this] { drive_pins(); },
               std::move(drive_opts));
}

bool Node::idle_cycle() const {
  // One stamp compare while nothing anywhere commits a change: an idle
  // tick mutates nothing this check reads, so the answer cannot flip.
  const std::uint64_t stamp = ctx_.change_stamp();
  if (was_idle_ && stamp == idle_stamp_) return true;
  was_idle_ = false;
  idle_stamp_ = stamp;
  for (const PortPins* p : iports_) {
    if (p->req.read()) return false;
  }
  for (const PortPins* p : tports_) {
    if (p->r_req.read()) return false;
  }
  for (const auto& q : to_target_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : to_initiator_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : err_pending_) {
    if (!q.empty()) return false;
  }
  if (prog_ != nullptr && (prog_ack_ || prog_->req.read())) return false;
  for (const auto& a : arb_) {
    if (!a.quiescent()) return false;
  }
  was_idle_ = true;
  return true;
}

bool Node::target_slot_free(int target) const {
  return to_target_[static_cast<std::size_t>(target)].empty() ||
         tports_[static_cast<std::size_t>(target)]->gnt.read();
}

bool Node::initiator_slot_free(int initiator) const {
  return to_initiator_[static_cast<std::size_t>(initiator)].empty() ||
         iports_[static_cast<std::size_t>(initiator)]->r_gnt.read();
}

Node::Outcome Node::evaluate() const {
  const int nres = cfg_.num_resources();
  const int T = cfg_.n_targets;
  Outcome out;
  out.req_winner.assign(static_cast<std::size_t>(nres), -1);
  out.req_mask.assign(static_cast<std::size_t>(nres), 0);
  out.rsp_pick.assign(static_cast<std::size_t>(cfg_.n_initiators), -1);

  // Request side.
  std::vector<std::uint32_t> ready(static_cast<std::size_t>(nres), 0);
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    const PortPins& p = *iports_[static_cast<std::size_t>(i)];
    if (!p.req.read()) continue;
    const int t = cfg_.route(static_cast<std::uint32_t>(p.add.read()));
    if (t < 0) {
      out.grants |= 1u << i;
      out.error_sinks |= 1u << i;
      continue;
    }
    const int r = cfg_.resource_of_target(t);
    out.req_mask[static_cast<std::size_t>(r)] |= 1u << i;
    if (target_slot_free(t)) ready[static_cast<std::size_t>(r)] |= 1u << i;
  }
  for (int r = 0; r < nres; ++r) {
    const int holder =
        faults_.grant_during_lock ? -1 : allocation_[static_cast<std::size_t>(r)];
    int w;
    if (holder >= 0) {
      w = ((ready[static_cast<std::size_t>(r)] >> holder) & 1u) ? holder : -1;
    } else {
      w = arb_[static_cast<std::size_t>(r)].choose(
          ready[static_cast<std::size_t>(r)]);
    }
    out.req_winner[static_cast<std::size_t>(r)] = w;
    if (w >= 0) out.grants |= 1u << w;
  }

  // Response side.
  std::vector<int> offer_to(static_cast<std::size_t>(T), -1);
  for (int t = 0; t < T; ++t) {
    const PortPins& p = *tports_[static_cast<std::size_t>(t)];
    if (p.r_req.read()) {
      const int i = static_cast<int>(p.r_src.read());
      if (i >= 0 && i < cfg_.n_initiators) {
        offer_to[static_cast<std::size_t>(t)] = i;
      }
    }
  }
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    if (!initiator_slot_free(i)) continue;
    auto offering = [&](int s) {
      if (s < T) return offer_to[static_cast<std::size_t>(s)] == i;
      return !err_pending_[static_cast<std::size_t>(i)].empty();
    };
    const int holder = rsp_allocation_[static_cast<std::size_t>(i)];
    if (holder >= 0) {
      if (offering(holder)) out.rsp_pick[static_cast<std::size_t>(i)] = holder;
      continue;
    }
    for (int k = 0; k <= T; ++k) {
      const int s = (rsp_next_[static_cast<std::size_t>(i)] + k) % (T + 1);
      if (offering(s)) {
        out.rsp_pick[static_cast<std::size_t>(i)] = s;
        break;
      }
    }
  }
  if (cfg_.arch == stbus::Architecture::kSharedBus) {
    int keep = -1;
    for (int k = 0; k < cfg_.n_initiators; ++k) {
      const int i = (rsp_shared_next_ + k) % cfg_.n_initiators;
      if (out.rsp_pick[static_cast<std::size_t>(i)] != -1) {
        keep = i;
        break;
      }
    }
    for (int i = 0; i < cfg_.n_initiators; ++i) {
      if (i != keep) out.rsp_pick[static_cast<std::size_t>(i)] = -1;
    }
  }
  return out;
}

std::uint64_t Node::input_stamp() const {
  std::uint64_t m = 0;
  auto acc = [&m](const sim::SignalBase& s) { m = std::max(m, s.stamp()); };
  for (const PortPins* p : iports_) {
    acc(p->req);
    acc(p->opc);
    acc(p->add);
    acc(p->data);
    acc(p->be);
    acc(p->eop);
    acc(p->lck);
    acc(p->src);
    acc(p->tid);
    acc(p->r_gnt);
  }
  for (const PortPins* p : tports_) {
    acc(p->gnt);
    acc(p->r_req);
    acc(p->r_opc);
    acc(p->r_data);
    acc(p->r_eop);
    acc(p->r_src);
    acc(p->r_tid);
  }
  if (prog_ != nullptr) {
    acc(prog_->req);
    acc(prog_->opc);
    acc(prog_->add);
    acc(prog_->data);
  }
  return m;
}

void Node::drive_pins() {
  // Sensitivity-list shortcut: outputs depend only on (cycle-local internal
  // state, input pins). The kernel re-runs every combinational process each
  // delta; a transaction-level model re-evaluates only when something it is
  // sensitive to actually changed. Driven output values persist on skips.
  if (memoize_) {
    const std::uint64_t stamp = input_stamp();
    if (ctx_.cycle() == eval_cycle_ && stamp == eval_stamp_) return;
    eval_cycle_ = ctx_.cycle();
    eval_stamp_ = stamp;
  }

  const Outcome out = evaluate();
  const int T = cfg_.n_targets;

  for (int i = 0; i < cfg_.n_initiators; ++i) {
    iports_[static_cast<std::size_t>(i)]->gnt.write((out.grants >> i) & 1u);
  }
  for (int t = 0; t < T; ++t) {
    PortPins& p = *tports_[static_cast<std::size_t>(t)];
    const auto& q = to_target_[static_cast<std::size_t>(t)];
    if (!q.empty()) {
      p.drive_request(q.front());
    } else {
      p.idle_request();
    }
  }
  for (int t = 0; t < T; ++t) {
    const PortPins& p = *tports_[static_cast<std::size_t>(t)];
    bool g = false;
    if (p.r_req.read()) {
      const int i = static_cast<int>(p.r_src.read());
      if (i >= 0 && i < cfg_.n_initiators) {
        g = out.rsp_pick[static_cast<std::size_t>(i)] == t;
      }
    }
    tports_[static_cast<std::size_t>(t)]->r_gnt.write(g);
  }
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    PortPins& p = *iports_[static_cast<std::size_t>(i)];
    const auto& q = to_initiator_[static_cast<std::size_t>(i)];
    if (!q.empty()) {
      p.drive_response(q.front());
    } else {
      p.idle_response();
    }
  }
  if (prog_ != nullptr) {
    prog_->gnt.write(prog_ack_);
    prog_->r_req.write(prog_ack_);
    prog_->r_eop.write(prog_ack_);
    prog_->r_opc.write(static_cast<std::uint64_t>(
        prog_bad_ ? RspOpcode::kError : RspOpcode::kOk));
    prog_->r_data.write(
        crve::Bits(prog_->bus_bytes * 8, prog_load_ ? prog_value_ : 0));
  }
}

void Node::tick() {
  ++ticks_;
  if (idle_cycle()) return;  // provably a no-op beyond the cycle counter
  tag_.bump();
  const Outcome out = evaluate();
  const int T = cfg_.n_targets;
  const int nres = cfg_.num_resources();

  // Response slots: retire delivered cells, then land the picked cells.
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    auto& q = to_initiator_[static_cast<std::size_t>(i)];
    if (!q.empty() && iports_[static_cast<std::size_t>(i)]->r_gnt.read()) {
      q.pop_front();
    }
  }
  std::vector<std::pair<int, ResponseCell>> landings;  // (initiator, cell)
  bool delivered_any = false;
  int first_served = -1;
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    const int s = out.rsp_pick[static_cast<std::size_t>(i)];
    if (s < 0) continue;
    delivered_any = true;
    if (first_served < 0) first_served = i;
    ResponseCell cell;
    if (s < T) {
      cell = tports_[static_cast<std::size_t>(s)]->sample_response();
    } else {
      auto& q = err_pending_[static_cast<std::size_t>(i)];
      PendingError& e = q.front();
      cell.opc = RspOpcode::kError;
      cell.data = crve::Bits(cfg_.bus_bytes * 8);
      cell.src = static_cast<std::uint8_t>(i);
      cell.tid = e.tid;
      cell.eop = e.cells_left == 1 ||
                 (faults_.eop_one_cell_early && e.cells_left == 2);
      if (cell.eop) {
        q.pop_front();
      } else {
        --e.cells_left;
      }
    }
    rsp_allocation_[static_cast<std::size_t>(i)] = cell.eop ? -1 : s;
    if (cell.eop) {
      rsp_next_[static_cast<std::size_t>(i)] = (s + 1) % (T + 1);
    }
    landings.emplace_back(i, std::move(cell));
  }
  if (faults_.response_src_swap && landings.size() == 2) {
    std::swap(landings[0].second, landings[1].second);
  }
  for (auto& [i, cell] : landings) {
    to_initiator_[static_cast<std::size_t>(i)].push_back(std::move(cell));
  }
  if (cfg_.arch == stbus::Architecture::kSharedBus && delivered_any) {
    rsp_shared_next_ = (first_served + 1) % cfg_.n_initiators;
  }

  // Request slots: retire consumed cells, then land granted cells.
  std::vector<bool> was_draining(static_cast<std::size_t>(T), false);
  for (int t = 0; t < T; ++t) {
    auto& q = to_target_[static_cast<std::size_t>(t)];
    if (!q.empty() && tports_[static_cast<std::size_t>(t)]->gnt.read()) {
      was_draining[static_cast<std::size_t>(t)] = true;
      q.pop_front();
    }
  }
  for (int r = 0; r < nres; ++r) {
    const int w = out.req_winner[static_cast<std::size_t>(r)];
    bool locks = false;
    bool continuation = false;  // cell continues/closes a held allocation
    if (w >= 0) {
      continuation = allocation_[static_cast<std::size_t>(r)] == w;
      RequestCell cell = iports_[static_cast<std::size_t>(w)]->sample_request();
      cell.src = static_cast<std::uint8_t>(w);
      locks = cell.lck;
      if (faults_.byte_enable_dropped && stbus::is_store(cell.opc)) {
        cell.be = crve::Bits::all_ones(cfg_.bus_bytes);
      }
      const int t = cfg_.route(cell.add);
      if (faults_.opcode_corrupt_on_busy &&
          was_draining[static_cast<std::size_t>(t)]) {
        cell.opc = static_cast<Opcode>(static_cast<std::uint8_t>(cell.opc) ^ 1u);
      }
      to_target_[static_cast<std::size_t>(t)].push_back(std::move(cell));
      allocation_[static_cast<std::size_t>(r)] = locks ? w : -1;
    }
    arb_[static_cast<std::size_t>(r)].update(
        ticks_, w, out.req_mask[static_cast<std::size_t>(r)],
        locks || continuation, faults_);
  }

  // Decode-error sinks.
  for (int i = 0; i < cfg_.n_initiators; ++i) {
    if (!((out.error_sinks >> i) & 1u)) continue;
    const RequestCell cell =
        iports_[static_cast<std::size_t>(i)]->sample_request();
    if (cell.eop) {
      err_pending_[static_cast<std::size_t>(i)].push_back(
          {cell.opc, cell.tid,
           stbus::response_cells(cell.opc, cfg_.bus_bytes, cfg_.type)});
    }
  }

  if (prog_ != nullptr) handle_prog();
}

void Node::handle_prog() {
  if (prog_ack_) {
    prog_ack_ = false;
    return;
  }
  if (!prog_->req.read()) return;
  const auto opc = static_cast<Opcode>(prog_->opc.read());
  const auto addr = static_cast<std::uint32_t>(prog_->add.read());
  const int index = static_cast<int>(addr / 4);
  prog_load_ = stbus::is_load(opc);
  prog_bad_ = index < 0 || index >= cfg_.n_initiators;
  prog_value_ = 0;
  if (!prog_bad_) {
    if (prog_load_) {
      prog_value_ =
          static_cast<std::uint32_t>(arb_.front().read_priority(index));
    } else if (!faults_.priority_register_ignored) {
      const auto v =
          static_cast<int>(prog_->data.read().to_u64() & 0xffffffffull);
      for (auto& a : arb_) a.write_priority(index, v);
    }
  }
  prog_ack_ = true;
}

}  // namespace crve::bca
