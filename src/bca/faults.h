// Injectable BCA model bugs.
//
// The paper reports that the common environment found five bugs in the BCA
// models that the old owner-written write-then-read harness missed. This
// catalogue reproduces that experiment: each switch re-creates one bug
// class in the BCA view only, and the tests/benches assert which layer of
// the environment (protocol checker, scoreboard, coverage, or only the STBA
// alignment comparison) catches it.
#pragma once

namespace crve::bca {

struct Faults {
  // --- the paper's "five bugs on BCA models" -----------------------------
  // 1. LRU recency not refreshed for grants that open/continue/close a held
  //    allocation (multi-cell packets and lck chunks), skewing arbitration
  //    order after such traffic. Functionally silent: every packet is still
  //    delivered intact, so only the bus-accurate comparison can see it.
  bool lru_stale_on_chunk = false;
  // 2. Arbiter re-arbitrates mid-chunk instead of honouring the allocation
  //    (`lck`), interleaving packets from different initiators.
  bool grant_during_lock = false;
  // 3. Store byte enables forced to all-ones at the target port, corrupting
  //    neighbouring bytes on sub-bus stores.
  bool byte_enable_dropped = false;
  // 4. When two targets offer responses to distinct initiators in the same
  //    cycle, the response cells are delivered to each other's ports.
  bool response_src_swap = false;
  // 5. The BCA size converter assembles sub-words in reversed order
  //    (endianness confusion across the width boundary).
  bool size_conv_endianness = false;

  // --- extra faults used by the test suite -------------------------------
  // Forwarded opcode corrupted when the target register was draining.
  bool opcode_corrupt_on_busy = false;
  // Internal error generator terminates error packets one cell early.
  bool eop_one_cell_early = false;
  // Programming-port priority writes acknowledged but never applied.
  bool priority_register_ignored = false;

  bool any() const {
    return lru_stale_on_chunk || grant_during_lock || byte_enable_dropped ||
           response_src_swap || size_conv_endianness ||
           opcode_corrupt_on_busy || eop_one_cell_early ||
           priority_register_ignored;
  }
};

}  // namespace crve::bca
