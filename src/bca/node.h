// BCA (bus-cycle-accurate) view of the STBus node.
//
// Written independently of rtl::Node against the same cycle contract
// (DESIGN.md §4, rtl/node.h): a behavioural, transaction-queue model of the
// kind a SystemC BCA author would produce. Internally it tracks per-target
// outbound slots and per-initiator response slots as small queues, computes
// the whole cycle outcome in one evaluation pass, and keeps arbitration
// state in policy objects of its own design. Only the port pins are
// contractual; everything inside differs from the RTL view — which is what
// makes the paper's alignment comparison meaningful.
//
// All switchable deviations from the contract live in bca::Faults.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::bca {

// Arbitration bookkeeping, one instance per node resource. Implemented with
// recency lists / explicit candidate sorting rather than the RTL view's
// counter scans.
class ArbState {
 public:
  ArbState(const stbus::NodeConfig& cfg);

  int choose(std::uint32_t eligible) const;
  // `holds_allocation` marks grants that open, continue or close a held
  // allocation (lck cells and owner-path continuations); the LRU-stale
  // fault skips the recency refresh exactly for those grants.
  void update(std::uint64_t next_cycle, int granted, std::uint32_t requesting,
              bool holds_allocation, const Faults& faults);

  // True when update(next_cycle, -1, 0, ...) is provably a no-op: no wait
  // counters pending and the bandwidth tokens already at their quota. Lets
  // the node skip whole idle cycles.
  bool quiescent() const;

  void write_priority(int initiator, int value) {
    prio_[static_cast<std::size_t>(initiator)] = value;
  }
  int read_priority(int initiator) const {
    return prio_[static_cast<std::size_t>(initiator)];
  }

 private:
  stbus::ArbPolicy policy_;
  int n_;
  std::vector<int> prio_;
  std::list<int> lru_order_;  // front = least recently granted
  int next_ptr_ = 0;          // round-robin / bandwidth scan start
  std::vector<int> waited_;
  std::vector<int> deadline_;
  std::vector<int> tokens_;
  std::vector<int> quota_;
  int window_;
};

class Node {
 public:
  // `memoize` enables the sensitivity-list shortcut (skip re-evaluation
  // while inputs are unchanged) — the source of the BCA speed advantage;
  // disabling it exists for the ablation benchmark only.
  Node(sim::Context& ctx, stbus::NodeConfig cfg,
       std::vector<stbus::PortPins*> initiator_ports,
       std::vector<stbus::PortPins*> target_ports,
       stbus::PortPins* prog_port = nullptr, Faults faults = {},
       bool memoize = true);

  const stbus::NodeConfig& config() const { return cfg_; }
  const Faults& faults() const { return faults_; }

  int priority(int initiator) const {
    return arb_.front().read_priority(initiator);
  }

 private:
  // Snapshot of one cycle's decisions, shared between the combinational
  // drive and the edge commit.
  struct Outcome {
    std::vector<int> req_winner;       // per resource
    std::vector<std::uint32_t> req_mask;  // per resource, requesting
    std::uint32_t grants = 0;
    std::uint32_t error_sinks = 0;
    std::vector<int> rsp_pick;  // per initiator: source (T = errgen, -1 none)
  };

  struct PendingError {
    stbus::Opcode opc{};
    std::uint8_t tid = 0;
    int cells_left = 0;
  };

  Outcome evaluate() const;
  void drive_pins();
  void tick();
  void handle_prog();
  // Highest change stamp across the pins this model is sensitive to.
  std::uint64_t input_stamp() const;
  // True when this edge is provably a no-op (no traffic in flight, ports
  // idle, arbiters quiescent): the tick body can be skipped entirely.
  // Memoized against the kernel's global change stamp.
  bool idle_cycle() const;

  bool target_slot_free(int target) const;
  bool initiator_slot_free(int initiator) const;

  sim::Context& ctx_;
  stbus::NodeConfig cfg_;
  mutable bool was_idle_ = false;
  mutable std::uint64_t idle_stamp_ = 0;
  std::vector<stbus::PortPins*> iports_;
  std::vector<stbus::PortPins*> tports_;
  stbus::PortPins* prog_ = nullptr;
  Faults faults_;

  std::vector<ArbState> arb_;                    // per resource
  std::vector<int> allocation_;                  // per resource owner
  std::vector<std::deque<stbus::RequestCell>> to_target_;   // capacity 1
  std::vector<std::deque<stbus::ResponseCell>> to_initiator_;  // capacity 1
  std::vector<int> rsp_allocation_;              // per initiator
  std::vector<int> rsp_next_;                    // per-initiator source scan
  int rsp_shared_next_ = 0;
  std::vector<std::deque<PendingError>> err_pending_;  // per initiator

  std::uint64_t ticks_ = 0;

  // Version of the tick-owned internal state the drive process reads
  // (slots, allocations, arbiter state, programming FSM). Bumped on every
  // non-idle edge so the compiled schedule re-dirties the drive process.
  sim::StateTag tag_;

  // Sensitivity-list memoization: skip re-evaluation while the inputs are
  // unchanged within a cycle (what a SystemC BCA model's wait()/sensitivity
  // gives for free — and the source of its speed advantage over RTL).
  bool memoize_ = true;
  std::uint64_t eval_cycle_ = ~std::uint64_t{0};
  std::uint64_t eval_stamp_ = ~std::uint64_t{0};

  bool prog_ack_ = false;
  bool prog_load_ = false;
  bool prog_bad_ = false;
  std::uint32_t prog_value_ = 0;
};

}  // namespace crve::bca
