// BCA view of the size/type converter bridge.
//
// Independent implementation of the same store-and-forward transaction
// contract as rtl::Bridge (one transaction end-to-end at a time; see
// rtl/bridge.h for the phase contract). Organized around a single phase
// counter and cell queues rather than the RTL view's explicit FSM. Carries
// the paper's fifth injected bug: with Faults::size_conv_endianness the
// sub-word groups of a load response are reassembled in reverse order when
// the downstream port is narrower than the upstream one.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bca/faults.h"
#include "sim/context.h"
#include "stbus/config.h"
#include "stbus/pins.h"

namespace crve::bca {

class Bridge {
 public:
  Bridge(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
         stbus::ProtocolType up_type, stbus::PortPins& downstream,
         stbus::ProtocolType dn_type, Faults faults = {});

 private:
  // 0 = absorbing request, 1 = replaying request, 2 = absorbing response,
  // 3 = replaying response.
  int phase_ = 0;
  // Bumped when tick() changes drive-visible state (phase or replay queue
  // heads); re-dirties the drive process under the compiled schedule.
  sim::StateTag tag_;

  void drive();
  void tick();
  void tick_fsm();

  std::string name_;
  stbus::PortPins& up_;
  stbus::PortPins& dn_;
  stbus::ProtocolType up_type_;
  stbus::ProtocolType dn_type_;
  Faults faults_;

  std::vector<stbus::RequestCell> absorbed_;
  std::deque<stbus::RequestCell> outbound_;
  std::vector<stbus::ResponseCell> collected_;
  std::deque<stbus::ResponseCell> returning_;
  int expect_rsp_ = 0;
};

}  // namespace crve::bca
