#include "bca/bridge.h"

#include <algorithm>
#include <utility>

#include "stbus/packet.h"

namespace crve::bca {

using stbus::ProtocolType;
using stbus::Request;
using stbus::RspOpcode;

Bridge::Bridge(sim::Context& ctx, std::string name, stbus::PortPins& upstream,
               ProtocolType up_type, stbus::PortPins& downstream,
               ProtocolType dn_type, Faults faults)
    : name_(std::move(name)),
      up_(upstream),
      dn_(downstream),
      up_type_(up_type),
      dn_type_(dn_type),
      faults_(faults) {
  // Design-lint declaration: each payload slice is sampled only in the
  // matching phase; all pin writes happen in drive().
  sim::ClockedOpts tick_decl;
  tick_decl.reads = up_.request_signals();
  tick_decl.reads.push_back(&up_.gnt);
  tick_decl.reads.push_back(&up_.r_req);
  tick_decl.reads.push_back(&up_.r_gnt);
  for (const auto* s : dn_.response_signals()) tick_decl.reads.push_back(s);
  tick_decl.reads.push_back(&dn_.req);
  tick_decl.reads.push_back(&dn_.gnt);
  tick_decl.reads.push_back(&dn_.r_gnt);
  ctx.add_clocked(name_ + ".tick", [this] { tick(); }, std::move(tick_decl));
  // drive() reads no signals, only tick-owned members: the StateTag is its
  // whole sensitivity list under the compiled schedule. The replay payloads
  // are driven only in their FSM phase — declared for the design linter.
  sim::CombOpts opts;
  opts.state = &tag_;
  opts.writes = dn_.request_signals();
  for (const auto* s : up_.response_signals()) opts.writes.push_back(s);
  ctx.add_comb(name_ + ".drive", [this] { drive(); }, std::move(opts));
}

void Bridge::tick() {
  const int before_phase = phase_;
  const std::size_t before_out = outbound_.size();
  const std::size_t before_ret = returning_.size();
  tick_fsm();
  if (phase_ != before_phase || outbound_.size() != before_out ||
      returning_.size() != before_ret) {
    tag_.bump();
  }
}

void Bridge::drive() {
  up_.gnt.write(phase_ == 0);
  if (phase_ == 1 && !outbound_.empty()) {
    dn_.drive_request(outbound_.front());
  } else {
    dn_.idle_request();
  }
  dn_.r_gnt.write(phase_ == 2);
  if (phase_ == 3 && !returning_.empty()) {
    up_.drive_response(returning_.front());
  } else {
    up_.idle_response();
  }
}

void Bridge::tick_fsm() {
  switch (phase_) {
    case 0: {
      if (!(up_.req.read() && up_.gnt.read())) return;
      absorbed_.push_back(up_.sample_request());
      if (!absorbed_.back().eop) return;
      const auto& head = absorbed_.front();
      Request req{head.opc, head.add, {}, head.src, head.tid,
                  absorbed_.back().lck};
      if (stbus::is_store(req.opc) || stbus::is_atomic(req.opc)) {
        req.wdata = stbus::extract_request_data(req.opc, req.add, absorbed_,
                                                up_.bus_bytes);
      }
      auto cells = stbus::build_request(req, dn_.bus_bytes, dn_type_);
      cells.back().lck = req.lck;
      outbound_.assign(cells.begin(), cells.end());
      expect_rsp_ = stbus::response_cells(req.opc, dn_.bus_bytes, dn_type_);
      phase_ = 1;
      return;
    }
    case 1: {
      if (!(dn_.req.read() && dn_.gnt.read())) return;
      outbound_.pop_front();
      if (outbound_.empty()) {
        collected_.clear();
        phase_ = 2;
      }
      return;
    }
    case 2: {
      if (!(dn_.r_req.read() && dn_.r_gnt.read())) return;
      collected_.push_back(dn_.sample_response());
      if (static_cast<int>(collected_.size()) < expect_rsp_) return;
      const auto& head = absorbed_.front();
      RspOpcode status = RspOpcode::kOk;
      for (const auto& c : collected_) {
        if (c.opc != RspOpcode::kOk) status = RspOpcode::kError;
      }
      std::vector<std::uint8_t> rdata;
      if (stbus::is_load(head.opc) || stbus::is_atomic(head.opc)) {
        auto ordered = collected_;
        if (faults_.size_conv_endianness && ordered.size() > 1 &&
            dn_.bus_bytes < up_.bus_bytes) {
          // Bug: sub-word groups reassembled in reverse order.
          std::reverse(ordered.begin(), ordered.end());
        }
        rdata = stbus::extract_response_data(head.opc, head.add, ordered,
                                             dn_.bus_bytes);
      }
      auto cells =
          stbus::build_response(head.opc, head.add, rdata, status,
                                up_.bus_bytes, up_type_, head.src, head.tid);
      returning_.assign(cells.begin(), cells.end());
      phase_ = 3;
      return;
    }
    case 3: {
      if (!(up_.r_req.read() && up_.r_gnt.read())) return;
      returning_.pop_front();
      if (returning_.empty()) {
        absorbed_.clear();
        phase_ = 0;
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace crve::bca
