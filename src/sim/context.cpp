#include "sim/context.h"

#include <algorithm>

#include "obs/metrics.h"

namespace crve::sim {

SignalBase::SignalBase(Context& ctx, std::string name, int width)
    : ctx_(ctx), name_(std::move(name)), width_(width) {
  ctx_.register_signal(this);
}

void SignalBase::mark_dirty() { ctx_.mark_dirty(this); }

void Context::add_clocked(std::string name, std::function<void()> fn) {
  clocked_.push_back({std::move(name), std::move(fn)});
}

void Context::add_comb(std::string name, std::function<void()> fn) {
  comb_.push_back({std::move(name), std::move(fn)});
}

bool Context::commit_dirty() {
  bool changed = false;
  // A signal may be written several times in one evaluation; dedupe cheaply.
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  for (SignalBase* s : dirty_) {
    if (s->commit()) {
      s->set_stamp(++change_stamp_);
      changed = true;
      if (!s->in_changed_set_) {
        s->in_changed_set_ = true;
        changed_.push_back(s->index_);
      }
    }
  }
  dirty_.clear();
  return changed;
}

void Context::sample_tracers() {
  // Ascending index order so tracer output is independent of commit order.
  std::sort(changed_.begin(), changed_.end());
  changed_samples_ += changed_.size();
  for (Tracer* t : tracers_) t->sample(cycle_, signals_, changed_);
  for (const int i : changed_) {
    signals_[static_cast<std::size_t>(i)]->in_changed_set_ = false;
  }
  changed_.clear();
}

void Context::settle() {
  for (int iter = 0;; ++iter) {
    if (iter >= delta_limit_) {
      throw SimError("combinational loop: no fixpoint after " +
                     std::to_string(delta_limit_) + " delta cycles at cycle " +
                     std::to_string(cycle_));
    }
    ++delta_iterations_;
    for (auto& p : comb_) {
      p.fn();
      ++evaluations_;
    }
    if (!commit_dirty()) break;
  }
}

void Context::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  obs::counter("sim.runs").inc();
  obs::counter("sim.cycles").add(cycle_);
  obs::counter("sim.evaluations").add(evaluations_);
  obs::counter("sim.delta_iterations").add(delta_iterations_);
  obs::counter("sim.changed_signal_samples").add(changed_samples_);
  obs::histogram("sim.cycles_per_run").observe(cycle_);
}

void Context::initialize() {
  if (initialized_) return;
  initialized_ = true;
  commit_dirty();  // writes made during construction
  settle();
  // First sample: every signal is "changed" so tracers take a full snapshot.
  for (const int i : changed_) {
    signals_[static_cast<std::size_t>(i)]->in_changed_set_ = false;
  }
  changed_.clear();
  changed_.reserve(signals_.size());
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    changed_.push_back(static_cast<int>(i));
  }
  sample_tracers();
}

void Context::step(int n) {
  initialize();
  for (int i = 0; i < n; ++i) {
    ++cycle_;
    for (auto& p : clocked_) {
      p.fn();
      ++evaluations_;
    }
    commit_dirty();
    settle();
    sample_tracers();
  }
}

}  // namespace crve::sim
