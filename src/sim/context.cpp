#include "sim/context.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/schedule.h"

namespace crve::sim {

SignalBase::SignalBase(Context& ctx, std::string name, int width)
    : name_(std::move(name)), width_(width) {
  ctx.register_signal(this);
}

Context::Context() = default;
Context::~Context() = default;

void Context::check_unique_name(const std::string& name) {
  if (!proc_names_.insert(name).second) {
    throw SimError("duplicate process name: " + name);
  }
}

void Context::add_clocked(std::string name, std::function<void()> fn) {
  add_clocked(std::move(name), std::move(fn), ClockedOpts{});
}

void Context::add_clocked(std::string name, std::function<void()> fn,
                          ClockedOpts opts) {
  check_unique_name(name);
  clocked_.push_back({std::move(name), std::move(fn), {}, std::move(opts)});
}

void Context::add_comb(std::string name, std::function<void()> fn) {
  add_comb(std::move(name), std::move(fn), CombOpts{});
}

void Context::add_comb(std::string name, std::function<void()> fn,
                       CombOpts opts) {
  check_unique_name(name);
  comb_.push_back({std::move(name), std::move(fn), std::move(opts)});
}

void Context::set_kernel(KernelKind k) {
  if (initialized_) {
    throw SimError("set_kernel() after initialize()");
  }
  kernel_ = k;
}

void Context::set_profiling(bool on) {
  if (initialized_) {
    throw SimError("set_profiling() after initialize()");
  }
  profiling_ = on;
}

bool Context::commit_dirty() {
  bool changed = false;
  // Dirty signals were deduped at write time via the arena flag byte, so
  // the commit walk is a single pass over the insertion-order list.
  for (const int idx : arena_.dirty) {
    const auto i = static_cast<std::size_t>(idx);
    arena_.flags[i] &= static_cast<std::uint8_t>(~SignalArena::kDirtyFlag);
    if (signals_[i]->commit()) {
      arena_.stamps[i] = ++change_stamp_;
      changed = true;
      if (!(arena_.flags[i] & SignalArena::kInChangedFlag)) {
        arena_.flags[i] |= SignalArena::kInChangedFlag;
        changed_.push_back(idx);
      }
      if (sched_) {
        // Change-driven skipping: only the static readers of this signal
        // need to re-evaluate.
        for (const int p : sched_->signal_readers[i]) mark_proc_dirty(p);
      }
      if (profiling_) {
        // Fan-out churn: each commit marks this signal's static readers
        // dirty, so commits x fan-out is its induced scheduling work.
        ++prof_sig_commits_[i];
        if (sched_) prof_sig_marks_[i] += sched_->signal_readers[i].size();
      }
    }
  }
  arena_.dirty.clear();
  return changed;
}

void Context::snapshot_all() {
  for (const int i : changed_) {
    arena_.flags[static_cast<std::size_t>(i)] &=
        static_cast<std::uint8_t>(~SignalArena::kInChangedFlag);
  }
  changed_.clear();
  changed_.reserve(signals_.size());
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    changed_.push_back(static_cast<int>(i));
  }
}

void Context::sample_tracers() {
  // Ascending index order so tracer output is independent of commit order.
  std::sort(changed_.begin(), changed_.end());
  changed_samples_ += changed_.size();
  for (Tracer* t : tracers_) t->sample(cycle_, signals_, changed_);
  for (const int i : changed_) {
    arena_.flags[static_cast<std::size_t>(i)] &=
        static_cast<std::uint8_t>(~SignalArena::kInChangedFlag);
  }
  changed_.clear();
}

void Context::run_clocked() {
  if (!profiling_) {
    for (auto& p : clocked_) {
      p.fn();
      ++evaluations_;
    }
    return;
  }
  for (std::size_t i = 0; i < clocked_.size(); ++i) {
    const std::uint64_t t0 = obs::now_ns();
    clocked_[i].fn();
    prof_clocked_[i].wall_ns += obs::now_ns() - t0;
    ++prof_clocked_[i].evals;
    ++evaluations_;
  }
}

void Context::settle() {
  for (int iter = 0;; ++iter) {
    if (iter >= delta_limit_) {
      throw SimError("combinational loop: no fixpoint after " +
                     std::to_string(delta_limit_) + " delta cycles at cycle " +
                     std::to_string(cycle_));
    }
    ++delta_iterations_;
    if (!profiling_) {
      for (auto& p : comb_) {
        p.fn();
        ++evaluations_;
      }
    } else {
      for (std::size_t i = 0; i < comb_.size(); ++i) {
        const std::uint64_t t0 = obs::now_ns();
        comb_[i].fn();
        prof_comb_[i].wall_ns += obs::now_ns() - t0;
        ++prof_comb_[i].evals;
        ++evaluations_;
      }
    }
    if (!commit_dirty()) break;
  }
}

std::string Context::dirty_proc_names() const {
  std::string names;
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    if (!proc_dirty_[i]) continue;
    if (!names.empty()) names += ", ";
    names += comb_[i].name;
  }
  return names;
}

void Context::build_compiled_schedule() {
  std::vector<ProcNode> nodes;
  nodes.reserve(comb_.size());
  std::vector<char> seen(signals_.size(), 0);
  // Discovery pass: one instrumented run of every combinational process, in
  // registration order with commits deferred — exactly the interpreter's
  // first delta iteration, so both kernels settle construction-time writes
  // to the same fixpoint.
  for (auto& p : comb_) {
    arena_.begin_recording();
    p.fn();
    ++evaluations_;
    ProcNode node;
    node.name = p.name;
    node.dynamic = p.opts.dynamic;
    node.reads = arena_.reads;
    node.writes = arena_.writes;
    arena_.end_recording();
    // Recorded-only sets, retained for export_design_graph() before the
    // declared reads are folded in below.
    discovery_.push_back(node);
    // The effective read-set is recorded ∪ declared: discovery only sees
    // the branches taken on the initial all-idle evaluation.
    for (const int s : node.reads) seen[static_cast<std::size_t>(s)] = 1;
    for (const SignalBase* sig : p.opts.reads) {
      const int s = sig->index();
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = 1;
        node.reads.push_back(s);
      }
    }
    for (const int s : node.reads) seen[static_cast<std::size_t>(s)] = 0;
    nodes.push_back(std::move(node));
  }

  std::unordered_map<std::string, int> comb_index;
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    comb_index[comb_[i].name] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    for (const std::string& producer : comb_[i].opts.after) {
      const auto it = comb_index.find(producer);
      if (it == comb_index.end()) {
        throw SimError("CombOpts::after names unknown process '" + producer +
                       "' (required by " + comb_[i].name + ")");
      }
      nodes[i].after.push_back(it->second);
    }
  }

  std::vector<std::string> signal_names;
  signal_names.reserve(signals_.size());
  for (const SignalBase* s : signals_) signal_names.push_back(s->name());

  sched_ = std::make_unique<CompiledSchedule>(
      build_schedule(nodes, signals_.size(), signal_names));
  sched_ranks_ = sched_->n_ranks();
  if (profiling_) {
    prof_rank_.assign(comb_.size(), -1);
    for (std::size_t r = 0; r < sched_->ranks.size(); ++r) {
      for (const int p : sched_->ranks[r]) {
        prof_rank_[static_cast<std::size_t>(p)] = static_cast<int>(r);
      }
    }
  }

  proc_dirty_.assign(comb_.size(), 0);
  n_dirty_ = 0;
  tag_groups_.clear();
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    const StateTag* tag = comb_[i].opts.state;
    if (tag == nullptr || comb_[i].opts.dynamic) continue;
    auto it = std::find_if(tag_groups_.begin(), tag_groups_.end(),
                           [tag](const TagGroup& g) { return g.tag == tag; });
    if (it == tag_groups_.end()) {
      tag_groups_.push_back({tag, tag->version, {}});
      it = std::prev(tag_groups_.end());
    }
    it->procs.push_back(static_cast<int>(i));
  }
}

void Context::settle_compiled() {
  const bool has_dynamic = !sched_->dynamic_procs.empty();
  if (n_dirty_ == 0 && !has_dynamic) {
    // Nothing changed this cycle: the whole schedule is skipped.
    sched_skipped_ += sched_->n_static;
    if (profiling_) {
      // Attribute the whole-schedule skip per process so skip-effectiveness
      // stays exact on idle-dominated shapes.
      for (const auto& rank : sched_->ranks) {
        for (const int p : rank) ++prof_comb_[static_cast<std::size_t>(p)].skips;
      }
    }
    return;
  }
  for (int outer = 0;; ++outer) {
    if (outer >= delta_limit_) {
      throw SimError("combinational loop: processes still dirty after " +
                     std::to_string(delta_limit_) +
                     " schedule passes at cycle " + std::to_string(cycle_) +
                     ": " + dirty_proc_names());
    }
    if (outer > 0) ++delta_iterations_;
    for (const auto& rank : sched_->ranks) {
      for (const int p : rank) {
        if (proc_dirty_[static_cast<std::size_t>(p)]) {
          proc_dirty_[static_cast<std::size_t>(p)] = 0;
          --n_dirty_;
          if (!profiling_) {
            comb_[static_cast<std::size_t>(p)].fn();
          } else {
            ProcStats& ps = prof_comb_[static_cast<std::size_t>(p)];
            const std::uint64_t t0 = obs::now_ns();
            comb_[static_cast<std::size_t>(p)].fn();
            ps.wall_ns += obs::now_ns() - t0;
            ++ps.evals;
          }
          ++evaluations_;
          for (const int d : sched_->run_dependents[static_cast<std::size_t>(p)]) {
            mark_proc_dirty(d);
          }
        } else {
          ++sched_skipped_;
          if (profiling_) ++prof_comb_[static_cast<std::size_t>(p)].skips;
        }
      }
      commit_dirty();
    }
    if (has_dynamic) {
      // Fallback rank: processes with data-dependent read-sets settle by
      // fixpoint, exactly like the interpreter (restricted to the tail).
      for (int iter = 0;; ++iter) {
        if (iter >= delta_limit_) {
          throw SimError(
              "combinational loop: dynamic fallback did not settle after " +
              std::to_string(delta_limit_) + " iterations at cycle " +
              std::to_string(cycle_));
        }
        for (const int p : sched_->dynamic_procs) {
          if (!profiling_) {
            comb_[static_cast<std::size_t>(p)].fn();
          } else {
            ProcStats& ps = prof_comb_[static_cast<std::size_t>(p)];
            const std::uint64_t t0 = obs::now_ns();
            comb_[static_cast<std::size_t>(p)].fn();
            ps.wall_ns += obs::now_ns() - t0;
            ++ps.evals;
          }
          ++evaluations_;
        }
        ++sched_fallback_;
        if (!commit_dirty()) break;
      }
    }
    // Static ranks cannot re-dirty themselves (edges only point to higher
    // ranks); only the dynamic tail's commits can force another pass.
    if (n_dirty_ == 0) break;
  }
}

void Context::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  obs::counter("sim.runs").inc();
  obs::counter("sim.cycles").add(cycle_);
  obs::counter("sim.evaluations").add(evaluations_);
  obs::counter("sim.delta_iterations").add(delta_iterations_);
  obs::counter("sim.changed_signal_samples").add(changed_samples_);
  obs::histogram("sim.cycles_per_run").observe(cycle_);
  if (kernel_ == KernelKind::kCompiled) {
    obs::counter("sim.sched.ranks").add(sched_ranks_);
    obs::counter("sim.sched.skipped_evaluations").add(sched_skipped_);
    obs::counter("sim.sched.fallback_iterations").add(sched_fallback_);
  }
}

obs::ProfileData Context::profile() const {
  obs::ProfileData pd;
  if (!profiling_) return pd;
  pd.runs = 1;
  pd.cycles = cycle_;
  pd.procs.reserve(clocked_.size() + comb_.size());
  for (std::size_t i = 0; i < clocked_.size(); ++i) {
    obs::ProcProfile p;
    p.name = clocked_[i].name;
    p.clocked = true;
    p.evals = prof_clocked_[i].evals;
    p.wall_ns = prof_clocked_[i].wall_ns;
    pd.procs.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    obs::ProcProfile p;
    p.name = comb_[i].name;
    p.rank = prof_rank_.empty() ? -1 : prof_rank_[i];
    p.evals = prof_comb_[i].evals;
    p.skips = prof_comb_[i].skips;
    p.wall_ns = prof_comb_[i].wall_ns;
    pd.procs.push_back(std::move(p));
  }
  std::sort(pd.procs.begin(), pd.procs.end(),
            [](const obs::ProcProfile& a, const obs::ProcProfile& b) {
              return a.name < b.name;
            });
  if (sched_) {
    for (std::size_t r = 0; r < sched_->ranks.size(); ++r) {
      obs::RankProfile row;
      row.rank = static_cast<int>(r);
      row.processes = sched_->ranks[r].size();
      for (const int p : sched_->ranks[r]) {
        row.evals += prof_comb_[static_cast<std::size_t>(p)].evals;
        row.skips += prof_comb_[static_cast<std::size_t>(p)].skips;
      }
      pd.ranks.push_back(row);
    }
  }
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (prof_sig_commits_[i] == 0) continue;
    obs::SignalProfile s;
    s.name = signals_[i]->name();
    s.commits = prof_sig_commits_[i];
    s.reader_marks = prof_sig_marks_[i];
    pd.signals.push_back(std::move(s));
  }
  std::sort(pd.signals.begin(), pd.signals.end(),
            [](const obs::SignalProfile& a, const obs::SignalProfile& b) {
              return a.name < b.name;
            });
  return pd;
}

void Context::initialize() {
  if (initialized_) return;
  initialized_ = true;
  if (profiling_) {
    // Every signal and process is registered by now (construction phase);
    // size the accumulators before the first commit walks them.
    prof_clocked_.assign(clocked_.size(), {});
    prof_comb_.assign(comb_.size(), {});
    prof_rank_.assign(comb_.size(), -1);
    prof_sig_commits_.assign(signals_.size(), 0);
    prof_sig_marks_.assign(signals_.size(), 0);
  }
  // Construction-phase writes, captured for the design graph before the
  // commit clears the dirty list (export_design_graph's "driven at
  // construction" distinction).
  construction_writes_ = arena_.dirty;
  commit_dirty();  // writes made during construction
  if (kernel_ == KernelKind::kInterp) {
    settle();
  } else {
    // Discovery + levelization; a true combinational cycle throws here, at
    // elaboration, before any settling is attempted.
    build_compiled_schedule();
    commit_dirty();  // discovery writes; marks changed signals' readers
    settle_compiled();
  }
  // First sample: every signal is "changed" so tracers take a full snapshot.
  snapshot_all();
  sample_tracers();
}

void Context::step(int n) {
  if (design_exported_) {
    throw SimError(
        "step() after export_design_graph(): the export re-evaluated "
        "processes under instrumentation (analysis-only); elaborate a fresh "
        "Context to simulate");
  }
  initialize();
  if (kernel_ == KernelKind::kInterp) {
    for (int i = 0; i < n; ++i) {
      ++cycle_;
      run_clocked();
      commit_dirty();
      settle();
      sample_tracers();
    }
    return;
  }
  for (int i = 0; i < n; ++i) {
    ++cycle_;
    run_clocked();
    commit_dirty();
    for (auto& g : tag_groups_) {
      const std::uint64_t v = g.tag->version;
      if (g.seen != v) {
        g.seen = v;
        for (const int p : g.procs) mark_proc_dirty(p);
      }
    }
    // Exactly one scheduled evaluation per cycle on a static graph.
    ++delta_iterations_;
    settle_compiled();
    sample_tracers();
  }
}

}  // namespace crve::sim
