// Two-phase signals for the cycle-based simulation kernel.
//
// A Signal<T> holds a current and a next value. Processes read the current
// value and write the next one; the kernel commits writes between process
// evaluations (register semantics for clocked processes, delta-cycle
// settling for combinational ones). This mirrors the VHDL/SystemC signal
// model the paper's testbenches rely on.
//
// Per-signal kernel state (two-phase values for bool/u64 signals, dirty and
// changed flags, change stamps) lives in a packed SignalArena owned by the
// Context and indexed by SignalBase::index(), so the hot commit/settle loops
// walk contiguous vectors instead of chasing per-object storage. The arena
// also carries the elaboration-time read/write instrumentation the compiled
// schedule uses for dependency discovery (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace crve::sim {

class Context;

// Packed per-signal kernel state, indexed by SignalBase::index() (flags,
// stamps, dirty list) and by a separately allocated value slot (two-phase
// cur/next storage for bool and u64 signals; Bits payloads stay in the
// signal object). Owned by the Context; signals keep a stable pointer.
class SignalArena {
 public:
  static constexpr std::uint8_t kDirtyFlag = 1;      // pending uncommitted write
  static constexpr std::uint8_t kInChangedFlag = 2;  // in this cycle's changed-set

  int add_signal() {
    stamps.push_back(0);
    flags.push_back(0);
    read_seen.push_back(0);
    write_seen.push_back(0);
    return static_cast<int>(stamps.size()) - 1;
  }
  int add_slot() {
    cur.push_back(0);
    next.push_back(0);
    return static_cast<int>(cur.size()) - 1;
  }

  // --- discovery instrumentation (elaboration only) ----------------------
  void begin_recording() {
    recording = true;
    reads.clear();
    writes.clear();
  }
  void end_recording() {
    recording = false;
    for (const int i : reads) read_seen[static_cast<std::size_t>(i)] = 0;
    for (const int i : writes) write_seen[static_cast<std::size_t>(i)] = 0;
  }
  void note_read(int index) {
    auto& seen = read_seen[static_cast<std::size_t>(index)];
    if (!seen) {
      seen = 1;
      reads.push_back(index);
    }
  }
  void note_write(int index) {
    auto& seen = write_seen[static_cast<std::size_t>(index)];
    if (!seen) {
      seen = 1;
      writes.push_back(index);
    }
  }

  // Indexed by SignalBase::index().
  std::vector<std::uint64_t> stamps;
  std::vector<std::uint8_t> flags;
  std::vector<int> dirty;  // indices with kDirtyFlag set, insertion order

  // Indexed by value slot (bool/u64 signals only; bools stored as 0/1).
  std::vector<std::uint64_t> cur;
  std::vector<std::uint64_t> next;

  bool recording = false;
  std::vector<int> reads;   // current process's recorded read-set
  std::vector<int> writes;  // current process's recorded write-set
  std::vector<std::uint8_t> read_seen;
  std::vector<std::uint8_t> write_seen;
};

class SignalBase {
 public:
  SignalBase(Context& ctx, std::string name, int width);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const { return name_; }
  // Declared width in bits, fixed for the signal's lifetime (VCD needs it).
  int width() const { return width_; }

  // Monotonic change stamp: bumped by the kernel whenever a commit changes
  // the visible value. Models with sensitivity-list semantics (the BCA
  // view) use it to skip re-evaluation when their inputs are unchanged.
  std::uint64_t stamp() const {
    return arena_->stamps[static_cast<std::size_t>(index_)];
  }
  void set_stamp(std::uint64_t s) {
    arena_->stamps[static_cast<std::size_t>(index_)] = s;
  }

  // Position in Context::signals(), fixed at registration. Tracers use it
  // to address per-signal state from the kernel's changed-set.
  int index() const { return index_; }

  // Moves the pending next value into the current one. Returns whether the
  // visible value changed. Called by the kernel only.
  virtual bool commit() = 0;

  // Appends the current value to `out` as MSB-first binary, exactly
  // width() chars, without allocating. Hot tracers format into a reusable
  // buffer through this instead of materializing per-cycle strings.
  virtual void append_vcd(std::string& out) const = 0;

  // Current value as an MSB-first binary string of exactly width() chars.
  // Convenience wrapper over append_vcd() for cold paths and tests.
  std::string vcd_value() const {
    std::string s;
    s.reserve(static_cast<std::size_t>(width_));
    append_vcd(s);
    return s;
  }

 protected:
  // Read hook: during elaboration-time discovery the arena records which
  // signals the running process touched; outside discovery this is one
  // well-predicted branch.
  void note_read() const {
    if (arena_->recording) arena_->note_read(index_);
  }
  // Same, for writes filtered out at the write site (same-value): the
  // discovery write-set must stay conservative even when no commit is due.
  void note_write() const {
    if (arena_->recording) arena_->note_write(index_);
  }
  // Write hook: flags the signal dirty (deduped via the arena flag byte —
  // no sort needed at commit) and feeds the discovery write-set.
  void mark_dirty() {
    if (arena_->recording) arena_->note_write(index_);
    auto& f = arena_->flags[static_cast<std::size_t>(index_)];
    if (!(f & SignalArena::kDirtyFlag)) {
      f |= SignalArena::kDirtyFlag;
      arena_->dirty.push_back(index_);
    }
  }

  SignalArena* arena_ = nullptr;  // set at registration, stable thereafter

 private:
  friend class Context;
  std::string name_;
  int width_;
  int index_ = -1;
};

namespace detail {

inline void append_vcd(std::string& out, bool v, int /*width*/) {
  out.push_back(v ? '1' : '0');
}

inline void append_vcd(std::string& out, std::uint64_t v, int width) {
  const std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((v >> i) & 1u) out[base + static_cast<std::size_t>(width - 1 - i)] = '1';
  }
}

inline void append_vcd(std::string& out, const Bits& v, int /*width*/) {
  v.append_bin(out);
}

inline std::uint64_t masked(std::uint64_t v, int width) {
  return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
}

}  // namespace detail

// Single-bit signal; value stored in the arena's packed slot vectors.
class SignalBool : public SignalBase {
 public:
  SignalBool(Context& ctx, std::string name)
      : SignalBase(ctx, std::move(name), 1), slot_(arena_->add_slot()) {}

  bool read() const {
    note_read();
    return arena_->cur[static_cast<std::size_t>(slot_)] != 0;
  }
  void write(bool v) {
    // Same-value writes are filtered at the write site: drivers that
    // re-assert idle levels every cycle never touch the dirty list, which
    // is what lets the compiled kernel skip their readers entirely.
    auto& next = arena_->next[static_cast<std::size_t>(slot_)];
    const std::uint64_t m = v ? 1u : 0u;
    if (next != m) {
      next = m;
      mark_dirty();
    } else {
      note_write();
    }
  }
  bool commit() override {
    auto& cur = arena_->cur[static_cast<std::size_t>(slot_)];
    const std::uint64_t next = arena_->next[static_cast<std::size_t>(slot_)];
    const bool changed = cur != next;
    cur = next;
    return changed;
  }
  void append_vcd(std::string& out) const override {
    detail::append_vcd(out, arena_->cur[static_cast<std::size_t>(slot_)] != 0,
                       1);
  }

 private:
  int slot_;
};

// Unsigned signal of declared width (1..64 bits). Writes are masked.
class SignalU64 : public SignalBase {
 public:
  SignalU64(Context& ctx, std::string name, int width)
      : SignalBase(ctx, std::move(name), width), slot_(arena_->add_slot()) {
    if (width < 1 || width > 64) {
      throw std::invalid_argument("SignalU64 width out of range");
    }
  }

  std::uint64_t read() const {
    note_read();
    return arena_->cur[static_cast<std::size_t>(slot_)];
  }
  void write(std::uint64_t v) {
    auto& next = arena_->next[static_cast<std::size_t>(slot_)];
    const std::uint64_t m = detail::masked(v, width());
    if (next != m) {
      next = m;
      mark_dirty();
    } else {
      note_write();
    }
  }
  bool commit() override {
    auto& cur = arena_->cur[static_cast<std::size_t>(slot_)];
    const std::uint64_t next = arena_->next[static_cast<std::size_t>(slot_)];
    const bool changed = cur != next;
    cur = next;
    return changed;
  }
  void append_vcd(std::string& out) const override {
    detail::append_vcd(out, arena_->cur[static_cast<std::size_t>(slot_)],
                       width());
  }

 private:
  int slot_;
};

// Wide-data signal; the written Bits value must match the declared width.
// The payload stays in the signal object (variable width), only the kernel
// bookkeeping lives in the arena.
class SignalBits : public SignalBase {
 public:
  SignalBits(Context& ctx, std::string name, int width)
      : SignalBase(ctx, std::move(name), width),
        cur_(width),
        next_(width) {}

  const Bits& read() const {
    note_read();
    return cur_;
  }
  void write(const Bits& v) {
    if (v.width() != width()) {
      throw std::invalid_argument("SignalBits::write: width mismatch on " +
                                  name());
    }
    if (next_ != v) {
      next_ = v;
      mark_dirty();
    } else {
      note_write();
    }
  }
  bool commit() override {
    // Compare first: skip the wide-data copy when the value is unchanged.
    if (cur_ == next_) return false;
    cur_ = next_;
    return true;
  }
  void append_vcd(std::string& out) const override { cur_.append_bin(out); }

 private:
  Bits cur_;
  Bits next_;
};

// Version counter for module-internal state read by a combinational process
// but mutated only by clocked processes (queues, FSM phases, pipeline
// registers). The owning module bumps it whenever such state changes; the
// compiled schedule re-dirties every process registered against the tag, so
// member-state reads participate in change-driven skipping without being
// signals (DESIGN.md §14).
struct StateTag {
  std::uint64_t version = 0;
  void bump() { ++version; }
};

}  // namespace crve::sim
