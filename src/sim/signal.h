// Two-phase signals for the cycle-based simulation kernel.
//
// A Signal<T> holds a current and a next value. Processes read the current
// value and write the next one; the kernel commits writes between process
// evaluations (register semantics for clocked processes, delta-cycle
// settling for combinational ones). This mirrors the VHDL/SystemC signal
// model the paper's testbenches rely on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/bits.h"

namespace crve::sim {

class Context;

class SignalBase {
 public:
  SignalBase(Context& ctx, std::string name, int width);
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const { return name_; }
  // Declared width in bits, fixed for the signal's lifetime (VCD needs it).
  int width() const { return width_; }

  // Monotonic change stamp: bumped by the kernel whenever a commit changes
  // the visible value. Models with sensitivity-list semantics (the BCA
  // view) use it to skip re-evaluation when their inputs are unchanged.
  std::uint64_t stamp() const { return stamp_; }
  void set_stamp(std::uint64_t s) { stamp_ = s; }

  // Position in Context::signals(), fixed at registration. Tracers use it
  // to address per-signal state from the kernel's changed-set.
  int index() const { return index_; }

  // Moves the pending next value into the current one. Returns whether the
  // visible value changed. Called by the kernel only.
  virtual bool commit() = 0;

  // Appends the current value to `out` as MSB-first binary, exactly
  // width() chars, without allocating. Hot tracers format into a reusable
  // buffer through this instead of materializing per-cycle strings.
  virtual void append_vcd(std::string& out) const = 0;

  // Current value as an MSB-first binary string of exactly width() chars.
  // Convenience wrapper over append_vcd() for cold paths and tests.
  std::string vcd_value() const {
    std::string s;
    s.reserve(static_cast<std::size_t>(width_));
    append_vcd(s);
    return s;
  }

 protected:
  void mark_dirty();

 private:
  friend class Context;
  Context& ctx_;
  std::string name_;
  int width_;
  int index_ = -1;
  std::uint64_t stamp_ = 0;
  // Scratch flag owned by Context: true while the signal sits in the
  // current cycle's changed-set (dedupes multiple commits per cycle).
  bool in_changed_set_ = false;
};

namespace detail {

inline void append_vcd(std::string& out, bool v, int /*width*/) {
  out.push_back(v ? '1' : '0');
}

inline void append_vcd(std::string& out, std::uint64_t v, int width) {
  const std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if ((v >> i) & 1u) out[base + static_cast<std::size_t>(width - 1 - i)] = '1';
  }
}

inline void append_vcd(std::string& out, const Bits& v, int /*width*/) {
  v.append_bin(out);
}

inline std::uint64_t masked(std::uint64_t v, int width) {
  return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
}

}  // namespace detail

// Single-bit signal.
class SignalBool : public SignalBase {
 public:
  SignalBool(Context& ctx, std::string name)
      : SignalBase(ctx, std::move(name), 1) {}

  bool read() const { return cur_; }
  void write(bool v) {
    next_ = v;
    mark_dirty();
  }
  bool commit() override {
    const bool changed = cur_ != next_;
    cur_ = next_;
    return changed;
  }
  void append_vcd(std::string& out) const override {
    detail::append_vcd(out, cur_, 1);
  }

 private:
  bool cur_ = false;
  bool next_ = false;
};

// Unsigned signal of declared width (1..64 bits). Writes are masked.
class SignalU64 : public SignalBase {
 public:
  SignalU64(Context& ctx, std::string name, int width)
      : SignalBase(ctx, std::move(name), width) {
    if (width < 1 || width > 64) {
      throw std::invalid_argument("SignalU64 width out of range");
    }
  }

  std::uint64_t read() const { return cur_; }
  void write(std::uint64_t v) {
    next_ = detail::masked(v, width());
    mark_dirty();
  }
  bool commit() override {
    const bool changed = cur_ != next_;
    cur_ = next_;
    return changed;
  }
  void append_vcd(std::string& out) const override {
    detail::append_vcd(out, cur_, width());
  }

 private:
  std::uint64_t cur_ = 0;
  std::uint64_t next_ = 0;
};

// Wide-data signal; the written Bits value must match the declared width.
class SignalBits : public SignalBase {
 public:
  SignalBits(Context& ctx, std::string name, int width)
      : SignalBase(ctx, std::move(name), width),
        cur_(width),
        next_(width) {}

  const Bits& read() const { return cur_; }
  void write(const Bits& v) {
    if (v.width() != width()) {
      throw std::invalid_argument("SignalBits::write: width mismatch on " +
                                  name());
    }
    next_ = v;
    mark_dirty();
  }
  bool commit() override {
    const bool changed = !(cur_ == next_);
    cur_ = next_;
    return changed;
  }
  void append_vcd(std::string& out) const override { cur_.append_bin(out); }

 private:
  Bits cur_;
  Bits next_;
};

}  // namespace crve::sim
