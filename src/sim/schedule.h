// Elaboration-time levelization for the compiled simulation kernel.
//
// At initialize() the Context runs every combinational process once under
// instrumented signals, records each process's read- and write-set (union of
// the recorded set and any reads declared via CombOpts), and hands the
// result here. build_schedule() turns the signal-mediated dependency graph
// into a static rank-ordered schedule:
//
//   * edge writer -> reader for every signal written by one static process
//     and read by another (plus explicit `after` ordering edges);
//   * ranks assigned by longest path from the sources (Kahn's algorithm), so
//     one in-order pass over the ranks settles any acyclic graph;
//   * a true combinational cycle — including a process writing a signal in
//     its own read-set — is detected here, at elaboration, and reported as a
//     SimError naming the full cycle path (process and signal names), which
//     replaces the interpreter's anonymous runtime delta-limit throw;
//   * processes with data-dependent read-sets can opt out of static
//     scheduling (CombOpts::dynamic); they are excluded from the graph and
//     run in a fixpoint tail after the static ranks every cycle.
//
// The schedule also carries the signal -> static-reader adjacency the
// kernel uses for change-driven process skipping: a commit that changes a
// signal marks exactly the processes that read it dirty.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace crve::sim {

// One combinational process as seen by the scheduler. Signal sets hold
// indices into Context::signals(); `after` holds process indices that must
// evaluate before this one (and whose execution re-dirties it).
struct ProcNode {
  std::string name;
  std::vector<int> reads;
  std::vector<int> writes;
  std::vector<int> after;
  bool dynamic = false;
};

struct CompiledSchedule {
  // Static process indices grouped by rank, ascending; evaluating the ranks
  // in order settles an acyclic graph in a single pass.
  std::vector<std::vector<int>> ranks;
  // Processes excluded from static scheduling; run as a fixpoint tail.
  std::vector<int> dynamic_procs;
  // signal index -> static processes whose read-set contains it.
  std::vector<std::vector<int>> signal_readers;
  // process index -> static processes re-dirtied whenever it executes
  // (the consumer side of `after` edges).
  std::vector<std::vector<int>> run_dependents;
  std::size_t n_static = 0;

  std::size_t n_ranks() const { return ranks.size(); }
};

// Levelizes `procs` over `n_signals` signals. `signal_names` is used only
// for diagnostics (cycle paths). Throws sim::SimError (via the caller's
// exception type — a std::runtime_error subclass) naming the cycle path if
// the static dependency graph is cyclic.
CompiledSchedule build_schedule(const std::vector<ProcNode>& procs,
                                std::size_t n_signals,
                                const std::vector<std::string>& signal_names);

}  // namespace crve::sim
