// Lightweight hierarchical naming helper for kernel components.
//
// Modules do not own processes or signals; they only provide dotted names
// ("tb.node.arb") so VCD scopes and checker messages are readable.
#pragma once

#include <string>
#include <utility>

#include "sim/context.h"

namespace crve::sim {

class Module {
 public:
  Module(Context& ctx, std::string name) : ctx_(ctx), name_(std::move(name)) {}
  Module(Module& parent, std::string name)
      : ctx_(parent.ctx_), name_(parent.name_ + "." + std::move(name)) {}

  Context& ctx() { return ctx_; }
  const std::string& name() const { return name_; }
  std::string sub(const std::string& child) const {
    return name_ + "." + child;
  }

 private:
  Context& ctx_;
  std::string name_;
};

}  // namespace crve::sim
