#include "sim/design_graph.h"

#include <algorithm>
#include <unordered_map>

#include "sim/context.h"
#include "sim/schedule.h"

namespace crve::sim {

namespace {

std::vector<int> sorted_unique(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<int> signal_indices(const std::vector<const SignalBase*>& sigs) {
  std::vector<int> out;
  out.reserve(sigs.size());
  for (const SignalBase* s : sigs) out.push_back(s->index());
  return sorted_unique(std::move(out));
}

}  // namespace

DesignGraph Context::export_design_graph() {
  if (kernel_ != KernelKind::kCompiled) {
    throw SimError(
        "export_design_graph() requires the compiled kernel: the interpreter "
        "never builds the dependency graph the export freezes");
  }
  initialize();
  design_exported_ = true;

  DesignGraph g;
  g.signals.reserve(signals_.size());
  for (const SignalBase* s : signals_) {
    g.signals.push_back({s->name(), s->width(), false});
  }
  for (const int idx : construction_writes_) {
    g.signals[static_cast<std::size_t>(idx)].construction_written = true;
  }

  g.n_comb = comb_.size();
  g.n_ranks = sched_->n_ranks();
  g.procs.reserve(comb_.size() + clocked_.size());

  std::unordered_map<std::string, int> comb_index;
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    comb_index[comb_[i].name] = static_cast<int>(i);
  }

  for (std::size_t i = 0; i < comb_.size(); ++i) {
    DesignProc p;
    p.name = comb_[i].name;
    p.clocked = false;
    p.reads = sorted_unique(discovery_[i].reads);
    p.writes = sorted_unique(discovery_[i].writes);
    p.declared_reads = signal_indices(comb_[i].opts.reads);
    p.declared_writes = signal_indices(comb_[i].opts.writes);
    p.dynamic = comb_[i].opts.dynamic;
    p.has_state_tag = comb_[i].opts.state != nullptr;
    for (const std::string& producer : comb_[i].opts.after) {
      p.after.push_back(comb_index.at(producer));
    }
    g.procs.push_back(std::move(p));
  }
  for (std::size_t r = 0; r < sched_->ranks.size(); ++r) {
    for (const int pi : sched_->ranks[r]) {
      g.procs[static_cast<std::size_t>(pi)].rank = static_cast<int>(r);
    }
  }

  // Post-settle recheck: one more instrumented evaluation of every
  // combinational process against the settled values. Branches that opened
  // up between the all-idle discovery pass and the settled design diverge
  // here — the raw material for the under-declaration rule.
  for (std::size_t i = 0; i < comb_.size(); ++i) {
    arena_.begin_recording();
    comb_[i].fn();
    DesignProc& p = g.procs[i];
    p.recheck_reads = sorted_unique(arena_.reads);
    p.recheck_writes = sorted_unique(arena_.writes);
    arena_.end_recording();
  }

  // Clocked processes: one instrumented evaluation each (their only one —
  // the kernel never records them). The evaluation advances module state,
  // which is why the export is terminal.
  for (auto& c : clocked_) {
    arena_.begin_recording();
    c.fn();
    DesignProc p;
    p.name = c.name;
    p.clocked = true;
    p.reads = sorted_unique(arena_.reads);
    p.writes = sorted_unique(arena_.writes);
    arena_.end_recording();
    p.declared_reads = signal_indices(c.decl.reads);
    p.declared_writes = signal_indices(c.decl.writes);
    g.procs.push_back(std::move(p));
  }

  // The re-evaluations were never committed: drop their pending writes'
  // dirty marks so the arena is left consistent (the step() guard makes any
  // further simulation impossible anyway).
  for (const int idx : arena_.dirty) {
    arena_.flags[static_cast<std::size_t>(idx)] &=
        static_cast<std::uint8_t>(~SignalArena::kDirtyFlag);
  }
  arena_.dirty.clear();

  return g;
}

}  // namespace crve::sim
