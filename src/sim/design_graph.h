// Elaboration-time design graph export (DESIGN.md §17).
//
// The compiled-schedule kernel already learns, at initialize(), everything a
// structural design linter needs: every combinational process's recorded and
// declared read/write sets, the levelized writer→reader graph, the rank
// schedule, StateTag registrations and dynamic opt-outs. export_design_graph()
// freezes that knowledge — plus a post-settle re-evaluation of every process
// under the same instrumentation — into an immutable value type the CRVE1xx
// design rules (src/lint/design_rules.cpp) analyze without touching the
// kernel again.
//
// The export is an analysis-only terminal operation: re-evaluating processes
// under recording mutates module-internal state (BFM queues, RNG draws) and
// leaves uncommitted pending writes behind, so a Context that exported its
// graph refuses to step() afterwards. Elaborate a fresh Context to simulate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace crve::sim {

struct DesignSignal {
  std::string name;
  int width = 0;
  // A construction-phase write left a pending value the first commit applied
  // (reset values, constant straps). Such a signal is driven even if no
  // process ever writes it.
  bool construction_written = false;
};

// One process as the design linter sees it. Signal sets hold indices into
// DesignGraph::signals, each sorted ascending and deduplicated.
struct DesignProc {
  std::string name;
  bool clocked = false;

  // Recorded on the discovery evaluation (combinational processes: the
  // kernel's own elaboration pass; clocked processes: one instrumented
  // evaluation at export time). Records only the branches actually taken.
  std::vector<int> reads;
  std::vector<int> writes;

  // Declared supersets: CombOpts::reads/writes for combinational processes,
  // ClockedOpts::reads/writes for clocked ones. Data-dependent accesses
  // invisible to single-evaluation recording are declared here.
  std::vector<int> declared_reads;
  std::vector<int> declared_writes;

  // Combinational processes only: a second instrumented evaluation taken
  // after the design settled. Branches gated by settled values diverge here
  // from the pre-settle discovery pass, which is exactly what the
  // under-declaration rule (CRVE104) needs to see.
  std::vector<int> recheck_reads;
  std::vector<int> recheck_writes;

  // Combinational scheduling contract (kernel view).
  std::vector<int> after;  // producer indices into DesignGraph::procs
  bool dynamic = false;
  bool has_state_tag = false;
  int rank = -1;  // static combinational processes only; -1 otherwise
};

struct DesignGraph {
  std::vector<DesignSignal> signals;
  // Combinational processes first (registration order, matching their rank
  // assignment), then clocked processes in registration order.
  std::vector<DesignProc> procs;
  std::size_t n_comb = 0;
  std::size_t n_ranks = 0;

  std::size_t n_clocked() const { return procs.size() - n_comb; }
};

}  // namespace crve::sim
