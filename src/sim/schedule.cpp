#include "sim/schedule.h"

#include <algorithm>
#include <utility>

#include "sim/context.h"

namespace crve::sim {

namespace {

// Edge label: signal index mediating the dependency, or -1 for an explicit
// `after` ordering edge. Used only to name cycle paths.
struct Edge {
  int to;
  int via;  // signal index, -1 = after-edge
};

// Walks the unprocessed (cyclic) subgraph and formats one concrete cycle as
// "p1 --[sig]--> p2 --(after)--> p1".
std::string format_cycle(const std::vector<ProcNode>& procs,
                         const std::vector<std::vector<Edge>>& succ,
                         const std::vector<char>& done,
                         const std::vector<std::string>& signal_names) {
  const int n = static_cast<int>(procs.size());
  std::vector<int> state(static_cast<std::size_t>(n), 0);  // 0 new 1 stack 2 ok
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> parent_via(static_cast<std::size_t>(n), -1);

  for (int root = 0; root < n; ++root) {
    if (done[static_cast<std::size_t>(root)] ||
        procs[static_cast<std::size_t>(root)].dynamic ||
        state[static_cast<std::size_t>(root)] != 0) {
      continue;
    }
    // Iterative DFS restricted to the unprocessed subgraph.
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    state[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [u, ei] = stack.back();
      const auto& edges = succ[static_cast<std::size_t>(u)];
      if (ei == edges.size()) {
        state[static_cast<std::size_t>(u)] = 2;
        stack.pop_back();
        continue;
      }
      const Edge e = edges[ei++];
      if (done[static_cast<std::size_t>(e.to)]) continue;
      if (state[static_cast<std::size_t>(e.to)] == 1) {
        // Back edge: unwind u -> ... -> e.to through the parent chain.
        std::vector<std::pair<int, int>> path;  // (proc, via-to-next)
        path.emplace_back(u, e.via);
        for (int v = u; v != e.to; v = parent[static_cast<std::size_t>(v)]) {
          const int p = parent[static_cast<std::size_t>(v)];
          path.emplace_back(p, parent_via[static_cast<std::size_t>(v)]);
        }
        std::reverse(path.begin(), path.end());
        std::string msg;
        for (const auto& [proc, via] : path) {
          msg += procs[static_cast<std::size_t>(proc)].name;
          msg += via >= 0 ? " --[" + signal_names[static_cast<std::size_t>(
                                         via)] +
                                "]--> "
                          : " --(after)--> ";
        }
        msg += procs[static_cast<std::size_t>(path.front().first)].name;
        return msg;
      }
      if (state[static_cast<std::size_t>(e.to)] == 0) {
        state[static_cast<std::size_t>(e.to)] = 1;
        parent[static_cast<std::size_t>(e.to)] = u;
        parent_via[static_cast<std::size_t>(e.to)] = e.via;
        stack.emplace_back(e.to, 0);
      }
    }
  }
  return "(cycle path unavailable)";
}

}  // namespace

CompiledSchedule build_schedule(const std::vector<ProcNode>& procs,
                                std::size_t n_signals,
                                const std::vector<std::string>& signal_names) {
  const int n = static_cast<int>(procs.size());
  CompiledSchedule sched;
  sched.signal_readers.assign(n_signals, {});
  sched.run_dependents.assign(static_cast<std::size_t>(n), {});

  // Signal -> static writers/readers adjacency. Dynamic processes are
  // excluded from the graph entirely: they neither constrain ranks nor get
  // dirty bits — the fixpoint tail re-runs them every cycle.
  std::vector<std::vector<int>> writers(n_signals);
  for (int p = 0; p < n; ++p) {
    const ProcNode& pn = procs[static_cast<std::size_t>(p)];
    if (pn.dynamic) {
      sched.dynamic_procs.push_back(p);
      continue;
    }
    ++sched.n_static;
    for (const int s : pn.reads) {
      sched.signal_readers[static_cast<std::size_t>(s)].push_back(p);
    }
    for (const int s : pn.writes) {
      writers[static_cast<std::size_t>(s)].push_back(p);
    }
  }

  std::vector<std::vector<Edge>> succ(static_cast<std::size_t>(n));
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  auto add_edge = [&](int from, int to, int via) {
    succ[static_cast<std::size_t>(from)].push_back({to, via});
    ++indeg[static_cast<std::size_t>(to)];
  };
  for (std::size_t s = 0; s < n_signals; ++s) {
    for (const int w : writers[s]) {
      for (const int r : sched.signal_readers[s]) {
        if (w == r) {
          // Degenerate cycle: a process writes a signal in its own read-set.
          throw SimError(
              "combinational cycle detected at elaboration: " +
              procs[static_cast<std::size_t>(w)].name + " --[" +
              signal_names[s] + "]--> " +
              procs[static_cast<std::size_t>(w)].name);
        }
        add_edge(w, r, static_cast<int>(s));
      }
    }
  }
  for (int p = 0; p < n; ++p) {
    const ProcNode& pn = procs[static_cast<std::size_t>(p)];
    if (pn.dynamic) continue;
    for (const int producer : pn.after) {
      add_edge(producer, p, -1);
      sched.run_dependents[static_cast<std::size_t>(producer)].push_back(p);
    }
  }

  // Kahn levelization with longest-path ranks.
  std::vector<int> rank(static_cast<std::size_t>(n), 0);
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  std::vector<int> queue;
  for (int p = 0; p < n; ++p) {
    if (!procs[static_cast<std::size_t>(p)].dynamic &&
        indeg[static_cast<std::size_t>(p)] == 0) {
      queue.push_back(p);
    }
  }
  std::size_t processed = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int u = queue[qi];
    done[static_cast<std::size_t>(u)] = 1;
    ++processed;
    for (const Edge& e : succ[static_cast<std::size_t>(u)]) {
      rank[static_cast<std::size_t>(e.to)] =
          std::max(rank[static_cast<std::size_t>(e.to)],
                   rank[static_cast<std::size_t>(u)] + 1);
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) {
        queue.push_back(e.to);
      }
    }
  }
  if (processed != sched.n_static) {
    throw SimError("combinational cycle detected at elaboration: " +
                   format_cycle(procs, succ, done, signal_names));
  }

  int max_rank = -1;
  for (int p = 0; p < n; ++p) {
    if (procs[static_cast<std::size_t>(p)].dynamic) continue;
    max_rank = std::max(max_rank, rank[static_cast<std::size_t>(p)]);
  }
  sched.ranks.assign(static_cast<std::size_t>(max_rank + 1), {});
  // Registration order within a rank, for deterministic evaluation order.
  for (int p = 0; p < n; ++p) {
    if (procs[static_cast<std::size_t>(p)].dynamic) continue;
    sched.ranks[static_cast<std::size_t>(rank[static_cast<std::size_t>(p)])]
        .push_back(p);
  }
  return sched;
}

}  // namespace crve::sim
