// Cycle-based simulation kernel: compiled schedule + interpreter fallback.
//
// One implicit clock domain (the paper's testbenches drive one clock from
// the VHDL testbench; everything else is driven by processes). Each step():
//   1. clocked processes run (reading pre-edge values, scheduling writes),
//   2. writes commit,
//   3. combinational processes settle,
//   4. tracers sample the settled cycle.
//
// Two kernels implement phase 3 (DESIGN.md §14):
//
//   * kCompiled (default): at initialize() every combinational process runs
//     once under instrumented signals; the recorded read/write sets (union
//     of recorded and CombOpts-declared reads) are levelized into a static
//     rank-ordered schedule (schedule.h). Steady-state cycles evaluate each
//     rank once, skipping any process none of whose inputs committed a
//     change — true combinational cycles are rejected at elaboration with a
//     named cycle path.
//   * kInterp: the original delta-cycle interpreter — every combinational
//     process re-runs until fixpoint. Kept as the differential-testing
//     escape hatch (--sim-kernel interp); both kernels produce byte-
//     identical reports, VCDs and alignment results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/signal.h"

namespace crve::obs {
struct ProfileData;
}

namespace crve::sim {

struct CompiledSchedule;
struct DesignGraph;
struct ProcNode;

// Observer sampling settled signal values once per cycle (e.g. VCD writer).
//
// `changed` holds the indices (into `signals`, ascending) of the signals
// whose visible value changed during this cycle's commits — the kernel
// already knows this from commit(), so tracers never have to rescan the
// full signal list. On the very first sample of a run the kernel reports
// every signal as changed, giving tracers a full initial snapshot. A value
// that changes and reverts within one cycle's delta settling may appear in
// `changed` with its final value equal to the previous sample; tracers that
// care must compare against their own last-seen state.
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void sample(std::uint64_t cycle,
                      const std::vector<SignalBase*>& signals,
                      const std::vector<int>& changed) = 0;
};

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class KernelKind { kCompiled, kInterp };

// Scheduling contract of a combinational process under the compiled kernel.
// Interpreted kernels ignore everything here.
struct CombOpts {
  // Signals the process may read beyond what elaboration-time discovery
  // observes. Models whose read-set is data-dependent (e.g. a mux that
  // skips idle ports) must declare the full superset here; discovery only
  // sees the reads taken on the initial all-idle evaluation.
  std::vector<const SignalBase*> reads;
  // Names of combinational processes that must evaluate before this one and
  // whose execution re-dirties it — for decision "wires" passed through
  // module members instead of signals.
  std::vector<std::string> after;
  // Module-internal state the process reads that is mutated by clocked
  // processes (queues, FSM phases). The process is re-dirtied whenever the
  // owning module bumps the tag.
  const StateTag* state = nullptr;
  // Opt out of static scheduling entirely: the process is excluded from the
  // dependency graph (it cannot form an elaboration-time cycle) and runs in
  // a fixpoint tail after the static ranks, every cycle.
  bool dynamic = false;
  // Design-analysis declaration only (DESIGN.md §17) — the kernel ignores
  // it. Signals the process writes only on data-dependent branches (e.g. a
  // response payload driven while a packet is pending): elaboration-time
  // recording sees the idle branch, so without the declaration the design
  // linter would report the signal as never written.
  std::vector<const SignalBase*> writes;
};

// Design-analysis declarations for a clocked process (DESIGN.md §17). The
// kernel itself ignores these — every clocked process runs every cycle
// regardless — but the elaboration-time design linter records only the
// branches a single evaluation takes, and a clocked process's pin accesses
// are usually data-dependent (a BFM reads response pins only while a
// response is in flight). Declaring the full superset here keeps the
// read/write view of the exported DesignGraph truthful.
struct ClockedOpts {
  std::vector<const SignalBase*> reads;
  std::vector<const SignalBase*> writes;
};

class Context {
 public:
  Context();
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- construction phase -------------------------------------------------
  // Process names must be unique (kernel diagnostics and `after` edges
  // address processes by name); duplicates throw SimError.
  void add_clocked(std::string name, std::function<void()> fn);
  void add_clocked(std::string name, std::function<void()> fn,
                   ClockedOpts opts);
  void add_comb(std::string name, std::function<void()> fn);
  void add_comb(std::string name, std::function<void()> fn, CombOpts opts);

  // Selects the settling kernel; must be called before initialize().
  void set_kernel(KernelKind k);
  KernelKind kernel() const { return kernel_; }

  // Registered automatically by SignalBase; exposed for tracers.
  const std::vector<SignalBase*>& signals() const { return signals_; }

  void attach_tracer(Tracer* t) { tracers_.push_back(t); }

  // --- run phase ------------------------------------------------------
  // Settles combinational logic before the first edge; under the compiled
  // kernel this also runs dependency discovery and levelization, throwing
  // SimError with a named path on a true combinational cycle. Called
  // implicitly by the first step(); callable explicitly for tests.
  void initialize();

  // Advances n clock cycles.
  void step(int n = 1);

  std::uint64_t cycle() const { return cycle_; }
  // Total process evaluations, a proxy for simulator work (bench_sim_speed).
  std::uint64_t evaluations() const { return evaluations_; }
  // Scheduled settling passes. Interpreter: delta iterations (>= 1 per
  // cycle; the excess measures combinational churn). Compiled kernel:
  // exactly 1 per cycle on a static graph, +1 per re-pass forced by the
  // dynamic fixpoint tail.
  std::uint64_t delta_iterations() const { return delta_iterations_; }
  // Sum of per-cycle changed-set sizes handed to tracers (the initial
  // full-snapshot sample included) — the trace path's true workload.
  std::uint64_t changed_signal_samples() const { return changed_samples_; }

  // Compiled-schedule counters (zero under the interpreter).
  // Monotonic count of committed value changes across all signals. A model
  // that proved itself idle can stay idle for free while this stands still
  // (nothing anywhere changed, so in particular none of its inputs did).
  std::uint64_t change_stamp() const { return change_stamp_; }

  std::uint64_t sched_ranks() const { return sched_ranks_; }
  std::uint64_t sched_skipped_evaluations() const { return sched_skipped_; }
  std::uint64_t sched_fallback_iterations() const { return sched_fallback_; }

  // Publishes this kernel's counters (cycles, evaluations, delta
  // iterations, changed-signal samples, sim.sched.*) into the obs metrics
  // registry. No-op while collection is disabled. Call at end of run; the
  // counters are kept as plain members during simulation so the hot loop
  // never pays for instrumentation.
  void publish_metrics() const;

  // Max settling iterations before declaring a combinational loop (the
  // interpreter's delta limit; the compiled kernel's re-pass/fallback bound).
  void set_delta_limit(int limit) { delta_limit_ = limit; }

  // --- kernel hotspot profiler (DESIGN.md §15) ----------------------------
  // Off by default: every collection site in the hot loops is one
  // well-predicted branch, keeping the disabled path inside the obs <2%
  // overhead budget (BM_ProfilerDisabled). Enabled, each process
  // evaluation pays two monotonic-clock reads and each signal commit a
  // couple of counter bumps. Must be set before initialize().
  void set_profiling(bool on);
  bool profiling() const { return profiling_; }

  // Snapshot of the per-process / per-rank / per-signal counters collected
  // so far (runs = 1). Signals that never committed a change are omitted.
  obs::ProfileData profile() const;

  // --- design graph export (design_graph.h, DESIGN.md §17) ----------------
  // Elaborates (initialize()) under the compiled kernel and freezes the
  // discovered structure — signals, read/write sets, declarations, ranks —
  // into an immutable DesignGraph, re-evaluating every process once more
  // under instrumentation for the post-settle recheck sets. Terminal:
  // the re-evaluations perturb module state, so step() afterwards throws
  // SimError. Throws SimError under the interpreter kernel.
  DesignGraph export_design_graph();

 private:
  friend class SignalBase;
  void register_signal(SignalBase* s) {
    s->index_ = arena_.add_signal();
    s->arena_ = &arena_;
    signals_.push_back(s);
  }

  // Commits pending writes; returns whether any visible value changed.
  // Under an active compiled schedule, marks the static readers of every
  // changed signal dirty.
  bool commit_dirty();
  void run_clocked();      // clocked phase of one edge (profiling-aware)
  void settle();           // interpreter fixpoint
  void settle_compiled();  // rank passes + dynamic fixpoint tail
  void build_compiled_schedule();
  void mark_proc_dirty(int p) {
    if (!proc_dirty_[static_cast<std::size_t>(p)]) {
      proc_dirty_[static_cast<std::size_t>(p)] = 1;
      ++n_dirty_;
    }
  }
  // Resets the changed-set and refills it with every signal index, so the
  // next sample_tracers() hands tracers a full snapshot (first-sample
  // semantics, shared by both kernel paths).
  void snapshot_all();
  // Sorts the cycle's changed-set, hands it to every tracer, resets it.
  void sample_tracers();
  std::string dirty_proc_names() const;
  void check_unique_name(const std::string& name);

  struct Process {
    std::string name;
    std::function<void()> fn;
    CombOpts opts;        // comb processes only
    ClockedOpts decl;     // clocked processes only (design-lint declarations)
  };

  SignalArena arena_;
  std::vector<SignalBase*> signals_;
  std::vector<int> changed_;  // indices changed since the last sample
  std::vector<Process> clocked_;
  std::vector<Process> comb_;
  std::vector<Tracer*> tracers_;
  std::unordered_set<std::string> proc_names_;

  KernelKind kernel_ = KernelKind::kCompiled;
  std::unique_ptr<CompiledSchedule> sched_;
  // Discovery-pass nodes with *recorded-only* read/write sets (before the
  // declared-read union build_compiled_schedule feeds the scheduler), kept
  // for export_design_graph(); tiny next to the simulation state.
  std::vector<ProcNode> discovery_;
  // Signal indices with a pending write when initialize() ran its first
  // commit — values strapped during construction (export_design_graph).
  std::vector<int> construction_writes_;
  bool design_exported_ = false;
  std::vector<std::uint8_t> proc_dirty_;   // per comb process
  std::size_t n_dirty_ = 0;
  // StateTag checks grouped by unique tag: many processes share one model's
  // tag, so the per-cycle scan compares one version per tag, not per proc.
  struct TagGroup {
    const StateTag* tag;
    std::uint64_t seen;
    std::vector<int> procs;
  };
  std::vector<TagGroup> tag_groups_;

  // Profiler accumulators, sized at initialize() when profiling is on.
  // Indexed like clocked_/comb_/signals_; wall_ns is exclusive time inside
  // the process fn (a process never calls another process).
  struct ProcStats {
    std::uint64_t evals = 0;
    std::uint64_t skips = 0;
    std::uint64_t wall_ns = 0;
  };
  std::vector<ProcStats> prof_clocked_;
  std::vector<ProcStats> prof_comb_;
  std::vector<int> prof_rank_;  // rank per comb process; -1 = unranked
  std::vector<std::uint64_t> prof_sig_commits_;
  std::vector<std::uint64_t> prof_sig_marks_;
  bool profiling_ = false;

  std::uint64_t cycle_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t delta_iterations_ = 0;
  std::uint64_t changed_samples_ = 0;
  std::uint64_t change_stamp_ = 0;
  std::uint64_t sched_ranks_ = 0;
  std::uint64_t sched_skipped_ = 0;
  std::uint64_t sched_fallback_ = 0;
  int delta_limit_ = 64;
  bool initialized_ = false;
};

}  // namespace crve::sim
