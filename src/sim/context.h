// Cycle-based simulation kernel with delta-cycle settling.
//
// One implicit clock domain (the paper's testbenches drive one clock from
// the VHDL testbench; everything else is driven by processes). Each step():
//   1. clocked processes run (reading pre-edge values, scheduling writes),
//   2. writes commit,
//   3. combinational processes run to a fixpoint (delta cycles),
//   4. tracers sample the settled cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/signal.h"

namespace crve::sim {

// Observer sampling settled signal values once per cycle (e.g. VCD writer).
//
// `changed` holds the indices (into `signals`, ascending) of the signals
// whose visible value changed during this cycle's commits — the kernel
// already knows this from commit(), so tracers never have to rescan the
// full signal list. On the very first sample of a run the kernel reports
// every signal as changed, giving tracers a full initial snapshot. A value
// that changes and reverts within one cycle's delta settling may appear in
// `changed` with its final value equal to the previous sample; tracers that
// care must compare against their own last-seen state.
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void sample(std::uint64_t cycle,
                      const std::vector<SignalBase*>& signals,
                      const std::vector<int>& changed) = 0;
};

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- construction phase -------------------------------------------------
  void add_clocked(std::string name, std::function<void()> fn);
  void add_comb(std::string name, std::function<void()> fn);

  // Registered automatically by SignalBase; exposed for tracers.
  const std::vector<SignalBase*>& signals() const { return signals_; }

  void attach_tracer(Tracer* t) { tracers_.push_back(t); }

  // --- run phase ------------------------------------------------------
  // Settles combinational logic before the first edge. Called implicitly by
  // the first step(); callable explicitly for tests.
  void initialize();

  // Advances n clock cycles.
  void step(int n = 1);

  std::uint64_t cycle() const { return cycle_; }
  // Total process evaluations, a proxy for simulator work (bench_sim_speed).
  std::uint64_t evaluations() const { return evaluations_; }
  // Delta iterations run by settle() (>= 1 per cycle; the excess over the
  // cycle count measures combinational churn).
  std::uint64_t delta_iterations() const { return delta_iterations_; }
  // Sum of per-cycle changed-set sizes handed to tracers (the initial
  // full-snapshot sample included) — the trace path's true workload.
  std::uint64_t changed_signal_samples() const { return changed_samples_; }

  // Publishes this kernel's counters (cycles, evaluations, delta
  // iterations, changed-signal samples) into the obs metrics registry.
  // No-op while collection is disabled. Call at end of run; the counters
  // are kept as plain members during simulation so the hot loop never pays
  // for instrumentation.
  void publish_metrics() const;

  // Max delta iterations before declaring a combinational loop.
  void set_delta_limit(int limit) { delta_limit_ = limit; }

 private:
  friend class SignalBase;
  void register_signal(SignalBase* s) {
    s->index_ = static_cast<int>(signals_.size());
    signals_.push_back(s);
  }
  void mark_dirty(SignalBase* s) { dirty_.push_back(s); }

  // Commits pending writes; returns whether any visible value changed.
  bool commit_dirty();
  void settle();
  // Sorts the cycle's changed-set, hands it to every tracer, resets it.
  void sample_tracers();

  struct Process {
    std::string name;
    std::function<void()> fn;
  };

  std::vector<SignalBase*> signals_;
  std::vector<SignalBase*> dirty_;
  std::vector<int> changed_;  // indices changed since the last sample
  std::vector<Process> clocked_;
  std::vector<Process> comb_;
  std::vector<Tracer*> tracers_;
  std::uint64_t cycle_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t delta_iterations_ = 0;
  std::uint64_t changed_samples_ = 0;
  std::uint64_t change_stamp_ = 0;
  int delta_limit_ = 64;
  bool initialized_ = false;
};

}  // namespace crve::sim
