// Lint-cost guard: crve_regress runs the linter over the config directory
// before every campaign, so directory lint must stay negligible next to a
// single simulation job (<5 ms for the shipped configs; EXPERIMENTS.md has
// the measured numbers). BM_LintConfigs is the shipped-configs figure;
// BM_LintConfigs40 scales it to the paper's 40-configuration matrix and
// BM_LintSourceTree bounds the CI determinism scan over all of src/.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/design_lint.h"
#include "lint/lint.h"
#include "regress/config_file.h"

#ifndef CRVE_SOURCE_DIR
#define CRVE_SOURCE_DIR "."
#endif

namespace {

using namespace crve;

// The shipped configs/ directory, linted the way crve_regress does on
// campaign start.
void BM_LintConfigs(benchmark::State& state) {
  const std::string dir = CRVE_SOURCE_DIR "/configs";
  std::size_t findings = 0;
  for (auto _ : state) {
    const auto report = lint::lint_config_dir(dir);
    findings += report.findings.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["findings"] =
      static_cast<double>(findings) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LintConfigs)->Unit(benchmark::kMillisecond);

// The paper's "more than 36 configurations" scale: 40 generated .cfg files
// linted as one directory.
void BM_LintConfigs40(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "crve_bench_lint40";
  fs::create_directories(dir);
  for (int i = 0; i < 40; ++i) {
    stbus::NodeConfig cfg;
    cfg.name = "cfg" + std::to_string(i);
    cfg.n_initiators = 2 + i % 3;
    cfg.n_targets = 2;
    cfg.arb = static_cast<stbus::ArbPolicy>(i % 6);
    cfg.programming_port = cfg.arb == stbus::ArbPolicy::kProgrammable;
    cfg.validate_and_normalize();
    char name[32];
    std::snprintf(name, sizeof(name), "c%02d.cfg", i);
    std::ofstream(dir / name) << regress::format_config(cfg);
  }
  for (auto _ : state) {
    const auto report = lint::lint_config_dir(dir.string());
    benchmark::DoNotOptimize(report);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_LintConfigs40)->Unit(benchmark::kMillisecond);

// The design-lint preflight gate (DESIGN.md §17): elaborate each shipped
// configuration's testbench on both views — the dominant cost — export the
// design graphs and run CRVE100..110. crve_regress pays this before every
// campaign, so the budget is <50 ms per configuration; the per_config
// counter is what the CI budget guard reads.
void BM_DesignLint(benchmark::State& state) {
  const std::string dir = CRVE_SOURCE_DIR "/configs";
  std::size_t n_configs = 1;
  for (auto _ : state) {
    const auto res = lint::lint_design_dir(dir);
    n_configs = res.summaries.size() / 2;  // RTL + BCA per config
    benchmark::DoNotOptimize(res);
  }
  state.counters["configs"] = static_cast<double>(n_configs);
  // Inverted iteration-invariant rate: elapsed / (iterations * value).
  // value = configs/1e3 makes the counter read milliseconds per config.
  state.counters["ms_per_config"] = benchmark::Counter(
      static_cast<double>(n_configs) / 1e3,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_DesignLint)->Unit(benchmark::kMillisecond);

// The CI determinism scan: every .h/.cpp under src/.
void BM_LintSourceTree(benchmark::State& state) {
  const std::string dir = CRVE_SOURCE_DIR "/src";
  for (auto _ : state) {
    const auto report = lint::lint_source_tree(dir);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_LintSourceTree)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
