// C3 — "The verification environment permitted to find five bugs on BCA
// models, not found using the old environment of the past flow."
//
// For each of the five injected BCA bugs this bench runs:
//   * the OLD flow: the model owner's directed write-then-read harness,
//     no protocol checkers, no scoreboard, no coverage, no STBA — only a
//     data self-check on read-back values (the paper: "a very basic model
//     of harnesses ... a lot of checks were done visually");
//   * the NEW flow: the common environment (random tests + checkers +
//     scoreboard + coverage) with the STBA alignment comparison;
// and prints which layer detects the bug. Expected: 0/5 in the old flow,
// 5/5 in the new one — with the LRU bug visible to STBA only.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "regress/runner.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace {

using namespace crve;

stbus::NodeConfig bug_cfg() {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

// LRU-sensitive chunked contention (see tests/test_faults.cpp).
verif::TestSpec lru_stress() {
  verif::TestSpec s = verif::t05_chunked_traffic();
  s.name = "lru_stress";
  s.profile = [](const stbus::NodeConfig&, int) {
    verif::InitiatorProfile p;
    p.windows = {stbus::AddressRange{0, 0x1000, 0}};
    p.chunk_permille = 700;
    p.max_chunk_packets = 3;
    p.idle_permille = 0;
    p.opcode_weights.assign(stbus::kNumOpcodes, 0);
    p.opcode_weights[static_cast<std::size_t>(stbus::Opcode::kLd4)] = 1;
    p.opcode_weights[static_cast<std::size_t>(stbus::Opcode::kSt8)] = 1;
    return p;
  };
  return s;
}

struct Bug {
  const char* name;
  bca::Faults faults;
  verif::TestSpec trigger;  // the CATG test that exercises it
};

std::vector<Bug> paper_bugs() {
  std::vector<Bug> bugs;
  {
    Bug b{"lru_stale_on_chunk", {}, lru_stress()};
    b.faults.lru_stale_on_chunk = true;
    bugs.push_back(std::move(b));
  }
  {
    Bug b{"grant_during_lock", {}, verif::t05_chunked_traffic()};
    b.faults.grant_during_lock = true;
    bugs.push_back(std::move(b));
  }
  {
    Bug b{"byte_enable_dropped", {}, verif::t02_random_all_opcodes()};
    b.faults.byte_enable_dropped = true;
    bugs.push_back(std::move(b));
  }
  {
    Bug b{"response_src_swap", {}, verif::t03_out_of_order()};
    b.faults.response_src_swap = true;
    bugs.push_back(std::move(b));
  }
  {
    // The size-converter endianness bug is exercised at the bridge level in
    // the test suite; at the node level the closest trigger is the
    // contention-corruption path, so here we use the opcode-corruption
    // fault, which models the same "data mangled inside the BCA model"
    // class through the node.
    Bug b{"opcode_corrupt_on_busy", {}, verif::t07_target_contention()};
    b.faults.opcode_corrupt_on_busy = true;
    bugs.push_back(std::move(b));
  }
  return bugs;
}

// Old flow: directed write/read harness on the BCA model alone, data
// self-check only (read-back must equal what was written).
bool old_flow_detects(const bca::Faults& faults) {
  verif::TestbenchOptions opts;
  opts.model = verif::ModelKind::kBca;
  opts.faults = faults;
  opts.seed = 13;
  opts.enable_checkers = false;
  opts.enable_scoreboard = false;
  opts.enable_coverage = false;
  opts.keep_history = true;
  verif::Testbench tb(bug_cfg(), verif::old_flow_write_read(), opts);
  const auto r = tb.run();
  if (!r.completed) return true;  // a hang would be noticed
  // Visual-style self-check: each read returns the value written before.
  for (int i = 0; i < bug_cfg().n_initiators; ++i) {
    const auto& hist = tb.initiator(i).history();
    const std::size_t pairs = hist.size() / 2;
    for (std::size_t k = 0; k < pairs; ++k) {
      const auto& st = hist[k];
      const auto& ld = hist[pairs + k];
      if (st.request.add != ld.request.add) continue;
      if (ld.rdata != st.request.wdata) return true;
    }
  }
  return false;
}

struct Detection {
  bool old_flow = false;
  bool checks = false;     // protocol checkers / scoreboard on the BCA run
  bool coverage = false;   // coverage digest mismatch between views
  bool alignment = false;  // STBA rate below 99%
  bool any_new() const { return checks || coverage || alignment; }
};

Detection new_flow_detects(const Bug& bug) {
  regress::RunPlan plan;
  plan.cfg = bug_cfg();
  plan.tests = {bug.trigger};
  plan.seeds = {13};
  plan.n_transactions = 100;
  plan.faults = bug.faults;
  plan.max_cycles = 60000;
  const auto res = regress::Regression::run(plan);
  Detection d;
  d.checks = !res.bca_passed;
  d.coverage = !res.coverage_match;
  d.alignment = res.min_alignment < 0.99;
  return d;
}

void print_table() {
  std::printf(
      "== C3: five BCA bugs, old flow vs common verification flow ==\n\n");
  std::printf("%-24s | %-8s | %-10s %-9s %-9s | %s\n", "injected BCA bug",
              "old flow", "checks", "coverage", "STBA<99%", "new flow");
  std::printf("%s\n", std::string(86, '-').c_str());
  int old_found = 0, new_found = 0;
  for (const auto& bug : paper_bugs()) {
    Detection d = new_flow_detects(bug);
    d.old_flow = old_flow_detects(bug.faults);
    old_found += d.old_flow ? 1 : 0;
    new_found += d.any_new() ? 1 : 0;
    std::printf("%-24s | %-8s | %-10s %-9s %-9s | %s\n", bug.name,
                d.old_flow ? "FOUND" : "missed",
                d.checks ? "FOUND" : "-", d.coverage ? "FOUND" : "-",
                d.alignment ? "FOUND" : "-",
                d.any_new() ? "FOUND" : "missed");
  }
  std::printf("%s\n", std::string(86, '-').c_str());
  std::printf("old flow: %d/5 found   common flow: %d/5 found "
              "(paper: 5 bugs found that the old flow missed)\n\n",
              old_found, new_found);
}

void BM_NewFlowBugHunt(benchmark::State& state) {
  const auto bugs = paper_bugs();
  for (auto _ : state) {
    const Detection d = new_flow_detects(bugs[1]);  // grant_during_lock
    benchmark::DoNotOptimize(d.any_new());
  }
  state.SetLabel("dual-view regression + STBA on one injected bug");
}

BENCHMARK(BM_NewFlowBugHunt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
