// Content-addressed campaign cache: cold (simulate + store) vs warm
// (replay every pair) wall time on a sign-off matrix.
//
// The cache keys every (config content, test, seed, views, build) pair job
// by the SHA-256 of its canonical JobSpec, so an unchanged matrix re-run
// replays from disk instead of simulating. The acceptance bar is a >= 10x
// warm/cold ratio on this matrix: a warm run is a cache probe plus a JSON
// decode per pair, no testbench is ever built. Both paths go through the
// exact same Regression::run_matrix planner/reduce, so the ratio measures
// the cache, not two different engines — and the warm report stays
// byte-identical to the cold one modulo the `cached` provenance fields
// (asserted by the CampaignCache tests; here we only time it).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "regress/runner.h"
#include "verif/tests.h"

namespace {

using namespace crve;
namespace fs = std::filesystem;

std::vector<stbus::NodeConfig> matrix_configs() {
  std::vector<stbus::NodeConfig> out;
  int idx = 0;
  for (auto arch : {stbus::Architecture::kSharedBus,
                    stbus::Architecture::kFullCrossbar}) {
    for (auto arb : {stbus::ArbPolicy::kFixedPriority, stbus::ArbPolicy::kLru,
                     stbus::ArbPolicy::kLatencyBased}) {
      stbus::NodeConfig cfg;
      cfg.name = "cfg" + std::to_string(idx++);
      cfg.n_initiators = 3;
      cfg.n_targets = 2;
      cfg.bus_bytes = 4;
      cfg.arch = arch;
      cfg.arb = arb;
      out.push_back(cfg);
    }
  }
  return out;
}

regress::RunPlan base_plan(const std::string& cache_dir) {
  regress::RunPlan plan;
  plan.tests = {verif::t02_random_all_opcodes(), verif::t05_chunked_traffic(),
                verif::t07_target_contention()};
  plan.seeds = {11, 12};
  plan.n_transactions = 30;
  plan.max_cycles = 120000;
  plan.jobs = 1;  // serial on both paths: the ratio isolates the cache
  plan.cache_dir = cache_dir;
  return plan;
}

// Fresh cache directory each iteration: every pair misses, simulates and is
// stored. This is the ordinary campaign plus the store overhead.
void BM_CacheCold(benchmark::State& state) {
  const auto configs = matrix_configs();
  const fs::path root =
      fs::temp_directory_path() / "crve_bench_cache_cold";
  std::size_t iter = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const fs::path dir = root / std::to_string(iter++);
    fs::remove_all(dir);
    state.ResumeTiming();
    const auto res =
        regress::Regression::run_matrix(configs, base_plan(dir.string()));
    benchmark::DoNotOptimize(res.all_signed_off);
    if (!res.all_signed_off) state.SkipWithError("matrix not signed off");
  }
  fs::remove_all(root);
  state.SetLabel(std::to_string(configs.size()) +
                 " configs x 3 tests x 2 seeds, every pair simulated+stored");
}

// One pre-populated cache, probed every iteration: every pair replays.
void BM_CacheWarm(benchmark::State& state) {
  const auto configs = matrix_configs();
  const fs::path dir =
      fs::temp_directory_path() / "crve_bench_cache_warm";
  fs::remove_all(dir);
  {  // populate once, outside the timed loop
    const auto cold =
        regress::Regression::run_matrix(configs, base_plan(dir.string()));
    if (!cold.all_signed_off) {
      state.SkipWithError("populate run not signed off");
      return;
    }
  }
  std::size_t replayed = 0;
  for (auto _ : state) {
    const auto res =
        regress::Regression::run_matrix(configs, base_plan(dir.string()));
    benchmark::DoNotOptimize(res.all_signed_off);
    replayed = 0;
    for (const auto& r : res.results) replayed += r.cached_pairs;
    if (!res.all_signed_off) state.SkipWithError("matrix not signed off");
  }
  fs::remove_all(dir);
  state.SetLabel(std::to_string(configs.size()) +
                 " configs x 3 tests x 2 seeds, " + std::to_string(replayed) +
                 " pairs replayed");
}

BENCHMARK(BM_CacheCold)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_CacheWarm)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
