// C4 (coverage half) — functional coverage convergence, old vs new flow.
//
// Paper: the old harness "was not strong enough to reach corner cases" and
// had "no way to understand quality metrics like coverage"; the common
// environment aims at "full functional and code coverage", accumulating
// runs of the same tests with different seeds.
//
// Series printed: cumulative functional coverage (%) after N seeds, for
//   * the old directed write-then-read harness, and
//   * the CATG constrained-random test,
// plus the per-coverpoint breakdown at the end of each campaign. Expected
// shape: the directed flow plateaus early and low; the random flow keeps
// climbing toward full coverage.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "verif/coverage.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace {

using namespace crve;

stbus::NodeConfig cov_cfg() {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

// Runs `spec` with seed and merges the run's coverage into `acc`.
void accumulate(const verif::TestSpec& spec, std::uint64_t seed,
                verif::StbusCoverage& acc) {
  verif::TestbenchOptions opts;
  opts.model = verif::ModelKind::kRtl;
  opts.seed = seed;
  verif::Testbench tb(cov_cfg(), spec, opts);
  tb.run();
  acc.merge(*tb.coverage());
}

void print_tables() {
  std::printf("== C4: functional coverage convergence over seeds ==\n\n");
  verif::TestSpec directed = verif::old_flow_write_read();
  verif::TestSpec random = verif::t02_random_all_opcodes();
  random.n_transactions = 120;
  // Include the error-window test so the random campaign can reach the
  // decode-error bins, like the paper's full test list does.
  verif::TestSpec errors = verif::t10_decode_errors();
  errors.n_transactions = 120;
  // The deep-pipelining test reaches the high outstanding-depth bins.
  verif::TestSpec ooo = verif::t03_out_of_order();
  ooo.n_transactions = 80;

  verif::StbusCoverage old_acc(cov_cfg());
  verif::StbusCoverage new_acc(cov_cfg());
  std::printf("%-7s  %-22s  %-22s\n", "seeds", "old directed flow",
              "common random flow");
  for (std::uint64_t s = 1; s <= 8; ++s) {
    accumulate(directed, s, old_acc);
    accumulate(random, s, new_acc);
    accumulate(errors, s, new_acc);
    accumulate(ooo, s, new_acc);
    std::printf("%-7llu  %6.1f%% (%3d/%3d bins)  %6.1f%% (%3d/%3d bins)\n",
                static_cast<unsigned long long>(s), old_acc.percent(),
                old_acc.bins_hit(), old_acc.bins_total(), new_acc.percent(),
                new_acc.bins_hit(), new_acc.bins_total());
  }

  std::printf("\nper-coverpoint detail after 8 seeds:\n");
  std::printf("%-20s %-18s %-18s\n", "coverpoint", "old flow", "common flow");
  const auto old_rep = old_acc.report();
  const auto new_rep = new_acc.report();
  for (std::size_t i = 0; i < old_rep.items.size(); ++i) {
    std::printf("%-20s %5.1f%% (%3d/%3d)   %5.1f%% (%3d/%3d)\n",
                old_rep.items[i].name.c_str(), old_rep.items[i].percent,
                old_rep.items[i].hit, old_rep.items[i].total,
                new_rep.items[i].percent, new_rep.items[i].hit,
                new_rep.items[i].total);
  }
  std::printf(
      "\nThe directed flow plateaus (one opcode pair, no errors, no\n"
      "chunks); the constrained-random flow closes in on full functional\n"
      "coverage — the paper's first quality gate.\n\n");
}

void BM_CoverageRun(benchmark::State& state) {
  verif::TestSpec spec = verif::t02_random_all_opcodes();
  spec.n_transactions = 60;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    verif::StbusCoverage acc(cov_cfg());
    accumulate(spec, seed++, acc);
    benchmark::DoNotOptimize(acc.bins_hit());
  }
  state.SetLabel("one random run incl. coverage collection");
}

BENCHMARK(BM_CoverageRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
