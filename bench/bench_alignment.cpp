// C4 — STBA alignment rates and the 99% sign-off threshold.
//
// Paper: "The rate calculated at each port level is the number of cycles
// RTL and BCA signal ports are aligned over the total number of clock
// cycles. The targeted value, in order to consider the BCA model signed
// off, is 99%."
//
// Series printed:
//   * per-port alignment of the clean BCA model (must be 100% everywhere);
//   * per-port alignment under each injected fault, with the first
//     divergence localised — the report a verification engineer would use
//     to debug the model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "common/bits.h"
#include "regress/runner.h"
#include "stba/analyzer.h"
#include "stba/triage.h"
#include "verif/tests.h"

namespace {

using namespace crve;

stbus::NodeConfig cfg4() {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

void report(const char* label, const bca::Faults& faults,
            verif::TestSpec spec) {
  regress::RunPlan plan;
  plan.cfg = cfg4();
  plan.tests = {std::move(spec)};
  plan.seeds = {19};
  plan.n_transactions = 100;
  plan.faults = faults;
  plan.max_cycles = 60000;
  const auto res = regress::Regression::run(plan);
  std::printf("--- %s ---\n", label);
  for (const auto& a : res.alignments) {
    for (const auto& p : a.report.ports) {
      std::printf("  %-10s %8.3f%%", p.port.c_str(), 100.0 * p.rate());
      if (p.diverged()) {
        std::printf("   first divergence @ cycle %llu on %s",
                    static_cast<unsigned long long>(p.first_divergence),
                    p.diverged_signals.front().c_str());
      }
      std::printf("\n");
    }
    std::printf("  => min %.3f%%, %s (threshold 99%%)\n\n",
                100.0 * a.report.min_rate(),
                a.report.signed_off() ? "SIGNED OFF" : "NOT signed off");
  }
}

void print_tables() {
  std::printf("== C4: bus-accurate comparison (STBA) ==\n\n");
  report("clean BCA model, random test", {}, verif::t02_random_all_opcodes());

  bca::Faults lock;
  lock.grant_during_lock = true;
  report("fault: grant_during_lock, chunked test", lock,
         verif::t05_chunked_traffic());

  bca::Faults swap;
  swap.response_src_swap = true;
  report("fault: response_src_swap, out-of-order test", swap,
         verif::t03_out_of_order());

  bca::Faults prio;
  prio.priority_register_ignored = true;
  report("fault: priority_register_ignored, programmable-priority test",
         prio, verif::t08_programmable_priority());
}

void BM_StbaCompare(benchmark::State& state) {
  // Produce a pair of dumps once, then time the analyzer itself.
  std::ostringstream rtl_os, bca_os;
  for (int m = 0; m < 2; ++m) {
    verif::TestbenchOptions opts;
    opts.model = m == 0 ? verif::ModelKind::kRtl : verif::ModelKind::kBca;
    opts.seed = 19;
    opts.vcd_stream = m == 0 ? &rtl_os : &bca_os;
    verif::TestSpec spec = verif::t02_random_all_opcodes();
    spec.n_transactions = static_cast<int>(state.range(0));
    verif::Testbench tb(cfg4(), spec, opts);
    tb.run();
  }
  std::istringstream a(rtl_os.str()), b(bca_os.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb2 = vcd::Trace::parse(b);
  std::vector<std::string> ports;
  for (int i = 0; i < 3; ++i) {
    ports.push_back("tb.init" + std::to_string(i));
  }
  for (int t = 0; t < 2; ++t) {
    ports.push_back("tb.targ" + std::to_string(t));
  }
  for (auto _ : state) {
    const auto rep = stba::Analyzer::compare(ta, tb2, ports);
    benchmark::DoNotOptimize(rep.ports.size());
  }
  state.counters["cycles"] = static_cast<double>(ta.max_time() + 1);
}

BENCHMARK(BM_StbaCompare)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

// Triage deep-dive on a misaligned pair (grant_during_lock fault): the
// full interval/window/in-flight analysis must stay in the same league as
// the plain alignment compare, since it reuses the change-driven merge.
// Run next to BM_StbaCompare at the same transaction count for the
// overhead ratio reported in EXPERIMENTS.md.
void BM_Triage(benchmark::State& state) {
  std::ostringstream rtl_os, bca_os;
  for (int m = 0; m < 2; ++m) {
    verif::TestbenchOptions opts;
    opts.model = m == 0 ? verif::ModelKind::kRtl : verif::ModelKind::kBca;
    opts.seed = 19;
    opts.vcd_stream = m == 0 ? &rtl_os : &bca_os;
    if (m == 1) opts.faults.grant_during_lock = true;
    verif::TestSpec spec = verif::t05_chunked_traffic();
    spec.n_transactions = static_cast<int>(state.range(0));
    verif::Testbench tb(cfg4(), spec, opts);
    tb.run();
  }
  std::istringstream a(rtl_os.str()), b(bca_os.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb2 = vcd::Trace::parse(b);
  std::vector<std::string> ports;
  for (int i = 0; i < 3; ++i) ports.push_back("tb.init" + std::to_string(i));
  for (int t = 0; t < 2; ++t) ports.push_back("tb.targ" + std::to_string(t));
  std::uint64_t windows = 0;
  for (auto _ : state) {
    const auto rep = stba::Triage::analyze(ta, tb2, ports);
    windows = 0;
    for (const auto& p : rep.ports) windows += p.window_count;
    benchmark::DoNotOptimize(windows);
  }
  state.counters["cycles"] = static_cast<double>(ta.max_time() + 1);
  state.counters["windows"] = static_cast<double>(windows);
}

BENCHMARK(BM_Triage)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

// Long sparse trace: many cycles, few changes. This is the shape the
// change-driven merge is built for — the per-cycle scan it replaced walked
// every one of the `cycles` x 17 field values through a binary search,
// while the merge visits only the change events. One single-cycle granted
// pulse every `stride` cycles.
std::string sparse_dump(std::uint64_t cycles, std::uint64_t stride) {
  std::ostringstream os;
  os << "$timescale 1ns $end\n$scope module tb $end\n$scope module p0 $end\n";
  const char* names[] = {"req", "gnt", "opc", "add", "data", "be", "eop",
                         "lck", "src", "tid", "r_req", "r_gnt", "r_opc",
                         "r_data", "r_eop", "r_src", "r_tid"};
  const int widths[] = {1, 1, 6, 32, 32, 4, 1, 1, 6, 8, 1, 1, 2, 32, 1, 6, 8};
  for (int i = 0; i < 17; ++i) {
    os << "$var wire " << widths[i] << " " << static_cast<char>('!' + i)
       << " " << names[i] << " $end\n";
  }
  os << "$upscope $end\n$upscope $end\n$enddefinitions $end\n";
  for (std::uint64_t t = 0; t + 1 < cycles; t += stride) {
    os << "#" << t << "\n1!\n1\"\n";
    os << "b" << crve::Bits(32, t).to_bin_string() << " $\n";
    os << "#" << (t + 1) << "\n0!\n0\"\n";
  }
  os << "#" << (cycles - 1) << "\n";
  return os.str();
}

void BM_StbaCompareSparse(benchmark::State& state) {
  const auto cycles = static_cast<std::uint64_t>(state.range(0));
  const auto stride = static_cast<std::uint64_t>(state.range(1));
  const std::string d = sparse_dump(cycles, stride);
  std::istringstream ia(d), ib(d);
  const vcd::Trace a = vcd::Trace::parse(ia);
  const vcd::Trace b = vcd::Trace::parse(ib);
  for (auto _ : state) {
    const auto rep = stba::Analyzer::compare(a, b, {"tb.p0"});
    benchmark::DoNotOptimize(rep.ports.front().aligned_cycles);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
  std::uint64_t n_changes = 0;
  for (std::size_t v = 0; v < a.vars().size(); ++v) {
    n_changes += a.changes(static_cast<int>(v)).size();
  }
  state.counters["changes"] = static_cast<double>(n_changes);
}

// 100k cycles with a pulse every 1000 (sparse) and every 100 (denser);
// 1M cycles as the scaling point.
BENCHMARK(BM_StbaCompareSparse)
    ->Args({100000, 1000})
    ->Args({100000, 100})
    ->Args({1000000, 1000})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
