// C4 — STBA alignment rates and the 99% sign-off threshold.
//
// Paper: "The rate calculated at each port level is the number of cycles
// RTL and BCA signal ports are aligned over the total number of clock
// cycles. The targeted value, in order to consider the BCA model signed
// off, is 99%."
//
// Series printed:
//   * per-port alignment of the clean BCA model (must be 100% everywhere);
//   * per-port alignment under each injected fault, with the first
//     divergence localised — the report a verification engineer would use
//     to debug the model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "regress/runner.h"
#include "stba/analyzer.h"
#include "verif/tests.h"

namespace {

using namespace crve;

stbus::NodeConfig cfg4() {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

void report(const char* label, const bca::Faults& faults,
            verif::TestSpec spec) {
  regress::RunPlan plan;
  plan.cfg = cfg4();
  plan.tests = {std::move(spec)};
  plan.seeds = {19};
  plan.n_transactions = 100;
  plan.faults = faults;
  plan.max_cycles = 60000;
  const auto res = regress::Regression::run(plan);
  std::printf("--- %s ---\n", label);
  for (const auto& a : res.alignments) {
    for (const auto& p : a.report.ports) {
      std::printf("  %-10s %8.3f%%", p.port.c_str(), 100.0 * p.rate());
      if (p.diverged()) {
        std::printf("   first divergence @ cycle %llu on %s",
                    static_cast<unsigned long long>(p.first_divergence),
                    p.diverged_signals.front().c_str());
      }
      std::printf("\n");
    }
    std::printf("  => min %.3f%%, %s (threshold 99%%)\n\n",
                100.0 * a.report.min_rate(),
                a.report.signed_off() ? "SIGNED OFF" : "NOT signed off");
  }
}

void print_tables() {
  std::printf("== C4: bus-accurate comparison (STBA) ==\n\n");
  report("clean BCA model, random test", {}, verif::t02_random_all_opcodes());

  bca::Faults lock;
  lock.grant_during_lock = true;
  report("fault: grant_during_lock, chunked test", lock,
         verif::t05_chunked_traffic());

  bca::Faults swap;
  swap.response_src_swap = true;
  report("fault: response_src_swap, out-of-order test", swap,
         verif::t03_out_of_order());

  bca::Faults prio;
  prio.priority_register_ignored = true;
  report("fault: priority_register_ignored, programmable-priority test",
         prio, verif::t08_programmable_priority());
}

void BM_StbaCompare(benchmark::State& state) {
  // Produce a pair of dumps once, then time the analyzer itself.
  std::ostringstream rtl_os, bca_os;
  for (int m = 0; m < 2; ++m) {
    verif::TestbenchOptions opts;
    opts.model = m == 0 ? verif::ModelKind::kRtl : verif::ModelKind::kBca;
    opts.seed = 19;
    opts.vcd_stream = m == 0 ? &rtl_os : &bca_os;
    verif::TestSpec spec = verif::t02_random_all_opcodes();
    spec.n_transactions = static_cast<int>(state.range(0));
    verif::Testbench tb(cfg4(), spec, opts);
    tb.run();
  }
  std::istringstream a(rtl_os.str()), b(bca_os.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb2 = vcd::Trace::parse(b);
  std::vector<std::string> ports;
  for (int i = 0; i < 3; ++i) {
    ports.push_back("tb.init" + std::to_string(i));
  }
  for (int t = 0; t < 2; ++t) {
    ports.push_back("tb.targ" + std::to_string(t));
  }
  for (auto _ : state) {
    const auto rep = stba::Analyzer::compare(ta, tb2, ports);
    benchmark::DoNotOptimize(rep.ports.size());
  }
  state.counters["cycles"] = static_cast<double>(ta.max_time() + 1);
}

BENCHMARK(BM_StbaCompare)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
