// C6 — characterisation of the six arbitration policies.
//
// Paper (STBus overview): "A wide variety of arbitration policies is
// available, to help system integrators meet initiator and system
// requirements. These include bandwidth limitation, latency arbitration,
// LRU, priority-based arbitration and others."
//
// Under full contention (4 initiators hammering one target) this bench
// prints, per policy, each initiator's grant share and mean total latency.
// Expected shapes:
//   fixed-priority : initiator 3 (highest priority) starves the others;
//   round-robin/LRU: equal shares;
//   latency-based  : tighter deadlines get served sooner (lower latency);
//   bandwidth      : initiator 0's share is capped near its quota;
//   programmable   : behaves like fixed-priority at its reset values.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "verif/testbench.h"
#include "verif/tests.h"

namespace {

using namespace crve;
using stbus::ArbPolicy;

constexpr int kInitiators = 4;

stbus::NodeConfig arb_cfg(ArbPolicy arb) {
  stbus::NodeConfig cfg;
  cfg.n_initiators = kInitiators;
  cfg.n_targets = 1;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kSharedBus;
  cfg.arb = arb;
  cfg.latency_deadline = {2, 8, 16, 32};   // initiator 0 most urgent
  cfg.bandwidth_quota = {8, 0, 0, 0};      // initiator 0 capped: 8 per 64
  cfg.bandwidth_window = 64;
  return cfg;
}

verif::TestSpec contention() {
  verif::TestSpec s;
  s.name = "contention";
  s.n_transactions = 300;
  s.profile = [](const stbus::NodeConfig& cfg, int) {
    verif::InitiatorProfile p;
    p.windows = {cfg.address_map.front()};
    p.windows.front().size = 0x1000;
    p.opcode_weights.assign(stbus::kNumOpcodes, 0);
    p.opcode_weights[static_cast<std::size_t>(stbus::Opcode::kLd4)] = 1;
    p.idle_permille = 0;
    p.keep_history = true;
    return p;
  };
  s.target = [](const stbus::NodeConfig&, int) {
    verif::TargetProfile p;
    p.fixed_latency = 1;
    return p;
  };
  return s;
}

void print_tables() {
  std::printf(
      "== C6: arbitration policy characterisation "
      "(4 initiators, 1 shared target, saturating loads) ==\n\n");
  for (auto arb :
       {ArbPolicy::kFixedPriority, ArbPolicy::kRoundRobin, ArbPolicy::kLru,
        ArbPolicy::kLatencyBased, ArbPolicy::kBandwidthLimited,
        ArbPolicy::kProgrammable}) {
    verif::TestbenchOptions opts;
    opts.model = verif::ModelKind::kRtl;
    opts.seed = 31;
    verif::Testbench tb(arb_cfg(arb), contention(), opts);
    const auto r = tb.run();
    std::printf("%-15s (%s, %llu cycles)\n", to_string(arb).c_str(),
                r.passed() ? "clean" : "CHECK FAILURES",
                static_cast<unsigned long long>(r.cycles));
    for (int i = 0; i < kInitiators; ++i) {
      auto& bfm = tb.initiator(i);
      // When this initiator delivered its whole 300-transaction budget.
      const std::uint64_t finished =
          bfm.history().empty() ? 0 : bfm.history().back().done_cycle;
      std::printf(
          "    init%d: mean latency %5.1f cycles   budget done @ cycle %llu\n",
          i, bfm.mean_total_latency(),
          static_cast<unsigned long long>(finished));
    }
  }
  std::printf(
      "\nShapes: fixed/programmable priority serve higher priorities with\n"
      "lower latency; round-robin and LRU are egalitarian; latency-based\n"
      "orders service by deadline (init0 tightest); bandwidth limitation\n"
      "rations initiator 0 to its 8-grants-per-64-cycles quota, pushing its\n"
      "completion far past everyone else's.\n\n");
}

void BM_ArbitrationRun(benchmark::State& state) {
  const auto arb = static_cast<ArbPolicy>(state.range(0));
  for (auto _ : state) {
    verif::TestbenchOptions opts;
    opts.model = verif::ModelKind::kRtl;
    opts.seed = 31;
    verif::Testbench tb(arb_cfg(arb), contention(), opts);
    const auto r = tb.run();
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel(to_string(arb));
}

BENCHMARK(BM_ArbitrationRun)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
