// F1 — the hierarchical interconnect of paper Fig. 1.
//
// Sweeps traffic locality through a two-node interconnect joined by a t2/t3
// type converter (with a 64/32 size converter in front of one initiator)
// and prints throughput and latency per locality mix. Expected shape: the
// more traffic crosses the bridge, the higher the mean latency and the
// lower the delivered packet rate — the hierarchy trades performance on
// remote paths for decoupling.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "rtl/node.h"
#include "rtl/size_converter.h"
#include "rtl/type_converter.h"
#include "verif/bfm_initiator.h"
#include "verif/bfm_target.h"

namespace {

using namespace crve;
using stbus::AddressRange;
using stbus::PortPins;
using stbus::ProtocolType;

struct InterconnectRun {
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  double local_latency = 0;
  double remote_latency = 0;
  std::uint64_t remote_tx = 0;
};

// remote_permille: fraction of traffic aimed beyond the bridge.
InterconnectRun run_interconnect(int remote_permille, int n_tx) {
  sim::Context ctx;

  stbus::NodeConfig cfgA;
  cfgA.name = "nodeA";
  cfgA.n_initiators = 4;
  cfgA.n_targets = 3;
  cfgA.bus_bytes = 4;
  cfgA.type = ProtocolType::kType2;
  cfgA.arb = stbus::ArbPolicy::kLru;
  cfgA.address_map = {{0x00000, 0x10000, 0},
                      {0x10000, 0x10000, 1},
                      {0x20000, 0x20000, 2}};
  stbus::NodeConfig cfgB;
  cfgB.name = "nodeB";
  cfgB.n_initiators = 1;
  cfgB.n_targets = 2;
  cfgB.bus_bytes = 4;
  cfgB.type = ProtocolType::kType3;
  cfgB.address_map = {{0x20000, 0x10000, 0}, {0x30000, 0x10000, 1}};

  std::vector<std::unique_ptr<PortPins>> ipins;
  for (int i = 0; i < 3; ++i) {
    ipins.push_back(
        std::make_unique<PortPins>(ctx, "tb.init" + std::to_string(i), 4));
  }
  PortPins i4(ctx, "tb.init3", 8), i4dn(ctx, "tb.conv.dn", 4);
  PortPins t1(ctx, "tb.targ1", 4), t2(ctx, "tb.targ2", 4);
  PortPins bup(ctx, "tb.bridge.up", 4), bdn(ctx, "tb.bridge.dn", 4);
  PortPins t3(ctx, "tb.targ3", 4), t4(ctx, "tb.targ4", 4);

  rtl::SizeConverter conv(ctx, "conv", i4, i4dn, ProtocolType::kType2);
  rtl::TypeConverter bridge(ctx, "bridge", bup, ProtocolType::kType2, bdn,
                            ProtocolType::kType3);
  rtl::Node nodeA(ctx, cfgA,
                  {ipins[0].get(), ipins[1].get(), ipins[2].get(), &i4dn},
                  {&t1, &t2, &bup});
  rtl::Node nodeB(ctx, cfgB, {&bdn}, {&t3, &t4});

  Rng master(99);
  // Locality is steered through window weights: windows are drawn uniformly,
  // so replicate local/remote windows proportionally.
  std::vector<AddressRange> windows;
  const int remote_copies = remote_permille / 125;       // 0..8
  const int local_copies = (1000 - remote_permille) / 125;
  for (int k = 0; k < std::max(1, local_copies); ++k) {
    windows.push_back({0x00000, 0x1000, 0});
    windows.push_back({0x10000, 0x1000, 1});
  }
  for (int k = 0; k < remote_copies; ++k) {
    windows.push_back({0x20000, 0x1000, 0});
    windows.push_back({0x30000, 0x1000, 1});
  }

  verif::InitiatorProfile prof;
  prof.windows = windows;
  prof.max_size_bytes = 8;
  prof.max_outstanding = 1;
  prof.idle_permille = 0;
  prof.n_transactions = n_tx;
  prof.keep_history = true;

  std::vector<std::unique_ptr<verif::InitiatorBfm>> bfms;
  for (int i = 0; i < 3; ++i) {
    bfms.push_back(std::make_unique<verif::InitiatorBfm>(
        ctx, "init" + std::to_string(i), *ipins[static_cast<size_t>(i)],
        ProtocolType::kType2, i, cfgA, prof, master.fork()));
  }
  bfms.push_back(std::make_unique<verif::InitiatorBfm>(
      ctx, "init3", i4, ProtocolType::kType2, 3, cfgA, prof, master.fork()));

  verif::TargetProfile tp;
  tp.fixed_latency = 1;
  verif::TargetBfm tg1(ctx, "t1", t1, ProtocolType::kType2, tp, master.fork());
  verif::TargetBfm tg2(ctx, "t2", t2, ProtocolType::kType2, tp, master.fork());
  verif::TargetBfm tg3(ctx, "t3", t3, ProtocolType::kType3, tp, master.fork());
  verif::TargetBfm tg4(ctx, "t4", t4, ProtocolType::kType3, tp, master.fork());

  ctx.initialize();
  while (ctx.cycle() < 400000) {
    ctx.step();
    bool done = true;
    for (auto& b : bfms) done &= b->done();
    if (done && tg1.idle() && tg2.idle() && tg3.idle() && tg4.idle()) break;
  }

  InterconnectRun out;
  out.cycles = ctx.cycle();
  double lsum = 0, rsum = 0;
  std::uint64_t ln = 0, rn = 0;
  for (auto& b : bfms) {
    out.packets += static_cast<std::uint64_t>(b->completed());
    for (const auto& tx : b->history()) {
      const auto lat = static_cast<double>(tx.done_cycle - tx.gen_cycle);
      if (tx.request.add >= 0x20000) {
        rsum += lat;
        ++rn;
      } else {
        lsum += lat;
        ++ln;
      }
    }
  }
  out.local_latency = ln ? lsum / static_cast<double>(ln) : 0;
  out.remote_latency = rn ? rsum / static_cast<double>(rn) : 0;
  out.remote_tx = rn;
  return out;
}

void print_table() {
  std::printf(
      "== F1: hierarchical interconnect (Fig. 1) — locality sweep ==\n\n");
  std::printf("%-9s %8s %9s %12s %13s %10s\n", "remote", "cycles", "tx/kcyc",
              "local lat", "remote lat", "remote tx");
  for (int rm : {0, 250, 500, 750, 1000}) {
    const auto r = run_interconnect(rm, 150);
    std::printf("%7.1f%% %8llu %9.1f %9.1f cy %10.1f cy %10llu\n",
                rm / 10.0, static_cast<unsigned long long>(r.cycles),
                1000.0 * static_cast<double>(r.packets) /
                    static_cast<double>(r.cycles),
                r.local_latency, r.remote_latency,
                static_cast<unsigned long long>(r.remote_tx));
  }
  std::printf(
      "\nRemote traffic crosses node A, the serialized t2/t3 bridge and\n"
      "node B: latency rises and delivered throughput falls as the remote\n"
      "share grows.\n\n");
}

void BM_Interconnect(benchmark::State& state) {
  const int remote = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto r = run_interconnect(remote, 80);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel("remote " + std::to_string(remote / 10) + "%");
}

BENCHMARK(BM_Interconnect)->Arg(0)->Arg(500)->Arg(1000)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
