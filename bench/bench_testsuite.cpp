// C1 — the twelve generic node test cases.
//
// Paper: "Twelve test cases have been developed to cover the tests of all
// main features of the node such as out of order traffic or latency based
// arbitration... They can be reused for all configurations of the Node."
//
// Prints the suite table — per test and per view: result, cycles simulated,
// functional coverage — and checks the cross-view invariants (identical
// cycles, identical coverage digests). The timed benchmark runs one full
// suite pass on each view.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "verif/testbench.h"
#include "verif/tests.h"

namespace {

using namespace crve;

stbus::NodeConfig suite_cfg() {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

verif::RunResult run_one(const verif::TestSpec& spec, verif::ModelKind model,
                         int n_tx) {
  verif::TestSpec s = spec;
  s.n_transactions = n_tx;
  verif::TestbenchOptions opts;
  opts.model = model;
  opts.seed = 47;
  opts.max_cycles = 200000;
  verif::Testbench tb(suite_cfg(), s, opts);
  return tb.run();
}

void print_table() {
  std::printf("== C1: the 12 generic node test cases, both views ==\n\n");
  std::printf("%-26s | %-5s %7s %6s | %-5s %7s %6s | %s\n", "test", "RTL",
              "cycles", "cov", "BCA", "cycles", "cov", "views match");
  int pass = 0, match = 0;
  const auto suite = verif::catg_test_suite();
  for (const auto& spec : suite) {
    const auto rtl = run_one(spec, verif::ModelKind::kRtl, 60);
    const auto bca = run_one(spec, verif::ModelKind::kBca, 60);
    const bool ok = rtl.passed() && bca.passed();
    const bool same = rtl.cycles == bca.cycles &&
                      rtl.coverage_digest == bca.coverage_digest;
    pass += ok ? 1 : 0;
    match += same ? 1 : 0;
    std::printf("%-26s | %-5s %7llu %5.1f%% | %-5s %7llu %5.1f%% | %s\n",
                spec.name.c_str(), rtl.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rtl.cycles),
                rtl.coverage_percent, bca.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(bca.cycles),
                bca.coverage_percent, same ? "yes" : "NO");
  }
  std::printf("\n%d/%zu tests pass on both views; %d/%zu run cycle- and\n"
              "coverage-identical across views.\n\n",
              pass, suite.size(), match, suite.size());
}

void BM_FullSuite(benchmark::State& state) {
  const auto model = static_cast<verif::ModelKind>(state.range(0));
  const auto suite = verif::catg_test_suite();
  for (auto _ : state) {
    std::uint64_t cycles = 0;
    for (const auto& spec : suite) {
      cycles += run_one(spec, model, 30).cycles;
    }
    benchmark::DoNotOptimize(cycles);
  }
  state.SetLabel(verif::to_string(model));
}

BENCHMARK(BM_FullSuite)
    ->Arg(static_cast<int>(verif::ModelKind::kRtl))
    ->Arg(static_cast<int>(verif::ModelKind::kBca))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
