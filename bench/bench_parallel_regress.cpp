// Parallel regression engine: serial vs N-worker wall time on a
// multi-configuration sign-off matrix.
//
// The regression campaign is embarrassingly parallel — every (config, test,
// seed, view) job owns its testbench and RNG stream — so sharding it across
// workers should scale near-linearly until the hardware runs out of cores
// (the acceptance bar is >= 2x at 4 workers on a 4-core host). The jobs=1
// case is the exact serial engine, so the measured ratio is the true
// speedup, not a comparison of two different code paths.
// The second benchmark axis is the observability layer (obs=0/1): the same
// matrix with metrics collection and span tracing enabled must cost only a
// few percent, and with them disabled (the default) the instrumentation is
// a relaxed atomic load per touch point — compare the obs=0 numbers against
// a pre-instrumentation checkout to verify the <2% guarantee end to end.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace {

using namespace crve;

std::vector<stbus::NodeConfig> matrix_configs() {
  std::vector<stbus::NodeConfig> out;
  int idx = 0;
  for (auto arch : {stbus::Architecture::kSharedBus,
                    stbus::Architecture::kFullCrossbar}) {
    for (auto arb : {stbus::ArbPolicy::kFixedPriority, stbus::ArbPolicy::kLru,
                     stbus::ArbPolicy::kLatencyBased}) {
      stbus::NodeConfig cfg;
      cfg.name = "cfg" + std::to_string(idx++);
      cfg.n_initiators = 3;
      cfg.n_targets = 2;
      cfg.bus_bytes = 4;
      cfg.arch = arch;
      cfg.arb = arb;
      out.push_back(cfg);
    }
  }
  return out;
}

regress::RunPlan base_plan(unsigned jobs) {
  regress::RunPlan plan;
  plan.tests = {verif::t02_random_all_opcodes(), verif::t05_chunked_traffic(),
                verif::t07_target_contention()};
  plan.seeds = {11};
  plan.n_transactions = 30;
  plan.max_cycles = 120000;
  plan.jobs = jobs;
  return plan;
}

void BM_MatrixRegression(benchmark::State& state) {
  const auto jobs = static_cast<unsigned>(state.range(0));
  const bool obs_on = state.range(1) != 0;
  const auto configs = matrix_configs();
  for (auto _ : state) {
    if (obs_on) {
      obs::registry().reset();
      obs::set_metrics_enabled(true);
      obs::trace_begin();
    }
    const auto res =
        regress::Regression::run_matrix(configs, base_plan(jobs));
    benchmark::DoNotOptimize(res.all_signed_off);
    if (obs_on) {
      state.PauseTiming();
      obs::set_metrics_enabled(false);
      std::ostringstream sink;
      obs::trace_end(sink);
      benchmark::DoNotOptimize(sink.tellp());
      state.ResumeTiming();
    }
    if (!res.all_signed_off) state.SkipWithError("matrix not signed off");
  }
  state.SetLabel(std::to_string(configs.size()) +
                 " configs x 3 tests x 2 views, jobs=" + std::to_string(jobs) +
                 (obs_on ? ", metrics+trace ON" : ", obs disabled"));
}

BENCHMARK(BM_MatrixRegression)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
