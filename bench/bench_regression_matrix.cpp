// C2/F4/F5 — the configuration regression matrix.
//
// Paper: "More than 36 configurations of the Node have been tested"; the
// regression tool runs the same tests with the same seeds on both views and
// compares the waveforms. This bench regenerates that campaign: the full
// cross of {Type2,Type3} x {shared, full, partial} x {6 arbitration
// policies} (36 configurations) plus four data-width variants (40 total),
// each regressed on both views with STBA comparison, and prints the
// sign-off table. The timed benchmark measures one representative
// configuration's full dual-view regression.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "regress/config_file.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace {

using namespace crve;
using stbus::ArbPolicy;
using stbus::Architecture;
using stbus::ProtocolType;

std::vector<stbus::NodeConfig> build_matrix() {
  std::vector<stbus::NodeConfig> out;
  int idx = 0;
  for (auto type : {ProtocolType::kType2, ProtocolType::kType3}) {
    for (auto arch : {Architecture::kSharedBus, Architecture::kFullCrossbar,
                      Architecture::kPartialCrossbar}) {
      for (auto arb :
           {ArbPolicy::kFixedPriority, ArbPolicy::kRoundRobin,
            ArbPolicy::kLru, ArbPolicy::kLatencyBased,
            ArbPolicy::kBandwidthLimited, ArbPolicy::kProgrammable}) {
        stbus::NodeConfig cfg;
        cfg.name = "cfg" + std::to_string(idx++);
        cfg.n_initiators = 3;
        cfg.n_targets = 2;
        cfg.bus_bytes = 4;
        cfg.type = type;
        cfg.arch = arch;
        cfg.arb = arb;
        out.push_back(cfg);
      }
    }
  }
  for (int bus : {1, 8, 16, 32}) {  // 8..256-bit data widths
    stbus::NodeConfig cfg;
    cfg.name = "cfg" + std::to_string(idx++);
    cfg.n_initiators = 2;
    cfg.n_targets = 2;
    cfg.bus_bytes = bus;
    cfg.type = ProtocolType::kType2;
    cfg.arch = Architecture::kFullCrossbar;
    cfg.arb = ArbPolicy::kLru;
    out.push_back(cfg);
  }
  return out;
}

regress::RunPlan plan_for(const stbus::NodeConfig& cfg) {
  regress::RunPlan plan;
  plan.cfg = cfg;
  plan.tests = {verif::t02_random_all_opcodes(), verif::t05_chunked_traffic(),
                verif::t07_target_contention()};
  plan.seeds = {11};
  plan.n_transactions = 40;
  plan.max_cycles = 120000;
  return plan;
}

void print_matrix_table() {
  const auto matrix = build_matrix();
  std::printf(
      "== C2: regression across %zu node configurations "
      "(paper: \"more than 36\") ==\n\n",
      matrix.size());
  std::printf("%-6s %-4s %-13s %-15s %5s | %-5s %-5s %-8s %-9s %s\n",
              "config", "type", "arch", "arb", "bits", "RTL", "BCA",
              "cov", "align", "sign-off");
  int signed_off = 0;
  for (const auto& cfg : matrix) {
    const auto res = regress::Regression::run(plan_for(cfg));
    signed_off += res.signed_off ? 1 : 0;
    std::printf("%-6s %-4s %-13s %-15s %5d | %-5s %-5s %7.1f%% %8.3f%% %s\n",
                cfg.name.c_str(), to_string(cfg.type).c_str(),
                to_string(cfg.arch).c_str(), to_string(cfg.arb).c_str(),
                cfg.bus_bytes * 8, res.rtl_passed ? "PASS" : "FAIL",
                res.bca_passed ? "PASS" : "FAIL", res.mean_coverage_rtl,
                100.0 * res.min_alignment, res.signed_off ? "YES" : "NO");
  }
  std::printf("\n%d/%zu configurations signed off "
              "(functional pass on both views, identical coverage, >=99%% "
              "alignment at every port).\n\n",
              signed_off, matrix.size());
}

void BM_DualViewRegression(benchmark::State& state) {
  stbus::NodeConfig cfg;
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.arb = stbus::ArbPolicy::kLru;
  for (auto _ : state) {
    const auto res = regress::Regression::run(plan_for(cfg));
    benchmark::DoNotOptimize(res.signed_off);
    if (!res.signed_off) state.SkipWithError("regression failed");
  }
  state.SetLabel("3 tests x 1 seed x 2 views + STBA");
}

BENCHMARK(BM_DualViewRegression)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
