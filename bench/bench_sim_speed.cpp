// C5/F3 — simulation speed of the two model views.
//
// Paper claims reproduced here:
//   * "The fast simulation of BCA models permits to fast find the optimized
//     configuration" — the BCA view simulates markedly faster than the RTL
//     view on the same traffic;
//   * "since VHDL simulator is used, the advantage of having fast SystemC
//     simulator is lost" (Fig. 3) — plugging the BCA model through the
//     wrapper layer erases that advantage.
//
// Reported counters: cycles/s (rate) and kernel process evaluations per
// cycle (the work metric that explains the rate).
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rtl/node.h"
#include "rtl/register_decoder.h"
#include "stbus/packet.h"
#include "stbus/pins.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "vcd/writer.h"
#include "verif/testbench.h"
#include "verif/tests.h"
#include "verif/toggle_coverage.h"

namespace {

using namespace crve;

stbus::NodeConfig make_cfg(int n_init, int n_targ, int bus_bytes) {
  stbus::NodeConfig cfg;
  cfg.n_initiators = n_init;
  cfg.n_targets = n_targ;
  cfg.bus_bytes = bus_bytes;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

void run_model(benchmark::State& state, verif::ModelKind model,
               bool memoize = true,
               sim::KernelKind kernel = sim::KernelKind::kCompiled,
               bool sparse = false) {
  const int n_init = static_cast<int>(state.range(0));
  const int n_targ = static_cast<int>(state.range(1));
  const int bus = static_cast<int>(state.range(2));

  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    verif::TestSpec spec = verif::t07_target_contention();
    spec.profile = [sparse](const stbus::NodeConfig& cfg, int) {
      verif::InitiatorProfile p;
      p.windows = {cfg.address_map.front()};
      p.windows.front().size = 0x1000;
      // Sparse shape: mostly-idle initiators against slow targets, the
      // regime where the compiled kernel's change-driven skipping pays.
      p.idle_permille = sparse ? 900 : 0;
      p.max_size_bytes = 8;
      return p;
    };
    if (sparse) {
      spec.target = [](const stbus::NodeConfig&, int) {
        verif::TargetProfile t;
        t.fixed_latency = 40;
        return t;
      };
    }
    spec.n_transactions = sparse ? 100 : 200;
    verif::TestbenchOptions opts;
    opts.model = model;
    opts.kernel = kernel;
    opts.seed = 3;
    // The paper compares *model* simulation speed; checkers/scoreboard/
    // coverage cost the same on every view, so they are left out here.
    opts.enable_checkers = false;
    opts.enable_scoreboard = false;
    opts.enable_coverage = false;
    opts.enable_monitors = false;
    opts.enable_reference_model = false;
    opts.bca_memoization = memoize;
    verif::Testbench tb(make_cfg(n_init, n_targ, bus), spec, opts);
    state.ResumeTiming();

    const verif::RunResult r = tb.run();
    benchmark::DoNotOptimize(r.cycles);
    cycles += r.cycles;
    evals += r.evaluations;
    skipped += tb.ctx().sched_skipped_evaluations();
    if (!r.completed) state.SkipWithError("run failed");
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["evals_per_cycle"] =
      cycles > 0 ? static_cast<double>(evals) / static_cast<double>(cycles)
                 : 0.0;
  state.counters["skipped_per_cycle"] =
      cycles > 0 ? static_cast<double>(skipped) / static_cast<double>(cycles)
                 : 0.0;
}

void BM_Rtl(benchmark::State& state) {
  run_model(state, verif::ModelKind::kRtl);
}
void BM_Bca(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBca);
}
void BM_BcaWrapped(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBcaWrapped);
}
// Ablation: the BCA view with its sensitivity-list memoization disabled —
// quantifies how much of the BCA advantage that single design choice buys.
void BM_BcaNoMemo(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBca, /*memoize=*/false);
}
// Observability guard: the same BCA runs with metrics collection enabled.
// The kernel keeps its counters as plain members and publishes once per
// run, so the gap to BM_Bca should be noise (<2%); a larger gap means
// someone put an obs call into a per-cycle path.
void BM_BcaMetricsEnabled(benchmark::State& state) {
  obs::registry().reset();
  obs::set_metrics_enabled(true);
  run_model(state, verif::ModelKind::kBca);
  obs::set_metrics_enabled(false);
  obs::registry().reset();
}

// Kernel axis (this PR): the same RTL and wrapped-BCA runs under the
// reference delta-cycle interpreter, and sparse-activity variants of both
// — mostly-idle initiators against 40-cycle targets — where change-driven
// process skipping dominates. The compiled/interp ratio on the *Sparse
// pairs is the headline speedup tracked in EXPERIMENTS.md.
void BM_RtlInterp(benchmark::State& state) {
  run_model(state, verif::ModelKind::kRtl, /*memoize=*/true,
            sim::KernelKind::kInterp);
}
// Node-level sparse harness: the RTL node with RegisterDecoder targets,
// driven by a minimal directed FSM per initiator that issues one 4-byte
// store every `period` cycles and sits on a bare counter in between. No
// BFMs — their per-cycle bookkeeping (RNG draws, response matching) costs
// the same under every kernel and would flatten the ratio this benchmark
// exists to measure: the kernel's own per-cycle scheduling cost on a
// mostly-idle model.
void run_rtl_node_sparse(benchmark::State& state, sim::KernelKind kernel,
                         bool profile = false) {
  const int n_init = static_cast<int>(state.range(0));
  const int n_targ = static_cast<int>(state.range(1));
  const int period = static_cast<int>(state.range(2));
  constexpr int kCycles = 20000;

  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  std::uint64_t skipped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Context ctx;
    ctx.set_kernel(kernel);
    ctx.set_profiling(profile);
    stbus::NodeConfig cfg = make_cfg(n_init, n_targ, 4);
    cfg.validate_and_normalize();
    std::vector<std::unique_ptr<stbus::PortPins>> ipins;
    std::vector<std::unique_ptr<stbus::PortPins>> tpins;
    std::vector<stbus::PortPins*> ip;
    std::vector<stbus::PortPins*> tp;
    for (int i = 0; i < n_init; ++i) {
      ipins.push_back(std::make_unique<stbus::PortPins>(
          ctx, "i" + std::to_string(i), cfg));
      ip.push_back(ipins.back().get());
    }
    for (int t = 0; t < n_targ; ++t) {
      tpins.push_back(std::make_unique<stbus::PortPins>(
          ctx, "t" + std::to_string(t), cfg));
      tp.push_back(tpins.back().get());
    }
    rtl::Node node(ctx, cfg, ip, tp);
    std::vector<std::unique_ptr<rtl::RegisterDecoder>> decoders;
    for (int t = 0; t < n_targ; ++t) {
      decoders.push_back(std::make_unique<rtl::RegisterDecoder>(
          ctx, "dec" + std::to_string(t), *tp[static_cast<std::size_t>(t)],
          cfg.type, cfg.address_map[static_cast<std::size_t>(t)].base, 16));
    }

    struct Stim {
      int countdown = 0;
      int phase = 0;  // 0 = idle countdown, 1 = requesting, 2 = await rsp
      std::size_t idx = 0;
      std::vector<stbus::RequestCell> cells;
    };
    auto stims = std::make_shared<std::vector<Stim>>(
        static_cast<std::size_t>(n_init));
    for (int i = 0; i < n_init; ++i) {
      Stim& s = (*stims)[static_cast<std::size_t>(i)];
      stbus::Request req;
      req.opc = stbus::Opcode::kSt4;
      req.add = cfg.address_map[static_cast<std::size_t>(i % n_targ)].base;
      req.wdata = {1, 2, 3, 4};
      req.src = static_cast<std::uint8_t>(i);
      s.cells = stbus::build_request(req, cfg.bus_bytes, cfg.type);
      s.countdown = 1 + period * (i + 1) / n_init;  // staggered phases
      ip[static_cast<std::size_t>(i)]->r_gnt.write(true);
      ctx.add_clocked(
          "stim" + std::to_string(i),
          [stims, i, pins = ip[static_cast<std::size_t>(i)], period] {
            Stim& st = (*stims)[static_cast<std::size_t>(i)];
            switch (st.phase) {
              case 0:
                if (--st.countdown > 0) return;  // dead cycle: one decrement
                st.idx = 0;
                pins->drive_request(st.cells[0]);
                st.phase = 1;
                return;
              case 1:
                if (!pins->request_fires()) return;
                if (++st.idx < st.cells.size()) {
                  pins->drive_request(st.cells[st.idx]);
                } else {
                  pins->idle_request();
                  st.phase = 2;
                }
                return;
              default:
                if (pins->response_fires() && pins->r_eop.read()) {
                  st.phase = 0;
                  st.countdown = period;
                }
                return;
            }
          });
    }
    ctx.initialize();
    state.ResumeTiming();

    ctx.step(kCycles);
    benchmark::DoNotOptimize(ctx.cycle());
    cycles += kCycles;
    evals += ctx.evaluations();
    skipped += ctx.sched_skipped_evaluations();
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["evals_per_cycle"] =
      cycles > 0 ? static_cast<double>(evals) / static_cast<double>(cycles)
                 : 0.0;
  state.counters["skipped_per_cycle"] =
      cycles > 0 ? static_cast<double>(skipped) / static_cast<double>(cycles)
                 : 0.0;
}

void BM_RtlSparse(benchmark::State& state) {
  run_rtl_node_sparse(state, sim::KernelKind::kCompiled);
}
void BM_RtlSparseInterp(benchmark::State& state) {
  run_rtl_node_sparse(state, sim::KernelKind::kInterp);
}
void BM_BcaWrappedSparse(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBcaWrapped, /*memoize=*/true,
            sim::KernelKind::kCompiled, /*sparse=*/true);
}
void BM_BcaWrappedSparseInterp(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBcaWrapped, /*memoize=*/true,
            sim::KernelKind::kInterp, /*sparse=*/true);
}

void shapes(benchmark::internal::Benchmark* b) {
  b->Args({2, 2, 4})->Args({4, 4, 4})->Args({8, 4, 4})->Args({4, 4, 16});
  b->Unit(benchmark::kMillisecond);
}

void sparse_shapes(benchmark::internal::Benchmark* b) {
  b->Args({2, 2, 4})->Args({4, 4, 4});
  b->Unit(benchmark::kMillisecond);
}

// (n_init, n_targ, period): one store transaction per initiator every
// `period` cycles; larger period = sparser activity.
void rtl_sparse_shapes(benchmark::internal::Benchmark* b) {
  b->Args({2, 2, 400})->Args({4, 4, 800})->Args({2, 2, 20000});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Bca)->Apply(shapes);
BENCHMARK(BM_BcaNoMemo)->Apply(shapes);
BENCHMARK(BM_BcaMetricsEnabled)->Apply(shapes);
BENCHMARK(BM_Rtl)->Apply(shapes);
BENCHMARK(BM_RtlInterp)->Apply(shapes);
BENCHMARK(BM_BcaWrapped)->Apply(shapes);
BENCHMARK(BM_RtlSparse)->Apply(rtl_sparse_shapes);
BENCHMARK(BM_RtlSparseInterp)->Apply(rtl_sparse_shapes);

// Profiler overhead guard (DESIGN.md §15): the same sparse node harness
// with the kernel hotspot profiler off vs on. The disabled run must track
// BM_RtlSparse within noise — every collection site is one well-predicted
// branch, and the <2% obs overhead budget covers it. The enabled run pays
// two monotonic-clock reads per process evaluation; on this sparse shape
// most scheduling slots are skips (a counter bump), so the gap bounds the
// worst case, not the typical one.
void BM_ProfilerDisabled(benchmark::State& state) {
  run_rtl_node_sparse(state, sim::KernelKind::kCompiled, /*profile=*/false);
}
void BM_ProfilerEnabled(benchmark::State& state) {
  run_rtl_node_sparse(state, sim::KernelKind::kCompiled, /*profile=*/true);
}
BENCHMARK(BM_ProfilerDisabled)->Apply(rtl_sparse_shapes);
BENCHMARK(BM_ProfilerEnabled)->Apply(rtl_sparse_shapes);

// Txn-tracer overhead guard (DESIGN.md §16): the full monitored testbench
// with transaction-lifecycle tracing off vs on. With the option off no
// tracer, taps or hooks exist at all — the disabled run must track a plain
// monitored run within noise (the <2% obs overhead budget, EXPERIMENTS.md).
// The enabled run pays one tap callback per completed packet and one hook
// call per issued request — per-transaction, never per-cycle — so the gap
// stays bounded even under dense traffic.
void run_txn_model(benchmark::State& state, bool traced) {
  const int n_init = static_cast<int>(state.range(0));
  const int n_targ = static_cast<int>(state.range(1));
  const int bus = static_cast<int>(state.range(2));

  std::uint64_t cycles = 0;
  std::uint64_t spans = 0;
  for (auto _ : state) {
    state.PauseTiming();
    verif::TestSpec spec = verif::t07_target_contention();
    spec.n_transactions = 200;
    verif::TestbenchOptions opts;
    opts.model = verif::ModelKind::kRtl;
    opts.seed = 3;
    // Monitors are the tracer's substrate and stay on in both runs; the
    // other verification components cost the same either way and are left
    // out so the tap overhead isn't diluted.
    opts.enable_checkers = false;
    opts.enable_scoreboard = false;
    opts.enable_coverage = false;
    opts.enable_reference_model = false;
    opts.txn_trace = traced;
    verif::Testbench tb(make_cfg(n_init, n_targ, bus), spec, opts);
    state.ResumeTiming();

    verif::RunResult r = tb.run();
    benchmark::DoNotOptimize(r.cycles);
    cycles += r.cycles;
    spans += r.txn.total_spans();
    if (!r.completed) state.SkipWithError("run failed");
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["spans_per_s"] = benchmark::Counter(
      static_cast<double>(spans), benchmark::Counter::kIsRate);
}
void BM_TxnTracerDisabled(benchmark::State& state) {
  run_txn_model(state, /*traced=*/false);
}
void BM_TxnTracerEnabled(benchmark::State& state) {
  run_txn_model(state, /*traced=*/true);
}
BENCHMARK(BM_TxnTracerDisabled)->Apply(sparse_shapes);
BENCHMARK(BM_TxnTracerEnabled)->Apply(sparse_shapes);
BENCHMARK(BM_BcaWrappedSparse)->Apply(sparse_shapes);
BENCHMARK(BM_BcaWrappedSparseInterp)->Apply(sparse_shapes);

// Long sparse trace through the full tracer stack (VCD writer + toggle
// coverage): `n_signals` registered signals, only `n_active` of them
// written per cycle. The change-driven kernel hands tracers just the
// changed indices, so the per-cycle tracing cost scales with n_active, not
// n_signals — the fast path this PR introduced. Before it, every tracer
// materialized a string per signal per cycle.
void BM_TracedSimSparse(benchmark::State& state) {
  const int n_signals = static_cast<int>(state.range(0));
  const int n_active = static_cast<int>(state.range(1));
  constexpr int kCycles = 5000;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Context ctx;
    std::vector<std::unique_ptr<sim::SignalU64>> sigs;
    sigs.reserve(static_cast<std::size_t>(n_signals));
    for (int i = 0; i < n_signals; ++i) {
      sigs.push_back(std::make_unique<sim::SignalU64>(
          ctx, "tb.s" + std::to_string(i), 16));
    }
    ctx.add_clocked("drv", [&] {
      // A rotating window of n_active signals changes each cycle.
      const auto c = ctx.cycle();
      for (int k = 0; k < n_active; ++k) {
        auto& s = *sigs[static_cast<std::size_t>(
            (c * static_cast<std::uint64_t>(n_active) +
             static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(n_signals))];
        s.write(s.read() + 1);
      }
    });
    std::ostringstream os;
    vcd::Writer w(os);
    verif::ToggleCoverage tc;
    ctx.attach_tracer(&w);
    ctx.attach_tracer(&tc);
    state.ResumeTiming();

    ctx.step(kCycles);
    w.finish();
    benchmark::DoNotOptimize(os.tellp());
    benchmark::DoNotOptimize(tc.percent());
    cycles += kCycles;
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["signals"] = static_cast<double>(n_signals);
  state.counters["active_per_cycle"] = static_cast<double>(n_active);
}

BENCHMARK(BM_TracedSimSparse)
    ->Args({200, 2})
    ->Args({200, 50})
    ->Args({1000, 2})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

// The zero-cost guarantee measured directly: with collection disabled (the
// process default) one counter update, one histogram observe and one span
// guard together should take a few nanoseconds — each is a relaxed atomic
// load and a branch. Compare against BM_ObsEnabledOps for the enabled cost
// (a thread-local lookup and a plain add).
void BM_ObsDisabledOps(benchmark::State& state) {
  auto c = obs::counter("bench.ops");
  auto h = obs::histogram("bench.ops_h");
  std::uint64_t i = 0;
  for (auto _ : state) {
    c.inc();
    h.observe(i++);
    CRVE_SPAN("bench_ops");
  }
}
BENCHMARK(BM_ObsDisabledOps);

void BM_ObsEnabledOps(benchmark::State& state) {
  obs::registry().reset();
  obs::set_metrics_enabled(true);
  auto c = obs::counter("bench.ops");
  auto h = obs::histogram("bench.ops_h");
  std::uint64_t i = 0;
  for (auto _ : state) {
    c.inc();
    h.observe(i++);
  }
  obs::set_metrics_enabled(false);
  obs::registry().reset();
}
BENCHMARK(BM_ObsEnabledOps);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== C5/F3: simulation speed, BCA vs RTL vs BCA-behind-wrappers ==\n"
      "Expected shape (paper): BCA fastest; RTL slower; wrapped BCA loses\n"
      "the BCA advantage (compare cycles_per_s).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
