// C5/F3 — simulation speed of the two model views.
//
// Paper claims reproduced here:
//   * "The fast simulation of BCA models permits to fast find the optimized
//     configuration" — the BCA view simulates markedly faster than the RTL
//     view on the same traffic;
//   * "since VHDL simulator is used, the advantage of having fast SystemC
//     simulator is lost" (Fig. 3) — plugging the BCA model through the
//     wrapper layer erases that advantage.
//
// Reported counters: cycles/s (rate) and kernel process evaluations per
// cycle (the work metric that explains the rate).
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "vcd/writer.h"
#include "verif/testbench.h"
#include "verif/tests.h"
#include "verif/toggle_coverage.h"

namespace {

using namespace crve;

stbus::NodeConfig make_cfg(int n_init, int n_targ, int bus_bytes) {
  stbus::NodeConfig cfg;
  cfg.n_initiators = n_init;
  cfg.n_targets = n_targ;
  cfg.bus_bytes = bus_bytes;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

void run_model(benchmark::State& state, verif::ModelKind model,
               bool memoize = true) {
  const int n_init = static_cast<int>(state.range(0));
  const int n_targ = static_cast<int>(state.range(1));
  const int bus = static_cast<int>(state.range(2));

  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    verif::TestSpec spec = verif::t07_target_contention();
    spec.profile = [](const stbus::NodeConfig& cfg, int) {
      verif::InitiatorProfile p;
      p.windows = {cfg.address_map.front()};
      p.windows.front().size = 0x1000;
      p.idle_permille = 0;
      p.max_size_bytes = 8;
      return p;
    };
    spec.n_transactions = 200;
    verif::TestbenchOptions opts;
    opts.model = model;
    opts.seed = 3;
    // The paper compares *model* simulation speed; checkers/scoreboard/
    // coverage cost the same on every view, so they are left out here.
    opts.enable_checkers = false;
    opts.enable_scoreboard = false;
    opts.enable_coverage = false;
    opts.enable_monitors = false;
    opts.enable_reference_model = false;
    opts.bca_memoization = memoize;
    verif::Testbench tb(make_cfg(n_init, n_targ, bus), spec, opts);
    state.ResumeTiming();

    const verif::RunResult r = tb.run();
    benchmark::DoNotOptimize(r.cycles);
    cycles += r.cycles;
    evals += r.evaluations;
    if (!r.completed) state.SkipWithError("run failed");
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["evals_per_cycle"] =
      cycles > 0 ? static_cast<double>(evals) / static_cast<double>(cycles)
                 : 0.0;
}

void BM_Rtl(benchmark::State& state) {
  run_model(state, verif::ModelKind::kRtl);
}
void BM_Bca(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBca);
}
void BM_BcaWrapped(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBcaWrapped);
}
// Ablation: the BCA view with its sensitivity-list memoization disabled —
// quantifies how much of the BCA advantage that single design choice buys.
void BM_BcaNoMemo(benchmark::State& state) {
  run_model(state, verif::ModelKind::kBca, /*memoize=*/false);
}
// Observability guard: the same BCA runs with metrics collection enabled.
// The kernel keeps its counters as plain members and publishes once per
// run, so the gap to BM_Bca should be noise (<2%); a larger gap means
// someone put an obs call into a per-cycle path.
void BM_BcaMetricsEnabled(benchmark::State& state) {
  obs::registry().reset();
  obs::set_metrics_enabled(true);
  run_model(state, verif::ModelKind::kBca);
  obs::set_metrics_enabled(false);
  obs::registry().reset();
}

void shapes(benchmark::internal::Benchmark* b) {
  b->Args({2, 2, 4})->Args({4, 4, 4})->Args({8, 4, 4})->Args({4, 4, 16});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Bca)->Apply(shapes);
BENCHMARK(BM_BcaNoMemo)->Apply(shapes);
BENCHMARK(BM_BcaMetricsEnabled)->Apply(shapes);
BENCHMARK(BM_Rtl)->Apply(shapes);
BENCHMARK(BM_BcaWrapped)->Apply(shapes);

// Long sparse trace through the full tracer stack (VCD writer + toggle
// coverage): `n_signals` registered signals, only `n_active` of them
// written per cycle. The change-driven kernel hands tracers just the
// changed indices, so the per-cycle tracing cost scales with n_active, not
// n_signals — the fast path this PR introduced. Before it, every tracer
// materialized a string per signal per cycle.
void BM_TracedSimSparse(benchmark::State& state) {
  const int n_signals = static_cast<int>(state.range(0));
  const int n_active = static_cast<int>(state.range(1));
  constexpr int kCycles = 5000;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Context ctx;
    std::vector<std::unique_ptr<sim::SignalU64>> sigs;
    sigs.reserve(static_cast<std::size_t>(n_signals));
    for (int i = 0; i < n_signals; ++i) {
      sigs.push_back(std::make_unique<sim::SignalU64>(
          ctx, "tb.s" + std::to_string(i), 16));
    }
    ctx.add_clocked("drv", [&] {
      // A rotating window of n_active signals changes each cycle.
      const auto c = ctx.cycle();
      for (int k = 0; k < n_active; ++k) {
        auto& s = *sigs[static_cast<std::size_t>(
            (c * static_cast<std::uint64_t>(n_active) +
             static_cast<std::uint64_t>(k)) %
            static_cast<std::uint64_t>(n_signals))];
        s.write(s.read() + 1);
      }
    });
    std::ostringstream os;
    vcd::Writer w(os);
    verif::ToggleCoverage tc;
    ctx.attach_tracer(&w);
    ctx.attach_tracer(&tc);
    state.ResumeTiming();

    ctx.step(kCycles);
    w.finish();
    benchmark::DoNotOptimize(os.tellp());
    benchmark::DoNotOptimize(tc.percent());
    cycles += kCycles;
  }
  state.counters["cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["signals"] = static_cast<double>(n_signals);
  state.counters["active_per_cycle"] = static_cast<double>(n_active);
}

BENCHMARK(BM_TracedSimSparse)
    ->Args({200, 2})
    ->Args({200, 50})
    ->Args({1000, 2})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

// The zero-cost guarantee measured directly: with collection disabled (the
// process default) one counter update, one histogram observe and one span
// guard together should take a few nanoseconds — each is a relaxed atomic
// load and a branch. Compare against BM_ObsEnabledOps for the enabled cost
// (a thread-local lookup and a plain add).
void BM_ObsDisabledOps(benchmark::State& state) {
  auto c = obs::counter("bench.ops");
  auto h = obs::histogram("bench.ops_h");
  std::uint64_t i = 0;
  for (auto _ : state) {
    c.inc();
    h.observe(i++);
    CRVE_SPAN("bench_ops");
  }
}
BENCHMARK(BM_ObsDisabledOps);

void BM_ObsEnabledOps(benchmark::State& state) {
  obs::registry().reset();
  obs::set_metrics_enabled(true);
  auto c = obs::counter("bench.ops");
  auto h = obs::histogram("bench.ops_h");
  std::uint64_t i = 0;
  for (auto _ : state) {
    c.inc();
    h.observe(i++);
  }
  obs::set_metrics_enabled(false);
  obs::registry().reset();
}
BENCHMARK(BM_ObsEnabledOps);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== C5/F3: simulation speed, BCA vs RTL vs BCA-behind-wrappers ==\n"
      "Expected shape (paper): BCA fastest; RTL slower; wrapped BCA loses\n"
      "the BCA advantage (compare cycles_per_s).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
