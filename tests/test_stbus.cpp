// Unit tests for the protocol layer: opcodes, configuration, packets.
#include <gtest/gtest.h>

#include "stbus/config.h"
#include "stbus/opcode.h"
#include "stbus/packet.h"

namespace crve::stbus {
namespace {

TEST(Opcode, SizesAndKinds) {
  EXPECT_EQ(size_bytes(Opcode::kLd1), 1);
  EXPECT_EQ(size_bytes(Opcode::kLd64), 64);
  EXPECT_EQ(size_bytes(Opcode::kSt16), 16);
  EXPECT_EQ(size_bytes(Opcode::kRmw4), 4);
  EXPECT_TRUE(is_load(Opcode::kLd8));
  EXPECT_FALSE(is_load(Opcode::kSt8));
  EXPECT_TRUE(is_store(Opcode::kSt32));
  EXPECT_TRUE(is_atomic(Opcode::kSwap4));
  EXPECT_FALSE(is_atomic(Opcode::kLd4));
}

TEST(Opcode, OfSizeFactories) {
  for (int s = 1; s <= 64; s *= 2) {
    EXPECT_EQ(size_bytes(load_of_size(s)), s);
    EXPECT_EQ(size_bytes(store_of_size(s)), s);
  }
  EXPECT_THROW(load_of_size(3), std::invalid_argument);
  EXPECT_THROW(store_of_size(128), std::invalid_argument);
}

TEST(Opcode, Names) {
  EXPECT_EQ(to_string(Opcode::kLd16), "LD16");
  EXPECT_EQ(to_string(Opcode::kSt1), "ST1");
  EXPECT_EQ(to_string(Opcode::kRmw4), "RMW4");
  EXPECT_EQ(to_string(RspOpcode::kError), "ERROR");
}

TEST(NodeConfig, DefaultsNormalize) {
  NodeConfig cfg;
  cfg.n_initiators = 4;
  cfg.n_targets = 3;
  cfg.validate_and_normalize();
  EXPECT_EQ(cfg.address_map.size(), 3u);
  EXPECT_EQ(cfg.priorities.size(), 4u);
  EXPECT_EQ(cfg.latency_deadline.size(), 4u);
  EXPECT_EQ(cfg.bandwidth_quota.size(), 4u);
}

TEST(NodeConfig, Validation) {
  NodeConfig cfg;
  cfg.n_initiators = 0;
  EXPECT_THROW(cfg.validate_and_normalize(), std::invalid_argument);
  cfg.n_initiators = 33;
  EXPECT_THROW(cfg.validate_and_normalize(), std::invalid_argument);
  cfg.n_initiators = 2;
  cfg.bus_bytes = 3;
  EXPECT_THROW(cfg.validate_and_normalize(), std::invalid_argument);
  cfg.bus_bytes = 64;
  EXPECT_THROW(cfg.validate_and_normalize(), std::invalid_argument);
  cfg.bus_bytes = 4;
  cfg.type = ProtocolType::kType1;
  EXPECT_THROW(cfg.validate_and_normalize(), std::invalid_argument);
}

TEST(NodeConfig, Routing) {
  NodeConfig cfg;
  cfg.n_targets = 2;
  cfg.address_map = {{0x1000, 0x100, 0}, {0x2000, 0x100, 1}};
  cfg.validate_and_normalize();
  EXPECT_EQ(cfg.route(0x1000), 0);
  EXPECT_EQ(cfg.route(0x10ff), 0);
  EXPECT_EQ(cfg.route(0x1100), -1);
  EXPECT_EQ(cfg.route(0x2050), 1);
  EXPECT_EQ(cfg.route(0), -1);
}

TEST(NodeConfig, Resources) {
  NodeConfig cfg;
  cfg.n_targets = 4;
  cfg.arch = Architecture::kSharedBus;
  cfg.validate_and_normalize();
  EXPECT_EQ(cfg.num_resources(), 1);
  EXPECT_EQ(cfg.resource_of_target(3), 0);

  cfg.arch = Architecture::kFullCrossbar;
  EXPECT_EQ(cfg.num_resources(), 4);
  EXPECT_EQ(cfg.resource_of_target(3), 3);

  cfg.arch = Architecture::kPartialCrossbar;
  cfg.xbar_group.clear();
  cfg.validate_and_normalize();  // default pairs
  EXPECT_EQ(cfg.num_resources(), 2);
  EXPECT_EQ(cfg.resource_of_target(0), cfg.resource_of_target(1));
  EXPECT_NE(cfg.resource_of_target(1), cfg.resource_of_target(2));
}

TEST(NodeConfig, SparseXbarGroupsRemappedDense) {
  // Regression (found by fuzzing): sparse group ids must not index past the
  // per-resource arrays.
  NodeConfig cfg;
  cfg.n_targets = 5;
  cfg.arch = Architecture::kPartialCrossbar;
  cfg.xbar_group = {3, 3, 4, 4, 2};
  cfg.validate_and_normalize();
  EXPECT_EQ(cfg.num_resources(), 3);
  EXPECT_EQ(cfg.xbar_group, (std::vector<int>{1, 1, 2, 2, 0}));
  for (int t = 0; t < 5; ++t) {
    EXPECT_LT(cfg.resource_of_target(t), cfg.num_resources());
  }
}

TEST(Packet, CellCountsType2) {
  EXPECT_EQ(request_cells(Opcode::kLd16, 4, ProtocolType::kType2), 4);
  EXPECT_EQ(response_cells(Opcode::kLd16, 4, ProtocolType::kType2), 4);
  EXPECT_EQ(request_cells(Opcode::kSt16, 4, ProtocolType::kType2), 4);
  EXPECT_EQ(response_cells(Opcode::kSt16, 4, ProtocolType::kType2), 4);
  EXPECT_EQ(request_cells(Opcode::kLd1, 4, ProtocolType::kType2), 1);
}

TEST(Packet, CellCountsType3Asymmetric) {
  EXPECT_EQ(request_cells(Opcode::kLd16, 4, ProtocolType::kType3), 1);
  EXPECT_EQ(response_cells(Opcode::kLd16, 4, ProtocolType::kType3), 4);
  EXPECT_EQ(request_cells(Opcode::kSt16, 4, ProtocolType::kType3), 4);
  EXPECT_EQ(response_cells(Opcode::kSt16, 4, ProtocolType::kType3), 1);
}

TEST(Packet, AtomicsSingleCell) {
  for (auto t : {ProtocolType::kType2, ProtocolType::kType3}) {
    EXPECT_EQ(request_cells(Opcode::kRmw4, 8, t), 1);
    EXPECT_EQ(response_cells(Opcode::kSwap4, 8, t), 1);
  }
}

TEST(Packet, ByteEnablesSubBus) {
  const Bits be = byte_enables(Opcode::kLd2, 0x1006, 8, 0);
  EXPECT_EQ(be.width(), 8);
  EXPECT_FALSE(be.bit(5));
  EXPECT_TRUE(be.bit(6));
  EXPECT_TRUE(be.bit(7));
}

TEST(Packet, ByteEnablesHighAddresses) {
  // Addresses above INT_MAX must not wrap the lane computation (regression:
  // decode-error windows live at 0xF0000000).
  const Bits be = byte_enables(Opcode::kLd1, 0xf00077f1u, 4, 0);
  EXPECT_TRUE(be.bit(1));
  EXPECT_FALSE(be.bit(0));
  Request req;
  req.opc = Opcode::kSt2;
  req.add = 0xf0007702u;
  req.wdata = {0xaa, 0xbb};
  const auto cells = build_request(req, 4, ProtocolType::kType2);
  EXPECT_EQ(cells[0].data.byte(2), 0xaa);
  EXPECT_EQ(extract_request_data(Opcode::kSt2, req.add, cells, 4), req.wdata);
}

TEST(Packet, ByteEnablesFullBus) {
  EXPECT_EQ(byte_enables(Opcode::kLd8, 0x1000, 8, 0), Bits::all_ones(8));
  EXPECT_EQ(byte_enables(Opcode::kLd32, 0x1000, 8, 3), Bits::all_ones(8));
}

TEST(Packet, Alignment) {
  EXPECT_TRUE(aligned(Opcode::kLd4, 0x1004));
  EXPECT_FALSE(aligned(Opcode::kLd4, 0x1002));
  EXPECT_TRUE(aligned(Opcode::kLd64, 0x1040));
  EXPECT_FALSE(aligned(Opcode::kLd64, 0x1020));
  EXPECT_TRUE(aligned(Opcode::kLd1, 0x1003));
}

TEST(Packet, BuildRequestStoreMultiCell) {
  Request req;
  req.opc = Opcode::kSt8;
  req.add = 0x100;
  req.wdata = {1, 2, 3, 4, 5, 6, 7, 8};
  req.src = 3;
  req.tid = 9;
  const auto cells = build_request(req, 4, ProtocolType::kType2);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].add, 0x100u);
  EXPECT_EQ(cells[1].add, 0x104u);
  EXPECT_FALSE(cells[0].eop);
  EXPECT_TRUE(cells[0].lck);  // mid-packet holds allocation
  EXPECT_TRUE(cells[1].eop);
  EXPECT_FALSE(cells[1].lck);
  EXPECT_EQ(cells[0].data.byte(0), 1);
  EXPECT_EQ(cells[1].data.byte(3), 8);
  EXPECT_EQ(cells[0].src, 3);
  EXPECT_EQ(cells[1].tid, 9);
}

TEST(Packet, BuildRequestSubBusLanePlacement) {
  Request req;
  req.opc = Opcode::kSt2;
  req.add = 0x106;  // lanes 6,7 of an 8-byte bus
  req.wdata = {0xaa, 0xbb};
  const auto cells = build_request(req, 8, ProtocolType::kType2);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].data.byte(6), 0xaa);
  EXPECT_EQ(cells[0].data.byte(7), 0xbb);
  EXPECT_TRUE(cells[0].be.bit(6));
  EXPECT_FALSE(cells[0].be.bit(0));
}

TEST(Packet, BuildRequestChunkFlagOnEop) {
  Request req;
  req.opc = Opcode::kSt8;
  req.add = 0;
  req.wdata.assign(8, 0);
  req.lck = true;
  const auto cells = build_request(req, 4, ProtocolType::kType2);
  EXPECT_TRUE(cells.back().eop);
  EXPECT_TRUE(cells.back().lck);  // chunk continues past the packet
}

TEST(Packet, BuildRequestValidatesData) {
  Request req;
  req.opc = Opcode::kSt4;
  req.wdata = {1, 2};  // wrong size
  EXPECT_THROW(build_request(req, 4, ProtocolType::kType2),
               std::invalid_argument);
}

TEST(Packet, ResponseRoundTripLoad) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 16; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const auto cells = build_response(Opcode::kLd16, 0x200, data,
                                    RspOpcode::kOk, 4, ProtocolType::kType2,
                                    1, 2);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_TRUE(cells.back().eop);
  const auto back = extract_response_data(Opcode::kLd16, 0x200, cells, 4);
  EXPECT_EQ(back, data);
}

TEST(Packet, ResponseSubBusLanes) {
  const std::vector<std::uint8_t> data = {0x42};
  const auto cells = build_response(Opcode::kLd1, 0x203, data, RspOpcode::kOk,
                                    4, ProtocolType::kType2, 0, 0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].data.byte(3), 0x42);
  const auto back = extract_response_data(Opcode::kLd1, 0x203, cells, 4);
  EXPECT_EQ(back, data);
}

TEST(Packet, RequestDataRoundTrip) {
  Request req;
  req.opc = Opcode::kSt32;
  req.add = 0x400;
  for (int i = 0; i < 32; ++i) {
    req.wdata.push_back(static_cast<std::uint8_t>(i * 3));
  }
  const auto cells = build_request(req, 8, ProtocolType::kType3);
  const auto back = extract_request_data(Opcode::kSt32, 0x400, cells, 8);
  EXPECT_EQ(back, req.wdata);
}

// Property sweep: every (opcode, bus width, type) combination round-trips
// data and produces consistent cell counts.
struct PacketParam {
  Opcode opc;
  int bus;
  ProtocolType type;
};

class PacketSweep : public ::testing::TestWithParam<PacketParam> {};

TEST_P(PacketSweep, BuildMatchesDeclaredCounts) {
  const auto [opc, bus, type] = GetParam();
  Request req;
  req.opc = opc;
  req.add = 0x10000;  // aligned for every size
  const int size = size_bytes(opc);
  if (is_store(opc) || is_atomic(opc)) {
    for (int i = 0; i < size; ++i) {
      req.wdata.push_back(static_cast<std::uint8_t>(i ^ 0x5a));
    }
  }
  if (is_atomic(opc) && size > bus) {
    // Atomics may not straddle beats; builders must reject them.
    EXPECT_THROW(build_request(req, bus, type), std::invalid_argument);
    return;
  }
  const auto cells = build_request(req, bus, type);
  EXPECT_EQ(static_cast<int>(cells.size()), request_cells(opc, bus, type));
  EXPECT_TRUE(cells.back().eop);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_FALSE(cells[i].eop);
    EXPECT_TRUE(cells[i].lck);
  }
  if (!req.wdata.empty()) {
    EXPECT_EQ(extract_request_data(opc, req.add, cells, bus), req.wdata);
  }
  // Response round-trip.
  std::vector<std::uint8_t> rdata;
  if (is_load(opc) || is_atomic(opc)) {
    for (int i = 0; i < size; ++i) {
      rdata.push_back(static_cast<std::uint8_t>(i + 1));
    }
  }
  const auto rsp = build_response(opc, req.add, rdata, RspOpcode::kOk, bus,
                                  type, 0, 0);
  EXPECT_EQ(static_cast<int>(rsp.size()), response_cells(opc, bus, type));
  if (!rdata.empty()) {
    EXPECT_EQ(extract_response_data(opc, req.add, rsp, bus), rdata);
  }
}

std::vector<PacketParam> packet_params() {
  std::vector<PacketParam> out;
  for (int o = 0; o < kNumOpcodes; ++o) {
    for (int bus : {1, 4, 8, 32}) {
      for (auto t : {ProtocolType::kType2, ProtocolType::kType3}) {
        out.push_back({static_cast<Opcode>(o), bus, t});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllShapes, PacketSweep,
                         ::testing::ValuesIn(packet_params()));

}  // namespace
}  // namespace crve::stbus
