// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace crve {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reached
}

TEST(Rng, RangeSingleValue) {
  Rng r(7);
  EXPECT_EQ(r.range(9, 9), 9u);
}

TEST(Rng, RangeRejectsInverted) {
  Rng r(7);
  EXPECT_THROW(r.range(2, 1), std::invalid_argument);
}

TEST(Rng, IndexCoversAll) {
  Rng r(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.chance(10, 10));
    EXPECT_FALSE(r.chance(0, 10));
  }
  EXPECT_THROW(r.chance(1, 0), std::invalid_argument);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.chance(250, 1000)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng r(9);
  const std::uint32_t w[] = {0, 5, 0, 5};
  for (int i = 0; i < 200; ++i) {
    const int pick = r.weighted(w);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng r(9);
  const std::uint32_t w[] = {0, 0};
  EXPECT_THROW(r.weighted(w), std::invalid_argument);
}

TEST(Rng, WeightedProportions) {
  Rng r(13);
  const std::uint32_t w[] = {1, 3};
  int ones = 0;
  for (int i = 0; i < 8000; ++i) {
    if (r.weighted(w) == 1) ++ones;
  }
  EXPECT_NEAR(ones, 6000, 300);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng master(21);
  Rng a = master.fork();
  Rng b = master.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng m1(21), m2(21);
  Rng f1 = m1.fork(), f2 = m2.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

}  // namespace
}  // namespace crve
