// Hierarchical dual-view verification: the Fig.-1 interconnect (two nodes,
// a t2/t3 type converter, a 64/32 size converter) is built twice — once
// from RTL-view IPs, once from BCA-view IPs — driven with identical seeds,
// and the STBA alignment comparison must hold at every external port.
// This exercises environment reuse beyond a single node, across composed
// components.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "bca/bridge.h"
#include "bca/node.h"
#include "common/rng.h"
#include "rtl/node.h"
#include "rtl/size_converter.h"
#include "rtl/type_converter.h"
#include "stba/analyzer.h"
#include "vcd/writer.h"
#include "verif/bfm_initiator.h"
#include "verif/bfm_target.h"
#include "verif/protocol_checker.h"

namespace crve {
namespace {

using stbus::AddressRange;
using stbus::NodeConfig;
using stbus::PortPins;
using stbus::ProtocolType;

enum class View { kRtl, kBca };

struct Hierarchy {
  sim::Context ctx;
  std::vector<std::unique_ptr<PortPins>> pins;
  std::vector<std::unique_ptr<verif::InitiatorBfm>> bfms;
  std::vector<std::unique_ptr<verif::TargetBfm>> targets;
  std::vector<std::unique_ptr<verif::ProtocolChecker>> checkers;
  std::unique_ptr<rtl::Node> rtlA, rtlB;
  std::unique_ptr<bca::Node> bcaA, bcaB;
  std::unique_ptr<rtl::SizeConverter> rtl_conv;
  std::unique_ptr<rtl::TypeConverter> rtl_bridge;
  std::unique_ptr<bca::Bridge> bca_conv, bca_bridge;
  std::unique_ptr<vcd::Writer> vcd;

  PortPins& pin(int i) { return *pins[static_cast<std::size_t>(i)]; }
};

// Pin indices in creation order (stable across views -> comparable VCDs).
enum {
  kI0, kI1, kI2, kI3 /*64-bit*/, kI3Dn, kT1, kT2, kBUp, kBDn, kT3, kT4
};

std::unique_ptr<Hierarchy> build(View view, std::ostream* wave,
                                 bca::Faults faults = {}) {
  auto h = std::make_unique<Hierarchy>();
  auto& ctx = h->ctx;

  NodeConfig cfgA;
  cfgA.name = "nodeA";
  cfgA.n_initiators = 4;
  cfgA.n_targets = 3;
  cfgA.bus_bytes = 4;
  cfgA.type = ProtocolType::kType2;
  cfgA.arb = stbus::ArbPolicy::kLru;
  cfgA.address_map = {{0x00000, 0x10000, 0},
                      {0x10000, 0x10000, 1},
                      {0x20000, 0x20000, 2}};
  NodeConfig cfgB;
  cfgB.name = "nodeB";
  cfgB.n_initiators = 1;
  cfgB.n_targets = 2;
  cfgB.bus_bytes = 4;
  cfgB.type = ProtocolType::kType3;
  cfgB.address_map = {{0x20000, 0x10000, 0}, {0x30000, 0x10000, 1}};

  const char* names[] = {"tb.init0", "tb.init1", "tb.init2", "tb.init3",
                         "tb.conv.dn", "tb.targ1", "tb.targ2",
                         "tb.bridge.up", "tb.bridge.dn", "tb.targ3",
                         "tb.targ4"};
  for (int i = 0; i < 11; ++i) {
    const int width = i == kI3 ? 8 : 4;
    h->pins.push_back(std::make_unique<PortPins>(ctx, names[i], width));
  }

  const std::vector<PortPins*> a_iports = {&h->pin(kI0), &h->pin(kI1),
                                           &h->pin(kI2), &h->pin(kI3Dn)};
  const std::vector<PortPins*> a_tports = {&h->pin(kT1), &h->pin(kT2),
                                           &h->pin(kBUp)};
  const std::vector<PortPins*> b_iports = {&h->pin(kBDn)};
  const std::vector<PortPins*> b_tports = {&h->pin(kT3), &h->pin(kT4)};

  if (view == View::kRtl) {
    h->rtl_conv = std::make_unique<rtl::SizeConverter>(
        ctx, "conv", h->pin(kI3), h->pin(kI3Dn), ProtocolType::kType2);
    h->rtl_bridge = std::make_unique<rtl::TypeConverter>(
        ctx, "bridge", h->pin(kBUp), ProtocolType::kType2, h->pin(kBDn),
        ProtocolType::kType3);
    h->rtlA = std::make_unique<rtl::Node>(ctx, cfgA, a_iports, a_tports);
    h->rtlB = std::make_unique<rtl::Node>(ctx, cfgB, b_iports, b_tports);
  } else {
    h->bca_conv = std::make_unique<bca::Bridge>(
        ctx, "conv", h->pin(kI3), ProtocolType::kType2, h->pin(kI3Dn),
        ProtocolType::kType2, faults);
    h->bca_bridge = std::make_unique<bca::Bridge>(
        ctx, "bridge", h->pin(kBUp), ProtocolType::kType2, h->pin(kBDn),
        ProtocolType::kType3, faults);
    h->bcaA = std::make_unique<bca::Node>(ctx, cfgA, a_iports, a_tports,
                                          nullptr, faults);
    h->bcaB = std::make_unique<bca::Node>(ctx, cfgB, b_iports, b_tports,
                                          nullptr, faults);
  }

  // Environment: identical construction order across views.
  Rng master(777);
  verif::InitiatorProfile prof;
  prof.windows = {AddressRange{0x00000, 0x1000, 0},
                  AddressRange{0x10000, 0x1000, 1},
                  AddressRange{0x20000, 0x1000, 0},
                  AddressRange{0x30000, 0x1000, 1}};
  prof.max_size_bytes = 8;
  prof.max_outstanding = 1;
  prof.idle_permille = 150;
  prof.n_transactions = 60;

  const int ext_init[] = {kI0, kI1, kI2, kI3};
  for (int i = 0; i < 4; ++i) {
    h->bfms.push_back(std::make_unique<verif::InitiatorBfm>(
        ctx, "init" + std::to_string(i), h->pin(ext_init[i]),
        ProtocolType::kType2, i, cfgA, prof, master.fork()));
  }
  verif::TargetProfile tp;
  tp.fixed_latency = 1;
  const int tgt_pins[] = {kT1, kT2, kT3, kT4};
  const ProtocolType tgt_type[] = {ProtocolType::kType2, ProtocolType::kType2,
                                   ProtocolType::kType3,
                                   ProtocolType::kType3};
  for (int t = 0; t < 4; ++t) {
    h->targets.push_back(std::make_unique<verif::TargetBfm>(
        ctx, "targ" + std::to_string(t + 1), h->pin(tgt_pins[t]),
        tgt_type[t], tp, master.fork()));
  }
  for (int i = 0; i < 4; ++i) {
    h->checkers.push_back(std::make_unique<verif::ProtocolChecker>(
        ctx, "init" + std::to_string(i), h->pin(ext_init[i]),
        ProtocolType::kType2, verif::ProtocolChecker::Role::kInitiatorPort,
        i));
  }
  if (wave != nullptr) {
    h->vcd = std::make_unique<vcd::Writer>(*wave);
    ctx.attach_tracer(h->vcd.get());
  }
  return h;
}

// Runs to quiescence; returns protocol violations.
std::uint64_t run(Hierarchy& h) {
  h.ctx.initialize();
  while (h.ctx.cycle() < 300000) {
    h.ctx.step();
    bool done = true;
    for (auto& b : h.bfms) done &= b->done();
    for (auto& t : h.targets) done &= t->idle();
    if (done) break;
  }
  h.ctx.step(4);
  std::uint64_t v = 0;
  for (auto& c : h.checkers) {
    c->end_of_test();
    v += c->violation_count();
  }
  return v;
}

std::vector<std::string> external_ports() {
  return {"tb.init0", "tb.init1", "tb.init2", "tb.init3",
          "tb.targ1", "tb.targ2", "tb.targ3", "tb.targ4"};
}

TEST(Hierarchy, BothViewsCleanAndFullyAligned) {
  std::ostringstream wave_rtl, wave_bca;
  auto rtl = build(View::kRtl, &wave_rtl);
  auto bca = build(View::kBca, &wave_bca);
  EXPECT_EQ(run(*rtl), 0u);
  EXPECT_EQ(run(*bca), 0u);
  EXPECT_EQ(rtl->ctx.cycle(), bca->ctx.cycle());

  std::istringstream a(wave_rtl.str()), b(wave_bca.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb = vcd::Trace::parse(b);
  const auto rep = stba::Analyzer::compare(ta, tb, external_ports());
  EXPECT_TRUE(rep.signed_off(0.999999)) << rep.summary();
}

TEST(Hierarchy, ConverterEndiannessBugLocalisedToWideInitiator) {
  std::ostringstream wave_rtl, wave_bca;
  bca::Faults faults;
  faults.size_conv_endianness = true;  // lives in the BCA size converter
  auto rtl = build(View::kRtl, &wave_rtl);
  auto bca = build(View::kBca, &wave_bca, faults);
  EXPECT_EQ(run(*rtl), 0u);
  run(*bca);  // checkers at init3 may or may not fire; data diverges anyway

  std::istringstream a(wave_rtl.str()), b(wave_bca.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb = vcd::Trace::parse(b);
  const auto rep = stba::Analyzer::compare(ta, tb, external_ports());
  EXPECT_FALSE(rep.signed_off()) << rep.summary();
  // The divergence must hit the size-converted initiator port.
  bool init3_diverged = false;
  for (const auto& p : rep.ports) {
    if (p.port == "tb.init3" && p.diverged()) init3_diverged = true;
  }
  EXPECT_TRUE(init3_diverged) << rep.summary();
}

}  // namespace
}  // namespace crve
