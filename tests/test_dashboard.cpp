// The campaign dashboard: a pure function of the campaign result — byte
// identical for any worker count — with drill-down links gated on the
// artifacts actually existing, and all dynamic text HTML-escaped.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "regress/html_report.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace crve {
namespace {

stbus::NodeConfig small_cfg(const std::string& name) {
  stbus::NodeConfig cfg;
  cfg.name = name;
  cfg.n_initiators = 2;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  return cfg;
}

regress::RunPlan small_plan() {
  regress::RunPlan plan;
  plan.tests = {verif::t02_random_all_opcodes()};
  plan.seeds = {1};
  plan.n_transactions = 20;
  return plan;
}

TEST(Dashboard, ByteIdenticalAcrossWorkerCounts) {
  regress::RunPlan base = small_plan();
  const std::vector<stbus::NodeConfig> configs = {small_cfg("node_a"),
                                                  small_cfg("node_b")};
  base.jobs = 1;
  const auto serial = regress::Regression::run_matrix(configs, base);
  base.jobs = 4;
  const auto parallel = regress::Regression::run_matrix(configs, base);
  EXPECT_EQ(regress::html_report(serial), regress::html_report(parallel));
}

TEST(Dashboard, SignedOffCampaignRendersGoodVerdict) {
  const auto mres =
      regress::Regression::run_matrix({small_cfg("node_a")}, small_plan());
  ASSERT_TRUE(mres.all_signed_off) << mres.summary();
  const std::string html = regress::html_report(mres);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("ALL SIGNED OFF"), std::string::npos);
  EXPECT_NE(html.find("<h2>node_a</h2>"), std::string::npos);
  EXPECT_NE(html.find("t02_random_all_opcodes"), std::string::npos);
  EXPECT_NE(html.find("Port alignment"), std::string::npos);
  EXPECT_NE(html.find("tb.init0"), std::string::npos);
  // Build provenance in the header.
  EXPECT_NE(html.find("class=\"build\""), std::string::npos);
  // No external resources: self-contained file.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
}

TEST(Dashboard, FaultedCampaignMarksBreaches) {
  regress::RunPlan base = small_plan();
  base.tests = {verif::t05_chunked_traffic()};
  base.n_transactions = 40;
  base.faults.grant_during_lock = true;
  const auto mres =
      regress::Regression::run_matrix({small_cfg("node_a")}, base);
  ASSERT_FALSE(mres.all_signed_off) << mres.summary();
  const std::string html = regress::html_report(mres);
  EXPECT_NE(html.find("NOT SIGNED OFF"), std::string::npos);
  EXPECT_NE(html.find("breach"), std::string::npos);
  // Link gating is off by default: no dangling drill-down links.
  EXPECT_EQ(html.find("triage_"), std::string::npos);
  EXPECT_EQ(html.find("flight_"), std::string::npos);
}

TEST(Dashboard, DrillDownLinksGatedByOptions) {
  regress::RunPlan base = small_plan();
  base.tests = {verif::t05_chunked_traffic()};
  base.n_transactions = 40;
  base.faults.grant_during_lock = true;
  const auto mres =
      regress::Regression::run_matrix({small_cfg("node_a")}, base);
  ASSERT_FALSE(mres.all_signed_off);

  regress::HtmlOptions opts;
  opts.triage_links = true;
  opts.flight_links = true;
  const std::string html = regress::html_report(mres, nullptr, opts);
  // Breached pair links to its triage artifact, relative to the dashboard.
  EXPECT_NE(
      html.find("href=\"node_a/triage_t05_chunked_traffic_s1.json\""),
      std::string::npos);
  // Failed runs link to their flight-recorder dumps.
  EXPECT_NE(html.find("node_a/flight_t05_chunked_traffic_s1_"),
            std::string::npos);
}

TEST(Dashboard, MetricsSectionOnlyWhenSnapshotGiven) {
  const auto mres =
      regress::Regression::run_matrix({small_cfg("node_a")}, small_plan());
  EXPECT_EQ(regress::html_report(mres).find("Campaign metrics"),
            std::string::npos);

  obs::Registry::Snapshot snap;
  snap.counters.push_back({"stba.compares", 3});
  snap.gauges.push_back({"pool.workers", 4});
  obs::HistogramValue h;
  h.count = 3;
  h.sum = 6;
  h.buckets[1] = 2;  // two values in [2, 4)
  h.buckets[2] = 1;
  snap.histograms.push_back({"run.cycles", h});
  const std::string html = regress::html_report(mres, &snap);
  EXPECT_NE(html.find("Campaign metrics"), std::string::npos);
  EXPECT_NE(html.find("stba.compares"), std::string::npos);
  EXPECT_NE(html.find("pool.workers"), std::string::npos);
  EXPECT_NE(html.find("run.cycles"), std::string::npos);
  EXPECT_NE(html.find("class=\"hist\""), std::string::npos);
}

TEST(Dashboard, DesignHealthPanelOnlyWhenPreflightRan) {
  // Without preflight rows the panel is absent, keeping dashboards from
  // --no-design-lint runs byte-identical to previous releases.
  const auto plain =
      regress::Regression::run_matrix({small_cfg("node_a")}, small_plan());
  EXPECT_EQ(regress::html_report(plain).find("Design health"),
            std::string::npos);

  regress::RunPlan base = small_plan();
  regress::DesignHealth rtl;
  rtl.config = "node_a";
  rtl.view = "RTL";
  rtl.signals = 42;
  rtl.comb_processes = 7;
  rtl.clocked_processes = 9;
  rtl.ranks = 2;
  rtl.max_fanout = 3;
  rtl.max_fanout_signal = "tb.init0.req";
  rtl.notes = 5;
  regress::DesignHealth bca = rtl;
  bca.view = "BCA";
  bca.comb_processes = 1;
  bca.ranks = 1;
  base.design_health = {rtl, bca};
  const auto mres =
      regress::Regression::run_matrix({small_cfg("node_a")}, base);
  const std::string html = regress::html_report(mres);
  EXPECT_NE(html.find("Design health"), std::string::npos);
  EXPECT_NE(html.find("<td>RTL</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>BCA</td>"), std::string::npos);
  EXPECT_NE(html.find("tb.init0.req"), std::string::npos);
  EXPECT_NE(html.find("CRVE100&ndash;CRVE110"), std::string::npos);
}

TEST(Dashboard, DesignHealthPanelByteIdenticalAcrossWorkerCounts) {
  regress::RunPlan base = small_plan();
  regress::DesignHealth row;
  row.config = "node_a";
  row.view = "RTL";
  row.signals = 10;
  row.ranks = 1;
  base.design_health = {row};
  const std::vector<stbus::NodeConfig> configs = {small_cfg("node_a")};
  base.jobs = 1;
  const auto serial = regress::Regression::run_matrix(configs, base);
  base.jobs = 4;
  const auto parallel = regress::Regression::run_matrix(configs, base);
  const std::string a = regress::html_report(serial);
  EXPECT_EQ(a, regress::html_report(parallel));
  EXPECT_NE(a.find("Design health"), std::string::npos);
}

TEST(Dashboard, EscapesMarkupInNames) {
  regress::RunPlan base = small_plan();
  const auto mres = regress::Regression::run_matrix(
      {small_cfg("node<script>&\"x\"")}, base);
  const std::string html = regress::html_report(mres);
  EXPECT_EQ(html.find("node<script>"), std::string::npos);
  EXPECT_NE(html.find("node&lt;script&gt;&amp;&quot;x&quot;"),
            std::string::npos);
}

}  // namespace
}  // namespace crve
