// Kernel hotspot profiler + streaming campaign telemetry (DESIGN.md §15).
//
// The profiler's contract has four load-bearing properties: attribution is
// exact under both kernels (evals/skips/ranks/signal churn), the merge is
// order-independent, the stable JSON section is byte-identical for any
// worker count, and enabling profiling never perturbs anything else — not
// the report, not the cache key. The telemetry stream's contract is that
// every line is one self-contained JSON object bracketed by campaign_start
// and campaign_end, and that failure paths still emit their job_finish and
// preserve flight-recorder forensics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/log.h"
#include "obs/profiler.h"
#include "regress/job_spec.h"
#include "regress/progress.h"
#include "regress/runner.h"
#include "sim/context.h"
#include "sim/signal.h"
#include "verif/tests.h"

namespace crve {
namespace {

namespace fs = std::filesystem;

const obs::ProcProfile* find_proc(const obs::ProfileData& pd,
                                  const std::string& name) {
  for (const auto& p : pd.procs) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

// A three-process pipeline whose counter only changes every 4th cycle, so
// both evaluation and skip accounting are observable: tick (clocked) ->
// decode (rank 0) -> sum (rank 1).
struct SmallCircuit {
  sim::Context ctx;
  sim::SignalU64 cnt{ctx, "cnt", 8};
  sim::SignalU64 dec{ctx, "dec", 8};
  sim::SignalU64 out{ctx, "out", 8};
  std::uint64_t n = 0;

  explicit SmallCircuit(sim::KernelKind kernel, bool profile = true) {
    ctx.set_kernel(kernel);
    ctx.add_clocked("tick", [this] { cnt.write(n++ / 4); });
    ctx.add_comb("decode", [this] { dec.write(cnt.read() * 2); });
    ctx.add_comb("sum", [this] { out.write(dec.read() + 1); });
    ctx.set_profiling(profile);
  }
};

TEST(Profiler, CompiledKernelAttribution) {
  SmallCircuit c(sim::KernelKind::kCompiled);
  c.ctx.step(40);
  const obs::ProfileData pd = c.ctx.profile();

  EXPECT_FALSE(pd.empty());
  EXPECT_EQ(pd.runs, 1u);
  EXPECT_EQ(pd.cycles, 40u);
  ASSERT_EQ(pd.procs.size(), 3u);
  // Sorted by name — the invariant the byte-identical merge rests on.
  EXPECT_EQ(pd.procs[0].name, "decode");
  EXPECT_EQ(pd.procs[1].name, "sum");
  EXPECT_EQ(pd.procs[2].name, "tick");

  const obs::ProcProfile* tick = find_proc(pd, "tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_TRUE(tick->clocked);
  EXPECT_EQ(tick->rank, -1);
  EXPECT_EQ(tick->evals, 40u);
  EXPECT_EQ(tick->skips, 0u);

  // The comb chain is levelized into two ranks; cnt changes 10 times in 40
  // cycles, so most of each process's scheduling slots are skips.
  const obs::ProcProfile* decode = find_proc(pd, "decode");
  const obs::ProcProfile* sum = find_proc(pd, "sum");
  ASSERT_NE(decode, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_FALSE(decode->clocked);
  EXPECT_EQ(decode->rank, 0);
  EXPECT_EQ(sum->rank, 1);
  EXPECT_GT(decode->evals, 0u);
  EXPECT_GT(decode->skips, 0u);
  EXPECT_GT(skip_rate(*decode), 0.5);
  EXPECT_GT(sum->skips, 0u);

  ASSERT_EQ(pd.ranks.size(), 2u);
  EXPECT_EQ(pd.ranks[0].rank, 0);
  EXPECT_EQ(pd.ranks[0].processes, 1u);
  EXPECT_EQ(pd.ranks[0].evals, decode->evals);
  EXPECT_EQ(pd.ranks[0].skips, decode->skips);

  // Every signal committed at least once; each cnt commit fans out to its
  // one static reader.
  ASSERT_EQ(pd.signals.size(), 3u);
  EXPECT_EQ(pd.signals[0].name, "cnt");
  EXPECT_GT(pd.signals[0].commits, 0u);
  EXPECT_EQ(pd.signals[0].reader_marks, pd.signals[0].commits);
}

TEST(Profiler, InterpreterFallbackAttribution) {
  SmallCircuit c(sim::KernelKind::kInterp);
  c.ctx.step(40);
  const obs::ProfileData pd = c.ctx.profile();

  EXPECT_EQ(pd.cycles, 40u);
  ASSERT_EQ(pd.procs.size(), 3u);
  // No compiled schedule: no ranks, no skips, no fan-out marks — but
  // evaluation counts and signal commits are still attributed.
  EXPECT_TRUE(pd.ranks.empty());
  const obs::ProcProfile* decode = find_proc(pd, "decode");
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->rank, -1);
  EXPECT_GT(decode->evals, 0u);
  EXPECT_EQ(decode->skips, 0u);
  ASSERT_FALSE(pd.signals.empty());
  EXPECT_GT(pd.signals[0].commits, 0u);
  EXPECT_EQ(pd.signals[0].reader_marks, 0u);
}

TEST(Profiler, DisabledProfileIsEmpty) {
  SmallCircuit c(sim::KernelKind::kCompiled, /*profile=*/false);
  c.ctx.step(10);
  EXPECT_TRUE(c.ctx.profile().empty());
}

TEST(Profiler, SetProfilingAfterInitializeThrows) {
  SmallCircuit c(sim::KernelKind::kCompiled, /*profile=*/false);
  c.ctx.initialize();
  EXPECT_THROW(c.ctx.set_profiling(true), sim::SimError);
}

TEST(Profiler, MergeIsOrderIndependent) {
  SmallCircuit a(sim::KernelKind::kCompiled);
  a.ctx.step(16);
  SmallCircuit b(sim::KernelKind::kCompiled);
  b.ctx.step(48);

  obs::ProfileData ab = a.ctx.profile();
  ab.merge(b.ctx.profile());
  obs::ProfileData ba = b.ctx.profile();
  ba.merge(a.ctx.profile());

  EXPECT_EQ(ab.runs, 2u);
  EXPECT_EQ(ab.cycles, 64u);
  // Summation is commutative, so even the timing section agrees here; the
  // campaign-level guarantee only covers the stable section.
  EXPECT_EQ(obs::profile_json(ab), obs::profile_json(ba));
  EXPECT_EQ(obs::profile_json(ab, /*with_timing=*/false),
            obs::profile_json(ba, /*with_timing=*/false));

  const obs::ProcProfile* tick = find_proc(ab, "tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->evals, 64u);
}

TEST(Profiler, ProfileJsonShape) {
  SmallCircuit c(sim::KernelKind::kCompiled);
  c.ctx.step(20);
  const obs::ProfileData pd = c.ctx.profile();

  const auto doc = json::parse(obs::profile_json(pd));
  ASSERT_TRUE(doc.is_object());
  const json::Value* stable = doc.find("stable");
  ASSERT_NE(stable, nullptr);
  EXPECT_EQ(stable->number_or("runs", -1), 1);
  EXPECT_EQ(stable->number_or("cycles", -1), 20);
  EXPECT_EQ(stable->find("processes")->items.size(), 3u);
  EXPECT_EQ(stable->find("ranks")->items.size(), 2u);
  const json::Value* timing = doc.find("timing");
  ASSERT_NE(timing, nullptr);
  ASSERT_NE(timing->find("hotspots"), nullptr);

  // with_timing=false drops the timing member and every wall_ns field.
  const std::string untimed = obs::profile_json(pd, /*with_timing=*/false);
  EXPECT_EQ(untimed.find("\"timing\""), std::string::npos);
  EXPECT_EQ(untimed.find("wall_ns"), std::string::npos);
}

// --- campaign-level invariants --------------------------------------------

regress::RunPlan tiny_plan() {
  stbus::NodeConfig cfg;
  cfg.name = "node_p";
  cfg.n_initiators = 2;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;

  regress::RunPlan plan;
  plan.cfg = cfg;
  plan.tests = {verif::t02_random_all_opcodes()};
  plan.seeds = {1, 2};
  plan.n_transactions = 20;
  return plan;
}

TEST(Profiler, StableSectionByteIdenticalAcrossWorkerCounts) {
  const fs::path dir = fs::temp_directory_path() / "crve_profiler_jobs";
  fs::remove_all(dir);
  fs::create_directories(dir);

  regress::RunPlan plan = tiny_plan();
  plan.profile_out = (dir / "p1.json").string();
  plan.jobs = 1;
  const auto serial = regress::Regression::run(plan);
  plan.profile_out = (dir / "p4.json").string();
  plan.jobs = 4;
  const auto parallel = regress::Regression::run(plan);

  ASSERT_FALSE(serial.profile.empty());
  ASSERT_FALSE(parallel.profile.empty());
  // 2 pairs x 2 views merged in slot vs completion order — identical bytes.
  EXPECT_EQ(serial.profile.runs, 4u);
  EXPECT_EQ(obs::profile_json(serial.profile, /*with_timing=*/false),
            obs::profile_json(parallel.profile, /*with_timing=*/false));

  // The campaign report artifact is well-formed and build-stamped.
  std::ifstream is(dir / "p4.json");
  std::ostringstream os;
  os << is.rdbuf();
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("build"), nullptr);
  ASSERT_NE(doc.find("stable"), nullptr);
  EXPECT_GT(doc.find("stable")->find("processes")->items.size(), 0u);
  EXPECT_NE(doc.find("timing"), nullptr);

  fs::remove_all(dir);
}

TEST(Profiler, ReportByteIdenticalWithProfilingOff) {
  const fs::path out = fs::temp_directory_path() / "crve_profiler_report.json";

  regress::RunPlan plan = tiny_plan();
  plan.jobs = 2;
  const auto plain = regress::Regression::run(plan);
  EXPECT_TRUE(plain.profile.empty());

  plan.profile_out = out.string();
  const auto profiled = regress::Regression::run(plan);
  EXPECT_FALSE(profiled.profile.empty());

  // The profiler writes its own artifact; report.json must not move by a
  // byte when profiling is switched on.
  EXPECT_EQ(plain.json(/*with_timing=*/false),
            profiled.json(/*with_timing=*/false));

  fs::remove(out);
}

TEST(Profiler, JobSpecHashIgnoresProfileKnob) {
  regress::RunPlan plan = tiny_plan();
  const auto spec_plain = regress::job_spec_for(plan, plan.tests[0], 7);
  plan.profile_out = "/tmp/anywhere.json";
  const auto spec_prof = regress::job_spec_for(plan, plan.tests[0], 7);
  // Profiling never perturbs the cache key: a profiled rerun of a cached
  // campaign must still replay its hits.
  EXPECT_EQ(spec_plain.canonical_json(), spec_prof.canonical_json());
  EXPECT_EQ(spec_plain.hash(), spec_prof.hash());
}

// --- streaming telemetry ---------------------------------------------------

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream is(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Progress, NdjsonStreamIsValid) {
  const fs::path out = fs::temp_directory_path() / "crve_progress.ndjson";
  {
    regress::ProgressOptions opts;
    opts.out_path = out.string();
    opts.heartbeat_ms = 0;  // one heartbeat per job boundary
    regress::ProgressTracker tracker(opts);
    tracker.campaign_start(1, 2, 0);
    tracker.job_start("node_p", "t02", 1, "rtl");
    tracker.job_finish("node_p", "t02", 1, "rtl", "pass", false, 12.5);
    tracker.job_start("node_p", "t02", 1, "bca");
    tracker.job_finish("node_p", "t02", 1, "bca", "fail", false, 8.0);
    tracker.evictions(3);
    tracker.campaign_end(false);

    ASSERT_EQ(tracker.records().size(), 2u);
    EXPECT_EQ(tracker.records()[0].view, "rtl");
    EXPECT_EQ(tracker.records()[0].verdict, "pass");
    EXPECT_EQ(tracker.records()[1].verdict, "fail");
  }

  const auto lines = read_lines(out);
  ASSERT_GE(lines.size(), 7u);
  bool saw_heartbeat = false;
  for (const auto& line : lines) {
    const auto doc = json::parse(line);  // throws on a torn/invalid line
    ASSERT_TRUE(doc.is_object()) << line;
    EXPECT_NE(doc.find("event"), nullptr) << line;
    EXPECT_GE(doc.number_or("t_ms", -1), 0) << line;
    if (doc.string_or("event", "") == "heartbeat") {
      saw_heartbeat = true;
      EXPECT_NE(doc.find("in_flight"), nullptr);
      EXPECT_GE(doc.number_or("eta_ms", -2), -1);
      EXPECT_EQ(doc.number_or("total", -1), 2);
    }
  }
  EXPECT_TRUE(saw_heartbeat);

  const auto first = json::parse(lines.front());
  EXPECT_EQ(first.string_or("event", ""), "campaign_start");
  EXPECT_EQ(first.number_or("total_jobs", -1), 2);
  const auto last = json::parse(lines.back());
  EXPECT_EQ(last.string_or("event", ""), "campaign_end");
  EXPECT_EQ(last.number_or("done", -1), 2);
  EXPECT_EQ(last.number_or("failed", -1), 1);
  EXPECT_FALSE(last.bool_or("signed_off", true));

  fs::remove(out);
}

TEST(Progress, UnwritablePathFailsFast) {
  regress::ProgressOptions opts;
  opts.out_path = (fs::temp_directory_path() / "crve_no_such_dir" /
                   "deep" / "events.ndjson")
                      .string();
  EXPECT_THROW(regress::ProgressTracker{opts}, std::runtime_error);
}

TEST(Progress, RunnerEmitsFullLifecycle) {
  const fs::path out = fs::temp_directory_path() / "crve_progress_run.ndjson";

  regress::ProgressOptions opts;
  opts.out_path = out.string();
  regress::ProgressTracker tracker(opts);

  regress::RunPlan plan = tiny_plan();
  plan.jobs = 2;
  plan.progress = &tracker;
  const auto res = regress::Regression::run(plan);
  tracker.campaign_end(res.signed_off);
  ASSERT_TRUE(res.signed_off) << res.summary();

  // 2 pairs x (rtl + bca + align) in completion order, all fresh passes.
  ASSERT_EQ(tracker.records().size(), 6u);
  for (const auto& rec : tracker.records()) {
    EXPECT_EQ(rec.verdict, "pass") << rec.test;
    EXPECT_FALSE(rec.cached);
    EXPECT_GE(rec.end_ms, rec.start_ms);
  }

  const auto lines = read_lines(out);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(json::parse(lines.front()).string_or("event", ""),
            "campaign_start");
  EXPECT_EQ(json::parse(lines.back()).string_or("event", ""), "campaign_end");
  int starts = 0;
  int finishes = 0;
  for (const auto& line : lines) {
    const auto doc = json::parse(line);
    const std::string event = doc.string_or("event", "");
    starts += event == "job_start";
    finishes += event == "job_finish";
    if (event == "job_finish") {
      EXPECT_EQ(doc.string_or("verdict", ""), "pass") << line;
    }
  }
  EXPECT_EQ(starts, 6);
  EXPECT_EQ(finishes, 6);

  fs::remove(out);
}

TEST(Progress, ThrowingJobDumpsFlightRecorderAndReportsError) {
  const fs::path dir = fs::temp_directory_path() / "crve_progress_throw";
  fs::remove_all(dir);
  fs::create_directories(dir);

  FlightRecorder recorder(16);
  recorder.push("[info ] context line before the crash\n");
  FlightRecorder* prev = set_flight_recorder(&recorder, LogLevel::kDebug);

  regress::ProgressOptions opts;
  regress::ProgressTracker tracker(opts);

  regress::RunPlan plan = tiny_plan();
  plan.seeds = {1};
  plan.out_dir = dir.string();
  plan.jobs = 1;
  plan.progress = &tracker;
  verif::TestSpec& spec = plan.tests[0];
  spec.profile = [](const stbus::NodeConfig&,
                    int) -> verif::InitiatorProfile {
    throw std::runtime_error("injected elaboration failure");
  };

  EXPECT_THROW(regress::Regression::run(plan), std::runtime_error);
  set_flight_recorder(prev);

  // The exception path preserved the flight-recorder context next to the
  // job's artifacts and still emitted a job_finish with verdict "error".
  EXPECT_TRUE(fs::exists(dir / ("flight_" + spec.name + "_s1_rtl.log")));
  ASSERT_FALSE(tracker.records().empty());
  EXPECT_EQ(tracker.records().front().verdict, "error");
  EXPECT_EQ(tracker.records().front().view, "rtl");

  fs::remove_all(dir);
}

}  // namespace
}  // namespace crve
