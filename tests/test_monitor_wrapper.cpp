// Monitor unit tests plus the wrapped-view equivalence invariant: plugging
// the BCA model through the Fig.-3 wrapper relays must not change a single
// cycle at the environment-side pins — only the simulation cost.
#include <gtest/gtest.h>

#include <sstream>

#include "stba/analyzer.h"
#include "verif/monitor.h"
#include "verif/testbench.h"
#include "verif/tests.h"

namespace crve {
namespace {

using stbus::NodeConfig;
using stbus::Opcode;
using stbus::PortPins;

NodeConfig mcfg() {
  NodeConfig cfg;
  cfg.n_initiators = 2;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.validate_and_normalize();
  return cfg;
}

struct Listener : verif::MonitorListener {
  int req_cells = 0, rsp_cells = 0, req_pkts = 0, rsp_pkts = 0;
  std::vector<std::size_t> pkt_sizes;
  void on_request_cell(const stbus::RequestCell&, std::uint64_t) override {
    ++req_cells;
  }
  void on_response_cell(const stbus::ResponseCell&, std::uint64_t) override {
    ++rsp_cells;
  }
  void on_request_packet(const verif::ObservedRequest& p) override {
    ++req_pkts;
    pkt_sizes.push_back(p.cells.size());
  }
  void on_response_packet(const verif::ObservedResponse&) override {
    ++rsp_pkts;
  }
};

TEST(Monitor, AssemblesPacketsAndCountsCycles) {
  sim::Context ctx;
  PortPins pins(ctx, "tb.p", mcfg());
  verif::Monitor mon(ctx, "p", pins);
  Listener lst;
  mon.subscribe(&lst);
  ctx.initialize();

  // Two-beat store packet, granted back to back.
  stbus::Request req;
  req.opc = Opcode::kSt8;
  req.add = 0x40;
  req.wdata.assign(8, 0xab);
  const auto cells = stbus::build_request(req, 4, stbus::ProtocolType::kType2);
  pins.gnt.write(true);
  for (const auto& c : cells) {
    pins.drive_request(c);
    ctx.step();
  }
  pins.idle_request();
  ctx.step(2);

  EXPECT_EQ(lst.req_cells, 2);
  EXPECT_EQ(lst.req_pkts, 1);
  ASSERT_EQ(lst.pkt_sizes.size(), 1u);
  EXPECT_EQ(lst.pkt_sizes[0], 2u);
  EXPECT_EQ(mon.stats().request_cells, 2u);
  EXPECT_EQ(mon.stats().busy_cycles, 2u);
  EXPECT_GT(mon.stats().cycles, 2u);
  EXPECT_FALSE(mon.request_in_progress());
}

TEST(Monitor, UngatedRequestNotCounted) {
  sim::Context ctx;
  PortPins pins(ctx, "tb.p", mcfg());
  verif::Monitor mon(ctx, "p", pins);
  ctx.initialize();
  stbus::RequestCell c;
  c.opc = Opcode::kLd4;
  c.add = 0x10;
  c.data = Bits(32);
  c.be = Bits::all_ones(4);
  c.eop = true;
  pins.drive_request(c);  // gnt stays low
  ctx.step(3);
  EXPECT_EQ(mon.stats().request_cells, 0u);
  EXPECT_EQ(mon.stats().busy_cycles, 0u);
}

TEST(Monitor, PartialPacketReported) {
  sim::Context ctx;
  PortPins pins(ctx, "tb.p", mcfg());
  verif::Monitor mon(ctx, "p", pins);
  ctx.initialize();
  stbus::RequestCell c;
  c.opc = Opcode::kLd8;
  c.add = 0x40;
  c.data = Bits(32);
  c.be = Bits::all_ones(4);
  c.eop = false;  // first beat only
  c.lck = true;
  pins.drive_request(c);
  pins.gnt.write(true);
  ctx.step(2);
  EXPECT_TRUE(mon.request_in_progress());
}

// --------------------------------------------------------------------------
// Wrapped-view equivalence
// --------------------------------------------------------------------------

class WrappedEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(WrappedEquivalence, WrapperChangesCostNotCycles) {
  verif::TestSpec spec;
  const std::string which = GetParam();
  for (auto& s : verif::catg_test_suite()) {
    if (s.name == which) spec = s;
  }
  ASSERT_FALSE(spec.name.empty());
  spec.n_transactions = 40;

  std::ostringstream wave_native, wave_wrapped;
  verif::RunResult native, wrapped;
  for (int m = 0; m < 2; ++m) {
    verif::TestbenchOptions opts;
    opts.model =
        m == 0 ? verif::ModelKind::kBca : verif::ModelKind::kBcaWrapped;
    opts.seed = 21;
    opts.vcd_stream = m == 0 ? &wave_native : &wave_wrapped;
    verif::Testbench tb(mcfg(), spec, opts);
    (m == 0 ? native : wrapped) = tb.run();
  }
  EXPECT_TRUE(native.passed());
  EXPECT_TRUE(wrapped.passed());
  EXPECT_EQ(native.cycles, wrapped.cycles);
  EXPECT_EQ(native.coverage_digest, wrapped.coverage_digest);
  // The wrapper burns more kernel evaluations for the same cycles.
  EXPECT_GT(wrapped.evaluations, native.evaluations);

  // Cycle-for-cycle identical at the environment-side pins.
  std::istringstream a(wave_native.str()), b(wave_wrapped.str());
  const vcd::Trace ta = vcd::Trace::parse(a);
  const vcd::Trace tb2 = vcd::Trace::parse(b);
  std::vector<std::string> ports;
  for (int i = 0; i < 2; ++i) {
    ports.push_back(verif::Testbench::initiator_port_name(i));
    ports.push_back(verif::Testbench::target_port_name(i));
  }
  const auto rep = stba::Analyzer::compare(ta, tb2, ports);
  EXPECT_DOUBLE_EQ(rep.min_rate(), 1.0) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(Tests, WrappedEquivalence,
                         ::testing::Values("t02_random_all_opcodes",
                                           "t05_chunked_traffic",
                                           "t09_backpressure"));

}  // namespace
}  // namespace crve
