// Tests for the regression tool's configuration-file front end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "regress/config_file.h"

namespace crve::regress {
namespace {

using stbus::ArbPolicy;
using stbus::Architecture;
using stbus::ProtocolType;

TEST(ConfigFile, ParsesFullConfig) {
  std::istringstream is(R"(
# a node configuration
name = node_a
n_initiators = 3
n_targets    = 2
bus_bytes    = 8
type         = 3
arch         = partial
arb          = latency
programming_port = 1
priorities   = 5, 3, 1
latency_deadline = 4,10,16
bandwidth_quota = 8,0,0
bandwidth_window = 32
xbar_group   = 0,0
)");
  const auto cfg = parse_config(is, "test");
  EXPECT_EQ(cfg.name, "node_a");
  EXPECT_EQ(cfg.n_initiators, 3);
  EXPECT_EQ(cfg.n_targets, 2);
  EXPECT_EQ(cfg.bus_bytes, 8);
  EXPECT_EQ(cfg.type, ProtocolType::kType3);
  EXPECT_EQ(cfg.arch, Architecture::kPartialCrossbar);
  EXPECT_EQ(cfg.arb, ArbPolicy::kLatencyBased);
  EXPECT_TRUE(cfg.programming_port);
  EXPECT_EQ(cfg.priorities, (std::vector<int>{5, 3, 1}));
  EXPECT_EQ(cfg.bandwidth_window, 32);
  EXPECT_EQ(cfg.xbar_group, (std::vector<int>{0, 0}));
}

TEST(ConfigFile, DefaultsWhenKeysOmitted) {
  std::istringstream is("n_initiators = 2\nn_targets = 2\n");
  const auto cfg = parse_config(is, "test");
  EXPECT_EQ(cfg.bus_bytes, 4);
  EXPECT_EQ(cfg.type, ProtocolType::kType2);
  EXPECT_EQ(cfg.address_map.size(), 2u);
}

TEST(ConfigFile, RejectsUnknownKey) {
  std::istringstream is("bogus = 1\n");
  EXPECT_THROW(parse_config(is, "test"), std::invalid_argument);
}

TEST(ConfigFile, RejectsMalformedLine) {
  std::istringstream is("just some text\n");
  EXPECT_THROW(parse_config(is, "test"), std::invalid_argument);
}

TEST(ConfigFile, RejectsBadEnumValues) {
  {
    std::istringstream is("arch = diagonal\n");
    EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  }
  {
    std::istringstream is("arb = coinflip\n");
    EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  }
  {
    std::istringstream is("type = 1\n");
    EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  }
}

// Enum-like fields name the key, the offending value, and the accepted set.
TEST(ConfigFile, EnumErrorsListAcceptedValues) {
  auto message_of = [](const char* text) -> std::string {
    std::istringstream is(text);
    try {
      parse_config(is, "t");
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  const std::string arch = message_of("arch = diagonal\n");
  EXPECT_NE(arch.find("arch"), std::string::npos);
  EXPECT_NE(arch.find("'diagonal'"), std::string::npos);
  EXPECT_NE(arch.find("shared, full, partial"), std::string::npos);

  const std::string arb = message_of("arb = coinflip\n");
  EXPECT_NE(arb.find("'coinflip'"), std::string::npos);
  EXPECT_NE(arb.find("fixed, rr, lru, latency, bandwidth, prog"),
            std::string::npos);

  const std::string type = message_of("type = 7\n");
  EXPECT_NE(type.find("type"), std::string::npos);
  EXPECT_NE(type.find("accepted: 2, 3"), std::string::npos);

  const std::string integer = message_of("n_initiators = soon\n");
  EXPECT_NE(integer.find("n_initiators"), std::string::npos);
  EXPECT_NE(integer.find("'soon'"), std::string::npos);
}

TEST(ConfigFile, RejectsTrailingJunkOnIntegers) {
  std::istringstream is("n_targets = 4x\n");
  EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
}

// Both comment styles, whole-line and trailing (config_file.h documents
// this; the linter's scanner applies the same grammar).
TEST(ConfigFile, AcceptsHashAndSlashComments) {
  std::istringstream is(
      "# whole-line hash\n"
      "// whole-line slashes\n"
      "name = c   // trailing slashes\n"
      "n_initiators = 3 # trailing hash\n"
      "n_targets = 2\n");
  const auto cfg = parse_config(is, "t");
  EXPECT_EQ(cfg.name, "c");
  EXPECT_EQ(cfg.n_initiators, 3);
}

// Edge cases the linter formalizes as CRVE0xx rules: the parser must agree
// with the lint verdict (see test_lint.cpp LintConfig.VerdictsAgreeWithParser).
TEST(ConfigFile, RejectsZeroPorts) {
  std::istringstream is("n_initiators = 0\n");
  EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  std::istringstream is2("n_targets = 0\n");
  EXPECT_THROW(parse_config(is2, "t"), std::invalid_argument);
}

TEST(ConfigFile, RejectsNonPowerOfTwoWidth) {
  std::istringstream is("bus_bytes = 6\n");
  EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  std::istringstream is2("bus_bytes = 64\n");  // > 32 bytes (256 bits)
  EXPECT_THROW(parse_config(is2, "t"), std::invalid_argument);
}

TEST(ConfigFile, RejectsOutOfRangeXbarGroup) {
  std::istringstream is(
      "n_targets = 2\narch = partial\nxbar_group = 0,5\n");
  EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
}

TEST(ConfigFile, RejectsListLengthMismatch) {
  std::istringstream is("n_initiators = 2\npriorities = 1,2,3\n");
  EXPECT_THROW(parse_config(is, "t"), std::invalid_argument);
  std::istringstream is2("n_initiators = 2\nlatency_deadline = 4\n");
  EXPECT_THROW(parse_config(is2, "t"), std::invalid_argument);
}

TEST(ConfigFile, ErrorMessagesCarryLineNumbers) {
  std::istringstream is("name = x\nbogus = 1\n");
  try {
    parse_config(is, "myfile.cfg");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("myfile.cfg:2"), std::string::npos);
  }
}

TEST(ConfigFile, RoundTripsThroughFormat) {
  std::istringstream is(
      "name = rt\nn_initiators = 4\nn_targets = 3\nbus_bytes = 16\n"
      "type = 3\narch = shared\narb = bandwidth\n"
      "bandwidth_quota = 1,2,3,4\n");
  const auto cfg = parse_config(is, "t");
  std::istringstream is2(format_config(cfg));
  const auto cfg2 = parse_config(is2, "t2");
  EXPECT_EQ(cfg2.name, cfg.name);
  EXPECT_EQ(cfg2.n_initiators, cfg.n_initiators);
  EXPECT_EQ(cfg2.n_targets, cfg.n_targets);
  EXPECT_EQ(cfg2.bus_bytes, cfg.bus_bytes);
  EXPECT_EQ(cfg2.type, cfg.type);
  EXPECT_EQ(cfg2.arch, cfg.arch);
  EXPECT_EQ(cfg2.arb, cfg.arb);
  EXPECT_EQ(cfg2.bandwidth_quota, cfg.bandwidth_quota);
}

TEST(ConfigFile, LoadsDirectorySorted) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "crve_cfg_test";
  fs::create_directories(dir);
  {
    std::ofstream(dir / "b_node.cfg") << "name = bbb\n";
    std::ofstream(dir / "a_node.cfg") << "name = aaa\n";
    std::ofstream(dir / "ignored.txt") << "name = nope\n";
  }
  const auto cfgs = configs_from_dir(dir.string());
  ASSERT_EQ(cfgs.size(), 2u);
  EXPECT_EQ(cfgs[0].name, "aaa");
  EXPECT_EQ(cfgs[1].name, "bbb");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace crve::regress
