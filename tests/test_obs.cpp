// Observability layer: metrics registry, phase-span tracing, and their
// integration with the regression engine.
//
// The load-bearing guarantees under test:
//   * disabled collection is a no-op (no values recorded, handles inert);
//   * merged metric values are independent of the worker count — the
//     deterministic (kStable) JSON view is byte-identical for jobs=1 and
//     jobs=4 runs of the same campaign;
//   * kTiming metrics never leak into the deterministic view;
//   * trace sessions produce valid Chrome trace-event JSON made of
//     complete ("ph":"X") events covering the campaign phases.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "regress/runner.h"
#include "verif/tests.h"

namespace crve {
namespace {

// Every test that enables collection must leave the process-wide registry
// disabled and zeroed, so unrelated tests stay unaffected.
struct MetricsGuard {
  MetricsGuard() {
    obs::registry().reset();
    obs::set_metrics_enabled(true);
  }
  ~MetricsGuard() {
    obs::set_metrics_enabled(false);
    obs::registry().reset();
  }
};

// Name-based lookups: descriptors registered by other tests persist for the
// process lifetime (reset() only zeroes values), so positional or
// size-based assertions on the snapshot would be order-dependent.
std::uint64_t counter_value(const obs::Registry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter " << name << " not in snapshot";
  return 0;
}

std::uint64_t gauge_value(const obs::Registry::Snapshot& snap,
                          const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "gauge " << name << " not in snapshot";
  return 0;
}

obs::HistogramValue hist_value(const obs::Registry::Snapshot& snap,
                               const std::string& name) {
  for (const auto& [n, v] : snap.histograms) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "histogram " << name << " not in snapshot";
  return {};
}

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(Metrics, DisabledCollectionRecordsNothing) {
  obs::registry().reset();
  ASSERT_FALSE(obs::metrics_enabled());
  obs::counter("obs_test.disabled").add(42);
  obs::histogram("obs_test.disabled_h").observe(7);
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(counter_value(snap, "obs_test.disabled"), 0u);
}

TEST(Metrics, CounterAccumulatesAndResets) {
  MetricsGuard guard;
  auto c = obs::counter("obs_test.c");
  c.add(3);
  c.inc();
  EXPECT_EQ(counter_value(obs::registry().snapshot(), "obs_test.c"), 4u);
  obs::registry().reset();
  EXPECT_EQ(counter_value(obs::registry().snapshot(), "obs_test.c"), 0u);
}

TEST(Metrics, GaugeKeepsRunningMax) {
  MetricsGuard guard;
  auto g = obs::gauge("obs_test.g");
  g.observe_max(5);
  g.observe_max(17);
  g.observe_max(9);
  EXPECT_EQ(gauge_value(obs::registry().snapshot(), "obs_test.g"), 17u);
}

TEST(Metrics, HistogramLog2BucketBoundaries) {
  MetricsGuard guard;
  auto h = obs::histogram("obs_test.h");
  // Bucket 0 holds value 0; bucket k>=1 holds [2^(k-1), 2^k).
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1: [1,2)
  h.observe(2);   // bucket 2: [2,4)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3: [4,8)
  h.observe(7);   // bucket 3
  h.observe(8);   // bucket 4: [8,16)
  const obs::HistogramValue v =
      hist_value(obs::registry().snapshot(), "obs_test.h");
  EXPECT_EQ(v.count, 7u);
  EXPECT_EQ(v.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(v.buckets[0], 1u);
  EXPECT_EQ(v.buckets[1], 1u);
  EXPECT_EQ(v.buckets[2], 2u);
  EXPECT_EQ(v.buckets[3], 2u);
  EXPECT_EQ(v.buckets[4], 1u);
}

TEST(Metrics, HandlesAreStableAcrossReRegistration) {
  MetricsGuard guard;
  obs::counter("obs_test.same").inc();
  obs::counter("obs_test.same").inc();  // second lookup, same slot
  EXPECT_EQ(counter_value(obs::registry().snapshot(), "obs_test.same"), 2u);
}

TEST(Metrics, CrossThreadUpdatesMergeToExactSum) {
  MetricsGuard guard;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      auto c = obs::counter("obs_test.mt");
      auto h = obs::histogram("obs_test.mt_h");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i % 16));
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(counter_value(snap, "obs_test.mt"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist_value(snap, "obs_test.mt_h").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, TimingMetricsExcludedFromStableView) {
  MetricsGuard guard;
  obs::counter("obs_test.stable", obs::MetricClass::kStable).inc();
  obs::counter("obs_test.timing", obs::MetricClass::kTiming).inc();
  const std::string stable = obs::registry().json(/*include_timing=*/false);
  const std::string full = obs::registry().json(/*include_timing=*/true);
  EXPECT_EQ(stable.find("obs_test.timing"), std::string::npos);
  EXPECT_NE(stable.find("obs_test.stable"), std::string::npos);
  EXPECT_NE(full.find("obs_test.timing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Minimal JSON validator (syntax check + object/array walk), enough to
// assert the emitted documents parse without an external dependency.
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Metrics, JsonOutputParses) {
  MetricsGuard guard;
  obs::counter("obs_test.json\"quoted").add(1);
  obs::gauge("obs_test.json_g").observe_max(3);
  obs::histogram("obs_test.json_h").observe(12345);
  const std::string j = obs::registry().json();
  EXPECT_TRUE(JsonParser(j).parse()) << j;
  const std::string j2 = obs::registry().json(false, "    ");
  EXPECT_TRUE(JsonParser(j2).parse()) << j2;
}

// ---------------------------------------------------------------------------
// Phase-span tracing
// ---------------------------------------------------------------------------

// Counts occurrences of `needle` in `hay`.
std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Trace, SessionProducesCompleteEventsOnly) {
  obs::trace_begin();
  {
    CRVE_SPAN("outer");
    CRVE_SPAN("inner", std::string("detail text"));
  }
  // Spans closed from pool workers land in per-thread buffers.
  ThreadPool pool(3);
  pool.parallel_for(6, [](std::size_t) { CRVE_SPAN("worker_phase"); });
  std::ostringstream os;
  obs::trace_end(os);
  const std::string j = os.str();
  EXPECT_TRUE(JsonParser(j).parse()) << j;
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  // Complete events only: every event carries ph=X and a duration.
  const std::size_t events = count_of(j, "\"ph\": \"X\"");
  EXPECT_EQ(events, count_of(j, "\"dur\":"));
  EXPECT_EQ(events, 2u + 6u);
  EXPECT_NE(j.find("\"outer\""), std::string::npos);
  EXPECT_NE(j.find("\"inner\""), std::string::npos);
  EXPECT_NE(j.find("detail text"), std::string::npos);
}

TEST(Trace, DisabledSessionRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  { CRVE_SPAN("ignored"); }
  std::ostringstream os;
  obs::trace_end(os);
  const std::string j = os.str();
  EXPECT_TRUE(JsonParser(j).parse()) << j;
  EXPECT_EQ(j.find("ignored"), std::string::npos);
}

TEST(Trace, SpanOutlivingSessionIsDropped) {
  obs::trace_begin();
  auto span = std::make_unique<obs::SpanGuard>("late_span");
  std::ostringstream os;
  obs::trace_end(os);  // session closes with the span still open
  span.reset();        // closes after the session: must not be misfiled
  obs::trace_begin();
  std::ostringstream os2;
  obs::trace_end(os2);
  EXPECT_EQ(os2.str().find("late_span"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Regression-engine integration
// ---------------------------------------------------------------------------

stbus::NodeConfig obs_cfg() {
  stbus::NodeConfig cfg;
  cfg.name = "node_obs";
  cfg.n_initiators = 3;
  cfg.n_targets = 2;
  cfg.bus_bytes = 4;
  cfg.type = stbus::ProtocolType::kType2;
  cfg.arch = stbus::Architecture::kFullCrossbar;
  cfg.arb = stbus::ArbPolicy::kLru;
  return cfg;
}

regress::RunPlan obs_plan(unsigned jobs) {
  regress::RunPlan plan;
  plan.cfg = obs_cfg();
  plan.tests = {verif::t02_random_all_opcodes(), verif::t05_chunked_traffic()};
  plan.seeds = {1, 2};
  plan.n_transactions = 30;
  plan.jobs = jobs;
  return plan;
}

TEST(ObsRegression, StableMetricsIdenticalForAnyWorkerCount) {
  MetricsGuard guard;
  const auto serial = regress::Regression::run(obs_plan(1));
  const std::string json1 = obs::registry().json(/*include_timing=*/false);

  obs::registry().reset();
  const auto parallel = regress::Regression::run(obs_plan(4));
  const std::string json4 = obs::registry().json(/*include_timing=*/false);

  ASSERT_TRUE(serial.signed_off);
  ASSERT_TRUE(parallel.signed_off);
  // Byte-identical merged counters and histograms: the instrumentation is
  // a pure function of the work done, never of the scheduling.
  EXPECT_EQ(json1, json4);
  // And the embedded report section carries exactly that deterministic view.
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_EQ(serial.metrics_json, json4);
  EXPECT_TRUE(JsonParser(json1).parse()) << json1;

  // Spot-check campaign-level counters against ground truth.
  const auto snap = obs::registry().snapshot();
  EXPECT_EQ(counter_value(snap, "regress.jobs"), parallel.outcomes.size());
  EXPECT_EQ(counter_value(snap, "regress.alignments"),
            parallel.alignments.size());
  EXPECT_EQ(counter_value(snap, "regress.failures"), 0u);
  EXPECT_EQ(counter_value(snap, "sim.runs"), parallel.outcomes.size());
  std::uint64_t cycles = 0;
  for (const auto& o : parallel.outcomes) cycles += o.result.cycles;
  EXPECT_EQ(counter_value(snap, "sim.cycles"), cycles);
  // VCD dumps happen for every (test, seed, view) unit when alignment runs.
  EXPECT_EQ(counter_value(snap, "vcd.dumps"), parallel.outcomes.size());
  EXPECT_GT(counter_value(snap, "vcd.bytes_flushed"), 0u);
  EXPECT_GT(counter_value(snap, "stba.ports_compared"), 0u);
  EXPECT_GT(counter_value(snap, "verif.request_packets"), 0u);
}

TEST(ObsRegression, ReportOmitsMetricsSectionWhenDisabled) {
  ASSERT_FALSE(obs::metrics_enabled());
  const auto res = regress::Regression::run(obs_plan(2));
  EXPECT_TRUE(res.metrics_json.empty());
  EXPECT_EQ(res.json().find("\"metrics\""), std::string::npos);
}

TEST(ObsRegression, ReportEmbedsParseableMetricsSection) {
  MetricsGuard guard;
  const auto res = regress::Regression::run(obs_plan(2));
  ASSERT_FALSE(res.metrics_json.empty());
  const std::string j = res.json();
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_TRUE(JsonParser(j).parse()) << j;
  // Timing metrics (pool queue waits) must not reach the report.
  EXPECT_EQ(j.find("pool.queue_wait_ns"), std::string::npos);
}

TEST(ObsRegression, FailingJobDumpsFlightRecorderToArtifacts) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "crve_obs_flight_test";
  fs::remove_all(dir);

  FlightRecorder fr(32);
  set_flight_recorder(&fr, LogLevel::kInfo);
  regress::RunPlan plan;
  plan.cfg = obs_cfg();
  plan.tests = {verif::t02_random_all_opcodes()};
  plan.seeds = {5};
  plan.n_transactions = 80;
  plan.faults.byte_enable_dropped = true;  // the BCA view fails its checks
  plan.out_dir = dir.string();
  const auto res = regress::Regression::run(plan);
  set_flight_recorder(nullptr);

  ASSERT_TRUE(res.rtl_passed);
  ASSERT_FALSE(res.bca_passed);
  const fs::path dump = dir / "flight_t02_random_all_opcodes_s5_bca.log";
  ASSERT_TRUE(fs::exists(dump));
  // The captured context includes the per-job progress lines the logger
  // records below the console threshold.
  std::ifstream is(dump);
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_NE(ss.str().find("[info ]"), std::string::npos);
  // The passing RTL job must not leave a dump behind.
  EXPECT_FALSE(fs::exists(dir / "flight_t02_random_all_opcodes_s5_rtl.log"));
  fs::remove_all(dir);
}

TEST(ObsRegression, CampaignTraceCoversJobsAndPhases) {
  obs::trace_begin();
  const auto res = regress::Regression::run(obs_plan(3));
  std::ostringstream os;
  obs::trace_end(os);
  ASSERT_TRUE(res.signed_off);
  const std::string j = os.str();
  EXPECT_TRUE(JsonParser(j).parse()) << j;
  // One top-level campaign span, one job span per (test, seed, view) unit,
  // each with build/sim sub-phases, plus one align span per pair.
  EXPECT_EQ(count_of(j, "\"name\": \"campaign\""), 1u);
  EXPECT_EQ(count_of(j, "\"name\": \"job\""), res.outcomes.size());
  EXPECT_EQ(count_of(j, "\"name\": \"sim\""), res.outcomes.size());
  EXPECT_EQ(count_of(j, "\"name\": \"build\""), res.outcomes.size());
  EXPECT_EQ(count_of(j, "\"name\": \"align\""), res.alignments.size());
  EXPECT_EQ(count_of(j, "\"name\": \"reduce\""), 1u);
  // Job identity rides in the args.detail payload.
  EXPECT_NE(j.find("node_obs:t02_random_all_opcodes:s1:rtl"),
            std::string::npos);
}

}  // namespace
}  // namespace crve
