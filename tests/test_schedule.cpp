// Compiled-schedule kernel: levelization, elaboration-time cycle
// diagnostics, the dynamic fixpoint tail, change-driven skipping, and
// byte-identical artifacts against the interpreter across the shipped
// configurations (the `--sim-kernel interp` escape hatch must be a pure
// performance switch, never a behaviour switch).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "regress/config_file.h"
#include "regress/runner.h"
#include "sim/context.h"
#include "sim/schedule.h"
#include "verif/tests.h"

namespace crve {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Schedule, DiamondLevelizesByLongestPath) {
  // a -> {b, c} -> d over four signals: classic diamond. Ranks must come
  // out {a}, {b, c}, {d} with b/c in registration order.
  std::vector<sim::ProcNode> procs(4);
  procs[0] = {"a", {}, {0}, {}, false};
  procs[1] = {"b", {0}, {1}, {}, false};
  procs[2] = {"c", {0}, {2}, {}, false};
  procs[3] = {"d", {1, 2}, {3}, {}, false};
  const auto sched =
      sim::build_schedule(procs, 4, {"s0", "s1", "s2", "s3"});
  ASSERT_EQ(sched.n_ranks(), 3u);
  EXPECT_EQ(sched.ranks[0], (std::vector<int>{0}));
  EXPECT_EQ(sched.ranks[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.ranks[2], (std::vector<int>{3}));
  EXPECT_EQ(sched.n_static, 4u);
  // Change-driven skipping adjacency: s0's readers are b and c.
  EXPECT_EQ(sched.signal_readers[0], (std::vector<int>{1, 2}));
}

TEST(Schedule, CycleDetectedAtElaborationWithNamedPath) {
  sim::Context ctx;
  sim::SignalU64 a(ctx, "sig_a", 8);
  sim::SignalU64 b(ctx, "sig_b", 8);
  ctx.add_comb("proc_x", [&] { a.write(b.read() + 1); });
  ctx.add_comb("proc_y", [&] { b.write(a.read() + 1); });
  try {
    ctx.initialize();  // throws during elaboration, before any settling
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("combinational cycle detected at elaboration"),
              std::string::npos)
        << msg;
    // The diagnostic names the whole loop: both processes and at least one
    // mediating signal.
    EXPECT_NE(msg.find("proc_x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("proc_y"), std::string::npos) << msg;
    EXPECT_TRUE(msg.find("sig_a") != std::string::npos ||
                msg.find("sig_b") != std::string::npos)
        << msg;
  }
}

TEST(Schedule, SelfWriteInOwnReadSetIsACycle) {
  sim::Context ctx;
  sim::SignalU64 a(ctx, "osc_sig", 8);
  ctx.add_comb("osc", [&] { a.write(a.read() ^ 1); });
  try {
    ctx.initialize();
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("osc --[osc_sig]--> osc"), std::string::npos) << msg;
  }
}

TEST(Schedule, InterpreterStillCatchesCycleAtRuntime) {
  sim::Context ctx;
  ctx.set_kernel(sim::KernelKind::kInterp);
  sim::SignalU64 a(ctx, "a", 8);
  ctx.add_comb("osc", [&] { a.write(a.read() ^ 1); });
  EXPECT_THROW(ctx.step(), sim::SimError);
}

TEST(Schedule, StaticGraphSettlesInOneDeltaPerCycle) {
  sim::Context ctx;
  sim::SignalU64 a(ctx, "a", 8);
  sim::SignalU64 b(ctx, "b", 8);
  sim::SignalU64 c(ctx, "c", 8);
  ctx.add_clocked("drv", [&] { a.write(a.read() + 1); });
  // Registered consumer-first: the interpreter needs extra delta passes for
  // this ordering; the compiled kernel's ranks make it irrelevant.
  ctx.add_comb("c", [&] { c.write(b.read() + 1); });
  ctx.add_comb("b", [&] { b.write(a.read() * 2); });
  ctx.step(10);
  EXPECT_EQ(c.read(), 21u);
  EXPECT_EQ(ctx.delta_iterations(), 10u);  // exactly one per cycle
}

TEST(Schedule, ChangeDrivenSkippingCountsUntouchedProcesses) {
  sim::Context ctx;
  sim::SignalU64 a(ctx, "a", 8);
  sim::SignalU64 b(ctx, "b", 8);
  sim::SignalU64 q(ctx, "q", 8);  // quiet subgraph input, never driven
  sim::SignalU64 r(ctx, "r", 8);
  ctx.add_clocked("drv", [&] { a.write(a.read() + 1); });
  ctx.add_comb("hot", [&] { b.write(a.read() + 1); });
  ctx.add_comb("cold", [&] { r.write(q.read() + 1); });
  ctx.step(50);
  EXPECT_EQ(b.read(), 51u);
  EXPECT_EQ(r.read(), 1u);
  // The cold process ran during discovery/init only; every steady-state
  // cycle skipped it.
  EXPECT_GE(ctx.sched_skipped_evaluations(), 50u);
}

TEST(Schedule, DynamicTailMatchesInterpreterFixpoint) {
  // A data-dependent process (reads `sel` to decide which input to read)
  // opts out of static scheduling; it must still settle chained updates to
  // the same fixpoint the interpreter reaches.
  auto run = [](sim::KernelKind k) {
    sim::Context ctx;
    ctx.set_kernel(k);
    sim::SignalU64 cnt(ctx, "cnt", 8);
    sim::SignalBool sel(ctx, "sel");
    sim::SignalU64 x(ctx, "x", 8);
    sim::SignalU64 y(ctx, "y", 8);
    sim::SignalU64 mux(ctx, "mux", 8);
    sim::SignalU64 out(ctx, "out", 8);
    ctx.add_clocked("cnt", [&] {
      cnt.write(cnt.read() + 1);
      sel.write((cnt.read() & 2) != 0);
    });
    ctx.add_comb("x", [&] { x.write(cnt.read() * 3); });
    ctx.add_comb("y", [&] { y.write(cnt.read() + 7); });
    sim::CombOpts dyn;
    dyn.dynamic = true;
    ctx.add_comb(
        "mux", [&] { mux.write(sel.read() ? y.read() : x.read()); },
        std::move(dyn));
    ctx.add_comb("out", [&] { out.write(mux.read() + 1); });
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 12; ++i) {
      ctx.step();
      trace.push_back(out.read());
    }
    return trace;
  };
  EXPECT_EQ(run(sim::KernelKind::kCompiled), run(sim::KernelKind::kInterp));
}

TEST(Schedule, DeclaredReadsKeepDataDependentProcessesStatic) {
  // Discovery only sees the branch taken on the initial evaluation; a
  // process that declares its full read superset stays statically
  // scheduled and still reacts to the undiscovered input.
  sim::Context ctx;
  sim::SignalU64 cnt(ctx, "cnt", 8);
  sim::SignalBool sel(ctx, "sel");
  sim::SignalU64 x(ctx, "x", 8);
  sim::SignalU64 y(ctx, "y", 8);
  sim::SignalU64 mux(ctx, "mux", 8);
  ctx.add_clocked("cnt", [&] {
    cnt.write(cnt.read() + 1);
    sel.write((cnt.read() & 2) != 0);
  });
  ctx.add_comb("x", [&] { x.write(cnt.read() * 3); });
  ctx.add_comb("y", [&] { y.write(cnt.read() + 7); });
  sim::CombOpts opts;
  opts.reads = {&sel, &x, &y};
  ctx.add_comb(
      "mux", [&] { mux.write(sel.read() ? y.read() : x.read()); },
      std::move(opts));
  for (int i = 0; i < 8; ++i) {
    ctx.step();
    const std::uint64_t c = cnt.read();
    // sel was computed from the pre-edge counter value.
    const std::uint64_t expect = ((c - 1) & 2) != 0 ? c + 7 : c * 3;
    ASSERT_EQ(mux.read(), expect) << "cycle " << i;
  }
  EXPECT_EQ(ctx.delta_iterations(), 8u);
}

// The acceptance bar for the compiled kernel: identical report JSON and
// identical VCD bytes against the interpreter, for every shipped config,
// serial and sharded.
TEST(Schedule, KernelsProduceByteIdenticalArtifacts) {
  const fs::path configs = fs::path(CRVE_SOURCE_DIR) / "configs";
  const fs::path base = fs::temp_directory_path() / "crve_sched_equiv";
  fs::remove_all(base);

  for (const auto& entry : fs::directory_iterator(configs)) {
    if (entry.path().extension() != ".cfg") continue;
    const std::string cfg_name = entry.path().stem().string();

    struct Variant {
      sim::KernelKind kernel;
      unsigned jobs;
      const char* tag;
    };
    const Variant variants[] = {
        {sim::KernelKind::kCompiled, 1, "compiled_j1"},
        {sim::KernelKind::kCompiled, 4, "compiled_j4"},
        {sim::KernelKind::kInterp, 1, "interp_j1"},
        {sim::KernelKind::kInterp, 4, "interp_j4"},
    };
    std::vector<std::string> jsons;
    std::vector<std::string> vcds;
    for (const Variant& v : variants) {
      regress::RunPlan plan;
      plan.cfg = regress::parse_config_file(entry.path().string());
      plan.kernel = v.kernel;
      plan.jobs = v.jobs;
      plan.tests = {verif::t02_random_all_opcodes()};
      plan.seeds = {7};
      plan.n_transactions = 25;
      plan.out_dir = (base / (cfg_name + "_" + v.tag)).string();
      const auto res = regress::Regression::run(plan);
      jsons.push_back(res.json(/*with_timing=*/false));
      vcds.push_back(
          slurp(fs::path(plan.out_dir) / "t02_random_all_opcodes_s7_rtl.vcd") +
          slurp(fs::path(plan.out_dir) / "t02_random_all_opcodes_s7_bca.vcd"));
      EXPECT_FALSE(vcds.back().empty()) << cfg_name << " " << v.tag;
    }
    for (std::size_t i = 1; i < jsons.size(); ++i) {
      EXPECT_EQ(jsons[0], jsons[i])
          << cfg_name << ": report diverges for " << variants[i].tag;
      EXPECT_EQ(vcds[0] == vcds[i], true)
          << cfg_name << ": VCD bytes diverge for " << variants[i].tag;
    }
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace crve
