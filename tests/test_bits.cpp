// Unit tests for the Bits value type.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bits.h"

namespace crve {
namespace {

TEST(Bits, DefaultIsZeroWidth) {
  Bits b;
  EXPECT_EQ(b.width(), 0);
}

TEST(Bits, ConstructZeroValue) {
  Bits b(32);
  EXPECT_EQ(b.width(), 32);
  EXPECT_TRUE(b.is_zero());
  EXPECT_EQ(b.to_u64(), 0u);
}

TEST(Bits, ConstructWithValueMasksToWidth) {
  Bits b(8, 0x1ff);
  EXPECT_EQ(b.to_u64(), 0xffu);
}

TEST(Bits, WidthBoundsChecked) {
  EXPECT_THROW(Bits(0), std::invalid_argument);
  EXPECT_THROW(Bits(257), std::invalid_argument);
  EXPECT_NO_THROW(Bits(256));
  EXPECT_NO_THROW(Bits(1));
}

TEST(Bits, AllOnes) {
  Bits b = Bits::all_ones(10);
  EXPECT_EQ(b.to_u64(), 0x3ffu);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.bit(i));
}

TEST(Bits, AllOnes256) {
  Bits b = Bits::all_ones(256);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b.word(i), ~std::uint64_t{0});
}

TEST(Bits, SetGetBit) {
  Bits b(65);
  b.set_bit(64, true);
  EXPECT_TRUE(b.bit(64));
  EXPECT_FALSE(b.bit(63));
  b.set_bit(64, false);
  EXPECT_TRUE(b.is_zero());
}

TEST(Bits, BitRangeChecked) {
  Bits b(8);
  EXPECT_THROW(b.bit(8), std::out_of_range);
  EXPECT_THROW(b.set_bit(-1, true), std::out_of_range);
}

TEST(Bits, ByteAccess) {
  Bits b(32);
  b.set_byte(2, 0xab);
  EXPECT_EQ(b.byte(2), 0xab);
  EXPECT_EQ(b.to_u64(), 0xab0000u);
  EXPECT_EQ(b.num_bytes(), 4);
  EXPECT_THROW(b.byte(4), std::out_of_range);
}

TEST(Bits, ByteAccessCrossesWords) {
  Bits b(128);
  b.set_byte(9, 0x7e);
  EXPECT_EQ(b.byte(9), 0x7e);
  EXPECT_EQ(b.word(1), 0x7e00ull);
}

TEST(Bits, FromBytes) {
  const std::uint8_t raw[] = {0x11, 0x22, 0x33};
  Bits b = Bits::from_bytes(raw, 24);
  EXPECT_EQ(b.to_u64(), 0x332211u);
}

TEST(Bits, BinStringRoundTrip) {
  Bits b(12, 0xa5f);
  EXPECT_EQ(b.to_bin_string(), "101001011111");
  EXPECT_EQ(Bits::from_bin_string("101001011111"), b);
}

TEST(Bits, BinStringRejectsBadChars) {
  EXPECT_THROW(Bits::from_bin_string("10x1"), std::invalid_argument);
}

TEST(Bits, HexString) {
  EXPECT_EQ(Bits(16, 0xbeef).to_hex_string(), "beef");
  EXPECT_EQ(Bits(12, 0xbe).to_hex_string(), "0be");
  EXPECT_EQ(Bits(1, 1).to_hex_string(), "1");
}

TEST(Bits, Slice) {
  Bits b(32, 0xdeadbeef);
  EXPECT_EQ(b.slice(0, 16).to_u64(), 0xbeefu);
  EXPECT_EQ(b.slice(16, 16).to_u64(), 0xdeadu);
  EXPECT_THROW(b.slice(20, 16), std::out_of_range);
}

TEST(Bits, SetSlice) {
  Bits b(32);
  b.set_slice(8, Bits(8, 0xcd));
  EXPECT_EQ(b.to_u64(), 0xcd00u);
}

TEST(Bits, ByteSlice) {
  Bits b(64, 0x1122334455667788ull);
  Bits s = b.byte_slice(2, 3);
  EXPECT_EQ(s.width(), 24);
  EXPECT_EQ(s.to_u64(), 0x445566u);
  Bits c(64);
  c.set_byte_slice(1, s);
  EXPECT_EQ(c.to_u64(), 0x44556600ull);
}

TEST(Bits, EqualityIncludesWidth) {
  EXPECT_NE(Bits(8, 5), Bits(16, 5));
  EXPECT_EQ(Bits(8, 5), Bits(8, 5));
}

TEST(Bits, HashDiffersForDifferentValues) {
  EXPECT_NE(Bits(32, 1).hash(), Bits(32, 2).hash());
  EXPECT_NE(Bits(8, 1).hash(), Bits(16, 1).hash());
}

TEST(Bits, WideValueMaskedOnSetByte) {
  Bits b(12);
  b.set_byte(1, 0xff);  // only 4 bits of byte 1 are inside the width
  EXPECT_EQ(b.to_u64(), 0xf00u);
}

class BitsWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsWidthSweep, OnesRoundTripThroughStrings) {
  const int w = GetParam();
  const Bits ones = Bits::all_ones(w);
  EXPECT_EQ(Bits::from_bin_string(ones.to_bin_string()), ones);
  const Bits zero(w);
  EXPECT_EQ(Bits::from_bin_string(zero.to_bin_string()), zero);
}

TEST_P(BitsWidthSweep, ByteWritesStayInWidth) {
  const int w = GetParam();
  Bits b(w);
  for (int i = 0; i < b.num_bytes(); ++i) b.set_byte(i, 0xff);
  EXPECT_EQ(b, Bits::all_ones(w));
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsWidthSweep,
                         ::testing::Values(1, 7, 8, 9, 31, 32, 33, 63, 64, 65,
                                           127, 128, 129, 255, 256));

}  // namespace
}  // namespace crve
