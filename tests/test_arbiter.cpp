// Unit tests for the RTL arbitration policy engine, plus differential tests
// proving the BCA view's independently implemented ArbState makes identical
// decisions (the node-level alignment depends on it).
#include <gtest/gtest.h>

#include "bca/node.h"
#include "common/rng.h"
#include "rtl/arbiter.h"

namespace crve {
namespace {

using rtl::Arbiter;
using stbus::ArbPolicy;
using stbus::NodeConfig;

NodeConfig cfg_with(ArbPolicy p, int n = 4) {
  NodeConfig cfg;
  cfg.n_initiators = n;
  cfg.n_targets = 2;
  cfg.arb = p;
  cfg.validate_and_normalize();
  return cfg;
}

TEST(Arbiter, EmptyMaskPicksNobody) {
  Arbiter a(cfg_with(ArbPolicy::kFixedPriority), 0);
  EXPECT_EQ(a.pick(0), -1);
}

TEST(Arbiter, FixedPriorityHighestWins) {
  NodeConfig cfg = cfg_with(ArbPolicy::kFixedPriority);
  cfg.priorities = {1, 9, 3, 9};
  Arbiter a(cfg, 0);
  EXPECT_EQ(a.pick(0b1111), 1);  // tie between 1 and 3 -> lower index
  EXPECT_EQ(a.pick(0b1101), 3);
  EXPECT_EQ(a.pick(0b0101), 2);
  EXPECT_EQ(a.pick(0b0001), 0);
}

TEST(Arbiter, RoundRobinRotates) {
  Arbiter a(cfg_with(ArbPolicy::kRoundRobin), 0);
  EXPECT_EQ(a.pick(0b1111), 0);
  a.on_edge(1, 0, 0b1111);
  EXPECT_EQ(a.pick(0b1111), 1);
  a.on_edge(2, 1, 0b1111);
  EXPECT_EQ(a.pick(0b1111), 2);
  a.on_edge(3, 2, 0b1111);
  // Pointer at 3; only 0 and 1 request -> wraps to 0.
  EXPECT_EQ(a.pick(0b0011), 0);
}

TEST(Arbiter, LruLeastRecentWins) {
  Arbiter a(cfg_with(ArbPolicy::kLru), 0);
  // Initially index order; grant 0, then 0 becomes most recent.
  EXPECT_EQ(a.pick(0b1111), 0);
  a.on_edge(1, 0, 0b1111);
  EXPECT_EQ(a.pick(0b1111), 1);
  a.on_edge(2, 1, 0b1111);
  EXPECT_EQ(a.pick(0b0011), 0);  // among {0,1}, 0 is older now
  a.on_edge(3, 0, 0b0011);
  EXPECT_EQ(a.pick(0b0011), 1);
}

TEST(Arbiter, LatencyUrgencyGrowsWithWaiting) {
  NodeConfig cfg = cfg_with(ArbPolicy::kLatencyBased, 2);
  cfg.latency_deadline = {4, 2};  // initiator 1 has the tighter deadline
  Arbiter a(cfg, 0);
  // Nobody has waited: urgency -4 vs -2, so 1 wins.
  EXPECT_EQ(a.pick(0b11), 1);
  // Serve 1 repeatedly; 0 keeps waiting and its urgency overtakes.
  for (int c = 1; c <= 4; ++c) {
    a.on_edge(static_cast<std::uint64_t>(c), 1, 0b11);
  }
  // waited(0)=4 -> urgency 0; waited(1)=0 -> urgency -2.
  EXPECT_EQ(a.pick(0b11), 0);
}

TEST(Arbiter, BandwidthQuotaExhausts) {
  NodeConfig cfg = cfg_with(ArbPolicy::kBandwidthLimited, 2);
  cfg.bandwidth_quota = {2, 0};  // initiator 0 limited to 2 grants/window
  cfg.bandwidth_window = 100;
  Arbiter a(cfg, 0);
  // Scan pointer starts at 0: 0 wins while it has tokens.
  EXPECT_EQ(a.pick(0b11), 0);
  a.on_edge(1, 0, 0b11);
  // Pointer moved to 1; 1 is unlimited.
  EXPECT_EQ(a.pick(0b11), 1);
  a.on_edge(2, 1, 0b11);
  EXPECT_EQ(a.pick(0b11), 0);  // second token
  a.on_edge(3, 0, 0b11);
  // Tokens exhausted for 0: 1 wins even when the pointer favours 0.
  EXPECT_EQ(a.pick(0b11), 1);
  a.on_edge(4, 1, 0b11);
  EXPECT_EQ(a.pick(0b11), 1);
  // Work conserving: 0 alone still granted without tokens.
  EXPECT_EQ(a.pick(0b01), 0);
}

TEST(Arbiter, BandwidthWindowRefills) {
  NodeConfig cfg = cfg_with(ArbPolicy::kBandwidthLimited, 2);
  cfg.bandwidth_quota = {1, 0};
  cfg.bandwidth_window = 4;
  Arbiter a(cfg, 0);
  EXPECT_EQ(a.pick(0b11), 0);  // pointer 0, token available
  a.on_edge(1, 0, 0b11);       // token spent, pointer -> 1
  EXPECT_EQ(a.pick(0b11), 1);  // 0 out of tokens
  a.on_edge(2, 1, 0b11);       // pointer -> 0
  EXPECT_EQ(a.pick(0b11), 1);  // still out of tokens, pool = {1}
  a.on_edge(3, 1, 0b11);       // pointer -> 0
  a.on_edge(4, -1, 0);         // cycle 4 % 4 == 0 -> refill
  EXPECT_EQ(a.pick(0b11), 0);  // token restored, pointer favours 0
}

TEST(Arbiter, ProgrammablePriorityUpdates) {
  Arbiter a(cfg_with(ArbPolicy::kProgrammable), 0);
  // Default priorities = index, so 3 wins.
  EXPECT_EQ(a.pick(0b1111), 3);
  a.set_priority(0, 50);
  EXPECT_EQ(a.pick(0b1111), 0);
  EXPECT_EQ(a.priority(0), 50);
  EXPECT_THROW(a.set_priority(7, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Differential: rtl::Arbiter vs bca::ArbState under random request streams.
// ---------------------------------------------------------------------------

class ArbDifferential : public ::testing::TestWithParam<ArbPolicy> {};

TEST_P(ArbDifferential, IdenticalDecisionsUnderRandomTraffic) {
  NodeConfig cfg;
  cfg.n_initiators = 5;
  cfg.n_targets = 2;
  cfg.arb = GetParam();
  cfg.priorities = {3, 1, 4, 1, 5};
  cfg.latency_deadline = {4, 8, 12, 16, 20};
  cfg.bandwidth_quota = {3, 0, 2, 0, 1};
  cfg.bandwidth_window = 16;
  cfg.validate_and_normalize();

  Arbiter rtl_arb(cfg, 0);
  bca::ArbState bca_arb(cfg);
  bca::Faults no_faults;
  Rng rng(GetParam() == ArbPolicy::kLru ? 77 : 78);

  for (std::uint64_t cycle = 1; cycle <= 2000; ++cycle) {
    const auto mask = static_cast<std::uint32_t>(rng.range(0, 31));
    const int a = rtl_arb.pick(mask);
    const int b = bca_arb.choose(mask);
    ASSERT_EQ(a, b) << "policy " << to_string(GetParam()) << " cycle "
                    << cycle << " mask " << mask;
    const bool locks = rng.chance(1, 4);
    rtl_arb.on_edge(cycle, a, mask);
    bca_arb.update(cycle, b, mask, locks, no_faults);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ArbDifferential,
    ::testing::Values(ArbPolicy::kFixedPriority, ArbPolicy::kRoundRobin,
                      ArbPolicy::kLru, ArbPolicy::kLatencyBased,
                      ArbPolicy::kBandwidthLimited, ArbPolicy::kProgrammable));

TEST(ArbDifferentialFault, LruStaleOnChunkDiverges) {
  NodeConfig cfg = cfg_with(ArbPolicy::kLru, 4);
  Arbiter rtl_arb(cfg, 0);
  bca::ArbState bca_arb(cfg);
  bca::Faults faults;
  faults.lru_stale_on_chunk = true;
  Rng rng(5);
  bool diverged = false;
  for (std::uint64_t cycle = 1; cycle <= 500 && !diverged; ++cycle) {
    const auto mask = static_cast<std::uint32_t>(rng.range(1, 15));
    const int a = rtl_arb.pick(mask);
    const int b = bca_arb.choose(mask);
    if (a != b) {
      diverged = true;
      break;
    }
    rtl_arb.on_edge(cycle, a, mask);
    bca_arb.update(cycle, b, mask, /*locks=*/true, faults);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace crve
