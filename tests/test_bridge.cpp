// Tests for the converter bridges (RTL and BCA views) and the register
// decoder, using a direct master + register-decoder slave around the DUT.
#include <gtest/gtest.h>

#include "bca/bridge.h"
#include "common/rng.h"
#include "rtl/register_decoder.h"
#include "rtl/size_converter.h"
#include "rtl/type_converter.h"
#include "sim/context.h"
#include "stbus/packet.h"
#include "stbus/pins.h"
#include "verif/bfm_target.h"

namespace crve {
namespace {

using stbus::Opcode;
using stbus::PortPins;
using stbus::ProtocolType;
using stbus::Request;
using stbus::RspOpcode;

// Minimal blocking master: issues one Request at a time on a pin bundle and
// collects the response. Pure test scaffolding (the real BFM is heavier).
struct SimpleMaster {
  sim::Context& ctx;
  PortPins& pins;
  ProtocolType type;

  struct Result {
    std::vector<std::uint8_t> rdata;
    RspOpcode status = RspOpcode::kOk;
  };

  Result issue(const Request& req, int max_cycles = 200) {
    ctx.initialize();  // idempotent; keeps write/commit phases aligned
    auto cells = stbus::build_request(req, pins.bus_bytes, type);
    const int rsp_cells =
        stbus::response_cells(req.opc, pins.bus_bytes, type);
    std::size_t ci = 0;
    std::vector<stbus::ResponseCell> rsp;
    pins.r_gnt.write(true);
    for (int c = 0; c < max_cycles; ++c) {
      if (ci < cells.size()) {
        pins.drive_request(cells[ci]);
      } else {
        pins.idle_request();
      }
      ctx.step();
      if (ci < cells.size() && pins.request_fires()) ++ci;
      if (pins.response_fires()) rsp.push_back(pins.sample_response());
      if (static_cast<int>(rsp.size()) == rsp_cells) break;
    }
    EXPECT_EQ(static_cast<int>(rsp.size()), rsp_cells) << "master timeout";
    Result r;
    for (const auto& cell : rsp) {
      if (cell.opc != RspOpcode::kOk) r.status = RspOpcode::kError;
    }
    if ((stbus::is_load(req.opc) || stbus::is_atomic(req.opc)) &&
        r.status == RspOpcode::kOk) {
      r.rdata = stbus::extract_response_data(req.opc, req.add, rsp,
                                             pins.bus_bytes);
    }
    // Commit the idle state and let the slave retire the final handshake,
    // so back-to-back issues do not double-sample the last cell.
    pins.idle_request();
    ctx.step();
    return r;
  }
};

Request st(Opcode opc, std::uint32_t add, std::vector<std::uint8_t> data) {
  Request r;
  r.opc = opc;
  r.add = add;
  r.wdata = std::move(data);
  return r;
}

Request ld(Opcode opc, std::uint32_t add) {
  Request r;
  r.opc = opc;
  r.add = add;
  return r;
}

// --------------------------------------------------------------------------
// RegisterDecoder standalone
// --------------------------------------------------------------------------

struct RegRig {
  sim::Context ctx;
  PortPins pins{ctx, "tb.reg", 4};
  rtl::RegisterDecoder dec{ctx, "regdec", pins, ProtocolType::kType2,
                           0x8000, 8};
  SimpleMaster master{ctx, pins, ProtocolType::kType2};
};

TEST(RegisterDecoder, WriteThenRead) {
  RegRig rig;
  auto w = rig.master.issue(st(Opcode::kSt4, 0x8008, {0x44, 0x33, 0x22, 0x11}));
  EXPECT_EQ(w.status, RspOpcode::kOk);
  EXPECT_EQ(rig.dec.reg(2), 0x11223344u);
  auto r = rig.master.issue(ld(Opcode::kLd4, 0x8008));
  EXPECT_EQ(r.status, RspOpcode::kOk);
  ASSERT_EQ(r.rdata.size(), 4u);
  EXPECT_EQ(r.rdata[0], 0x44);
  EXPECT_EQ(r.rdata[3], 0x11);
}

TEST(RegisterDecoder, RmwIsAtomicOr) {
  RegRig rig;
  rig.dec.set_reg(0, 0x0f);
  auto r = rig.master.issue(st(Opcode::kRmw4, 0x8000, {0xf0, 0, 0, 0}));
  EXPECT_EQ(r.status, RspOpcode::kOk);
  EXPECT_EQ(rig.dec.reg(0), 0xffu);
}

TEST(RegisterDecoder, SwapReturnsOldValue) {
  RegRig rig;
  rig.dec.set_reg(1, 0xabcd);
  SimpleMaster m{rig.ctx, rig.pins, ProtocolType::kType2};
  Request req = st(Opcode::kSwap4, 0x8004, {0x78, 0x56, 0x34, 0x12});
  // SWAP carries data and returns the old value.
  auto cells = stbus::build_request(req, 4, ProtocolType::kType2);
  (void)cells;
  struct SimpleMaster::Result r = m.issue(req);
  EXPECT_EQ(rig.dec.reg(1), 0x12345678u);
  ASSERT_EQ(r.rdata.size(), 4u);
  EXPECT_EQ(r.rdata[0], 0xcd);
  EXPECT_EQ(r.rdata[1], 0xab);
}

TEST(RegisterDecoder, OutOfRangeErrors) {
  RegRig rig;
  auto r = rig.master.issue(ld(Opcode::kLd4, 0x8000 + 8 * 4));
  EXPECT_EQ(r.status, RspOpcode::kError);
  auto r2 = rig.master.issue(ld(Opcode::kLd4, 0x7ffc));
  EXPECT_EQ(r2.status, RspOpcode::kError);
}

TEST(RegisterDecoder, NonWordSizeErrors) {
  RegRig rig;
  auto r = rig.master.issue(ld(Opcode::kLd8, 0x8000));
  EXPECT_EQ(r.status, RspOpcode::kError);
}

// --------------------------------------------------------------------------
// Bridges: master -> converter -> register decoder
// --------------------------------------------------------------------------

enum class BridgeImpl { kRtl, kBca };

struct ConvParam {
  BridgeImpl impl;
  int up_bytes;
  ProtocolType up_type;
  int dn_bytes;
  ProtocolType dn_type;
};

class ConverterRig : public ::testing::TestWithParam<ConvParam> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    up = std::make_unique<PortPins>(ctx, "tb.up", p.up_bytes);
    dn = std::make_unique<PortPins>(ctx, "tb.dn", p.dn_bytes);
    if (p.impl == BridgeImpl::kRtl) {
      if (p.up_type == p.dn_type) {
        rtl_bridge = std::make_unique<rtl::SizeConverter>(ctx, "conv", *up,
                                                          *dn, p.up_type);
      } else {
        rtl_bridge = std::make_unique<rtl::TypeConverter>(
            ctx, "conv", *up, p.up_type, *dn, p.dn_type);
      }
    } else {
      bca_bridge = std::make_unique<bca::Bridge>(ctx, "conv", *up, p.up_type,
                                                 *dn, p.dn_type);
    }
    dec = std::make_unique<rtl::RegisterDecoder>(ctx, "regdec", *dn,
                                                 p.dn_type, 0x0, 64);
    master = std::make_unique<SimpleMaster>(ctx, *up, p.up_type);
  }

  sim::Context ctx;
  std::unique_ptr<PortPins> up, dn;
  std::unique_ptr<rtl::Bridge> rtl_bridge;
  std::unique_ptr<bca::Bridge> bca_bridge;
  std::unique_ptr<rtl::RegisterDecoder> dec;
  std::unique_ptr<SimpleMaster> master;
};

TEST_P(ConverterRig, WriteReadThroughConverter) {
  auto w = master->issue(st(Opcode::kSt4, 0x10, {0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(w.status, RspOpcode::kOk);
  EXPECT_EQ(dec->reg(4), 0xefbeaddeu);
  auto r = master->issue(ld(Opcode::kLd4, 0x10));
  EXPECT_EQ(r.status, RspOpcode::kOk);
  ASSERT_EQ(r.rdata.size(), 4u);
  EXPECT_EQ(r.rdata[0], 0xde);
  EXPECT_EQ(r.rdata[3], 0xef);
}

TEST_P(ConverterRig, ErrorPropagatesUpstream) {
  auto r = master->issue(ld(Opcode::kLd4, 0x1000));  // out of range
  EXPECT_EQ(r.status, RspOpcode::kError);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConverterRig,
    ::testing::Values(
        // Size converters (same type, different widths) — paper's 64/32.
        ConvParam{BridgeImpl::kRtl, 8, ProtocolType::kType2, 4,
                  ProtocolType::kType2},
        ConvParam{BridgeImpl::kRtl, 4, ProtocolType::kType2, 8,
                  ProtocolType::kType2},
        ConvParam{BridgeImpl::kBca, 8, ProtocolType::kType2, 4,
                  ProtocolType::kType2},
        // Type converters — paper's t2/t3.
        ConvParam{BridgeImpl::kRtl, 4, ProtocolType::kType2, 4,
                  ProtocolType::kType3},
        ConvParam{BridgeImpl::kRtl, 4, ProtocolType::kType3, 4,
                  ProtocolType::kType2},
        ConvParam{BridgeImpl::kBca, 4, ProtocolType::kType3, 4,
                  ProtocolType::kType2},
        // Combined size+type conversion.
        ConvParam{BridgeImpl::kRtl, 8, ProtocolType::kType3, 4,
                  ProtocolType::kType2},
        ConvParam{BridgeImpl::kBca, 8, ProtocolType::kType3, 4,
                  ProtocolType::kType2}));

TEST(BridgeValidation, SizeConverterRejectsEqualWidths) {
  sim::Context ctx;
  PortPins a(ctx, "a", 4), b(ctx, "b", 4);
  EXPECT_THROW(rtl::SizeConverter(ctx, "c", a, b, ProtocolType::kType2),
               std::invalid_argument);
}

TEST(BridgeValidation, TypeConverterRejectsEqualTypes) {
  sim::Context ctx;
  PortPins a(ctx, "a", 4), b(ctx, "b", 8);
  EXPECT_THROW(rtl::TypeConverter(ctx, "c", a, ProtocolType::kType2, b,
                                  ProtocolType::kType2),
               std::invalid_argument);
}

TEST(BcaBridgeFault, EndiannessBugReversesWideLoads) {
  sim::Context ctx;
  PortPins up(ctx, "tb.up", 8), dn(ctx, "tb.dn", 4);
  bca::Faults faults;
  faults.size_conv_endianness = true;
  bca::Bridge bridge(ctx, "conv", up, ProtocolType::kType2, dn,
                     ProtocolType::kType2, faults);
  verif::TargetBfm tgt(ctx, "t", dn, ProtocolType::kType2, {}, Rng(1));
  SimpleMaster master{ctx, up, ProtocolType::kType2};
  // Two adjacent words hold distinct patterns.
  for (std::uint32_t i = 0; i < 4; ++i) tgt.poke(i, 0x11);
  for (std::uint32_t i = 4; i < 8; ++i) tgt.poke(i, 0x22);
  auto r = master.issue(ld(Opcode::kLd8, 0x0));
  ASSERT_EQ(r.rdata.size(), 8u);
  // The bug swaps the two 4-byte halves.
  EXPECT_EQ(r.rdata[0], 0x22);
  EXPECT_EQ(r.rdata[4], 0x11);
}

TEST(BcaBridgeFault, CleanBridgeKeepsWordOrder) {
  sim::Context ctx;
  PortPins up(ctx, "tb.up", 8), dn(ctx, "tb.dn", 4);
  bca::Bridge bridge(ctx, "conv", up, ProtocolType::kType2, dn,
                     ProtocolType::kType2, {});
  verif::TargetBfm tgt(ctx, "t", dn, ProtocolType::kType2, {}, Rng(1));
  SimpleMaster master{ctx, up, ProtocolType::kType2};
  for (std::uint32_t i = 0; i < 4; ++i) tgt.poke(i, 0x11);
  for (std::uint32_t i = 4; i < 8; ++i) tgt.poke(i, 0x22);
  auto r = master.issue(ld(Opcode::kLd8, 0x0));
  ASSERT_EQ(r.rdata.size(), 8u);
  EXPECT_EQ(r.rdata[0], 0x11);
  EXPECT_EQ(r.rdata[4], 0x22);
}

}  // namespace
}  // namespace crve
